//! Quickstart: collect a numerical distribution under ε-LDP with the
//! Square Wave mechanism and EMS reconstruction.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sw_ldp::prelude::*;

fn main() {
    // --- The population -------------------------------------------------
    // 100k users each hold a private value in [0, 1]; here, synthetic
    // Beta(5, 2) (the paper's synthetic workload).
    let dataset = DatasetSpec {
        kind: DatasetKind::Beta,
        n: 100_000,
        seed: 1,
    }
    .generate();
    println!("users: {}", dataset.n());

    // --- Client side ----------------------------------------------------
    // Each user perturbs its own value locally; only the noisy report ever
    // leaves the device. ε = 1 with the paper's defaults: square wave,
    // mutual-information-optimal bandwidth b*, output domain [-b, 1+b].
    let epsilon = 1.0;
    let d = 256; // histogram granularity
    let pipeline = SwPipeline::new(epsilon, d).expect("valid parameters");
    println!(
        "square wave: b = {:.3}, p = {:.3}, q = {:.3}",
        pipeline.wave().b(),
        pipeline.wave().peak(),
        pipeline.wave().q()
    );

    let mut rng = SplitMix64::new(2024);
    let reports: Vec<f64> = dataset
        .values
        .iter()
        .map(|&v| pipeline.randomize(v, &mut rng).expect("value in [0,1]"))
        .collect();

    // --- Server side ----------------------------------------------------
    // The aggregator histograms the reports and runs EMS through the exact
    // transition matrix.
    let counts = pipeline.aggregate(&reports);
    let result = pipeline
        .reconstruct(&counts, &Reconstruction::Ems)
        .expect("reconstruction succeeds");
    let estimate = result.histogram;
    println!(
        "EMS converged after {} iterations (log-likelihood {:.1})",
        result.iterations, result.log_likelihood
    );

    // --- How good is it? -------------------------------------------------
    let truth = dataset.histogram(d).expect("non-empty dataset");
    println!(
        "Wasserstein distance: {:.5}",
        wasserstein(&truth, &estimate).expect("same granularity")
    );
    println!(
        "KS distance:          {:.5}",
        ks_distance(&truth, &estimate).expect("same granularity")
    );
    println!(
        "mean:     true {:.4}  estimated {:.4}",
        truth.mean(),
        estimate.mean()
    );
    println!(
        "variance: true {:.4}  estimated {:.4}",
        truth.variance(),
        estimate.variance()
    );
    println!(
        "median:   true {:.4}  estimated {:.4}",
        truth.quantile(0.5),
        estimate.quantile(0.5)
    );
}
