//! Regeneration of every table and figure in the paper's evaluation
//! (§6, Figures 1–7 and Table 2).
//!
//! Each `figN` function produces a [`Figure`] holding the same panels and
//! series the paper plots; the `repro` binary in `ldp-bench` renders them
//! as text and CSV. Absolute values depend on the configured population
//! scale — the *shape* claims (method ranking, crossovers) are what these
//! reproduce.

use crate::config::ExperimentConfig;
use crate::error::ExperimentError;
use crate::methods::Method;
use crate::report::{Chart, Figure, Series};
use crate::runner::{parallel_jobs, run_grid, TrialMetrics};
use ldp_datasets::{Dataset, DatasetKind, DatasetSpec};
use ldp_metrics as metrics;
use ldp_numeric::rng::mix64;
use ldp_numeric::{Histogram, SplitMix64};
use ldp_sw::{optimal_b, Reconstruction, SwPipeline, Wave, WaveShape};

/// Materializes a dataset at the configured scale, together with its
/// ground-truth histogram at granularity `d`.
fn prepare(
    kind: DatasetKind,
    d: usize,
    config: &ExperimentConfig,
) -> Result<(Dataset, Histogram), ExperimentError> {
    let spec = DatasetSpec::scaled(
        kind,
        config.scale,
        mix64(config.seed ^ kind.paper_n() as u64),
    );
    let ds = spec.generate();
    let truth = ds.histogram(d)?;
    Ok((ds, truth))
}

fn scale_note(config: &ExperimentConfig) -> String {
    format!(
        "population scale = {} of paper n, repeats = {} (paper: 100), seed = {:#x}",
        config.scale, config.repeats, config.seed
    )
}

/// Figure 1: normalized frequencies of the evaluation datasets.
pub fn fig1(config: &ExperimentConfig) -> Result<Figure, ExperimentError> {
    let mut charts = Vec::new();
    for &kind in &config.datasets {
        let d = kind.paper_buckets();
        let (_, truth) = prepare(kind, d, config)?;
        charts.push(Chart {
            title: format!("Fig 1 — {}", kind.name()),
            x_label: "bucket".into(),
            y_label: "normalized frequency".into(),
            series: vec![Series {
                label: "frequency".into(),
                x: (0..d).map(|i| i as f64).collect(),
                y: truth.probs().to_vec(),
                std: vec![0.0; d],
            }],
        });
    }
    Ok(Figure {
        id: "fig1".into(),
        caption: "Normalized frequencies of datasets for experiments".into(),
        charts,
        notes: vec![scale_note(config)],
    })
}

/// A named metric extracted from [`TrialMetrics`] for one figure panel.
type MetricPanel = (&'static str, fn(&TrialMetrics) -> Option<f64>);

/// Shared driver for the ε-sweep figures (2, 3, 4): runs the grid once per
/// dataset and extracts the requested metric panels.
fn eps_sweep(
    config: &ExperimentConfig,
    methods: &[Method],
    panels: &[MetricPanel],
    fig_id: &str,
    caption: &str,
) -> Result<Figure, ExperimentError> {
    let mut charts = Vec::new();
    for &kind in &config.datasets {
        let d = kind.paper_buckets();
        let (ds, truth) = prepare(kind, d, config)?;
        let grid = run_grid(methods, &ds.values, &truth, d, config)?;
        for (metric_name, select) in panels {
            charts.push(Chart {
                title: format!("{fig_id} — {} — {metric_name}", kind.name()),
                x_label: "epsilon".into(),
                y_label: (*metric_name).into(),
                series: grid.series(select),
            });
        }
    }
    Ok(Figure {
        id: fig_id.into(),
        caption: caption.into(),
        charts,
        notes: vec![scale_note(config)],
    })
}

/// Figure 2: Wasserstein and KS distance vs ε for the distribution
/// methods.
pub fn fig2(config: &ExperimentConfig) -> Result<Figure, ExperimentError> {
    eps_sweep(
        config,
        &Method::distribution_methods(),
        &[("W1", |m| m.w1), ("KS", |m| m.ks)],
        "fig2",
        "Distribution distances (Wasserstein, KS), varying epsilon",
    )
}

/// Figure 3: range-query MAE at α = 0.1 and α = 0.4, including HH and
/// HaarHRR.
pub fn fig3(config: &ExperimentConfig) -> Result<Figure, ExperimentError> {
    eps_sweep(
        config,
        &Method::range_query_methods(),
        &[
            ("range query MAE (alpha=0.1)", |m| m.rq_01),
            ("range query MAE (alpha=0.4)", |m| m.rq_04),
        ],
        "fig3",
        "MAE of random range queries with alpha = 0.1 and 0.4",
    )
}

/// Figure 4: mean, variance and quantile MAE, including SR and PM for the
/// moment rows.
pub fn fig4(config: &ExperimentConfig) -> Result<Figure, ExperimentError> {
    eps_sweep(
        config,
        &Method::moment_methods(),
        &[
            ("MAE (mean)", |m| m.mean_err),
            ("MAE (variance)", |m| m.var_err),
            ("MAE (quantile)", |m| m.quantile_err),
        ],
        "fig4",
        "MAE for estimating mean, variance, and quantiles",
    )
}

/// The default bandwidth grid for Figures 5 and 6 (the paper sweeps
/// 0.01–0.38).
#[must_use]
pub fn default_b_grid() -> Vec<f64> {
    vec![0.01, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.38]
}

/// Runs the EMS pipeline with one explicit wave and returns the W1 error.
fn wave_trial(
    wave: Wave,
    values: &[f64],
    truth: &Histogram,
    d: usize,
    seed: u64,
) -> Result<f64, ExperimentError> {
    let pipeline = SwPipeline::with_wave(wave, d, d)?;
    let mut rng = SplitMix64::new(seed);
    let est = pipeline.estimate(values, &Reconstruction::Ems, &mut rng)?;
    Ok(metrics::wasserstein(truth, &est)?)
}

/// Figure 5: comparison of wave shapes (square, trapezoids, triangle) in
/// terms of W1 vs bandwidth at ε = 1.
pub fn fig5(config: &ExperimentConfig) -> Result<Figure, ExperimentError> {
    let eps = 1.0;
    let shapes: Vec<(String, WaveShape)> = vec![
        ("SW".into(), WaveShape::Square),
        ("trapezoid-0.8".into(), WaveShape::Trapezoid { ratio: 0.8 }),
        ("trapezoid-0.6".into(), WaveShape::Trapezoid { ratio: 0.6 }),
        ("trapezoid-0.4".into(), WaveShape::Trapezoid { ratio: 0.4 }),
        ("trapezoid-0.2".into(), WaveShape::Trapezoid { ratio: 0.2 }),
        ("triangle".into(), WaveShape::Triangle),
    ];
    let grid = default_b_grid();
    let mut charts = Vec::new();
    for &kind in &config.datasets {
        let d = kind.paper_buckets();
        let (ds, truth) = prepare(kind, d, config)?;
        let jobs = shapes.len() * grid.len() * config.repeats;
        let flat = parallel_jobs(jobs, config.threads, |idx| {
            let trial = idx % config.repeats;
            let rest = idx / config.repeats;
            let bi = rest % grid.len();
            let si = rest / grid.len();
            let wave = Wave::new(shapes[si].1, grid[bi], eps)?;
            let seed = mix64(config.seed ^ mix64(idx as u64 + 0xF1605));
            wave_trial(wave, &ds.values, &truth, d, seed).map(|w1| (si, bi, trial, w1))
        })?;
        let mut per: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); grid.len()]; shapes.len()];
        for (si, bi, _t, w1) in flat {
            per[si][bi].push(w1);
        }
        let series = shapes
            .iter()
            .enumerate()
            .map(|(si, (label, _))| Series {
                label: label.clone(),
                x: grid.clone(),
                y: per[si]
                    .iter()
                    .map(|v| ldp_numeric::stats::mean(v))
                    .collect(),
                std: per[si]
                    .iter()
                    .map(|v| ldp_numeric::stats::std_dev(v))
                    .collect(),
            })
            .collect();
        charts.push(Chart {
            title: format!("fig5 — {} (eps = {eps})", kind.name()),
            x_label: "b".into(),
            y_label: "W1".into(),
            series,
        });
    }
    Ok(Figure {
        id: "fig5".into(),
        caption: "Comparison of different wave shapes in GW (ratios are trapezoid top/bottom)"
            .into(),
        charts,
        notes: vec![scale_note(config)],
    })
}

/// Figure 6: W1 of SW + EMS with varying b at fixed ε ∈ {1, 2, 3, 4}; the
/// closed-form `b_SW` is reported in the notes (the paper's dotted line).
pub fn fig6(config: &ExperimentConfig) -> Result<Figure, ExperimentError> {
    let eps_panels = [1.0, 2.0, 3.0, 4.0];
    let grid = default_b_grid();
    let kind = config
        .datasets
        .first()
        .copied()
        .unwrap_or(DatasetKind::Beta);
    let d = kind.paper_buckets();
    let (ds, truth) = prepare(kind, d, config)?;
    let mut charts = Vec::new();
    let mut notes = vec![scale_note(config), format!("dataset: {}", kind.name())];
    for &eps in &eps_panels {
        let jobs = grid.len() * config.repeats;
        let flat = parallel_jobs(jobs, config.threads, |idx| {
            let trial = idx % config.repeats;
            let bi = idx / config.repeats;
            let wave = Wave::square(grid[bi], eps)?;
            let seed = mix64(config.seed ^ mix64((idx as u64) << 8 | eps as u64));
            wave_trial(wave, &ds.values, &truth, d, seed).map(|w1| (bi, trial, w1))
        })?;
        let mut per: Vec<Vec<f64>> = vec![Vec::new(); grid.len()];
        for (bi, _t, w1) in flat {
            per[bi].push(w1);
        }
        let b_sw = optimal_b(eps)?;
        notes.push(format!("eps = {eps}: b_SW = {b_sw:.3}"));
        charts.push(Chart {
            title: format!("fig6 — eps = {eps}, b_SW = {b_sw:.3}"),
            x_label: "b".into(),
            y_label: "W1".into(),
            series: vec![Series {
                label: "SW-EMS".into(),
                x: grid.clone(),
                y: per.iter().map(|v| ldp_numeric::stats::mean(v)).collect(),
                std: per.iter().map(|v| ldp_numeric::stats::std_dev(v)).collect(),
            }],
        });
    }
    Ok(Figure {
        id: "fig6".into(),
        caption: "W1 of EMS with fixed eps and varying b; dotted b_SW in notes".into(),
        charts,
        notes,
    })
}

/// Figure 7: bucketization granularity (256/512/1024/2048) vs ε, W1 of
/// SW + EMS.
pub fn fig7(config: &ExperimentConfig) -> Result<Figure, ExperimentError> {
    let granularities = [256usize, 512, 1024, 2048];
    let mut charts = Vec::new();
    for &kind in &config.datasets {
        let spec = DatasetSpec::scaled(
            kind,
            config.scale,
            mix64(config.seed ^ kind.paper_n() as u64),
        );
        let ds = spec.generate();
        let mut series = Vec::new();
        for &d in &granularities {
            let truth = ds.histogram(d)?;
            let jobs = config.epsilons.len() * config.repeats;
            let flat = parallel_jobs(jobs, config.threads, |idx| {
                let trial = idx % config.repeats;
                let ei = idx / config.repeats;
                let eps = config.epsilons[ei];
                let wave = Wave::square(optimal_b(eps)?, eps)?;
                let seed = mix64(config.seed ^ mix64((idx as u64) << 16 | d as u64));
                wave_trial(wave, &ds.values, &truth, d, seed).map(|w1| (ei, trial, w1))
            })?;
            let mut per: Vec<Vec<f64>> = vec![Vec::new(); config.epsilons.len()];
            for (ei, _t, w1) in flat {
                per[ei].push(w1);
            }
            series.push(Series {
                label: format!("{d} buckets"),
                x: config.epsilons.clone(),
                y: per.iter().map(|v| ldp_numeric::stats::mean(v)).collect(),
                std: per.iter().map(|v| ldp_numeric::stats::std_dev(v)).collect(),
            });
        }
        charts.push(Chart {
            title: format!("fig7 — {}", kind.name()),
            x_label: "epsilon".into(),
            y_label: "W1".into(),
            series,
        });
    }
    Ok(Figure {
        id: "fig7".into(),
        caption:
            "W1 between estimated and true distribution with different bucketization granularity"
                .into(),
        charts,
        notes: vec![scale_note(config)],
    })
}

/// Table 2: the method × metric capability matrix.
#[must_use]
pub fn table2() -> String {
    let rows = [
        ("SW with EMS/EM (this paper)", [true, true, true, true]),
        ("HH-ADMM (this paper)", [true, true, true, true]),
        ("CFO binning", [true, true, true, true]),
        ("HH and HaarHRR [18]", [false, true, false, false]),
        ("PM [30] and SR [9]", [false, false, true, false]),
    ];
    let headers = [
        "Wasserstein and KS distance",
        "Range Query",
        "Mean & Variance",
        "Quantile",
    ];
    let mut out = String::from("# Table 2 — Methods and evaluated metrics\n");
    out.push_str(&format!("{:<28}", "Method"));
    for h in headers {
        out.push_str(&format!(" | {h:^28}"));
    }
    out.push('\n');
    out.push_str(&"-".repeat(28 + headers.len() * 31));
    out.push('\n');
    for (name, flags) in rows {
        out.push_str(&format!("{name:<28}"));
        for f in flags {
            out.push_str(&format!(" | {:^28}", if f { "x" } else { "" }));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper_capability_matrix() {
        let t = table2();
        assert!(t.contains("SW with EMS/EM"));
        assert!(t.contains("HaarHRR"));
        assert!(t.contains("Range Query"));
        // HH row has exactly one capability mark.
        let hh_row = t.lines().find(|l| l.contains("HaarHRR")).unwrap();
        assert_eq!(hh_row.matches('x').count(), 1);
    }

    #[test]
    fn fig1_produces_one_chart_per_dataset() {
        let config = ExperimentConfig::smoke();
        let fig = fig1(&config).unwrap();
        assert_eq!(fig.charts.len(), 1);
        let s = &fig.charts[0].series[0];
        assert_eq!(s.x.len(), 256);
        assert!((s.y.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fig2_smoke_produces_all_series() {
        let fig = fig2(&ExperimentConfig::smoke()).unwrap();
        // One dataset × two metrics.
        assert_eq!(fig.charts.len(), 2);
        for chart in &fig.charts {
            assert_eq!(chart.series.len(), 6, "{}", chart.title);
        }
    }

    #[test]
    fn fig6_reports_bandwidth_notes() {
        let mut config = ExperimentConfig::smoke();
        config.repeats = 1;
        let fig = fig6(&config).unwrap();
        assert_eq!(fig.charts.len(), 4);
        assert!(fig.notes.iter().any(|n| n.contains("b_SW")));
    }
}
