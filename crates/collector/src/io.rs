//! Snapshot files on disk: atomic writes, plain reads.
//!
//! A snapshot that is being written when the collector dies must never be
//! mistaken for the current recovery point. The discipline here is the
//! classic one: write the complete file to `<path>.tmp`, fsync it, then
//! `rename` over the destination — on POSIX the rename is atomic, so the
//! destination always holds either the previous complete snapshot or the
//! new complete snapshot, never a torn mixture. (Even without the rename,
//! the container's `body-lines` count and trailing checksum make a torn
//! file *detectable*; the rename makes it *impossible to observe*.)

use crate::error::CollectorError;
use crate::faults;
use std::fs;
use std::io::Write;
use std::path::Path;

/// Atomically replaces `path` with `text` via the sibling `<path>.tmp`.
///
/// Failpoints (`crate::faults`): `snap-write` fires before the tmp write
/// — its `torn` action writes only half the bytes and then fails, leaving
/// a torn `<path>.tmp` on disk exactly as a mid-write crash would (the
/// destination is untouched, which is the whole point of the tmp+rename
/// discipline); `snap-rename` fires after the tmp file is complete and
/// synced but before the rename.
pub fn write_snapshot_atomic(path: &Path, text: &str) -> Result<(), CollectorError> {
    let tmp = tmp_path(path);
    let io = |what: &str, e: std::io::Error| {
        CollectorError::Io(format!("{what} {}: {e}", tmp.display()))
    };
    let torn = match faults::hit("snap-write") {
        Some(faults::Injected::Err) => return Err(faults::error("snap-write")),
        Some(faults::Injected::Torn) => true,
        None => false,
    };
    {
        let mut f = fs::File::create(&tmp).map_err(|e| io("create", e))?;
        if torn {
            f.write_all(&text.as_bytes()[..text.len() / 2])
                .map_err(|e| io("write", e))?;
            let _ = f.sync_all();
            return Err(faults::error("snap-write (torn)"));
        }
        f.write_all(text.as_bytes()).map_err(|e| io("write", e))?;
        f.sync_all().map_err(|e| io("sync", e))?;
    }
    if faults::hit("snap-rename").is_some() {
        return Err(faults::error("snap-rename"));
    }
    fs::rename(&tmp, path).map_err(|e| {
        CollectorError::Io(format!(
            "rename {} -> {}: {e}",
            tmp.display(),
            path.display()
        ))
    })
}

/// Atomically replaces `path` with `text`, first rotating the previous
/// generations: the outgoing snapshot becomes `<path>.1`, the old
/// `<path>.1` becomes `<path>.2`, …, keeping at most `keep` generations
/// (`keep = 0` degrades to a plain [`write_snapshot_atomic`]).
///
/// Crash safety: generations shift by rename (each one atomic), the
/// outgoing current snapshot is *copied* into `<path>.1` through its own
/// atomic write, and only then is `path` itself replaced — so `path`
/// always holds a complete snapshot (old or new) at every instant, and a
/// crash mid-rotation can at worst duplicate a backup generation, never
/// lose the recovery point.
pub fn write_snapshot_rotating(path: &Path, text: &str, keep: u64) -> Result<(), CollectorError> {
    if keep > 0 && path.exists() {
        for i in (1..keep).rev() {
            let from = generation_path(path, i);
            if from.exists() {
                let to = generation_path(path, i + 1);
                fs::rename(&from, &to).map_err(|e| {
                    CollectorError::Io(format!(
                        "rotate {} -> {}: {e}",
                        from.display(),
                        to.display()
                    ))
                })?;
            }
        }
        let current = read_to_string(path)?;
        write_snapshot_atomic(&generation_path(path, 1), &current)?;
    }
    write_snapshot_atomic(path, text)?;
    // Prune generations beyond the keep horizon (covers a `--keep` that
    // shrank between runs); stop at the first gap.
    let mut i = keep + 1;
    loop {
        let stale = generation_path(path, i);
        if !stale.exists() {
            break;
        }
        let _ = fs::remove_file(&stale);
        i += 1;
    }
    Ok(())
}

/// The path of rotated generation `i` (`window.snap` → `window.snap.1`).
#[must_use]
pub fn generation_path(path: &Path, i: u64) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".{i}"));
    path.with_file_name(name)
}

/// The sibling temp path the atomic write goes through.
#[must_use]
pub fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Reads a snapshot (or report) file to a string.
pub fn read_to_string(path: &Path) -> Result<String, CollectorError> {
    fs::read_to_string(path)
        .map_err(|e| CollectorError::Io(format!("read {}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_write_round_trips_and_replaces() {
        let dir = std::env::temp_dir().join("ldp-collector-io-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("window.snap");
        write_snapshot_atomic(&path, "first\n").unwrap();
        assert_eq!(read_to_string(&path).unwrap(), "first\n");
        write_snapshot_atomic(&path, "second\n").unwrap();
        assert_eq!(read_to_string(&path).unwrap(), "second\n");
        // The temp sibling never lingers.
        assert!(!tmp_path(&path).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_keeps_the_newest_n_generations() {
        let dir = std::env::temp_dir().join("ldp-collector-rotate-test");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("window.snap");
        for i in 1..=5 {
            write_snapshot_rotating(&path, &format!("gen {i}\n"), 2).unwrap();
        }
        assert_eq!(read_to_string(&path).unwrap(), "gen 5\n");
        assert_eq!(
            read_to_string(&generation_path(&path, 1)).unwrap(),
            "gen 4\n"
        );
        assert_eq!(
            read_to_string(&generation_path(&path, 2)).unwrap(),
            "gen 3\n"
        );
        assert!(!generation_path(&path, 3).exists(), "pruned beyond keep");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_with_keep_zero_is_a_plain_atomic_write() {
        let dir = std::env::temp_dir().join("ldp-collector-rotate0-test");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("window.snap");
        write_snapshot_rotating(&path, "a\n", 0).unwrap();
        write_snapshot_rotating(&path, "b\n", 0).unwrap();
        assert_eq!(read_to_string(&path).unwrap(), "b\n");
        assert!(!generation_path(&path, 1).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shrinking_keep_prunes_stale_generations() {
        let dir = std::env::temp_dir().join("ldp-collector-rotate-shrink-test");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("window.snap");
        for i in 1..=5 {
            write_snapshot_rotating(&path, &format!("gen {i}\n"), 3).unwrap();
        }
        assert!(generation_path(&path, 3).exists());
        write_snapshot_rotating(&path, "gen 6\n", 1).unwrap();
        assert!(generation_path(&path, 1).exists());
        assert!(!generation_path(&path, 2).exists());
        assert!(!generation_path(&path, 3).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_of_missing_file_names_the_path() {
        let err = read_to_string(Path::new("/nonexistent/x.snap")).unwrap_err();
        assert!(err.to_string().contains("x.snap"));
    }
}
