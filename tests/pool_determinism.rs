//! Pool-backed execution invariants.
//!
//! Everything that fans out onto the shared `ldp-pool` worker pool —
//! `SwPipeline::{randomize_batch, aggregate_batch}`, the experiment
//! runner's `parallel_jobs`, and the bootstrap — derives per-job state
//! from **job indices**, never from worker identity. These tests pin the
//! consequences:
//!
//! 1. results are bit-identical no matter how large the pool is (the CI
//!    matrix additionally runs the whole suite under
//!    `LDP_POOL_THREADS ∈ {1, 2}`, exercising the same assertions against
//!    differently-sized global pools);
//! 2. a panicking job surfaces as an `Err` and does not poison the global
//!    pool for subsequent calls;
//! 3. the estimation hot path never materializes the dense transition
//!    matrix, while entrywise consumers still get exact values.

use proptest::prelude::*;
use rand::Rng as _;
use sw_ldp::experiments::runner::parallel_jobs;
use sw_ldp::pool::Pool;
use sw_ldp::prelude::*;
use sw_ldp::sw::transition_matrix;
use sw_ldp::sw::{bootstrap, BootstrapConfig};

/// Dedicated pools sized like the CI matrix: the global pool's size is
/// fixed per process, so cross-size determinism is asserted against
/// explicit instances.
const POOL_SIZES: [usize; 3] = [1, 2, 7];

#[test]
fn indexed_jobs_are_bit_identical_across_pool_sizes() {
    let reference: Vec<u64> = (0..257)
        .map(|i| {
            let mut rng = SplitMix64::new(0xFEED ^ i as u64);
            let mut acc = 0u64;
            for _ in 0..50 {
                acc = acc.wrapping_add(rng.gen_range(0..1 << 20));
            }
            acc
        })
        .collect();
    for threads in POOL_SIZES {
        let pool = Pool::new(threads);
        let out = pool
            .run(257, |i| {
                let mut rng = SplitMix64::new(0xFEED ^ i as u64);
                let mut acc = 0u64;
                for _ in 0..50 {
                    acc = acc.wrapping_add(rng.gen_range(0..1 << 20));
                }
                acc
            })
            .unwrap();
        assert_eq!(out, reference, "pool size {threads}");
    }
}

#[test]
fn batch_randomization_is_independent_of_global_pool_size() {
    // The global pool has whatever size `LDP_POOL_THREADS` / the host gave
    // it; shard streams are index-derived, so the result must match a
    // strictly sequential re-derivation of the same shards.
    let p = SwPipeline::new(1.0, 32).unwrap();
    let values: Vec<f64> = (0..4_096).map(|i| (i % 211) as f64 / 211.0).collect();
    let shards = 7usize;
    let seed = 99u64;
    let pooled = p.randomize_batch(&values, shards, seed).unwrap();

    let chunk = values.len().div_ceil(shards);
    let mut sequential = Vec::with_capacity(values.len());
    for (shard, vals) in values.chunks(chunk).enumerate() {
        let mut rng = SplitMix64::new(sw_ldp::numeric::rng::mix64(
            seed ^ sw_ldp::numeric::rng::mix64(shard as u64 + 1),
        ));
        for &v in vals {
            sequential.push(p.randomize(v, &mut rng).unwrap());
        }
    }
    assert_eq!(pooled, sequential);
}

#[test]
fn parallel_jobs_results_do_not_depend_on_thread_cap() {
    let run = |threads: usize| {
        parallel_jobs(40, threads, |idx| {
            let mut rng = SplitMix64::new(1_000 + idx as u64);
            Ok(rng.gen_range(0..u64::MAX / 2) + idx as u64)
        })
        .unwrap()
    };
    let reference = run(1);
    for threads in [2, 7] {
        assert_eq!(run(threads), reference, "cap {threads}");
    }
}

#[test]
fn bootstrap_is_deterministic_for_a_fixed_rng_state() {
    let p = SwPipeline::new(1.0, 16).unwrap();
    let values: Vec<f64> = (0..6_000).map(|i| (i % 89) as f64 / 89.0).collect();
    let counts = p.aggregate_batch(&values, 4, 5).unwrap().to_counts();
    let run = || {
        let mut rng = SplitMix64::new(4242);
        bootstrap(p.operator(), &counts, &BootstrapConfig::default(), &mut rng).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.lower, b.lower);
    assert_eq!(a.upper, b.upper);
    assert_eq!(a.mean_interval, b.mean_interval);
    assert_eq!(a.median_interval, b.median_interval);
    assert_eq!(a.replicates, b.replicates);
}

#[test]
fn panicking_job_errors_without_poisoning_the_global_pool() {
    // A panicking trial cancels the batch and reports an error...
    let r = parallel_jobs(24, 4, |idx| {
        assert!(idx != 13, "injected trial failure");
        Ok(idx)
    });
    assert!(r.is_err());
    // ...and the *same global pool* keeps serving every pool consumer.
    let ok = parallel_jobs(24, 4, |idx| Ok(idx * 2)).unwrap();
    assert_eq!(ok.len(), 24);
    let p = SwPipeline::new(1.0, 16).unwrap();
    let reports = p.randomize_batch(&[0.1, 0.5, 0.9], 2, 3).unwrap();
    assert_eq!(reports.len(), 3);
    let mut rng = SplitMix64::new(7);
    let counts = p.aggregate_batch(&[0.2; 512], 2, 9).unwrap().to_counts();
    assert!(bootstrap(p.operator(), &counts, &BootstrapConfig::default(), &mut rng).is_ok());
}

#[test]
fn estimation_hot_path_skips_dense_matrix_but_inversion_gets_exact_entries() {
    let p = SwPipeline::new(1.0, 48).unwrap();
    let values: Vec<f64> = (0..20_000).map(|i| (i % 331) as f64 / 331.0).collect();
    let mut rng = SplitMix64::new(31);
    p.estimate(&values, &Reconstruction::Ems, &mut rng).unwrap();
    p.estimate_batch(&values, &Reconstruction::Ems, 4, 17)
        .unwrap();
    assert!(
        !p.dense_transition_built(),
        "estimate/estimate_batch must stay matrix-free"
    );
    let eager = transition_matrix(p.wave(), 48, 48).unwrap();
    let lazy = p.transition();
    assert!(p.dense_transition_built());
    for j in 0..lazy.rows() {
        for i in 0..lazy.cols() {
            assert_eq!(lazy.get(j, i), eager.get(j, i));
        }
    }
}

// ---------------------------------------------------------------------------
// Pooled `absorb_slice` fan-out: every mechanism family
// ---------------------------------------------------------------------------

mod pooled_absorb {
    use super::POOL_SIZES;
    use sw_ldp::cfo::{Grr, Hrr, Olh, Oue};
    use sw_ldp::core_api::{Aggregator, Client, Mechanism};
    use sw_ldp::hierarchy::{HaarHrr, HierarchicalHistogram};
    use sw_ldp::mean::{Hybrid, Pm, Sr};
    use sw_ldp::numeric::SplitMix64;
    use sw_ldp::sw::SwMechanism;

    /// Randomizes `inputs` into wire reports under a fixed seed.
    fn reports_for<M: Mechanism>(mechanism: &M, inputs: &[M::Input], seed: u64) -> Vec<M::Report>
    where
        M::Input: Sized,
    {
        let client = Client::new(mechanism);
        let mut rng = SplitMix64::new(seed);
        inputs
            .iter()
            .map(|v| client.randomize(v, &mut rng).unwrap())
            .collect()
    }

    /// The pooled-fan-out contract for one family:
    ///
    /// 1. `push_slice_sharded` equals serial `push` for shard counts
    ///    {1, 2, 7} — raw state equality when `exact_state` (integer-count
    ///    states), bit-identical canonical estimates always;
    /// 2. independently pooled shard aggregators merged **out of index
    ///    order** through the fingerprint-checked `merge` still equal the
    ///    serial aggregator.
    ///
    /// The global pool behind the fan-out has whatever size
    /// `LDP_POOL_THREADS` gave it; the CI matrix re-runs this suite at 2
    /// and 4 workers.
    fn pooled_fanout_case<M, F>(
        label: &str,
        mechanism: M,
        reports: &[M::Report],
        canon: F,
        exact_state: bool,
    ) where
        M: Mechanism + Clone + Sync,
        M::Report: Sync,
        M::State: Send + PartialEq + std::fmt::Debug,
        F: Fn(&M::Output) -> Vec<f64>,
    {
        let mut serial = Aggregator::new(mechanism.clone());
        for r in reports {
            serial.push(r).unwrap();
        }
        let reference = canon(&serial.finalize().unwrap());
        for shards in POOL_SIZES {
            let mut pooled = Aggregator::new(mechanism.clone());
            pooled.push_slice_sharded(reports, shards).unwrap();
            assert_eq!(
                pooled.count(),
                serial.count(),
                "{label}: count ({shards} shards)"
            );
            if exact_state {
                assert_eq!(
                    pooled.state(),
                    serial.state(),
                    "{label}: raw state ({shards} shards)"
                );
            }
            let got = canon(&pooled.finalize().unwrap());
            assert_eq!(got.len(), reference.len(), "{label}: estimate length");
            for (i, (g, r)) in got.iter().zip(&reference).enumerate() {
                assert_eq!(
                    g.to_bits(),
                    r.to_bits(),
                    "{label}: estimate entry {i} ({shards} shards)"
                );
            }

            // Out-of-order fingerprint-checked shard merges: each shard is
            // itself pooled, then folded back in reverse index order.
            let chunk = reports.len().div_ceil(shards).max(1);
            let mut shard_aggs: Vec<Aggregator<M>> = reports
                .chunks(chunk)
                .map(|c| {
                    let mut a = Aggregator::new(mechanism.clone());
                    a.push_slice_sharded(c, 2).unwrap();
                    a
                })
                .collect();
            let mut merged = shard_aggs.pop().unwrap();
            for a in shard_aggs.iter().rev() {
                merged.merge(a).unwrap();
            }
            assert_eq!(merged.count(), serial.count(), "{label}: merged count");
            if exact_state {
                assert_eq!(
                    merged.state(),
                    serial.state(),
                    "{label}: out-of-order merged state ({shards} shards)"
                );
            }
            let got = canon(&merged.finalize().unwrap());
            for (i, (g, r)) in got.iter().zip(&reference).enumerate() {
                assert_eq!(
                    g.to_bits(),
                    r.to_bits(),
                    "{label}: merged estimate entry {i} ({shards} shards)"
                );
            }
        }
    }

    fn categorical(n: usize, d: usize) -> Vec<usize> {
        (0..n).map(|i| (i * 13) % d).collect()
    }

    fn signed(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| ((i * 31) % 201) as f64 / 100.0 - 1.0)
            .collect()
    }

    #[test]
    fn cfo_families_pooled_fanout_matches_serial() {
        let grr = Grr::new(16, 1.0).unwrap();
        pooled_fanout_case(
            "GRR",
            grr.clone(),
            &reports_for(&grr, &categorical(2_001, 16), 601),
            Clone::clone,
            true,
        );
        let olh = Olh::new(32, 1.0).unwrap();
        pooled_fanout_case(
            "OLH",
            olh.clone(),
            &reports_for(&olh, &categorical(2_001, 32), 602),
            Clone::clone,
            true,
        );
        let oue = Oue::new(80, 1.0).unwrap();
        pooled_fanout_case(
            "OUE",
            oue.clone(),
            &reports_for(&oue, &categorical(2_001, 80), 603),
            Clone::clone,
            true,
        );
        let hrr = Hrr::new(20, 1.0).unwrap();
        pooled_fanout_case(
            "HRR",
            hrr.clone(),
            &reports_for(&hrr, &categorical(2_001, 20), 604),
            Clone::clone,
            true,
        );
    }

    #[test]
    fn mean_families_pooled_fanout_matches_serial() {
        let pm = Pm::new(1.0).unwrap();
        pooled_fanout_case(
            "PM",
            pm,
            &reports_for(&pm, &signed(2_001), 605),
            |m| vec![*m],
            false,
        );
        let sr = Sr::new(0.8).unwrap();
        pooled_fanout_case(
            "SR",
            sr,
            &reports_for(&sr, &signed(2_001), 606),
            |m| vec![*m],
            false,
        );
        let hybrid = Hybrid::new(2.0).unwrap();
        pooled_fanout_case(
            "Hybrid",
            hybrid,
            &reports_for(&hybrid, &signed(2_001), 607),
            |m| vec![*m],
            false,
        );
    }

    #[test]
    fn sw_pooled_fanout_matches_serial() {
        let sw = SwMechanism::ems(1.0, 32).unwrap();
        let inputs: Vec<f64> = (0..2_001).map(|i| (i % 173) as f64 / 173.0).collect();
        pooled_fanout_case(
            "SW-EMS",
            sw.clone(),
            &reports_for(&sw, &inputs, 608),
            |h| h.probs().to_vec(),
            true,
        );
    }

    #[test]
    fn hierarchy_families_pooled_fanout_matches_serial() {
        let hh = HierarchicalHistogram::new(4, 64, 1.0).unwrap();
        pooled_fanout_case(
            "HH",
            hh.clone(),
            &reports_for(&hh, &categorical(2_001, 64), 609),
            |raw| raw.tree.levels.concat(),
            true,
        );
        let haar = HaarHrr::new(32, 1.0).unwrap();
        pooled_fanout_case(
            "HaarHRR",
            haar.clone(),
            &reports_for(&haar, &categorical(2_001, 32), 610),
            Clone::clone,
            true,
        );
    }

    /// A pooled fan-out is all-or-nothing (one bad report anywhere leaves
    /// the aggregator untouched), and shard merges across configurations
    /// are refused by the fingerprint check.
    #[test]
    fn pooled_fanout_error_paths() {
        let grr = Grr::new(8, 1.0).unwrap();
        let mut agg = Aggregator::new(grr.clone());
        let mut reports = categorical(100, 8);
        reports[63] = 8; // outside the domain
        let err = agg.push_slice_sharded(&reports, 7).unwrap_err();
        assert!(err.to_string().contains("outside domain"), "{err}");
        assert!(agg.is_empty(), "failed pooled ingest must not mutate");
        assert!(agg.push_slice_sharded(&[1, 2, 3], 0).is_err(), "0 shards");

        let mut ok = Aggregator::new(grr);
        ok.push_slice_sharded(&categorical(100, 8), 3).unwrap();
        let other = Aggregator::new(Grr::new(8, 2.0).unwrap());
        assert!(
            ok.merge(&other).is_err(),
            "cross-configuration shard merge must be refused"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For any (shard count, seed, input length): every pool size yields
    /// the same randomized batch, and `aggregate_batch` stays consistent
    /// with `randomize_batch` + sequential pushes.
    #[test]
    fn batch_pipeline_deterministic_across_pool_sizes(
        shards in 1usize..9,
        seed in 0u64..u64::MAX,
        n in 1usize..2_000,
    ) {
        let p = SwPipeline::new(1.0, 16).unwrap();
        let values: Vec<f64> = (0..n).map(|i| (i % 157) as f64 / 157.0).collect();
        let reference = p.randomize_batch(&values, shards, seed).unwrap();
        // Re-running on the same global pool is bit-stable...
        prop_assert_eq!(&reference, &p.randomize_batch(&values, shards, seed).unwrap());
        // ...and the fused aggregation sees exactly these reports.
        let mut direct = sw_ldp::sw::ShardAggregator::for_pipeline(&p);
        direct.push_slice(&reference).unwrap();
        let fused = p.aggregate_batch(&values, shards, seed).unwrap();
        prop_assert_eq!(fused, direct);
    }

    /// `parallel_jobs` output is a pure function of the job index for any
    /// cap, including caps exceeding the job count.
    #[test]
    fn parallel_jobs_pure_in_index(jobs in 0usize..60, cap in 1usize..10) {
        let out = parallel_jobs(jobs, cap, |idx| Ok(idx * idx)).unwrap();
        prop_assert_eq!(out, (0..jobs).map(|i| i * i).collect::<Vec<_>>());
    }
}
