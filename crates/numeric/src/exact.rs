//! Exact, order-independent floating-point accumulation.
//!
//! Mechanisms whose aggregation state is a running sum of continuous
//! reports (PM, SR, Hybrid) need a summation that is **associative**: the
//! unified-API contract requires merging two shard accumulators to equal
//! aggregating the concatenated stream bit for bit, and plain `f64 +=`
//! rounds differently depending on grouping. [`ExactSum`] maintains the
//! running total as a Shewchuk expansion — a list of non-overlapping
//! doubles whose mathematical sum is the *exact* real-number total — so
//! adds and merges commute exactly, and [`ExactSum::value`] renders the
//! correctly rounded `f64` regardless of how the stream was sharded.
//!
//! The expansion length is bounded by the number of distinct 53-bit
//! mantissa windows in the accumulated magnitudes (≈ 40 in the absolute
//! worst case, 2–4 in practice), so the state stays O(1) for any stream
//! length. Algorithms follow Shewchuk, *Adaptive Precision Floating-Point
//! Arithmetic* (1997): `TWO-SUM`, `GROW-EXPANSION`, `COMPRESS`.

/// Error-free transformation: returns `(s, e)` with `s = fl(a + b)` and
/// `a + b = s + e` exactly.
#[inline]
fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let bv = s - a;
    let av = s - bv;
    (s, (a - av) + (b - bv))
}

/// Like [`two_sum`] but requires `|a| >= |b|` (or `a == 0`).
#[inline]
fn fast_two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    (s, b - (s - a))
}

/// An exact accumulator for `f64` streams: adds and merges are exact, so
/// the rendered total is independent of summation order and sharding.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExactSum {
    /// Non-overlapping expansion, ordered by increasing magnitude.
    parts: Vec<f64>,
}

impl ExactSum {
    /// An empty (zero) accumulator.
    #[must_use]
    pub fn new() -> Self {
        ExactSum { parts: Vec::new() }
    }

    /// Number of expansion components currently held (diagnostic).
    #[must_use]
    pub fn components(&self) -> usize {
        self.parts.len()
    }

    /// Whether nothing non-zero has been accumulated.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.parts.is_empty()
    }

    /// Adds one finite value exactly (Shewchuk `GROW-EXPANSION` with zero
    /// elimination). Runs in place over the component buffer — the
    /// write cursor never passes the read cursor — so the per-report hot
    /// path allocates only when the expansion genuinely grows.
    pub fn add(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "ExactSum::add requires finite input");
        if x == 0.0 {
            return;
        }
        let mut q = x;
        let mut write = 0;
        for read in 0..self.parts.len() {
            let (s, e) = two_sum(q, self.parts[read]);
            if e != 0.0 {
                self.parts[write] = e;
                write += 1;
            }
            q = s;
        }
        self.parts.truncate(write);
        if q != 0.0 {
            self.parts.push(q);
        }
    }

    /// Adds every value in `xs` exactly, **bit-identical** to calling
    /// [`ExactSum::add`] per element in order — same final expansion
    /// representation, not just the same rendered total — as pinned by
    /// the workspace kernel-equivalence suite. The bulk path keeps the
    /// expansion in a fixed stack buffer across the whole slice, so the
    /// per-element `Vec` truncate/push bookkeeping of the scalar path
    /// disappears; should the expansion ever outgrow the buffer (the
    /// theoretical bound is ≈ 40 components), it spills back and
    /// finishes serially with the identical per-element op sequence.
    pub fn add_slice(&mut self, xs: &[f64]) {
        const CAP: usize = 64;
        if self.parts.len() >= CAP {
            for &x in xs {
                self.add(x);
            }
            return;
        }
        let mut buf = [0.0f64; CAP];
        let mut len = self.parts.len();
        buf[..len].copy_from_slice(&self.parts);
        for (i, &x) in xs.iter().enumerate() {
            debug_assert!(x.is_finite(), "ExactSum::add_slice requires finite input");
            if x == 0.0 {
                continue;
            }
            // GROW-EXPANSION in the stack buffer: the exact op sequence of
            // `add`, with `buf[..len]` standing in for `self.parts`.
            let mut q = x;
            let mut write = 0;
            for read in 0..len {
                let (s, e) = two_sum(q, buf[read]);
                if e != 0.0 {
                    buf[write] = e;
                    write += 1;
                }
                q = s;
            }
            len = write;
            if q != 0.0 {
                if len == CAP {
                    // Buffer exhausted: materialize the exact current
                    // expansion (components then top term, preserving the
                    // serial representation) and finish element-at-a-time.
                    self.parts.clear();
                    self.parts.extend_from_slice(&buf[..len]);
                    self.parts.push(q);
                    for &rest in &xs[i + 1..] {
                        self.add(rest);
                    }
                    return;
                }
                buf[len] = q;
                len += 1;
            }
        }
        self.parts.clear();
        self.parts.extend_from_slice(&buf[..len]);
    }

    /// Folds another accumulator in exactly. Equivalent to having added the
    /// other accumulator's entire stream to this one, in any order.
    pub fn merge(&mut self, other: &ExactSum) {
        for &p in &other.parts {
            self.add(p);
        }
    }

    /// The exact total, correctly rounded to the nearest `f64`
    /// (Shewchuk `COMPRESS`; the largest output component approximates the
    /// exact sum to within half an ulp, making the rendered value
    /// independent of the expansion's internal representation).
    #[must_use]
    pub fn value(&self) -> f64 {
        let m = self.parts.len();
        if m == 0 {
            return 0.0;
        }
        // Downward pass: absorb components from largest to smallest,
        // keeping the significant partials in `g` (largest first).
        let mut g = Vec::with_capacity(m);
        let mut q = self.parts[m - 1];
        for i in (0..m - 1).rev() {
            let (s, e) = fast_two_sum(q, self.parts[i]);
            if e != 0.0 {
                g.push(s);
                q = e;
            } else {
                q = s;
            }
        }
        // Upward pass: re-accumulate from smallest partial to largest; the
        // final sum is the compressed expansion's top component.
        for &gi in g.iter().rev() {
            let (s, _) = fast_two_sum(gi, q);
            q = s;
        }
        q
    }

    /// Resets to zero.
    pub fn clear(&mut self) {
        self.parts.clear();
    }

    /// The raw expansion components, ordered by increasing magnitude
    /// (for persistence: see `ldp_core::snapshot`). Their mathematical
    /// sum is the exact accumulated total.
    #[must_use]
    pub fn parts(&self) -> &[f64] {
        &self.parts
    }

    /// Rebuilds an accumulator from previously exported
    /// [`ExactSum::parts`] by re-adding each component exactly. The
    /// result represents the identical real-number total, so every later
    /// [`ExactSum::add`], [`ExactSum::merge`], and [`ExactSum::value`] is
    /// bit-identical to the original accumulator's. Non-finite components
    /// are rejected (an exported expansion never contains them).
    pub fn from_parts(parts: &[f64]) -> Result<Self, &'static str> {
        let mut sum = ExactSum::new();
        for &p in parts {
            if !p.is_finite() {
                return Err("ExactSum components must be finite");
            }
            sum.add(p);
        }
        Ok(sum)
    }
}

impl From<f64> for ExactSum {
    fn from(x: f64) -> Self {
        let mut s = ExactSum::new();
        s.add(x);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;
    use rand::Rng;

    fn random_values(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| {
                // Wildly varying magnitudes to stress cancellation.
                let mag = rng.gen_range(-30.0..30.0f64);
                let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
                sign * rng.gen::<f64>() * 2f64.powf(mag)
            })
            .collect()
    }

    #[test]
    fn matches_naive_sum_on_benign_input() {
        let mut s = ExactSum::new();
        for i in 1..=100 {
            s.add(i as f64);
        }
        assert_eq!(s.value(), 5050.0);
    }

    #[test]
    fn exact_under_catastrophic_cancellation() {
        let mut s = ExactSum::new();
        s.add(1e16);
        s.add(1.0);
        s.add(-1e16);
        // Naive summation loses the 1.0 entirely.
        assert_eq!(s.value(), 1.0);
        s.add(-1.0);
        assert_eq!(s.value(), 0.0);
        assert!(s.is_zero() || s.value() == 0.0);
    }

    #[test]
    fn order_independent_to_the_bit() {
        let values = random_values(500, 11);
        let mut forward = ExactSum::new();
        for &v in &values {
            forward.add(v);
        }
        let mut backward = ExactSum::new();
        for &v in values.iter().rev() {
            backward.add(v);
        }
        let mut strided = ExactSum::new();
        for k in 0..7 {
            for v in values.iter().skip(k).step_by(7) {
                strided.add(*v);
            }
        }
        let expect = forward.value();
        assert_eq!(backward.value().to_bits(), expect.to_bits());
        assert_eq!(strided.value().to_bits(), expect.to_bits());
    }

    #[test]
    fn merge_equals_concatenation_for_any_split() {
        let values = random_values(401, 12);
        let mut whole = ExactSum::new();
        for &v in &values {
            whole.add(v);
        }
        for split in [0, 1, 57, 200, 400, 401] {
            let mut a = ExactSum::new();
            for &v in &values[..split] {
                a.add(v);
            }
            let mut b = ExactSum::new();
            for &v in &values[split..] {
                b.add(v);
            }
            a.merge(&b);
            assert_eq!(
                a.value().to_bits(),
                whole.value().to_bits(),
                "split at {split}"
            );
        }
    }

    #[test]
    fn exported_parts_rebuild_an_equivalent_accumulator() {
        let values = random_values(700, 21);
        let mut original = ExactSum::new();
        for &v in &values {
            original.add(v);
        }
        let rebuilt = ExactSum::from_parts(original.parts()).unwrap();
        assert_eq!(rebuilt.value().to_bits(), original.value().to_bits());
        // Continued accumulation stays bit-identical.
        let mut a = original.clone();
        let mut b = rebuilt;
        for &v in values.iter().rev().take(50) {
            a.add(v * 0.5);
            b.add(v * 0.5);
        }
        assert_eq!(a.value().to_bits(), b.value().to_bits());
        assert!(ExactSum::from_parts(&[1.0, f64::NAN]).is_err());
        assert!(ExactSum::from_parts(&[f64::INFINITY]).is_err());
        assert_eq!(ExactSum::from_parts(&[]).unwrap().value(), 0.0);
    }

    #[test]
    fn expansion_stays_small() {
        let values = random_values(10_000, 13);
        let mut s = ExactSum::new();
        for &v in &values {
            s.add(v);
        }
        // The theoretical bound for doubles is ~40 components; typical
        // streams stay far below it. This pins the O(1)-state claim.
        assert!(s.components() <= 40, "{} components", s.components());
    }

    #[test]
    fn value_is_correctly_rounded_against_integer_reference() {
        // Dyadic values exactly representable in i128 fixed point (scale
        // 2^-20): the exact total is computable independently.
        let mut rng = SplitMix64::new(14);
        let mut s = ExactSum::new();
        let mut reference: i128 = 0;
        for _ in 0..5_000 {
            let q: i64 = rng.gen_range(-1_000_000_000..1_000_000_000i64);
            reference += i128::from(q);
            s.add(q as f64 / 1048576.0);
        }
        let expect = reference as f64 / 1048576.0;
        assert_eq!(s.value().to_bits(), expect.to_bits());
    }

    #[test]
    fn add_slice_is_bit_identical_to_serial_adds() {
        // Same final *representation*, not just the same rendered value:
        // the expansion components must match bit for bit so snapshots of
        // bulk-absorbed state equal snapshots of streamed state.
        for seed in [31u64, 32, 33] {
            let values = random_values(777, seed);
            let mut serial = ExactSum::new();
            for &v in &values {
                serial.add(v);
            }
            let mut bulk = ExactSum::new();
            bulk.add_slice(&values);
            assert_eq!(bulk.parts(), serial.parts(), "seed {seed}");
            // Split bulk adds across uneven chunks, starting non-empty.
            let mut chunked = ExactSum::new();
            chunked.add(values[0]);
            chunked.add_slice(&values[1..300]);
            chunked.add_slice(&values[300..301]);
            chunked.add_slice(&[]);
            chunked.add_slice(&values[301..]);
            assert_eq!(chunked.parts(), serial.parts(), "seed {seed}");
        }
    }

    #[test]
    fn add_slice_handles_hostile_payloads() {
        // ±0.0, subnormals, and catastrophic cancellation.
        let values = [
            1e16,
            1.0,
            -0.0,
            f64::MIN_POSITIVE / 8.0,
            -1e16,
            0.0,
            -f64::MIN_POSITIVE / 8.0,
            -1.0,
        ];
        let mut serial = ExactSum::new();
        for &v in &values {
            serial.add(v);
        }
        let mut bulk = ExactSum::new();
        bulk.add_slice(&values);
        assert_eq!(bulk.parts(), serial.parts());
        assert_eq!(bulk.value(), 0.0);
    }

    #[test]
    fn zero_and_clear_behave() {
        let mut s = ExactSum::new();
        assert_eq!(s.value(), 0.0);
        s.add(0.0);
        assert!(s.is_zero());
        s.add(3.5);
        assert_eq!(ExactSum::from(3.5), s);
        s.clear();
        assert_eq!(s.value(), 0.0);
    }
}
