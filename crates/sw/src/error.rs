//! Error type for the Square Wave / EMS crate.

use std::fmt;

/// Errors produced by wave mechanisms and reconstruction algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum SwError {
    /// The privacy parameter ε must be positive and finite.
    InvalidEpsilon(f64),
    /// The wave bandwidth `b` must be positive and finite.
    InvalidBandwidth(f64),
    /// A private value fell outside the input domain `[0, 1]`.
    ValueOutOfDomain(f64),
    /// Some other parameter was invalid (domain sizes, thresholds, …).
    InvalidParameter(String),
    /// Reconstruction could not proceed (e.g. empty report set).
    Reconstruction(String),
}

impl fmt::Display for SwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwError::InvalidEpsilon(eps) => {
                write!(f, "epsilon must be positive and finite, got {eps}")
            }
            SwError::InvalidBandwidth(b) => {
                write!(f, "bandwidth b must be positive and finite, got {b}")
            }
            SwError::ValueOutOfDomain(v) => {
                write!(f, "private value {v} outside the input domain [0, 1]")
            }
            SwError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            SwError::Reconstruction(msg) => write!(f, "reconstruction failed: {msg}"),
        }
    }
}

impl std::error::Error for SwError {}

pub(crate) fn check_epsilon(eps: f64) -> Result<(), SwError> {
    if !(eps > 0.0) || !eps.is_finite() {
        return Err(SwError::InvalidEpsilon(eps));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(SwError::InvalidEpsilon(-2.0).to_string().contains("-2"));
        assert!(SwError::ValueOutOfDomain(1.5).to_string().contains("1.5"));
        assert!(check_epsilon(1.0).is_ok());
        assert!(check_epsilon(-1.0).is_err());
    }
}
