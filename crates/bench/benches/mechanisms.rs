//! Client-side randomizer throughput: how fast each LDP mechanism can
//! perturb reports. These are the per-user costs a deployment pays.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use ldp_cfo::{FrequencyOracle, Grr, Hrr, Olh, Oue};
use ldp_mean::{Pm, Sr};
use ldp_numeric::SplitMix64;
use ldp_sw::{DiscreteSw, SwPipeline};
use std::time::Duration;

fn bench_randomizers(c: &mut Criterion) {
    let mut group = c.benchmark_group("randomize");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));

    let eps = 1.0;
    let sw = SwPipeline::new(eps, 256).unwrap();
    group.bench_function("sw_continuous", |b| {
        let mut rng = SplitMix64::new(1);
        b.iter(|| sw.randomize(black_box(0.37), &mut rng).unwrap())
    });

    let dsw = DiscreteSw::new(256, eps).unwrap();
    group.bench_function("sw_discrete", |b| {
        let mut rng = SplitMix64::new(2);
        b.iter(|| dsw.randomize(black_box(97), &mut rng).unwrap())
    });

    let grr = Grr::new(256, eps).unwrap();
    group.bench_function("grr_d256", |b| {
        let mut rng = SplitMix64::new(3);
        b.iter(|| grr.randomize(black_box(97), &mut rng).unwrap())
    });

    let olh = Olh::new(256, eps).unwrap();
    group.bench_function("olh_d256", |b| {
        let mut rng = SplitMix64::new(4);
        b.iter(|| olh.randomize(black_box(97), &mut rng).unwrap())
    });

    let hrr = Hrr::new(256, eps).unwrap();
    group.bench_function("hrr_d256", |b| {
        let mut rng = SplitMix64::new(5);
        b.iter(|| hrr.randomize(black_box(97), &mut rng).unwrap())
    });

    let oue = Oue::new(256, eps).unwrap();
    group.bench_function("oue_d256", |b| {
        let mut rng = SplitMix64::new(6);
        b.iter(|| oue.randomize(black_box(97), &mut rng).unwrap())
    });

    let pm = Pm::new(eps).unwrap();
    group.bench_function("pm", |b| {
        let mut rng = SplitMix64::new(7);
        b.iter(|| pm.randomize(black_box(-0.3), &mut rng).unwrap())
    });

    let sr = Sr::new(eps).unwrap();
    group.bench_function("sr", |b| {
        let mut rng = SplitMix64::new(8);
        b.iter(|| sr.randomize(black_box(-0.3), &mut rng).unwrap())
    });

    group.finish();
}

fn bench_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregate");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));

    let eps = 1.0;
    let n = 20_000;
    let d = 64;

    let olh = Olh::new(d, eps).unwrap();
    let mut rng = SplitMix64::new(9);
    let olh_reports: Vec<_> = (0..n)
        .map(|i| olh.randomize(i % d, &mut rng).unwrap())
        .collect();
    group.bench_function("olh_support_counting_n20k_d64", |b| {
        b.iter_batched(
            || olh_reports.clone(),
            |r| olh.aggregate(&r),
            BatchSize::LargeInput,
        )
    });

    let hrr = Hrr::new(d, eps).unwrap();
    let hrr_reports: Vec<_> = (0..n)
        .map(|i| hrr.randomize(i % d, &mut rng).unwrap())
        .collect();
    group.bench_function("hrr_fwht_n20k_d64", |b| {
        b.iter_batched(
            || hrr_reports.clone(),
            |r| hrr.aggregate(&r),
            BatchSize::LargeInput,
        )
    });

    let sw = SwPipeline::new(eps, 256).unwrap();
    let sw_reports: Vec<f64> = (0..n)
        .map(|i| sw.randomize((i % 1000) as f64 / 1000.0, &mut rng).unwrap())
        .collect();
    group.bench_function("sw_bucketize_n20k_d256", |b| {
        b.iter(|| sw.aggregate(black_box(&sw_reports)))
    });

    group.finish();
}

criterion_group!(benches, bench_randomizers, bench_aggregation);
criterion_main!(benches);
