//! Vectorized absorb/aggregate kernels with runtime dispatch.
//!
//! Every hot absorption loop in the workspace funnels through this module:
//! the SW band-edge dot products ([`dot4`]), the SW report-bucketing pass
//! ([`first_out_of_range`] + [`bucket_histogram`]), and the OUE bit-count
//! accumulation ([`bitcount_rows`]). Each kernel has
//!
//! - a **scalar reference** implementation — the semantics, always compiled,
//!   always available;
//! - an optional 4–8-lane unrolled / `core::arch` AVX2 variant selected at
//!   runtime behind [`simd_enabled`].
//!
//! The contract, pinned by the workspace `kernel_equivalence` differential
//! suite, is that every variant is **bit-identical** to its scalar
//! reference: integer kernels because `u64`/`i64` addition is exact and
//! commutative, float kernels because the vector lanes replay the exact
//! operation sequence of the blocked scalar loop (IEEE-754 `add`/`mul`/
//! `div` are exactly specified, and Rust performs no float contraction).
//!
//! # Dispatch rules
//!
//! [`simd_enabled`] is computed once per process: it requires `x86_64`,
//! a runtime `is_x86_feature_detected!("avx2")` hit, and the `LDP_NO_SIMD`
//! environment variable to be unset (or `0`/empty). Setting `LDP_NO_SIMD=1`
//! forces every kernel onto its scalar reference — CI runs the whole test
//! suite in both configurations. Non-x86 targets always take the scalar
//! path; there is no compile-time feature gate to misconfigure.
//!
//! This module contains the only `unsafe` code outside `ldp-pool`; every
//! `unsafe` block is a `#[target_feature(enable = "avx2")]` intrinsic
//! routine reached strictly behind the runtime detection check.

use std::sync::OnceLock;

/// Environment variable that forces every kernel onto its scalar
/// reference path when set to anything but `0` or the empty string.
pub const NO_SIMD_ENV: &str = "LDP_NO_SIMD";

/// Whether the SIMD kernel variants are active in this process: `x86_64`
/// with AVX2 detected at runtime and [`NO_SIMD_ENV`] not set. Computed
/// once and cached; the per-call cost is one atomic load.
#[must_use]
pub fn simd_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        let forced_off = std::env::var(NO_SIMD_ENV)
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false);
        if forced_off {
            return false;
        }
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("avx2")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

// ---------------------------------------------------------------------------
// Blocked dot product (SW band edges)
// ---------------------------------------------------------------------------

/// The scalar reference for [`dot4`]: four independent accumulators over
/// 4-element blocks, reduced as `(a0 + a1) + (a2 + a3) + rest`. Public so
/// the differential suite can pin the SIMD variant against it.
#[must_use]
pub fn dot4_scalar(entries: &[f64], window: &[f64]) -> f64 {
    debug_assert_eq!(entries.len(), window.len());
    let mut acc = [0.0f64; 4];
    let mut entry_blocks = entries.chunks_exact(4);
    let mut window_blocks = window.chunks_exact(4);
    for (e, w) in (&mut entry_blocks).zip(&mut window_blocks) {
        acc[0] += e[0] * w[0];
        acc[1] += e[1] * w[1];
        acc[2] += e[2] * w[2];
        acc[3] += e[3] * w[3];
    }
    let mut rest = 0.0;
    for (e, w) in entry_blocks
        .remainder()
        .iter()
        .zip(window_blocks.remainder())
    {
        rest += e * w;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + rest
}

/// Dot product of two equal-length slices through four independent
/// accumulators — the kernel behind the SW banded operator's explicit
/// band edges. The AVX2 variant keeps one accumulator per vector lane and
/// reduces in the same order as [`dot4_scalar`], so the two are
/// bit-identical on every input.
#[must_use]
#[allow(unsafe_code)] // runtime-dispatched AVX2 call sites
pub fn dot4(entries: &[f64], window: &[f64]) -> f64 {
    debug_assert_eq!(entries.len(), window.len());
    #[cfg(target_arch = "x86_64")]
    if simd_enabled() && entries.len() >= 8 {
        // SAFETY: simd_enabled() verified AVX2 support at runtime.
        return unsafe { avx2::dot4_avx2(entries, window) };
    }
    dot4_scalar(entries, window)
}

// ---------------------------------------------------------------------------
// Range validation + bucket histogram (SW report absorption)
// ---------------------------------------------------------------------------

/// The scalar reference for [`first_out_of_range`].
#[must_use]
pub fn first_out_of_range_scalar(values: &[f64], lo: f64, hi: f64) -> Option<usize> {
    values.iter().position(|&v| !(v >= lo && v <= hi))
}

/// Index of the first value outside `[lo, hi]`, where NaN (which fails
/// every ordered comparison) and infinities count as outside for finite
/// bounds — exactly the SW aggregator's domain check. The AVX2 variant
/// tests four lanes per step with ordered-quiet compares and rescans the
/// offending block serially, so the reported index matches the scalar
/// reference exactly.
#[must_use]
#[allow(unsafe_code)] // runtime-dispatched AVX2 call sites
pub fn first_out_of_range(values: &[f64], lo: f64, hi: f64) -> Option<usize> {
    #[cfg(target_arch = "x86_64")]
    if simd_enabled() {
        // SAFETY: simd_enabled() verified AVX2 support at runtime.
        return unsafe { avx2::first_out_of_range_avx2(values, lo, hi) };
    }
    first_out_of_range_scalar(values, lo, hi)
}

/// The scalar reference for [`bucket_histogram`].
pub fn bucket_histogram_scalar(counts: &mut [u64], values: &[f64], lo: f64, hi: f64) {
    let d = counts.len();
    for &v in values {
        let pos = ((v - lo) / (hi - lo) * d as f64) as isize;
        let idx = pos.clamp(0, d as isize - 1) as usize;
        counts[idx] += 1;
    }
}

/// Buckets each value into `counts` via
/// `clamp(trunc((v - lo) / (hi - lo) * d), 0, d - 1)` — the SW report
/// histogram pass. Callers must validate the slice with
/// [`first_out_of_range`] first (the SW aggregator does); values must be
/// finite. The AVX2 variant performs the identical `sub`/`div`/`mul`
/// sequence per lane and truncates with `cvttpd` (round-toward-zero, the
/// same rounding as `as isize` for in-range values), so the two paths are
/// bit-identical on validated input.
#[allow(unsafe_code)] // runtime-dispatched AVX2 call sites
pub fn bucket_histogram(counts: &mut [u64], values: &[f64], lo: f64, hi: f64) {
    #[cfg(target_arch = "x86_64")]
    if simd_enabled() && !counts.is_empty() && counts.len() <= i32::MAX as usize {
        // SAFETY: simd_enabled() verified AVX2 support at runtime.
        unsafe { avx2::bucket_histogram_avx2(counts, values, lo, hi) };
        return;
    }
    bucket_histogram_scalar(counts, values, lo, hi);
}

// ---------------------------------------------------------------------------
// Bit-count accumulation (OUE absorption)
// ---------------------------------------------------------------------------

/// The scalar reference for [`bitcount_rows`]: one row at a time, a
/// `trailing_zeros` sparse walk over each word, ignoring stray bits at
/// index ≥ `counts.len()` (the legacy OUE `add_counts` semantics).
pub fn bitcount_rows_scalar<'a, I>(counts: &mut [u64], rows: I)
where
    I: IntoIterator<Item = &'a [u64]>,
{
    for row in rows {
        bitcount_row(counts, row);
    }
}

/// One sparse row accumulation — shared tail path of [`bitcount_rows`].
fn bitcount_row(counts: &mut [u64], row: &[u64]) {
    let d = counts.len();
    for (w, &word) in row.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            let idx = w * 64 + bits.trailing_zeros() as usize;
            if idx < d {
                counts[idx] += 1;
            }
            bits &= bits - 1;
        }
    }
}

/// Carry-save full adder over three bit rows: returns `(sum, carry)` with
/// `a + b + c = sum + 2·carry` per bit position.
#[inline]
fn csa(a: u64, b: u64, c: u64) -> (u64, u64) {
    let u = a ^ b;
    (u ^ c, (a & b) | (u & c))
}

/// Accumulates many packed bit rows into per-position counts — the OUE
/// absorption kernel. Rows are processed in blocks of 7 through a
/// carry-save adder tree (7 rows fit a 3-bit per-position counter), so
/// each word of a full block costs ~20 bitwise ops plus one extraction
/// sweep instead of 7 sparse walks; leftover rows take the sparse
/// reference path. Every row must span `counts.len().div_ceil(64)` words;
/// bits at positions ≥ `counts.len()` in the final word are ignored,
/// matching the scalar reference. Counts are exact `u64` additions, so
/// the blocked order is bit-identical to row-at-a-time accumulation.
pub fn bitcount_rows<'a, I>(counts: &mut [u64], rows: I)
where
    I: IntoIterator<Item = &'a [u64]>,
{
    let mut block: [&[u64]; 7] = [&[]; 7];
    let mut fill = 0;
    for row in rows {
        debug_assert_eq!(row.len(), counts.len().div_ceil(64));
        block[fill] = row;
        fill += 1;
        if fill == block.len() {
            bitcount_block7(counts, &block);
            fill = 0;
        }
    }
    for row in &block[..fill] {
        bitcount_row(counts, row);
    }
}

/// One full 7-row carry-save block of [`bitcount_rows`].
#[allow(unsafe_code)] // runtime-dispatched AVX2 call sites
fn bitcount_block7(counts: &mut [u64], rows: &[&[u64]; 7]) {
    let d = counts.len();
    let words = d.div_ceil(64);
    #[cfg(target_arch = "x86_64")]
    let simd = simd_enabled();
    // Seven parallel rows indexed in lockstep; a 7-way zip would obscure
    // the carry-save structure.
    #[allow(clippy::needless_range_loop)]
    for w in 0..words {
        let (s1, c1) = csa(rows[0][w], rows[1][w], rows[2][w]);
        let (s2, c2) = csa(rows[3][w], rows[4][w], rows[5][w]);
        let (ones, c3) = csa(s1, s2, rows[6][w]);
        let (twos, fours) = csa(c1, c2, c3);
        let base = w * 64;
        let top = 64.min(d - base);
        // Mask stray bits beyond the domain in the final word so hostile
        // payloads count exactly like the scalar reference's idx guard.
        let keep = if top == 64 { !0u64 } else { (1u64 << top) - 1 };
        let (ones, twos, fours) = (ones & keep, twos & keep, fours & keep);
        if ones | twos | fours == 0 {
            continue;
        }
        let dst = &mut counts[base..base + top];
        #[cfg(target_arch = "x86_64")]
        if simd {
            // SAFETY: simd_enabled() verified AVX2 support at runtime.
            unsafe { avx2::extract_counter_bits_avx2(dst, ones, twos, fours) };
            continue;
        }
        extract_counter_bits(dst, ones, twos, fours);
    }
}

/// Unpacks a 3-bit-per-position carry-save counter into `u64` counts —
/// the extraction sweep of [`bitcount_block7`] (scalar variant).
fn extract_counter_bits(dst: &mut [u64], ones: u64, twos: u64, fours: u64) {
    for (i, c) in dst.iter_mut().enumerate() {
        *c += ((ones >> i) & 1) + (((twos >> i) & 1) << 1) + (((fours >> i) & 1) << 2);
    }
}

// ---------------------------------------------------------------------------
// AVX2 variants (runtime-dispatched; the module's only unsafe code)
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod avx2 {
    use core::arch::x86_64::*;

    /// # Safety
    /// Caller must have verified AVX2 support (via `simd_enabled`).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot4_avx2(entries: &[f64], window: &[f64]) -> f64 {
        let n = entries.len();
        let blocks = n / 4;
        let e = entries.as_ptr();
        let w = window.as_ptr();
        let mut acc = _mm256_setzero_pd();
        for i in 0..blocks {
            // SAFETY: 4*i + 3 < n by the blocks bound; loads are unaligned.
            let ev = unsafe { _mm256_loadu_pd(e.add(4 * i)) };
            let wv = unsafe { _mm256_loadu_pd(w.add(4 * i)) };
            // Lane j replays exactly the scalar acc[j] += e*w sequence.
            acc = _mm256_add_pd(acc, _mm256_mul_pd(ev, wv));
        }
        let mut lanes = [0.0f64; 4];
        // SAFETY: lanes is 4 f64s; storeu has no alignment requirement.
        unsafe { _mm256_storeu_pd(lanes.as_mut_ptr(), acc) };
        let mut rest = 0.0;
        for i in blocks * 4..n {
            rest += entries[i] * window[i];
        }
        (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + rest
    }

    /// # Safety
    /// Caller must have verified AVX2 support (via `simd_enabled`).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn first_out_of_range_avx2(
        values: &[f64],
        lo: f64,
        hi: f64,
    ) -> Option<usize> {
        let n = values.len();
        let blocks = n / 4;
        let p = values.as_ptr();
        let lo_v = _mm256_set1_pd(lo);
        let hi_v = _mm256_set1_pd(hi);
        for b in 0..blocks {
            // SAFETY: 4*b + 3 < n by the blocks bound.
            let v = unsafe { _mm256_loadu_pd(p.add(4 * b)) };
            // Ordered-quiet compares: NaN lanes fail both, like `!(v >= lo)`.
            let ge = _mm256_cmp_pd::<_CMP_GE_OQ>(v, lo_v);
            let le = _mm256_cmp_pd::<_CMP_LE_OQ>(v, hi_v);
            let ok = _mm256_movemask_pd(_mm256_and_pd(ge, le));
            if ok != 0xF {
                // Serial rescan of the block for the exact first index.
                for (i, &x) in values[4 * b..4 * b + 4].iter().enumerate() {
                    if !(x >= lo && x <= hi) {
                        return Some(4 * b + i);
                    }
                }
            }
        }
        for (i, &x) in values[blocks * 4..].iter().enumerate() {
            if !(x >= lo && x <= hi) {
                return Some(blocks * 4 + i);
            }
        }
        None
    }

    /// # Safety
    /// Caller must have verified AVX2 support; `counts` must be non-empty
    /// with `counts.len() <= i32::MAX`, and `values` pre-validated to lie
    /// in the (tolerated) `[lo, hi]` domain so every scaled position fits
    /// the `i32` truncation.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn bucket_histogram_avx2(
        counts: &mut [u64],
        values: &[f64],
        lo: f64,
        hi: f64,
    ) {
        let d = counts.len();
        let n = values.len();
        let blocks = n / 4;
        let p = values.as_ptr();
        let lo_v = _mm256_set1_pd(lo);
        let span_v = _mm256_set1_pd(hi - lo);
        let d_v = _mm256_set1_pd(d as f64);
        let zero = _mm_setzero_si128();
        let max_v = _mm_set1_epi32(d as i32 - 1);
        for b in 0..blocks {
            // SAFETY: 4*b + 3 < n by the blocks bound.
            let v = unsafe { _mm256_loadu_pd(p.add(4 * b)) };
            // Identical op sequence to the scalar reference: sub, div, mul
            // (all IEEE-exact), then round-toward-zero truncation.
            let pos = _mm256_mul_pd(_mm256_div_pd(_mm256_sub_pd(v, lo_v), span_v), d_v);
            let idx = _mm256_cvttpd_epi32(pos);
            let idx = _mm_min_epi32(_mm_max_epi32(idx, zero), max_v);
            let mut out = [0i32; 4];
            // SAFETY: out is 16 bytes; storeu has no alignment requirement.
            unsafe { _mm_storeu_si128(out.as_mut_ptr().cast(), idx) };
            counts[out[0] as usize] += 1;
            counts[out[1] as usize] += 1;
            counts[out[2] as usize] += 1;
            counts[out[3] as usize] += 1;
        }
        super::bucket_histogram_scalar(counts, &values[blocks * 4..], lo, hi);
    }

    /// # Safety
    /// Caller must have verified AVX2 support; `dst.len() <= 64`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn extract_counter_bits_avx2(
        dst: &mut [u64],
        ones: u64,
        twos: u64,
        fours: u64,
    ) {
        let top = dst.len();
        let lane_offsets = _mm256_set_epi64x(3, 2, 1, 0);
        let one = _mm256_set1_epi64x(1);
        let ones_v = _mm256_set1_epi64x(ones as i64);
        let twos_v = _mm256_set1_epi64x(twos as i64);
        let fours_v = _mm256_set1_epi64x(fours as i64);
        let mut i = 0;
        while i + 4 <= top {
            let sh = _mm256_add_epi64(lane_offsets, _mm256_set1_epi64x(i as i64));
            let o = _mm256_and_si256(_mm256_srlv_epi64(ones_v, sh), one);
            let t = _mm256_and_si256(_mm256_srlv_epi64(twos_v, sh), one);
            let f = _mm256_and_si256(_mm256_srlv_epi64(fours_v, sh), one);
            let add = _mm256_add_epi64(
                o,
                _mm256_add_epi64(_mm256_slli_epi64(t, 1), _mm256_slli_epi64(f, 2)),
            );
            let ptr = dst.as_mut_ptr().wrapping_add(i).cast::<__m256i>();
            // SAFETY: i + 3 < top, so the 4-lane load/store stays in dst.
            let cur = unsafe { _mm256_loadu_si256(ptr) };
            unsafe { _mm256_storeu_si256(ptr, _mm256_add_epi64(cur, add)) };
            i += 4;
        }
        for (j, c) in dst.iter_mut().enumerate().skip(i) {
            *c += ((ones >> j) & 1) + (((twos >> j) & 1) << 1) + (((fours >> j) & 1) << 2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;
    use rand::Rng;

    #[test]
    fn dot4_matches_scalar_reference() {
        let mut rng = SplitMix64::new(71);
        for n in [0usize, 1, 3, 4, 7, 8, 9, 15, 16, 64, 257] {
            let a: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() - 0.5).collect();
            let b: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 3.0).collect();
            assert_eq!(
                dot4(&a, &b).to_bits(),
                dot4_scalar(&a, &b).to_bits(),
                "n = {n}"
            );
        }
    }

    #[test]
    fn range_check_matches_scalar_reference_and_rejects_nan() {
        let vals = [0.1, 0.5, f64::NAN, 0.7];
        assert_eq!(first_out_of_range(&vals, 0.0, 1.0), Some(2));
        assert_eq!(first_out_of_range_scalar(&vals, 0.0, 1.0), Some(2));
        let vals = [0.1, -0.5];
        assert_eq!(first_out_of_range(&vals, 0.0, 1.0), Some(1));
        assert_eq!(first_out_of_range(&[0.0, 1.0], 0.0, 1.0), None);
        assert_eq!(first_out_of_range(&[], 0.0, 1.0), None);
    }

    #[test]
    fn bucket_histogram_matches_scalar_reference() {
        let mut rng = SplitMix64::new(72);
        for d in [1usize, 2, 7, 64, 257] {
            let vals: Vec<f64> = (0..501).map(|_| rng.gen::<f64>() * 1.5 - 0.25).collect();
            let mut a = vec![0u64; d];
            let mut b = vec![0u64; d];
            bucket_histogram(&mut a, &vals, -0.25, 1.25);
            bucket_histogram_scalar(&mut b, &vals, -0.25, 1.25);
            assert_eq!(a, b, "d = {d}");
        }
    }

    #[test]
    fn bitcount_matches_scalar_reference_with_stray_tail_bits() {
        let mut rng = SplitMix64::new(73);
        for d in [1usize, 2, 7, 64, 65, 257] {
            let words = d.div_ceil(64);
            for n_rows in [0usize, 1, 6, 7, 8, 20] {
                let rows: Vec<Vec<u64>> = (0..n_rows)
                    .map(|_| (0..words).map(|_| rng.gen::<u64>()).collect())
                    .collect();
                let mut a = vec![0u64; d];
                let mut b = vec![0u64; d];
                bitcount_rows(&mut a, rows.iter().map(Vec::as_slice));
                bitcount_rows_scalar(&mut b, rows.iter().map(Vec::as_slice));
                assert_eq!(a, b, "d = {d}, rows = {n_rows}");
            }
        }
    }

    #[test]
    fn simd_flag_is_cached_and_consistent() {
        assert_eq!(simd_enabled(), simd_enabled());
    }
}
