//! Deterministic fault injection for the serve path.
//!
//! Failure is the default-handled case on the serve path, and the only way
//! to keep that true is to *schedule* failures in tests and drills instead
//! of hoping for them. This module provides named **failpoints** at the
//! seams where real deployments break — frame reads, decodes, commit-queue
//! pushes, ack writes, and the snapshot tmp-write/rename pair — and a tiny
//! schedule grammar for arming them:
//!
//! ```text
//! LDP_FAULTS = entry ("," entry)*
//! entry      = point "=" action ["@" nth]
//! point      = frame-read | decode | commit-push | ack-write
//!            | snap-write | snap-rename | absorb | admission | ack-evict
//!            | accept
//! action     = err | exit | panic | torn | stall:<millis>
//! nth        = 1-based hit count at which the fault fires (default 1)
//! ```
//!
//! Examples: `ack-write=exit@5` crashes the process (exit code
//! [`FAULT_EXIT_CODE`]) the fifth time any success ack is about to be
//! written — *after* the absorber committed, the canonical double-count
//! hazard; `snap-write=torn@2` tears the second snapshot tmp-file write in
//! half and fails it.
//!
//! Each armed entry fires exactly once, at its scheduled hit; the same
//! point may be armed at several hit counts. The schedule is installed
//! from the `LDP_FAULTS` environment variable at binary startup
//! ([`install_from_env`]) or programmatically ([`install`]); when nothing
//! is armed, every failpoint is a single relaxed atomic load —
//! effectively zero-cost, and the default build behaves identically to
//! one without this module.
//!
//! The chaos suite (`tests/chaos.rs`) and the kill-and-retry drill in
//! `docs/OPERATIONS.md` are the two consumers.

use crate::error::CollectorError;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Exit code of a `exit`-action fault — distinguishable from both clean
/// exits and ordinary failures (`1`) so drills can assert the crash they
/// scheduled is the crash they got.
pub const FAULT_EXIT_CODE: i32 = 42;

/// Every failpoint name the serve path defines.
///
/// `absorb` sits in the absorber stage immediately before a batch is
/// committed (the supervisor's test seam); `admission` fires in the
/// acceptor as a connection is about to be admitted (forcing a busy-shed
/// of an otherwise-admittable peer); `ack-evict` fires as a success ack is
/// about to be written and simulates a slow-consumer ack-deadline expiry
/// (the connection is evicted instead of acked); `accept` fires inside
/// the accept loop itself and simulates the listener's own syscall
/// failing (the `EMFILE`/`ENFILE` fd-exhaustion path — the serve loop
/// must back off and keep listening, not crash).
pub const FAULT_POINTS: &[&str] = &[
    "frame-read",
    "decode",
    "commit-push",
    "ack-write",
    "snap-write",
    "snap-rename",
    "absorb",
    "admission",
    "ack-evict",
    "accept",
];

/// What an armed fault does when it fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// The failpoint reports an injected error to its caller.
    Err,
    /// The process exits immediately with [`FAULT_EXIT_CODE`] — a
    /// deterministic crash (nothing after the failpoint runs: no ack, no
    /// fsync, no rename).
    Exit,
    /// The failpoint panics the calling thread — a *bug*, not a clean
    /// error. This is how the supervisor drill deliberately kills a
    /// pipeline stage (`absorb=panic`, `snap-write=panic`) to prove the
    /// serve path contains panics instead of wedging.
    Panic,
    /// The operation is *torn*: only a prefix of the bytes is written
    /// before the failpoint reports an error. Only meaningful at
    /// `snap-write`.
    Torn,
    /// The failpoint blocks for this many milliseconds, then continues
    /// normally — a stalled disk or peer, not a failure.
    Stall(u64),
}

/// What a firing failpoint asks its caller to do ([`FaultAction::Exit`]
/// and [`FaultAction::Stall`] are handled inside [`hit`] and never reach
/// the caller).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Injected {
    /// Fail the operation with [`error`].
    Err,
    /// Write a torn prefix, then fail the operation.
    Torn,
}

#[derive(Debug, Clone)]
struct Armed {
    point: String,
    action: FaultAction,
    nth: u64,
    fired: bool,
}

#[derive(Debug, Default)]
struct Schedule {
    armed: Vec<Armed>,
    hits: BTreeMap<String, u64>,
}

/// Fast-path gate: failpoints are a single relaxed load when disarmed.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Total faults fired since process start (cumulative; callers diff it).
static INJECTED: AtomicU64 = AtomicU64::new(0);
static SCHEDULE: Mutex<Option<Schedule>> = Mutex::new(None);

/// Parses a fault schedule (the `LDP_FAULTS` grammar in the module docs).
pub fn parse(spec: &str) -> Result<Vec<(String, FaultAction, u64)>, CollectorError> {
    let bad = |msg: String| CollectorError::Spec(format!("invalid fault schedule: {msg}"));
    let mut out = Vec::new();
    for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
        let (point, rest) = entry
            .split_once('=')
            .ok_or_else(|| bad(format!("entry {entry:?} is not point=action")))?;
        if !FAULT_POINTS.contains(&point) {
            return Err(bad(format!(
                "unknown failpoint {point:?} (valid: {})",
                FAULT_POINTS.join(", ")
            )));
        }
        let (action_str, nth) = match rest.split_once('@') {
            Some((a, n)) => (
                a,
                n.parse::<u64>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| bad(format!("hit count {n:?} must be a positive integer")))?,
            ),
            None => (rest, 1),
        };
        let action = match action_str {
            "err" => FaultAction::Err,
            "exit" => FaultAction::Exit,
            "panic" => FaultAction::Panic,
            "torn" => FaultAction::Torn,
            other => match other.strip_prefix("stall:") {
                Some(ms) => FaultAction::Stall(ms.parse().map_err(|_| {
                    bad(format!("stall duration {ms:?} is not a millisecond count"))
                })?),
                None => return Err(bad(format!("unknown action {other:?}"))),
            },
        };
        if action == FaultAction::Torn && point != "snap-write" {
            return Err(bad(format!(
                "action torn is only meaningful at snap-write, not {point:?}"
            )));
        }
        out.push((point.to_string(), action, nth));
    }
    Ok(out)
}

/// Arms the fault schedule `spec`, replacing any previous schedule (an
/// empty spec disarms everything, like [`clear`]). Hit counters restart
/// from zero.
pub fn install(spec: &str) -> Result<(), CollectorError> {
    let entries = parse(spec)?;
    let mut guard = SCHEDULE.lock().expect("fault schedule lock");
    if entries.is_empty() {
        *guard = None;
        ENABLED.store(false, Ordering::SeqCst);
        return Ok(());
    }
    *guard = Some(Schedule {
        armed: entries
            .into_iter()
            .map(|(point, action, nth)| Armed {
                point,
                action,
                nth,
                fired: false,
            })
            .collect(),
        hits: BTreeMap::new(),
    });
    ENABLED.store(true, Ordering::SeqCst);
    Ok(())
}

/// Arms the schedule in the `LDP_FAULTS` environment variable, if set —
/// called once from binary startup so operator drills and CI chaos lanes
/// can schedule faults without touching code.
pub fn install_from_env() -> Result<(), CollectorError> {
    match std::env::var("LDP_FAULTS") {
        Ok(spec) => install(&spec),
        Err(_) => Ok(()),
    }
}

/// Disarms every fault and resets the hit counters.
pub fn clear() {
    ENABLED.store(false, Ordering::SeqCst);
    *SCHEDULE.lock().expect("fault schedule lock") = None;
}

/// Total faults fired since process start (cumulative across schedules —
/// diff two readings to count one serve call's injections).
#[must_use]
pub fn injected() -> u64 {
    INJECTED.load(Ordering::SeqCst)
}

/// The error a failpoint reports when its fault fires with
/// [`FaultAction::Err`] (or tears a write).
#[must_use]
pub fn error(point: &str) -> CollectorError {
    CollectorError::Fault(format!("failpoint {point}"))
}

/// The failpoint itself: every instrumented seam calls this with its
/// name. Returns `None` (and does nothing) unless a schedule armed this
/// point at exactly this hit count. `Stall` sleeps here and returns
/// `None`; `Exit` terminates the process here; `Err`/`Torn` are returned
/// for the caller to act on.
pub fn hit(point: &str) -> Option<Injected> {
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    fire(point)
}

#[cold]
fn fire(point: &str) -> Option<Injected> {
    let action = {
        let mut guard = SCHEDULE.lock().expect("fault schedule lock");
        let schedule = guard.as_mut()?;
        let count = schedule.hits.entry(point.to_string()).or_insert(0);
        *count += 1;
        let count = *count;
        let armed = schedule
            .armed
            .iter_mut()
            .find(|a| !a.fired && a.point == point && a.nth == count)?;
        armed.fired = true;
        armed.action.clone()
    };
    INJECTED.fetch_add(1, Ordering::SeqCst);
    match action {
        FaultAction::Err => Some(Injected::Err),
        FaultAction::Torn => Some(Injected::Torn),
        FaultAction::Stall(ms) => {
            std::thread::sleep(Duration::from_millis(ms));
            None
        }
        FaultAction::Exit => {
            eprintln!(
                "ldp-collector: injected crash at failpoint {point} (exit {FAULT_EXIT_CODE})"
            );
            std::process::exit(FAULT_EXIT_CODE);
        }
        FaultAction::Panic => {
            panic!("injected panic at failpoint {point} (LDP_FAULTS)");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fault state is process-global; tests that arm it must not overlap.
    /// Shared with `tests/chaos.rs` conceptually — inside this crate the
    /// unit tests serialize on this mutex.
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn grammar_round_trips() {
        let entries = parse("ack-write=exit@5, snap-write=torn@2,frame-read=err").unwrap();
        assert_eq!(
            entries,
            vec![
                ("ack-write".into(), FaultAction::Exit, 5),
                ("snap-write".into(), FaultAction::Torn, 2),
                ("frame-read".into(), FaultAction::Err, 1),
            ]
        );
        assert_eq!(
            parse("decode=stall:250").unwrap(),
            vec![("decode".into(), FaultAction::Stall(250), 1)]
        );
        assert_eq!(
            parse("absorb=panic@2,admission=err,ack-evict=err@3").unwrap(),
            vec![
                ("absorb".into(), FaultAction::Panic, 2),
                ("admission".into(), FaultAction::Err, 1),
                ("ack-evict".into(), FaultAction::Err, 3),
            ]
        );
        assert!(parse("").unwrap().is_empty());
    }

    #[test]
    fn panic_action_panics_the_calling_thread() {
        let _serial = SERIAL.lock().unwrap();
        install("absorb=panic").unwrap();
        let result = std::panic::catch_unwind(|| hit("absorb"));
        clear();
        let message = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(message.contains("injected panic at failpoint absorb"));
    }

    #[test]
    fn grammar_rejects_nonsense() {
        assert!(parse("bogus-point=err").is_err());
        assert!(parse("decode").is_err());
        assert!(parse("decode=fry").is_err());
        assert!(parse("decode=err@0").is_err());
        assert!(parse("decode=err@x").is_err());
        assert!(parse("decode=stall:soon").is_err());
        // torn outside snap-write is meaningless.
        assert!(parse("ack-write=torn").is_err());
    }

    #[test]
    fn faults_fire_at_the_scheduled_hit_and_only_once() {
        let _serial = SERIAL.lock().unwrap();
        install("decode=err@3").unwrap();
        let before = injected();
        assert_eq!(hit("decode"), None);
        assert_eq!(hit("decode"), None);
        assert_eq!(hit("decode"), Some(Injected::Err));
        assert_eq!(hit("decode"), None, "a fault fires exactly once");
        assert_eq!(hit("frame-read"), None, "other points stay clean");
        assert_eq!(injected() - before, 1);
        clear();
        assert_eq!(hit("decode"), None);
    }

    #[test]
    fn stall_sleeps_then_continues() {
        let _serial = SERIAL.lock().unwrap();
        install("frame-read=stall:50").unwrap();
        let started = std::time::Instant::now();
        assert_eq!(hit("frame-read"), None);
        assert!(started.elapsed() >= Duration::from_millis(45));
        clear();
    }

    #[test]
    fn disarmed_failpoints_do_nothing() {
        let _serial = SERIAL.lock().unwrap();
        clear();
        for point in FAULT_POINTS {
            assert_eq!(hit(point), None);
        }
    }
}
