//! Optimized Unary Encoding (OUE, Wang et al., USENIX Security 2017).
//!
//! Included as an extension beyond the paper's direct comparisons: OUE
//! matches OLH's variance `4eᵉ/((eᵉ-1)²n)` while avoiding the O(n·d)
//! aggregation cost, at the price of d bits of communication per user. The
//! report is a bit vector where the true position keeps its 1 with
//! probability ½ and every other position flips on with probability
//! `1/(eᵉ+1)`.

use crate::error::CfoError;
use crate::oracle::{check_value, FrequencyOracle};
use ldp_core::{Domain, Epsilon};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One OUE report: a packed bit vector over the domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OueReport {
    bits: Vec<u64>,
    len: usize,
}

impl OueReport {
    /// Reassembles a report from its packed words (the wire format);
    /// rejects word counts that do not match `len` or stray bits beyond it.
    pub fn from_words(bits: Vec<u64>, len: usize) -> Result<Self, CfoError> {
        if bits.len() != len.div_ceil(64) {
            return Err(CfoError::InvalidParameter(format!(
                "OUE report needs {} words for {len} bits, got {}",
                len.div_ceil(64),
                bits.len()
            )));
        }
        if !len.is_multiple_of(64) {
            let last = bits[bits.len() - 1];
            if last >> (len % 64) != 0 {
                return Err(CfoError::InvalidParameter(
                    "OUE report has bits set beyond its length".into(),
                ));
            }
        }
        Ok(OueReport { bits, len })
    }

    /// Number of bits (the domain size).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the report has zero bits (never true for a valid domain).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The packed 64-bit words backing the report.
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Whether bit `i` is set.
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.bits[i / 64] >> (i % 64) & 1 == 1
    }
}

/// The OUE frequency oracle.
#[derive(Debug, Clone)]
pub struct Oue {
    d: usize,
    eps: f64,
    /// P(report 1 | true position) = 1/2.
    p: f64,
    /// P(report 1 | other position) = 1/(e^eps + 1).
    q: f64,
}

impl Oue {
    /// Creates an OUE oracle over domain size `d`.
    pub fn new(d: usize, eps: f64) -> Result<Self, CfoError> {
        Domain::new(d)?;
        Epsilon::new(eps)?;
        Ok(Oue {
            d,
            eps,
            p: 0.5,
            q: 1.0 / (eps.exp() + 1.0),
        })
    }

    /// The closed-form per-estimate variance for `n` users.
    #[must_use]
    pub fn theoretical_variance(eps: f64, n: usize) -> f64 {
        let e = eps.exp();
        4.0 * e / ((e - 1.0) * (e - 1.0) * n as f64)
    }

    /// Adds one report's set bits to per-position counts; shared by both
    /// aggregation paths.
    pub(crate) fn add_counts(&self, counts: &mut [u64], report: &OueReport) {
        for (w, &word) in report.bits.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let tz = bits.trailing_zeros() as usize;
                let idx = w * 64 + tz;
                if idx < self.d {
                    counts[idx] += 1;
                }
                bits &= bits - 1;
            }
        }
    }

    /// Debiases per-position counts into frequency estimates; shared by
    /// both aggregation paths so they are bit-identical.
    pub(crate) fn estimate_from_counts(&self, counts: &[u64], n: u64) -> Vec<f64> {
        if n == 0 {
            return vec![0.0; self.d];
        }
        let nf = n as f64;
        counts
            .iter()
            .map(|&c| (c as f64 / nf - self.q) / (self.p - self.q))
            .collect()
    }
}

impl FrequencyOracle for Oue {
    type Report = OueReport;

    fn domain_size(&self) -> usize {
        self.d
    }

    fn epsilon(&self) -> f64 {
        self.eps
    }

    fn randomize<R: Rng + ?Sized>(&self, value: usize, rng: &mut R) -> Result<OueReport, CfoError> {
        check_value(value, self.d)?;
        let mut report = OueReport {
            bits: vec![0u64; self.d.div_ceil(64)],
            len: self.d,
        };
        // One unit draw per position, filled a packed word at a time so
        // batched generators (SplitMix64's counter-based fill) amortize the
        // stream. The draw order — and therefore the report — is identical
        // to a per-position `gen::<f64>() < keep_prob` loop.
        let mut draws = [0.0f64; 64];
        for (w, word) in report.bits.iter_mut().enumerate() {
            let base = w * 64;
            let n = (self.d - base).min(64);
            let draws = &mut draws[..n];
            rng.fill_unit_f64s(draws);
            let mut bits = 0u64;
            for (i, &u) in draws.iter().enumerate() {
                let keep_prob = if base + i == value { self.p } else { self.q };
                if u < keep_prob {
                    bits |= 1 << i;
                }
            }
            *word = bits;
        }
        Ok(report)
    }

    fn aggregate(&self, reports: &[OueReport]) -> Vec<f64> {
        let mut counts = vec![0u64; self.d];
        for r in reports {
            self.add_counts(&mut counts, r);
        }
        self.estimate_from_counts(&counts, reports.len() as u64)
    }

    fn estimate_variance(&self, n: usize) -> f64 {
        Self::theoretical_variance(self.eps, n.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_numeric::SplitMix64;

    #[test]
    fn construction_validates() {
        assert!(Oue::new(1, 1.0).is_err());
        assert!(Oue::new(4, f64::NAN).is_err());
        assert!(Oue::new(4, 1.0).is_ok());
    }

    #[test]
    fn report_bit_packing_roundtrips() {
        let o = Oue::new(130, 20.0).unwrap();
        let mut rng = SplitMix64::new(31);
        // At eps=20 q ~ 0, p = 1/2: only the true bit can realistically be
        // set across the word boundary at index 129.
        let mut saw_set = false;
        for _ in 0..64 {
            let r = o.randomize(129, &mut rng).unwrap();
            for i in 0..129 {
                assert!(!r.get(i), "spurious bit {i}");
            }
            saw_set |= r.get(129);
        }
        assert!(saw_set);
    }

    #[test]
    fn randomize_matches_the_scalar_draw_loop() {
        // The word-at-a-time batched randomizer must replay the scalar
        // per-position `gen::<f64>() < keep_prob` loop exactly: same bits,
        // same generator state afterwards.
        for d in [2usize, 7, 63, 64, 65, 130, 257] {
            let o = Oue::new(d, 1.0).unwrap();
            let value = d / 2;
            let mut rng = SplitMix64::new(9000 + d as u64);
            let r = o.randomize(value, &mut rng).unwrap();

            let mut reference = SplitMix64::new(9000 + d as u64);
            let q = 1.0 / (1.0f64.exp() + 1.0);
            for i in 0..d {
                let keep_prob = if i == value { 0.5 } else { q };
                let bit = reference.gen::<f64>() < keep_prob;
                assert_eq!(r.get(i), bit, "d = {d}, bit {i}");
            }
            assert_eq!(rng, reference, "generator state after randomize, d = {d}");
        }
    }

    #[test]
    fn aggregate_is_unbiased() {
        let d = 50;
        let o = Oue::new(d, 1.0).unwrap();
        let mut rng = SplitMix64::new(32);
        let n = 60_000;
        let values: Vec<usize> = (0..n).map(|i| if i % 10 < 7 { 5 } else { 20 }).collect();
        let est = o.run(&values, &mut rng).unwrap();
        assert!((est[5] - 0.7).abs() < 0.03, "est[5]={}", est[5]);
        assert!((est[20] - 0.3).abs() < 0.03, "est[20]={}", est[20]);
    }

    #[test]
    fn empirical_variance_matches_theory() {
        let d = 16;
        let eps = 1.0;
        let n = 2_000;
        let trials = 200;
        let o = Oue::new(d, eps).unwrap();
        let values = vec![1usize; n];
        let mut errs = Vec::with_capacity(trials);
        for t in 0..trials {
            let mut rng = SplitMix64::new(4000 + t as u64);
            let est = o.run(&values, &mut rng).unwrap();
            errs.push(est[0]);
        }
        let emp_var = ldp_numeric::stats::variance(&errs);
        let theory = Oue::theoretical_variance(eps, n);
        let ratio = emp_var / theory;
        assert!(
            (0.6..1.4).contains(&ratio),
            "empirical {emp_var} vs theory {theory}"
        );
    }

    #[test]
    fn out_of_domain_rejected_and_empty_aggregate() {
        let o = Oue::new(8, 1.0).unwrap();
        let mut rng = SplitMix64::new(3);
        assert!(o.randomize(8, &mut rng).is_err());
        assert_eq!(o.aggregate(&[]), vec![0.0; 8]);
    }
}
