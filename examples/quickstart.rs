//! Quickstart: collect a numerical distribution under ε-LDP with the
//! Square Wave mechanism and EMS reconstruction, through the unified
//! `Client`/`Aggregator` API.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sw_ldp::prelude::*;

fn main() {
    // --- The population -------------------------------------------------
    // 100k users each hold a private value in [0, 1]; here, synthetic
    // Beta(5, 2) (the paper's synthetic workload).
    let dataset = DatasetSpec {
        kind: DatasetKind::Beta,
        n: 100_000,
        seed: 1,
    }
    .generate();
    println!("users: {}", dataset.n());

    // --- The mechanism --------------------------------------------------
    // One configuration object describes the whole protocol: ε = 1 with
    // the paper's defaults (square wave, mutual-information-optimal
    // bandwidth b*, EMS reconstruction at granularity d). Every other
    // mechanism in the workspace (GRR, OLH, OUE, Hadamard, PM, SR, Hybrid,
    // hierarchies) is driven through this same `Mechanism` API.
    let epsilon = 1.0;
    let d = 256; // histogram granularity
    let mechanism = SwMechanism::ems(epsilon, d).expect("valid parameters");
    println!(
        "square wave: b = {:.3}, p = {:.3}, q = {:.3}",
        mechanism.pipeline().wave().b(),
        mechanism.pipeline().wave().peak(),
        mechanism.pipeline().wave().q()
    );

    // --- Client side ----------------------------------------------------
    // Each user perturbs its own value locally; only the noisy wire report
    // ever leaves the device.
    let client = Client::new(&mechanism);
    let mut rng = SplitMix64::new(2024);
    let reports = client
        .randomize_batch(&dataset.values, &mut rng)
        .expect("values in [0, 1]");

    // --- Server side ----------------------------------------------------
    // The aggregator is a streaming accumulator: O(d̃) state no matter how
    // many reports flow through, shards merge exactly. A deployment would
    // run one aggregator per collector and `merge` them; here we stream
    // the reports through two shards to show the split.
    let mut shard_a = Aggregator::new(&mechanism);
    let mut shard_b = Aggregator::new(&mechanism);
    let (left, right) = reports.split_at(reports.len() / 2);
    shard_a.push_slice(left).expect("reports are in range");
    shard_b.push_slice(right).expect("reports are in range");
    shard_a
        .merge(&shard_b)
        .expect("same mechanism configuration");
    println!("reports aggregated: {}", shard_a.count());

    // Finalize runs EMS through the structured transition operator.
    let estimate = shard_a.finalize().expect("reconstruction succeeds");

    // --- How good is it? -------------------------------------------------
    let truth = dataset.histogram(d).expect("non-empty dataset");
    println!(
        "Wasserstein distance: {:.5}",
        wasserstein(&truth, &estimate).expect("same granularity")
    );
    println!(
        "KS distance:          {:.5}",
        ks_distance(&truth, &estimate).expect("same granularity")
    );
    println!(
        "mean:     true {:.4}  estimated {:.4}",
        truth.mean(),
        estimate.mean()
    );
    println!(
        "variance: true {:.4}  estimated {:.4}",
        truth.variance(),
        estimate.variance()
    );
    println!(
        "median:   true {:.4}  estimated {:.4}",
        truth.quantile(0.5),
        estimate.quantile(0.5)
    );

    // --- Low-level escape hatch ------------------------------------------
    // The raw pipeline remains available when you need custom waves,
    // d̃ ≠ d, or direct control over the reconstruction:
    let pipeline = SwPipeline::new(epsilon, d).expect("valid parameters");
    let counts = pipeline.aggregate(&reports);
    let low_level = pipeline
        .reconstruct(&counts, &Reconstruction::Ems)
        .expect("reconstruction succeeds");
    println!(
        "low-level SwPipeline path agrees: {}",
        low_level.histogram.probs() == estimate.probs()
    );
}
