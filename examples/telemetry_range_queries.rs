//! Telemetry case study: answering range queries about session times
//! collected under LDP.
//!
//! Models the paper's motivating workload ("the amount of time viewing a
//! certain page"): the aggregator never sees raw timestamps, yet can answer
//! "what fraction of pickups happen between 7am and 10am?". Compares the
//! Square Wave pipeline against the hierarchy baselines (HH, HaarHRR) the
//! paper evaluates in Figure 3.
//!
//! ```sh
//! cargo run --release --example telemetry_range_queries
//! ```

use sw_ldp::metrics::signed_cdf_at;
use sw_ldp::prelude::*;

fn main() {
    let epsilon = 1.0;
    let d = 1024;
    let dataset = DatasetSpec {
        kind: DatasetKind::Taxi,
        n: 200_000,
        seed: 5,
    }
    .generate();
    let truth = dataset.histogram(d).expect("non-empty dataset");
    println!(
        "taxi-like telemetry: {} users, eps = {epsilon}, d = {d}",
        dataset.n()
    );

    let mut rng = SplitMix64::new(17);

    // SW + EMS gives a full valid distribution.
    let pipeline = SwPipeline::new(epsilon, d).expect("valid parameters");
    let sw = pipeline
        .estimate(&dataset.values, &Reconstruction::Ems, &mut rng)
        .expect("reconstruction succeeds");

    // HH and HaarHRR produce (possibly negative) leaf estimates designed
    // specifically for range queries.
    let buckets = dataset.bucket_values(d);
    let hh = HierarchicalHistogram::new(4, d, epsilon).expect("1024 = 4^5");
    let hh_leaves = hh
        .estimate_leaves(&buckets, &mut rng)
        .expect("collection succeeds");
    let haar = HaarHrr::new(d, epsilon).expect("1024 = 2^10");
    let haar_leaves = haar
        .estimate_leaves(&buckets, &mut rng)
        .expect("collection succeeds");

    // Business queries: "fraction of pickups in [t1, t2)".
    let queries: [(&str, f64, f64); 4] = [
        ("overnight (00:00-05:00)", 0.0, 5.0 / 24.0),
        ("morning rush (07:00-10:00)", 7.0 / 24.0, 10.0 / 24.0),
        ("afternoon (12:00-17:00)", 0.5, 17.0 / 24.0),
        ("evening peak (17:00-22:00)", 17.0 / 24.0, 22.0 / 24.0),
    ];
    println!(
        "\n{:<28} {:>9} {:>9} {:>9} {:>9}",
        "range", "true", "SW-EMS", "HH", "HaarHRR"
    );
    for (name, lo, hi) in queries {
        let t = truth.range_mass(lo, hi);
        let s = sw.range_mass(lo, hi);
        let h = signed_cdf_at(&hh_leaves, hi) - signed_cdf_at(&hh_leaves, lo);
        let r = signed_cdf_at(&haar_leaves, hi) - signed_cdf_at(&haar_leaves, lo);
        println!("{name:<28} {t:>9.4} {s:>9.4} {h:>9.4} {r:>9.4}");
    }

    // Aggregate accuracy over random ranges (the Figure 3 metric).
    let mut qrng = SplitMix64::new(4242);
    for alpha in [0.1, 0.4] {
        let e_sw = range_query_mae(&truth, &sw, alpha, 500, &mut qrng).unwrap();
        let e_hh =
            sw_ldp::metrics::range_query_mae_signed(&truth, &hh_leaves, alpha, 500, &mut qrng)
                .unwrap();
        let e_haar =
            sw_ldp::metrics::range_query_mae_signed(&truth, &haar_leaves, alpha, 500, &mut qrng)
                .unwrap();
        println!(
            "\nrandom range MAE (alpha = {alpha}): SW-EMS {e_sw:.5}  HH {e_hh:.5}  HaarHRR {e_haar:.5}"
        );
    }
}
