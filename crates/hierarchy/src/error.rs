//! Error type for hierarchy-based estimators.

use ldp_cfo::CfoError;
use std::fmt;

/// Errors produced by hierarchy-based methods.
#[derive(Debug, Clone, PartialEq)]
pub enum HierarchyError {
    /// The domain size is not a power of the branching factor.
    DomainNotPowerOfBranching {
        /// Requested domain size.
        domain: usize,
        /// Requested branching factor.
        branching: usize,
    },
    /// A parameter was invalid (ε, branching factor, iteration counts, …).
    InvalidParameter(String),
    /// An underlying frequency-oracle call failed.
    Oracle(CfoError),
}

impl fmt::Display for HierarchyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HierarchyError::DomainNotPowerOfBranching { domain, branching } => write!(
                f,
                "domain size {domain} is not a positive power of branching factor {branching}"
            ),
            HierarchyError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            HierarchyError::Oracle(e) => write!(f, "frequency oracle error: {e}"),
        }
    }
}

impl std::error::Error for HierarchyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HierarchyError::Oracle(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CfoError> for HierarchyError {
    fn from(e: CfoError) -> Self {
        HierarchyError::Oracle(e)
    }
}

/// Parameter validation is centralized in `ldp-core`
/// ([`ldp_core::Epsilon`], [`ldp_core::Domain`]); the messages match the
/// checks this crate used to hand-roll.
impl From<ldp_core::CoreError> for HierarchyError {
    fn from(e: ldp_core::CoreError) -> Self {
        HierarchyError::InvalidParameter(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = HierarchyError::DomainNotPowerOfBranching {
            domain: 100,
            branching: 4,
        };
        assert!(e.to_string().contains("100"));
        let e: HierarchyError = CfoError::DomainTooSmall(1).into();
        assert!(e.source().is_some());
    }
}
