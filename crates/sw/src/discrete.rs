//! The discrete Square Wave mechanism ("bucketize before randomize",
//! paper §5.4).
//!
//! When the input domain is already discrete (or the client discretizes
//! before randomizing), SW operates on bucket indices: input `v ∈ {0,…,d-1}`
//! maps to output `ṽ ∈ {0,…,d+2b-1}` (output index `j` represents input
//! position `j - b`), reporting near outputs (`|v - (ṽ - b)| ≤ b`, i.e.
//! `ṽ ∈ [v, v+2b]`) with probability `p = eᵉ/((2b+1)eᵉ + d - 1)` and far
//! outputs with `q = 1/((2b+1)eᵉ + d - 1)`.

use crate::bandwidth::optimal_b_discrete;
use crate::error::SwError;
use crate::operator::BandedBaselineOperator;
use crate::transition::discrete_transition_matrix;
use ldp_core::Epsilon;
use ldp_numeric::Matrix;
use rand::Rng;

/// The discrete square wave randomizer.
#[derive(Debug, Clone)]
pub struct DiscreteSw {
    d: usize,
    b: usize,
    eps: f64,
    p: f64,
    q: f64,
}

impl DiscreteSw {
    /// Creates a discrete SW over `d` buckets with the paper's bandwidth
    /// `b = ⌊b*·d⌋`.
    pub fn new(d: usize, eps: f64) -> Result<Self, SwError> {
        let b = optimal_b_discrete(eps, d)?;
        Self::with_bandwidth(d, b, eps)
    }

    /// Creates a discrete SW with an explicit integer bandwidth.
    pub fn with_bandwidth(d: usize, b: usize, eps: f64) -> Result<Self, SwError> {
        Epsilon::new(eps)?;
        if d < 2 {
            return Err(SwError::InvalidParameter(format!(
                "discrete domain needs at least 2 buckets, got {d}"
            )));
        }
        let e = eps.exp();
        let width = (2 * b + 1) as f64;
        let p = e / (width * e + d as f64 - 1.0);
        let q = 1.0 / (width * e + d as f64 - 1.0);
        Ok(DiscreteSw { d, b, eps, p, q })
    }

    /// Input domain size `d`.
    #[must_use]
    pub fn domain_size(&self) -> usize {
        self.d
    }

    /// Output domain size `d + 2b`.
    #[must_use]
    pub fn output_size(&self) -> usize {
        self.d + 2 * self.b
    }

    /// The integer bandwidth.
    #[must_use]
    pub fn bandwidth(&self) -> usize {
        self.b
    }

    /// Near-report probability `p`.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Far-report probability `q`.
    #[must_use]
    pub fn q(&self) -> f64 {
        self.q
    }

    /// The privacy budget.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.eps
    }

    /// Client side: randomizes a bucket index.
    pub fn randomize<R: Rng + ?Sized>(&self, v: usize, rng: &mut R) -> Result<usize, SwError> {
        if v >= self.d {
            return Err(SwError::ValueOutOfDomain(v as f64));
        }
        let near = 2 * self.b + 1;
        let near_mass = near as f64 * self.p;
        if rng.gen::<f64>() < near_mass {
            // Uniform over the near window [v, v + 2b].
            Ok(v + rng.gen_range(0..near))
        } else {
            // Uniform over the d - 1 far outputs: all outputs except the
            // near window.
            let far_total = self.output_size() - near;
            let mut idx = rng.gen_range(0..far_total);
            if idx >= v {
                idx += near; // skip the near window, which starts at v
            }
            Ok(idx)
        }
    }

    /// The matching transition matrix for EM/EMS reconstruction.
    pub fn transition_matrix(&self) -> Result<Matrix, SwError> {
        discrete_transition_matrix(self.d, self.b, self.eps)
    }

    /// The matching structured operator: the discrete band is a pure
    /// plateau (`p` near / `q` far), so both matvecs are strictly `O(d)`.
    pub fn banded_operator(&self) -> Result<BandedBaselineOperator, SwError> {
        BandedBaselineOperator::from_discrete(self.d, self.b, self.eps)
    }

    /// Aggregates raw reports into output-bucket counts.
    pub fn aggregate(&self, reports: &[usize]) -> Result<Vec<f64>, SwError> {
        let mut counts = vec![0.0; self.output_size()];
        for &r in reports {
            if r >= self.output_size() {
                return Err(SwError::InvalidParameter(format!(
                    "report {r} outside output domain of size {}",
                    self.output_size()
                )));
            }
            counts[r] += 1.0;
        }
        Ok(counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::em::{reconstruct, EmConfig};
    use ldp_numeric::SplitMix64;

    #[test]
    fn construction_and_probabilities() {
        let sw = DiscreteSw::with_bandwidth(8, 2, 1.0).unwrap();
        assert_eq!(sw.output_size(), 12);
        // Total probability: (2b+1)p + (d-1)q = 1.
        let total = 5.0 * sw.p() + 7.0 * sw.q();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((sw.p() / sw.q() - 1f64.exp()).abs() < 1e-12);
        assert!(DiscreteSw::with_bandwidth(1, 2, 1.0).is_err());
        assert!(DiscreteSw::with_bandwidth(8, 2, 0.0).is_err());
    }

    #[test]
    fn default_bandwidth_tracks_continuous_optimum() {
        let sw = DiscreteSw::new(1024, 1.0).unwrap();
        // b* ≈ 0.256 → ⌊262.x⌋.
        assert!(
            (250..=270).contains(&sw.bandwidth()),
            "b={}",
            sw.bandwidth()
        );
    }

    #[test]
    fn randomize_outputs_cover_expected_window() {
        let sw = DiscreteSw::with_bandwidth(8, 2, 1.0).unwrap();
        let mut rng = SplitMix64::new(121);
        let v = 3;
        let mut counts = vec![0u64; sw.output_size()];
        let n = 200_000;
        for _ in 0..n {
            counts[sw.randomize(v, &mut rng).unwrap()] += 1;
        }
        for (j, &c) in counts.iter().enumerate() {
            let expect = if (v..=v + 4).contains(&j) {
                sw.p()
            } else {
                sw.q()
            };
            let got = c as f64 / n as f64;
            assert!((got - expect).abs() < 0.005, "j={j}: {got} vs {expect}");
        }
    }

    #[test]
    fn randomize_rejects_out_of_domain() {
        let sw = DiscreteSw::with_bandwidth(8, 2, 1.0).unwrap();
        let mut rng = SplitMix64::new(122);
        assert!(sw.randomize(8, &mut rng).is_err());
    }

    #[test]
    fn boundary_values_have_full_near_window() {
        // v = 0 and v = d-1 still get 2b+1 near outputs thanks to the
        // enlarged output domain.
        let sw = DiscreteSw::with_bandwidth(8, 2, 4.0).unwrap();
        let mut rng = SplitMix64::new(123);
        for &v in &[0usize, 7] {
            let mut near = 0u64;
            let n = 50_000;
            for _ in 0..n {
                let r = sw.randomize(v, &mut rng).unwrap();
                if (v..=v + 4).contains(&r) {
                    near += 1;
                }
            }
            let frac = near as f64 / n as f64;
            let expect = 5.0 * sw.p();
            assert!((frac - expect).abs() < 0.01, "v={v}: {frac} vs {expect}");
        }
    }

    #[test]
    fn end_to_end_reconstruction_with_ems() {
        let sw = DiscreteSw::new(32, 2.0).unwrap();
        let mut rng = SplitMix64::new(124);
        // Smooth unimodal truth.
        let values: Vec<usize> = (0..120_000)
            .map(|i| {
                let x = (i % 1000) as f64 / 1000.0;
                ((x * 0.5 + 0.25) * 32.0) as usize // uniform over buckets 8..24
            })
            .collect();
        let reports: Vec<usize> = values
            .iter()
            .map(|&v| sw.randomize(v, &mut rng).unwrap())
            .collect();
        let counts = sw.aggregate(&reports).unwrap();
        let m = sw.transition_matrix().unwrap();
        let result = reconstruct(&m, &counts, &EmConfig::ems()).unwrap();
        let probs = result.histogram.probs();
        let mass_in_range: f64 = probs[8..24].iter().sum();
        assert!(mass_in_range > 0.8, "mass {mass_in_range}");
        // The structured operator reconstructs the same distribution.
        let op = sw.banded_operator().unwrap();
        let structured = reconstruct(&op, &counts, &EmConfig::ems()).unwrap();
        for (a, b) in probs.iter().zip(structured.histogram.probs()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn aggregate_validates_reports() {
        let sw = DiscreteSw::with_bandwidth(8, 2, 1.0).unwrap();
        assert!(sw.aggregate(&[12]).is_err());
        assert_eq!(sw.aggregate(&[0, 11]).unwrap().len(), 12);
    }
}
