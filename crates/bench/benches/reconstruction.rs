//! Server-side reconstruction costs: transition-matrix construction,
//! EM/EMS iterations, constrained inference, and ADMM.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ldp_bench::{bench_dataset, BENCH_D, BENCH_N};
use ldp_datasets::DatasetKind;
use ldp_hierarchy::{hh_admm, AdmmConfig, HierarchicalHistogram};
use ldp_numeric::SplitMix64;
use ldp_sw::{optimal_b, reconstruct, transition_matrix, EmConfig, Wave};
use std::time::Duration;

fn bench_transition(c: &mut Criterion) {
    let mut group = c.benchmark_group("transition_matrix");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    let wave = Wave::square(optimal_b(1.0).unwrap(), 1.0).unwrap();
    for d in [256usize, 1024] {
        group.bench_function(format!("square_d{d}"), |b| {
            b.iter(|| transition_matrix(black_box(&wave), d, d).unwrap())
        });
    }
    let triangle = Wave::new(ldp_sw::WaveShape::Triangle, 0.25, 1.0).unwrap();
    group.bench_function("triangle_d256", |b| {
        b.iter(|| transition_matrix(black_box(&triangle), 256, 256).unwrap())
    });
    group.finish();
}

fn bench_em_ems(c: &mut Criterion) {
    let mut group = c.benchmark_group("reconstruction");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));

    let eps = 1.0;
    let wave = Wave::square(optimal_b(eps).unwrap(), eps).unwrap();
    let m = transition_matrix(&wave, BENCH_D, BENCH_D).unwrap();
    let ds = bench_dataset(DatasetKind::Beta, BENCH_N);
    let pipeline = ldp_sw::SwPipeline::with_wave(wave, BENCH_D, BENCH_D).unwrap();
    let mut rng = SplitMix64::new(10);
    let reports: Vec<f64> = ds
        .values
        .iter()
        .map(|&v| pipeline.randomize(v, &mut rng).unwrap())
        .collect();
    let counts = pipeline.aggregate(&reports);

    group.bench_function("em_d256", |b| {
        b.iter(|| reconstruct(black_box(&m), black_box(&counts), &EmConfig::em(eps)).unwrap())
    });
    group.bench_function("ems_d256", |b| {
        b.iter(|| reconstruct(black_box(&m), black_box(&counts), &EmConfig::ems()).unwrap())
    });
    group.finish();
}

fn bench_hierarchy_postprocessing(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchy");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));

    let ds = bench_dataset(DatasetKind::Beta, BENCH_N);
    let buckets = ds.bucket_values(BENCH_D);
    let hh = HierarchicalHistogram::new(4, BENCH_D, 1.0).unwrap();
    let mut rng = SplitMix64::new(11);
    let raw = hh.collect(&buckets, &mut rng).unwrap();

    group.bench_function("constrained_inference_d256", |b| {
        b.iter(|| hh.make_consistent(black_box(&raw)).unwrap())
    });
    group.bench_function("hh_admm_d256", |b| {
        b.iter(|| hh_admm(hh.shape(), black_box(&raw), AdmmConfig::default()).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_transition,
    bench_em_ems,
    bench_hierarchy_postprocessing
);
criterion_main!(benches);
