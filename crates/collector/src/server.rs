//! The length-delimited socket ingestion loop.
//!
//! The wire between a report forwarder and the collector is deliberately
//! minimal — one TCP connection carrying framed batches of wire-report
//! lines:
//!
//! ```text
//! frame     = length payload
//! length    = u32, big endian, number of payload bytes
//! payload   = UTF-8 text, newline-separated WireReport lines
//! ```
//!
//! A frame with `length = 0` ends the stream. After every frame the
//! collector answers one status byte: `+` (batch absorbed, snapshot
//! policy applied) or `-` (batch rejected — the connection closes and
//! **none** of the frame's reports were absorbed, so the forwarder can
//! retry or quarantine the batch without double-count risk). The
//! normative spec lives in `docs/WIRE_FORMAT.md`; retry semantics are
//! discussed in `docs/OPERATIONS.md`.

use crate::error::CollectorError;
use crate::io::write_snapshot_atomic;
use crate::session::CollectorSession;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;

/// Refuse absurd frames instead of attempting a pathological allocation
/// (a 64 MiB frame at ~20 bytes/report is ≈3M reports, far beyond any
/// sane batch).
const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// When (and where) the ingestion loop persists the window.
#[derive(Debug, Clone, Default)]
pub struct SnapshotPolicy {
    /// Snapshot file path; `None` disables persistence.
    pub path: Option<PathBuf>,
    /// Snapshot after every `every` absorbed reports (0 = only at
    /// end-of-stream).
    pub every: u64,
}

impl SnapshotPolicy {
    /// Applies the policy after a batch: persists when the absorbed count
    /// crossed an `every` boundary (or unconditionally at `force`).
    /// `before` is the session's count when the batch started. The one
    /// cadence implementation — the socket loop and the `ingest`
    /// subcommand both call it.
    pub fn apply(
        &self,
        session: &dyn CollectorSession,
        before: u64,
        force: bool,
    ) -> Result<(), CollectorError> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        let crossed = self.every > 0 && session.count() / self.every > before / self.every;
        if crossed || force {
            write_snapshot_atomic(path, &session.snapshot_text())?;
        }
        Ok(())
    }
}

/// Writes one frame (length prefix + payload) to `stream`.
pub fn write_frame(stream: &mut TcpStream, payload: &str) -> std::io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large"))?;
    stream.write_all(&len.to_be_bytes())?;
    stream.write_all(payload.as_bytes())
}

/// Reads one frame; `Ok(None)` is the end-of-stream frame (`length = 0`).
pub fn read_frame(stream: &mut TcpStream) -> Result<Option<String>, CollectorError> {
    let mut len_bytes = [0u8; 4];
    stream
        .read_exact(&mut len_bytes)
        .map_err(|e| CollectorError::Protocol(format!("reading frame length: {e}")))?;
    let len = u32::from_be_bytes(len_bytes);
    if len == 0 {
        return Ok(None);
    }
    if len > MAX_FRAME_BYTES {
        return Err(CollectorError::Protocol(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    stream
        .read_exact(&mut payload)
        .map_err(|e| CollectorError::Protocol(format!("reading {len}-byte frame: {e}")))?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|e| CollectorError::Protocol(format!("frame is not UTF-8: {e}")))
}

/// Runs the ingestion loop over one accepted connection: absorb each
/// frame (acking `+`/`-`), snapshot on the policy's cadence, and on the
/// end-of-stream frame write a final snapshot and return the total
/// absorbed-report count.
///
/// A rejected frame (`-` ack) absorbs nothing — [`CollectorSession::ingest_text`]
/// is all-or-nothing — and ends the connection with the window intact, so
/// a subsequent connection (or file replay) can continue it.
pub fn serve_connection(
    stream: &mut TcpStream,
    session: &mut dyn CollectorSession,
    policy: &SnapshotPolicy,
) -> Result<u64, CollectorError> {
    loop {
        match read_frame(stream) {
            Ok(Some(payload)) => {
                let before = session.count();
                match session.ingest_text(&payload) {
                    Ok(_) => {
                        policy.apply(session, before, false)?;
                        let _ = stream.write_all(b"+");
                    }
                    Err(e) => {
                        let _ = stream.write_all(b"-");
                        return Err(e);
                    }
                }
            }
            Ok(None) => {
                policy.apply(session, session.count(), true)?;
                let _ = stream.write_all(b"+");
                return Ok(session.count());
            }
            Err(e) => return Err(e),
        }
    }
}

/// Accepts one connection on `listener` and runs [`serve_connection`] —
/// the `serve` subcommand's engine, split out so tests drive it with an
/// in-process client.
pub fn serve_once(
    listener: &TcpListener,
    session: &mut dyn CollectorSession,
    policy: &SnapshotPolicy,
) -> Result<u64, CollectorError> {
    let (mut stream, _addr) = listener
        .accept()
        .map_err(|e| CollectorError::Io(format!("accept: {e}")))?;
    serve_connection(&mut stream, session, policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::build_session;

    /// A forwarder thread streaming frames; returns the acks it saw.
    fn forward(addr: std::net::SocketAddr, frames: Vec<String>, fin: bool) -> Vec<u8> {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut acks = Vec::new();
        for f in frames {
            write_frame(&mut stream, &f).unwrap();
            let mut ack = [0u8; 1];
            stream.read_exact(&mut ack).unwrap();
            acks.push(ack[0]);
            if ack[0] == b'-' {
                return acks;
            }
        }
        if fin {
            stream.write_all(&0u32.to_be_bytes()).unwrap();
            let mut ack = [0u8; 1];
            stream.read_exact(&mut ack).unwrap();
            acks.push(ack[0]);
        }
        acks
    }

    #[test]
    fn framed_stream_equals_direct_ingestion() {
        let spec = "grr:eps=1,d=8";
        let mut session = build_session(spec).unwrap();
        let reports = session.gen_reports(900, 3).unwrap();
        // Expected: direct one-shot ingestion.
        let mut direct = build_session(spec).unwrap();
        direct.ingest_text(&reports).unwrap();
        let expected = direct.finalize_text().unwrap();
        // Framed: three batches over a socket.
        let lines: Vec<&str> = reports.lines().collect();
        let frames: Vec<String> = lines.chunks(300).map(|c| c.join("\n")).collect();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || forward(addr, frames, true));
        let policy = SnapshotPolicy::default();
        let n = serve_once(&listener, session.as_mut(), &policy).unwrap();
        assert_eq!(n, 900);
        assert_eq!(client.join().unwrap(), vec![b'+', b'+', b'+', b'+']);
        assert_eq!(session.finalize_text().unwrap(), expected);
    }

    #[test]
    fn bad_frame_is_rejected_without_absorbing_and_window_survives() {
        let spec = "grr:eps=1,d=8";
        let mut session = build_session(spec).unwrap();
        let good = session.gen_reports(100, 5).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let frames = vec![good.clone(), format!("{good}not-a-report\n")];
        let client = std::thread::spawn(move || forward(addr, frames, false));
        let policy = SnapshotPolicy::default();
        let err = serve_once(&listener, session.as_mut(), &policy).unwrap_err();
        assert!(matches!(err, CollectorError::Core(_)));
        assert_eq!(client.join().unwrap(), vec![b'+', b'-']);
        // Only the good frame was absorbed; the window remains usable.
        assert_eq!(session.count(), 100);
        assert!(session.finalize_text().is_ok());
    }

    #[test]
    fn snapshot_cadence_persists_during_the_stream() {
        let dir = std::env::temp_dir().join("ldp-collector-server-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("window.snap");
        let _ = std::fs::remove_file(&path);
        let spec = "pm:eps=1";
        let mut session = build_session(spec).unwrap();
        let reports = session.gen_reports(600, 11).unwrap();
        let lines: Vec<&str> = reports.lines().collect();
        let frames: Vec<String> = lines.chunks(200).map(|c| c.join("\n")).collect();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || forward(addr, frames, true));
        let policy = SnapshotPolicy {
            path: Some(path.clone()),
            every: 250,
        };
        serve_once(&listener, session.as_mut(), &policy).unwrap();
        client.join().unwrap();
        // The final snapshot recovers the full window.
        let mut recovered = build_session(spec).unwrap();
        recovered
            .restore(&crate::io::read_to_string(&path).unwrap())
            .unwrap();
        assert_eq!(recovered.count(), 600);
        assert_eq!(
            recovered.finalize_text().unwrap(),
            session.finalize_text().unwrap()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
