//! Distribution-distance metrics (paper §3.1): the 1-D Wasserstein distance
//! and the Kolmogorov–Smirnov distance.
//!
//! Both metrics compare cumulative distribution functions, which is what
//! makes them sensitive to the *ordered* structure of the domain — the
//! paper's motivating example is that moving mass one bucket away should
//! cost less than moving it across the domain, which pointwise L1/L2/KL
//! distances cannot express.

use crate::error::MetricError;
use ldp_numeric::Histogram;

/// One-dimensional Wasserstein (earth-mover) distance between two
/// histograms over `[0, 1]`:
/// `W₁ = ∫₀¹ |P(x, v) − P(x̂, v)| dv`, evaluated exactly as the bucket-width
/// weighted L1 distance between the discrete CDFs.
pub fn wasserstein(truth: &Histogram, estimate: &Histogram) -> Result<f64, MetricError> {
    check_same(truth, estimate)?;
    let d = truth.len() as f64;
    let sum: f64 = truth
        .cdf()
        .iter()
        .zip(estimate.cdf().iter())
        .map(|(a, b)| (a - b).abs())
        .sum();
    Ok(sum / d)
}

/// Kolmogorov–Smirnov distance: the maximum absolute CDF difference.
pub fn ks_distance(truth: &Histogram, estimate: &Histogram) -> Result<f64, MetricError> {
    check_same(truth, estimate)?;
    Ok(truth
        .cdf()
        .iter()
        .zip(estimate.cdf().iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max))
}

fn check_same(truth: &Histogram, estimate: &Histogram) -> Result<(), MetricError> {
    if truth.len() != estimate.len() {
        return Err(MetricError::GranularityMismatch {
            truth: truth.len(),
            estimate: estimate.len(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(probs: &[f64]) -> Histogram {
        Histogram::from_probs(probs.to_vec()).unwrap()
    }

    #[test]
    fn identical_distributions_have_zero_distance() {
        let a = h(&[0.1, 0.2, 0.3, 0.4]);
        assert_eq!(wasserstein(&a, &a).unwrap(), 0.0);
        assert_eq!(ks_distance(&a, &a).unwrap(), 0.0);
    }

    #[test]
    fn wasserstein_respects_ordering_unlike_l1() {
        // The paper's own example: x = [0.7, .1, .1, .1]; moving the spike
        // one bucket is closer than moving it three buckets, though the L1
        // distances are identical.
        let x = h(&[0.7, 0.1, 0.1, 0.1]);
        let near = h(&[0.1, 0.7, 0.1, 0.1]);
        let far = h(&[0.1, 0.1, 0.1, 0.7]);
        let w_near = wasserstein(&x, &near).unwrap();
        let w_far = wasserstein(&x, &far).unwrap();
        assert!(w_near < w_far, "{w_near} vs {w_far}");
        // Exact values: shifting 0.6 mass by k buckets costs 0.6·k/4.
        assert!((w_near - 0.6 / 4.0).abs() < 1e-12);
        assert!((w_far - 1.8 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn ks_is_max_cdf_gap() {
        let a = h(&[1.0, 0.0, 0.0, 0.0]);
        let b = h(&[0.0, 0.0, 0.0, 1.0]);
        // CDFs: [1,1,1,1] vs [0,0,0,1]: max gap 1.
        assert!((ks_distance(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        let c = h(&[0.5, 0.0, 0.0, 0.5]);
        assert!((ks_distance(&a, &c).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn wasserstein_point_mass_shift_is_distance_between_points() {
        // Mass at bucket 0 vs bucket 3 of 4: centers 1/8 and 7/8, shift 3/4.
        let a = h(&[1.0, 0.0, 0.0, 0.0]);
        let b = h(&[0.0, 0.0, 0.0, 1.0]);
        assert!((wasserstein(&a, &b).unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn metrics_are_symmetric() {
        let a = h(&[0.4, 0.3, 0.2, 0.1]);
        let b = h(&[0.1, 0.2, 0.3, 0.4]);
        assert!((wasserstein(&a, &b).unwrap() - wasserstein(&b, &a).unwrap()).abs() < 1e-12);
        assert!((ks_distance(&a, &b).unwrap() - ks_distance(&b, &a).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn ks_bounds_wasserstein() {
        // W1 ≤ KS on [0,1] since the CDF gap integrates over length ≤ 1.
        let a = h(&[0.25, 0.25, 0.25, 0.25]);
        let b = h(&[0.7, 0.1, 0.1, 0.1]);
        assert!(wasserstein(&a, &b).unwrap() <= ks_distance(&a, &b).unwrap() + 1e-12);
    }

    #[test]
    fn granularity_mismatch_is_rejected() {
        let a = h(&[0.5, 0.5]);
        let b = h(&[0.25, 0.25, 0.25, 0.25]);
        assert!(wasserstein(&a, &b).is_err());
        assert!(ks_distance(&a, &b).is_err());
    }

    #[test]
    fn triangle_inequality_spot_check() {
        let a = h(&[0.6, 0.2, 0.1, 0.1]);
        let b = h(&[0.2, 0.4, 0.2, 0.2]);
        let c = h(&[0.1, 0.1, 0.2, 0.6]);
        let ab = wasserstein(&a, &b).unwrap();
        let bc = wasserstein(&b, &c).unwrap();
        let ac = wasserstein(&a, &c).unwrap();
        assert!(ac <= ab + bc + 1e-12);
    }
}
