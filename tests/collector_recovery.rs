//! Collector crash-recovery conformance: for every registered mechanism
//! family, a collection window that is snapshotted, killed, and resumed
//! finalizes **bit-identically** to uninterrupted one-shot aggregation,
//! and snapshots collected on parallel shards merge to exactly the
//! concatenated stream. Also pins the rejection surface (corruption,
//! truncation, cross-configuration) and the documented edge semantics
//! (empty windows, duplicate lines).

use ldp_collector::registry::build_session;
use ldp_collector::session::ingest_resuming;
use ldp_collector::CollectorError;

/// Every registered mechanism family, exercised end to end. The
/// acceptance-critical four (SW-EMS, OUE, PM, HH) lead the list.
const SPECS: &[&str] = &[
    "sw-ems:eps=1,d=32",
    "oue:eps=1,d=16",
    "pm:eps=1",
    "hh:eps=1,d=64",
    "sw-em:eps=1,d=32",
    "grr:eps=1,d=16",
    "olh:eps=1,d=16",
    "hrr:eps=1,d=16",
    "adaptive:eps=1,d=16",
    "cfo-binning:eps=1,d=64,bins=16",
    "sr:eps=1",
    "hybrid:eps=2",
    "hh-admm:eps=1,d=16",
    "haar-hrr:eps=1,d=64",
];

const N: u64 = 3_000;

fn window(spec: &str) -> (String, String) {
    let mut session = build_session(spec).unwrap();
    let reports = session.gen_reports(N, 0xC0FFEE).unwrap();
    session.ingest_text(&reports).unwrap();
    assert_eq!(session.count(), N, "{spec}");
    let estimate = session.finalize_text().unwrap();
    (reports, estimate)
}

#[test]
fn kill_and_resume_is_bit_identical_for_every_mechanism() {
    for spec in SPECS {
        let (reports, expected) = window(spec);
        for crash_after in [1u64, N / 3, N - 1] {
            // Phase 1: a collector absorbs `crash_after` reports and
            // persists a snapshot; then the process dies (drop).
            let snapshot = {
                let mut collector = build_session(spec).unwrap();
                let prefix: String =
                    reports
                        .lines()
                        .take(crash_after as usize)
                        .fold(String::new(), |mut acc, l| {
                            acc.push_str(l);
                            acc.push('\n');
                            acc
                        });
                collector.ingest_text(&prefix).unwrap();
                collector.snapshot_text()
            };
            // Phase 2: a fresh process restores the snapshot and replays
            // the log from where the snapshot left off.
            let mut recovered = build_session(spec).unwrap();
            recovered.restore(&snapshot).unwrap();
            assert_eq!(recovered.count(), crash_after, "{spec}");
            ingest_resuming(recovered.as_mut(), &reports).unwrap();
            assert_eq!(recovered.count(), N, "{spec}");
            assert_eq!(
                recovered.finalize_text().unwrap(),
                expected,
                "{spec}: resume after {crash_after} must be bit-identical"
            );
        }
    }
}

#[test]
fn snapshot_merge_across_three_collectors_equals_concatenated_ingest() {
    for spec in SPECS {
        let (reports, expected) = window(spec);
        let lines: Vec<&str> = reports.lines().collect();
        // Three parallel collectors over disjoint thirds (uneven splits).
        let bounds = [0, 700, 1_900, lines.len()];
        let mut snapshots = Vec::new();
        for w in bounds.windows(2) {
            let mut shard = build_session(spec).unwrap();
            shard.ingest_text(&lines[w[0]..w[1]].join("\n")).unwrap();
            snapshots.push(shard.snapshot_text());
        }
        assert_eq!(snapshots.len(), 3);
        // Merge in order...
        let mut merged = build_session(spec).unwrap();
        for s in &snapshots {
            merged.merge_snapshot(s).unwrap();
        }
        assert_eq!(merged.count(), N, "{spec}");
        assert_eq!(merged.finalize_text().unwrap(), expected, "{spec}");
        // ...and out of order (merge must commute for these states).
        let mut reordered = build_session(spec).unwrap();
        for s in [&snapshots[2], &snapshots[0], &snapshots[1]] {
            reordered.merge_snapshot(s).unwrap();
        }
        assert_eq!(
            reordered.finalize_text().unwrap(),
            expected,
            "{spec}: out-of-order merge"
        );
    }
}

#[test]
fn bulk_sharded_ingest_equals_line_by_line() {
    // Large enough to take the pool-sharded path when the pool has
    // workers (CI runs this suite under LDP_POOL_THREADS=2).
    let spec = "grr:eps=1,d=8";
    let gen = build_session(spec).unwrap();
    let reports = gen.gen_reports(12_000, 7).unwrap();
    let mut bulk = build_session(spec).unwrap();
    bulk.ingest_text(&reports).unwrap();
    let mut serial = build_session(spec).unwrap();
    for line in reports.lines() {
        serial.ingest_line(line).unwrap();
    }
    assert_eq!(bulk.count(), serial.count());
    assert_eq!(
        bulk.finalize_text().unwrap(),
        serial.finalize_text().unwrap()
    );
}

#[test]
fn corrupted_snapshots_are_rejected_not_absorbed() {
    for spec in ["sw-ems:eps=1,d=32", "pm:eps=1", "hh:eps=1,d=16"] {
        let mut session = build_session(spec).unwrap();
        let reports = session.gen_reports(300, 3).unwrap();
        session.ingest_text(&reports).unwrap();
        let good = session.snapshot_text();
        // Flip one digit somewhere in the body.
        let body_start = good.lines().take(5).map(|l| l.len() + 1).sum::<usize>();
        let idx = good[body_start..]
            .find(|c: char| c.is_ascii_digit() && c != '9')
            .map(|i| i + body_start)
            .unwrap();
        let mut corrupted = good.clone();
        corrupted.replace_range(idx..=idx, "9");
        let mut fresh = build_session(spec).unwrap();
        let err = fresh.restore(&corrupted).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{spec}: {err}");
        // The failed restore left the session untouched and usable.
        assert_eq!(fresh.count(), 0);
        fresh.restore(&good).unwrap();
        assert_eq!(fresh.count(), 300);
    }
}

#[test]
fn truncated_snapshots_are_rejected_at_every_line_boundary() {
    let spec = "hh:eps=1,d=16";
    let mut session = build_session(spec).unwrap();
    let reports = session.gen_reports(200, 5).unwrap();
    session.ingest_text(&reports).unwrap();
    let good = session.snapshot_text();
    let total_lines = good.lines().count();
    let mut offset = 0;
    for (i, line) in good.lines().enumerate() {
        offset += line.len() + 1;
        if i + 1 == total_lines {
            break; // the full file is valid
        }
        let mut fresh = build_session(spec).unwrap();
        assert!(
            fresh.restore(&good[..offset]).is_err(),
            "truncation after line {i} must be rejected"
        );
    }
    // Mid-line truncation as well.
    let mut fresh = build_session(spec).unwrap();
    assert!(fresh.restore(&good[..good.len() - 2]).is_err());
}

#[test]
fn cross_configuration_snapshots_are_rejected() {
    let mut a = build_session("sw-ems:eps=1,d=32").unwrap();
    let reports = a.gen_reports(200, 1).unwrap();
    a.ingest_text(&reports).unwrap();
    let snap = a.snapshot_text();

    // Different ε, different granularity, different reconstruction,
    // different family: all refused, for restore and merge alike.
    for other in [
        "sw-ems:eps=2,d=32",
        "sw-ems:eps=1,d=64",
        "sw-em:eps=1,d=32",
        "pm:eps=1",
        "grr:eps=1,d=32",
    ] {
        let mut b = build_session(other).unwrap();
        assert!(
            matches!(b.restore(&snap), Err(CollectorError::Core(_))),
            "{other} restore must be refused"
        );
        assert!(
            b.merge_snapshot(&snap).is_err(),
            "{other} merge must be refused"
        );
        assert_eq!(b.count(), 0, "{other}: rejected snapshot must not leak");
    }
}

#[test]
fn empty_window_semantics_are_pinned() {
    // Ingesting an empty stream is a no-op, not an error.
    for spec in SPECS {
        let mut s = build_session(spec).unwrap();
        assert_eq!(s.ingest_text("").unwrap(), 0, "{spec}");
        assert_eq!(s.ingest_text("\n  \n\n").unwrap(), 0, "{spec}");
        assert_eq!(s.count(), 0, "{spec}");
        // An empty snapshot round-trips (a freshly started window can
        // crash before its first report).
        let snap = s.snapshot_text();
        let mut fresh = build_session(spec).unwrap();
        fresh.restore(&snap).unwrap();
        assert_eq!(fresh.count(), 0, "{spec}");
    }
    // Finalizing an empty window: distribution reconstructions refuse
    // (EM needs at least one report), debiasing oracles yield the
    // all-zero frequency vector, mean mechanisms yield 0 — exactly the
    // table in docs/OPERATIONS.md.
    for spec in [
        "sw-ems:eps=1,d=32",
        "cfo-binning:eps=1,d=64,bins=16",
        "hh:eps=1,d=16",
        "haar-hrr:eps=1,d=16",
    ] {
        let s = build_session(spec).unwrap();
        assert!(
            s.finalize_text().is_err(),
            "{spec} must refuse an empty window"
        );
    }
    for spec in [
        "grr:eps=1,d=4",
        "oue:eps=1,d=4",
        "olh:eps=1,d=4",
        "hrr:eps=1,d=4",
    ] {
        let s = build_session(spec).unwrap();
        let text = s.finalize_text().unwrap();
        assert!(
            text.lines().all(|l| l.parse::<f64>().unwrap() == 0.0),
            "{spec}: empty window finalizes to zeros"
        );
    }
    for spec in ["pm:eps=1", "sr:eps=1", "hybrid:eps=2"] {
        let s = build_session(spec).unwrap();
        assert_eq!(s.finalize_text().unwrap(), "0\n", "{spec}");
    }
}

#[test]
fn duplicate_lines_are_counted_twice_by_design() {
    // The collector is at-least-once: it absorbs every line it is given
    // and never deduplicates (exactly-once is the replay log's job — see
    // docs/OPERATIONS.md). Feeding the same stream twice therefore
    // equals one stream with every report doubled.
    let spec = "grr:eps=1,d=8";
    let mut twice = build_session(spec).unwrap();
    let reports = twice.gen_reports(500, 11).unwrap();
    twice.ingest_text(&reports).unwrap();
    twice.ingest_text(&reports).unwrap();
    assert_eq!(twice.count(), 1_000);
    let mut doubled = build_session(spec).unwrap();
    doubled.ingest_text(&format!("{reports}{reports}")).unwrap();
    assert_eq!(
        twice.finalize_text().unwrap(),
        doubled.finalize_text().unwrap()
    );
    // The resume path, by contrast, is exactly-once over the replay log:
    // restoring the full window's snapshot and replaying the same log
    // absorbs nothing new.
    let snap = twice.snapshot_text();
    let mut resumed = build_session(spec).unwrap();
    resumed.restore(&snap).unwrap();
    let absorbed = ingest_resuming(resumed.as_mut(), &format!("{reports}{reports}")).unwrap();
    assert_eq!(absorbed, 0);
    assert_eq!(resumed.count(), 1_000);
}

#[test]
fn malformed_report_lines_reject_the_batch_atomically() {
    for spec in ["sw-ems:eps=1,d=32", "oue:eps=1,d=8", "pm:eps=1"] {
        let mut session = build_session(spec).unwrap();
        let reports = session.gen_reports(100, 13).unwrap();
        let poisoned = format!("{reports}definitely-not-a-report\n");
        assert!(session.ingest_text(&poisoned).is_err(), "{spec}");
        assert_eq!(session.count(), 0, "{spec}: all-or-nothing ingest");
        // The window remains usable.
        session.ingest_text(&reports).unwrap();
        assert_eq!(session.count(), 100, "{spec}");
    }
}
