//! Failure-injection and edge-case tests: degenerate populations, extreme
//! parameters, pathological report streams — everything that must degrade
//! gracefully (typed errors or safe fallbacks) rather than panic or corrupt
//! estimates.

use sw_ldp::prelude::*;
use sw_ldp::sw::reconstruct;

#[test]
fn em_handles_all_reports_in_one_bucket() {
    // All mass in a single output bucket: EM must converge to a valid
    // distribution (concentrated around the compatible inputs).
    let pipeline = SwPipeline::new(1.0, 16).unwrap();
    let mut counts = vec![0.0; 16];
    counts[7] = 10_000.0;
    let result = pipeline.reconstruct(&counts, &Reconstruction::Ems).unwrap();
    let probs = result.histogram.probs();
    assert!(probs.iter().all(|&p| p.is_finite() && p >= 0.0));
    assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
}

#[test]
fn em_handles_sparse_counts_with_zero_buckets() {
    let pipeline = SwPipeline::new(1.0, 32).unwrap();
    let mut counts = vec![0.0; 32];
    counts[0] = 3.0;
    counts[31] = 3.0;
    let result = pipeline.reconstruct(&counts, &Reconstruction::Em).unwrap();
    assert!(result
        .histogram
        .probs()
        .iter()
        .all(|&p| p.is_finite() && p >= 0.0));
}

#[test]
fn tiny_populations_still_produce_valid_distributions() {
    // Two users is the bare minimum for every method that needs one report.
    let values = [0.2, 0.8];
    let mut rng = SplitMix64::new(6001);
    let pipeline = SwPipeline::new(1.0, 16).unwrap();
    let h = pipeline
        .estimate(&values, &Reconstruction::Ems, &mut rng)
        .unwrap();
    assert!((h.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);

    let est = BinningEstimator::new(4, 16, 1.0).unwrap();
    let h = est.estimate(&values, &mut rng).unwrap();
    assert!((h.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
}

#[test]
fn hh_with_fewer_users_than_levels_fills_empty_levels_uniformly() {
    // A 4-level tree receiving 2 users leaves levels empty; collection must
    // still succeed and produce a consistent tree.
    let hh = HierarchicalHistogram::new(4, 256, 1.0).unwrap();
    let mut rng = SplitMix64::new(6002);
    let raw = hh.collect(&[3, 200], &mut rng).unwrap();
    let consistent = hh.make_consistent(&raw).unwrap();
    assert!(consistent.consistency_gap(hh.shape()) < 1e-9);
    let sum: f64 = consistent.leaves().iter().sum();
    assert!((sum - 1.0).abs() < 1e-9);
}

#[test]
fn haarhrr_with_one_user_per_level_is_stable() {
    let est = HaarHrr::new(16, 1.0).unwrap();
    let mut rng = SplitMix64::new(6003);
    let leaves = est.estimate_leaves(&[5, 6, 7, 8], &mut rng).unwrap();
    assert_eq!(leaves.len(), 16);
    assert!(leaves.iter().all(|l| l.is_finite()));
    // Leaves always sum to the public total.
    assert!((leaves.iter().sum::<f64>() - 1.0).abs() < 1e-9);
}

#[test]
fn extreme_epsilons_do_not_break_mechanisms() {
    let mut rng = SplitMix64::new(6004);
    // Very small epsilon: mechanisms become nearly uniform but stay valid.
    let tiny = SwPipeline::new(1e-4, 16).unwrap();
    assert!(tiny.wave().b() > 0.49, "b should approach 1/2");
    let values: Vec<f64> = (0..2000).map(|i| (i % 100) as f64 / 100.0).collect();
    let h = tiny
        .estimate(&values, &Reconstruction::Ems, &mut rng)
        .unwrap();
    assert!((h.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);

    // Very large epsilon: b approaches 0 and recovery is near-exact.
    let large = SwPipeline::new(12.0, 16).unwrap();
    assert!(large.wave().b() < 0.01);
    let concentrated = vec![0.55; 5000];
    let h = large
        .estimate(&concentrated, &Reconstruction::Ems, &mut rng)
        .unwrap();
    assert!(h.range_mass(0.4, 0.7) > 0.95);
}

#[test]
fn discrete_sw_minimum_domain() {
    // d = 2 with b = 0 degenerates to binary randomized response.
    let sw = DiscreteSw::with_bandwidth(2, 0, 1.0).unwrap();
    assert_eq!(sw.output_size(), 2);
    let mut rng = SplitMix64::new(6005);
    let mut kept = 0;
    let n = 50_000;
    for _ in 0..n {
        if sw.randomize(1, &mut rng).unwrap() == 1 {
            kept += 1;
        }
    }
    let frac = kept as f64 / n as f64;
    let expect = 1f64.exp() / (1f64.exp() + 1.0);
    assert!((frac - expect).abs() < 0.01, "{frac} vs {expect}");
}

#[test]
fn pipeline_with_asymmetric_bucket_counts() {
    // d̃ < d (underdetermined) and d̃ > d (overdetermined) both reconstruct.
    let wave = Wave::square(0.25, 1.5).unwrap();
    let values: Vec<f64> = (0..20_000).map(|i| (i % 500) as f64 / 500.0).collect();
    let mut rng = SplitMix64::new(6006);
    for (d, d_tilde) in [(32usize, 16usize), (16, 48)] {
        let pipeline = SwPipeline::with_wave(wave, d, d_tilde).unwrap();
        let h = pipeline
            .estimate(&values, &Reconstruction::Ems, &mut rng)
            .unwrap();
        assert_eq!(h.len(), d);
        assert!((h.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}

#[test]
fn mean_mechanisms_survive_constant_populations() {
    // Zero-variance input: variance estimate must clamp at >= 0.
    let values = vec![0.5; 10_000];
    let mut rng = SplitMix64::new(6007);
    for mech in [MeanMechanism::Sr, MeanMechanism::Pm] {
        let proto = MeanVariance::new(mech, 1.0).unwrap();
        let est = proto.estimate(&values, &mut rng).unwrap();
        assert!((est.mean - 0.5).abs() < 0.05, "{mech:?} mean {}", est.mean);
        assert!(est.variance >= 0.0);
        assert!(est.variance < 0.05, "{mech:?} var {}", est.variance);
    }
}

#[test]
fn wave_with_very_wide_bandwidth_is_valid() {
    // b > 1: output domain is much wider than the input; the density ratio
    // and total mass invariants must still hold.
    let wave = Wave::square(2.0, 1.0).unwrap();
    assert!(wave.output_lo() < -1.9 && wave.output_hi() > 2.9);
    let mass = wave.mass_on_interval(0.5, wave.output_lo(), wave.output_hi());
    assert!((mass - 1.0).abs() < 1e-9);
    let mut rng = SplitMix64::new(6008);
    for _ in 0..1000 {
        let r = wave.randomize(0.5, &mut rng).unwrap();
        assert!(r >= wave.output_lo() && r <= wave.output_hi());
    }
}

#[test]
fn out_of_domain_bucket_values_are_rejected_by_hierarchy_methods() {
    let hh = HierarchicalHistogram::new(4, 64, 1.0).unwrap();
    let mut rng = SplitMix64::new(6009);
    assert!(hh.collect(&[64], &mut rng).is_err());
    let haar = HaarHrr::new(64, 1.0).unwrap();
    assert!(haar.estimate_leaves(&[64], &mut rng).is_err());
}

#[test]
fn reconstruct_rejects_malformed_counts() {
    let pipeline = SwPipeline::new(1.0, 16).unwrap();
    let m = pipeline.transition();
    assert!(reconstruct(m, &[f64::NAN; 16], &EmConfig::ems()).is_err());
    assert!(reconstruct(m, &[-1.0; 16], &EmConfig::ems()).is_err());
    assert!(reconstruct(m, &[0.0; 16], &EmConfig::ems()).is_err());
    assert!(reconstruct(m, &[1.0; 15], &EmConfig::ems()).is_err());
}

#[test]
fn admm_handles_degenerate_all_zero_level_estimates() {
    use sw_ldp::hierarchy::{hh_admm_histogram, HhRaw, TreeShape, TreeValues};
    let shape = TreeShape::new(2, 8).unwrap();
    let mut tree = TreeValues::zeros(&shape);
    tree.levels[0][0] = 1.0;
    // Noisy levels that sum to nothing useful.
    for level in tree.levels.iter_mut().skip(1) {
        for (i, v) in level.iter_mut().enumerate() {
            *v = if i % 2 == 0 { -0.3 } else { 0.1 };
        }
    }
    let raw = HhRaw::new(shape, tree, vec![1e-12, 1.0, 1.0, 1.0]).unwrap();
    let h = hh_admm_histogram(&shape, &raw, AdmmConfig::default()).unwrap();
    assert!((h.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    assert!(h.probs().iter().all(|&p| p >= 0.0));
}
