//! The [`Strategy`] trait, primitive range strategies, and combinators.

use crate::test_runner::TestRng;
use core::ops::{Range, RangeInclusive};

/// A recipe for generating values of a given type.
///
/// `sample` returns `None` when the drawn value was rejected by a filter;
/// the test runner retries with fresh randomness.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value, or `None` if this draw was filtered out.
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Transforms generated values with `f`, rejecting draws where `f`
    /// returns `None`. `whence` labels the filter in diagnostics.
    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            _whence: whence,
            f,
        }
    }

    /// Keeps only generated values for which `f` returns `true`.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            _whence: whence,
            f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
        (**self).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.sample(rng).map(&self.f)
    }
}

/// Strategy returned by [`Strategy::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    _whence: &'static str,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.sample(rng).and_then(&self.f)
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    _whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.sample(rng).filter(|v| (self.f)(v))
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty strategy range");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                Some(self.start.wrapping_add((rng.next_u64() % width) as $t))
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let width = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if width == 0 {
                    return Some(rng.next_u64() as $t);
                }
                Some(lo.wrapping_add((rng.next_u64() % width) as $t))
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> Option<f64> {
        assert!(self.start < self.end, "empty strategy range");
        Some(self.start + rng.unit_f64() * (self.end - self.start))
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> Option<f64> {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty strategy range");
        Some(lo + rng.unit_f64_inclusive() * (hi - lo))
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> Option<f32> {
        assert!(self.start < self.end, "empty strategy range");
        Some(self.start + rng.unit_f64() as f32 * (self.end - self.start))
    }
}
