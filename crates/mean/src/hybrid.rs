//! The Hybrid mechanism (Wang et al., ICDE 2019): a randomized mixture of
//! PM and SR.
//!
//! PM beats SR at large ε and loses at small ε (paper §2.2 / Figure 4).
//! Wang et al.'s remedy is to flip a coin: with probability `β` answer via
//! PM, otherwise via SR, where `β = 1 − e^{-ε/2}` for `ε > ε* ≈ 0.61` and
//! `β = 0` below. The mixture is unbiased (both components are) and its
//! worst-case variance dominates both components across the whole ε range.
//! Included as an extension — the paper evaluates SR and PM separately, and
//! Hybrid is the natural deployment choice.

use crate::error::{check_signed, MeanError};
use crate::pm::Pm;
use crate::sr::Sr;
use ldp_core::Epsilon;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The ε threshold above which the PM arm is used at all
/// (`ε* = ln((−5 + 2·(6353 − 405·√241)^{1/3} + 2·(6353 + 405·√241)^{1/3})/27)`
/// ≈ 0.610986 in Wang et al.; the simpler operational rule `β = 0` for
/// `ε ≤ 0.61` is what their implementation uses).
pub const HYBRID_EPS_STAR: f64 = 0.61;

/// One Hybrid report: which arm produced it and the perturbed value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum HybridReport {
    /// Produced by the Piecewise Mechanism.
    Pm(f64),
    /// Produced by Stochastic Rounding (±1 before debiasing).
    Sr(f64),
}

/// The Hybrid mean-estimation mechanism over `[-1, 1]`.
#[derive(Debug, Clone, Copy)]
pub struct Hybrid {
    pm: Pm,
    sr: Sr,
    /// Probability of using the PM arm.
    beta: f64,
}

impl Hybrid {
    /// Creates a Hybrid mechanism with budget `eps`.
    pub fn new(eps: f64) -> Result<Self, MeanError> {
        Epsilon::new(eps)?;
        let beta = if eps > HYBRID_EPS_STAR {
            1.0 - (-eps / 2.0).exp()
        } else {
            0.0
        };
        Ok(Hybrid {
            pm: Pm::new(eps)?,
            sr: Sr::new(eps)?,
            beta,
        })
    }

    /// The PM-arm probability β.
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The privacy budget ε.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.sr.epsilon()
    }

    /// The PM arm (shared with the `Mechanism` impl).
    pub(crate) fn pm(&self) -> &Pm {
        &self.pm
    }

    /// Client side: randomizes `v ∈ [-1, 1]`.
    pub fn randomize<R: Rng + ?Sized>(
        &self,
        v: f64,
        rng: &mut R,
    ) -> Result<HybridReport, MeanError> {
        check_signed(v)?;
        if rng.gen::<f64>() < self.beta {
            Ok(HybridReport::Pm(self.pm.randomize(v, rng)?))
        } else {
            Ok(HybridReport::Sr(self.sr.randomize(v, rng)?))
        }
    }

    /// Debiases one report (PM reports are already unbiased; SR reports are
    /// scaled by `1/(p-q)`).
    #[must_use]
    pub fn debias(&self, report: HybridReport) -> f64 {
        match report {
            HybridReport::Pm(v) => v,
            HybridReport::Sr(v) => self.sr.debias(v),
        }
    }

    /// Server side: the unbiased mean estimate.
    #[must_use]
    pub fn estimate_mean(&self, reports: &[HybridReport]) -> f64 {
        if reports.is_empty() {
            return 0.0;
        }
        let sum: f64 = reports.iter().map(|&r| self.debias(r)).sum();
        sum / reports.len() as f64
    }

    /// Variance of one debiased report for input `v`: the β-mixture of the
    /// component variances (both components are unbiased, so the mixture
    /// variance is the mixture of second moments minus `v²`).
    #[must_use]
    pub fn report_variance(&self, v: f64) -> f64 {
        let pm_second = self.pm.report_variance(v) + v * v;
        let gamma = {
            // SR second moment is 1/(p-q)² (the debiased report is ±1/(p-q)).
            let e = self.sr.epsilon().exp();
            let pq = (e - 1.0) / (e + 1.0);
            1.0 / (pq * pq)
        };
        self.beta * pm_second + (1.0 - self.beta) * gamma - v * v
    }

    /// Full protocol over values in `[-1, 1]`.
    pub fn run<R: Rng + ?Sized>(&self, values: &[f64], rng: &mut R) -> Result<f64, MeanError> {
        let mut sum = 0.0;
        for &v in values {
            sum += self.debias(self.randomize(v, rng)?);
        }
        if values.is_empty() {
            return Ok(0.0);
        }
        Ok(sum / values.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_numeric::SplitMix64;

    #[test]
    fn construction_and_beta_rule() {
        assert!(Hybrid::new(0.0).is_err());
        let low = Hybrid::new(0.5).unwrap();
        assert_eq!(low.beta(), 0.0, "below eps* the PM arm is disabled");
        let high = Hybrid::new(2.0).unwrap();
        assert!((high.beta() - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
    }

    #[test]
    fn reports_come_from_the_expected_arms() {
        let mut rng = SplitMix64::new(7001);
        let low = Hybrid::new(0.5).unwrap();
        for _ in 0..200 {
            match low.randomize(0.3, &mut rng).unwrap() {
                HybridReport::Sr(v) => assert!(v == 1.0 || v == -1.0),
                HybridReport::Pm(_) => panic!("PM arm must be off below eps*"),
            }
        }
        let high = Hybrid::new(3.0).unwrap();
        let mut pm_seen = 0;
        let n = 10_000;
        for _ in 0..n {
            if matches!(high.randomize(0.3, &mut rng).unwrap(), HybridReport::Pm(_)) {
                pm_seen += 1;
            }
        }
        let frac = f64::from(pm_seen) / f64::from(n);
        assert!(
            (frac - high.beta()).abs() < 0.02,
            "{frac} vs {}",
            high.beta()
        );
    }

    #[test]
    fn mean_estimate_is_unbiased() {
        for eps in [0.5, 1.0, 3.0] {
            let h = Hybrid::new(eps).unwrap();
            let mut rng = SplitMix64::new(7002);
            let values: Vec<f64> = (0..150_000)
                .map(|i| if i % 4 == 0 { 0.9 } else { -0.1 })
                .collect();
            // True mean: 0.25·0.9 − 0.75·0.1 = 0.15.
            let est = h.run(&values, &mut rng).unwrap();
            assert!((est - 0.15).abs() < 0.03, "eps={eps}: {est}");
        }
    }

    #[test]
    fn variance_dominates_worst_component_at_extremes() {
        // At large eps the hybrid should be close to PM (better than SR);
        // at small eps it equals SR exactly.
        let v = 0.5;
        let small = Hybrid::new(0.4).unwrap();
        assert!((small.report_variance(v) - Sr::new(0.4).unwrap().report_variance(v)).abs() < 1e-9);
        let large = Hybrid::new(4.0).unwrap();
        let sr_var = Sr::new(4.0).unwrap().report_variance(v);
        assert!(large.report_variance(v) < sr_var);
    }

    #[test]
    fn empirical_variance_matches_formula() {
        let h = Hybrid::new(2.0).unwrap();
        let v = -0.3;
        let mut rng = SplitMix64::new(7003);
        let n = 300_000;
        let mut mean = 0.0;
        let mut sq = 0.0;
        for _ in 0..n {
            let x = h.debias(h.randomize(v, &mut rng).unwrap());
            mean += x;
            sq += x * x;
        }
        mean /= n as f64;
        let var = sq / n as f64 - mean * mean;
        let expect = h.report_variance(v);
        assert!((var - expect).abs() / expect < 0.05, "{var} vs {expect}");
    }

    #[test]
    fn rejects_out_of_domain() {
        let h = Hybrid::new(1.0).unwrap();
        let mut rng = SplitMix64::new(7004);
        assert!(h.randomize(1.2, &mut rng).is_err());
        assert_eq!(h.estimate_mean(&[]), 0.0);
    }
}
