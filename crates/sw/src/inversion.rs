//! Unbiased matrix-inversion reconstruction — the classical alternative to
//! EM that the workspace includes as an ablation baseline.
//!
//! If `y` is the normalized histogram of perturbed reports, then
//! `E[y] = M·x`, so `x̂ = M⁻¹·y` is the unbiased estimate of the input
//! distribution (Kairouz et al., ICML 2016 call this the *empirical*
//! estimator). It is cheap and exact in expectation but ignores the
//! constraint `x ≥ 0`, amplifying noise through the ill-conditioned
//! columns; Norm-Sub repairs the result into a distribution. Comparing this
//! against EM/EMS quantifies how much the paper's MLE machinery buys.

use crate::error::SwError;
use ldp_numeric::{Histogram, Matrix};

/// Norm-Sub over a signed vector (local copy of the CFO crate's algorithm
/// to keep `ldp-sw` dependency-light; see `ldp_cfo::postprocess` for the
/// annotated version).
fn norm_sub(estimates: &[f64], target: f64) -> Vec<f64> {
    let n = estimates.len();
    let mut x = estimates.to_vec();
    for _ in 0..=n {
        let mut positive = 0usize;
        let mut pos_sum = 0.0;
        for &v in &x {
            if v > 0.0 {
                positive += 1;
                pos_sum += v;
            }
        }
        if positive == 0 {
            return vec![target / n as f64; n];
        }
        let delta = (pos_sum - target) / positive as f64;
        let mut new_negative = false;
        for v in &mut x {
            if *v > 0.0 {
                *v -= delta;
                new_negative |= *v < 0.0;
            } else {
                *v = 0.0;
            }
        }
        for v in &mut x {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        if !new_negative {
            break;
        }
    }
    x
}

/// The ridge parameter used by [`invert_signed`]: tiny enough not to bias
/// well-conditioned systems, large enough to make the sinc-zero-singular
/// square-wave operators solvable.
pub const INVERSION_RIDGE: f64 = 1e-9;

/// The raw (signed) least-squares inversion estimate, solving
/// `min ‖M·x − counts/n‖² + λ‖x‖²` with a tiny ridge `λ`.
///
/// A plain inverse does not always exist: the square wave is a boxcar
/// kernel whose spectrum has sinc zeros, so for some `(b, d)` combinations
/// `M` is numerically singular. The ridge-regularized normal equations are
/// the standard remedy and coincide with `M⁻¹` when `M` is well
/// conditioned.
pub fn invert_signed(m: &Matrix, counts: &[f64]) -> Result<Vec<f64>, SwError> {
    if counts.len() != m.rows() {
        return Err(SwError::Reconstruction(format!(
            "got {} count buckets, transition matrix expects {}",
            counts.len(),
            m.rows()
        )));
    }
    let total: f64 = counts.iter().sum();
    if total <= 0.0 {
        return Err(SwError::Reconstruction(
            "need at least one report to reconstruct".into(),
        ));
    }
    let y: Vec<f64> = counts.iter().map(|&c| c / total).collect();
    m.ridge_solve(&y, INVERSION_RIDGE)
        .map_err(|e| SwError::Reconstruction(e.to_string()))
}

/// Full inversion baseline: unbiased inversion followed by Norm-Sub.
pub fn reconstruct_inversion(m: &Matrix, counts: &[f64]) -> Result<Histogram, SwError> {
    let signed = invert_signed(m, counts)?;
    let repaired = norm_sub(&signed, 1.0);
    Histogram::from_probs(repaired).map_err(|e| SwError::Reconstruction(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transition::transition_matrix;
    use crate::wave::Wave;
    use crate::{EmConfig, Reconstruction, SwPipeline};
    use ldp_numeric::SplitMix64;

    #[test]
    fn inversion_recovers_truth_from_expected_counts() {
        let wave = Wave::square(0.25, 1.0).unwrap();
        let d = 16;
        let m = transition_matrix(&wave, d, d).unwrap();
        let mut truth = vec![0.0; d];
        truth[2] = 0.4;
        truth[9] = 0.6;
        let expected = m.matvec(&truth).unwrap();
        let counts: Vec<f64> = expected.iter().map(|p| p * 1e6).collect();
        let signed = invert_signed(&m, &counts).unwrap();
        for (got, want) in signed.iter().zip(&truth) {
            // The tiny ridge introduces bias of order sqrt(lambda).
            assert!((got - want).abs() < 1e-4, "{got} vs {want}");
        }
        let hist = reconstruct_inversion(&m, &counts).unwrap();
        for (got, want) in hist.probs().iter().zip(&truth) {
            assert!((got - want).abs() < 1e-4);
        }
    }

    #[test]
    fn inversion_validates_inputs() {
        let wave = Wave::square(0.25, 1.0).unwrap();
        let square = transition_matrix(&wave, 8, 8).unwrap();
        assert!(invert_signed(&square, &[1.0; 7]).is_err());
        assert!(invert_signed(&square, &[0.0; 8]).is_err());
    }

    #[test]
    fn inversion_supports_rectangular_matrices_via_least_squares() {
        // d̃ > d: overdetermined least squares.
        let wave = Wave::square(0.25, 2.0).unwrap();
        let m = transition_matrix(&wave, 8, 12).unwrap();
        let mut truth = vec![0.0; 8];
        truth[1] = 0.5;
        truth[6] = 0.5;
        let counts: Vec<f64> = m.matvec(&truth).unwrap().iter().map(|p| p * 1e6).collect();
        let signed = invert_signed(&m, &counts).unwrap();
        for (got, want) in signed.iter().zip(&truth) {
            assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
    }

    #[test]
    fn ems_beats_inversion_on_noisy_reports() {
        // The reason the paper uses MLE: at realistic noise the inversion
        // estimate is far noisier than EMS.
        let d = 64;
        let eps = 0.5;
        let pipeline = SwPipeline::new(eps, d).unwrap();
        let mut rng = SplitMix64::new(4001);
        // Smooth truth.
        let values: Vec<f64> = (0..40_000)
            .map(|i| 0.25 + 0.5 * ((i * 31) % 1000) as f64 / 1000.0)
            .collect();
        let mut truth_counts = vec![0.0; d];
        for &v in &values {
            truth_counts[ldp_numeric::histogram::bucket_of(v, d)] += 1.0;
        }
        let truth = Histogram::from_probs(truth_counts).unwrap();

        let reports: Vec<f64> = values
            .iter()
            .map(|&v| pipeline.randomize(v, &mut rng).unwrap())
            .collect();
        let counts = pipeline.aggregate(&reports);
        let inv = reconstruct_inversion(pipeline.transition(), &counts).unwrap();
        let ems = pipeline
            .reconstruct(&counts, &Reconstruction::Ems)
            .unwrap()
            .histogram;

        let w1 = |est: &Histogram| -> f64 {
            truth
                .cdf()
                .iter()
                .zip(est.cdf().iter())
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
                / d as f64
        };
        assert!(
            w1(&ems) < w1(&inv),
            "EMS {} should beat inversion {}",
            w1(&ems),
            w1(&inv)
        );
    }

    #[test]
    fn inversion_and_em_agree_in_the_noiseless_limit() {
        let d = 16;
        let wave = Wave::square(0.2, 6.0).unwrap();
        let m = transition_matrix(&wave, d, d).unwrap();
        let mut truth = vec![1.0 / d as f64; d];
        truth[4] += 0.3;
        let s: f64 = truth.iter().sum();
        for t in &mut truth {
            *t /= s;
        }
        let counts: Vec<f64> = m.matvec(&truth).unwrap().iter().map(|p| p * 1e7).collect();
        let inv = reconstruct_inversion(&m, &counts).unwrap();
        let em = crate::em::reconstruct(
            &m,
            &counts,
            &EmConfig {
                ll_threshold: 1e-9,
                max_iterations: 100_000,
                min_iterations: 2,
                smoothing: None,
            },
        )
        .unwrap()
        .histogram;
        for ((a, b), t) in inv.probs().iter().zip(em.probs()).zip(&truth) {
            assert!((a - t).abs() < 1e-6, "inversion {a} vs truth {t}");
            assert!((b - t).abs() < 5e-3, "EM {b} vs truth {t}");
        }
    }
}
