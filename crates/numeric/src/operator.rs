//! The [`LinearOperator`] abstraction: anything that can apply `y = A·x`
//! and `y = Aᵀ·x` into preallocated buffers.
//!
//! The EM/EMS reconstruction loop only ever *applies* the transition
//! matrix — it never inspects entries. Abstracting the application lets
//! structured implementations (for example the banded-plus-baseline form of
//! Square Wave transition matrices in `ldp-sw`) replace the dense O(d·d̃)
//! matvec with an O(d + d̃) one without changing any solver code. The
//! dense [`Matrix`] implements the trait by delegating to
//! its existing kernels, so every call site accepts either representation.

use crate::error::NumericError;
use crate::matrix::Matrix;

/// A real linear map `A: R^cols → R^rows` that can be applied (and
/// transpose-applied) into caller-provided buffers.
///
/// The trait is object-safe: solvers can take `&dyn LinearOperator` or be
/// generic over `Op: LinearOperator + ?Sized`.
pub trait LinearOperator {
    /// Number of rows (the output dimension of [`Self::matvec_into`]).
    fn rows(&self) -> usize;

    /// Number of columns (the input dimension of [`Self::matvec_into`]).
    fn cols(&self) -> usize;

    /// `y = A·x`, writing into a preallocated buffer.
    ///
    /// `x` must have length [`Self::cols`] and `y` length [`Self::rows`].
    fn matvec_into(&self, x: &[f64], y: &mut [f64]) -> Result<(), NumericError>;

    /// `y = Aᵀ·x`, writing into a preallocated buffer.
    ///
    /// `x` must have length [`Self::rows`] and `y` length [`Self::cols`].
    fn matvec_transpose_into(&self, x: &[f64], y: &mut [f64]) -> Result<(), NumericError>;

    /// `A·x` into a fresh vector.
    fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, NumericError> {
        let mut y = vec![0.0; self.rows()];
        self.matvec_into(x, &mut y)?;
        Ok(y)
    }

    /// `Aᵀ·x` into a fresh vector.
    fn matvec_transpose(&self, x: &[f64]) -> Result<Vec<f64>, NumericError> {
        let mut y = vec![0.0; self.cols()];
        self.matvec_transpose_into(x, &mut y)?;
        Ok(y)
    }
}

impl LinearOperator for Matrix {
    fn rows(&self) -> usize {
        Matrix::rows(self)
    }

    fn cols(&self) -> usize {
        Matrix::cols(self)
    }

    fn matvec_into(&self, x: &[f64], y: &mut [f64]) -> Result<(), NumericError> {
        Matrix::matvec_into(self, x, y)
    }

    fn matvec_transpose_into(&self, x: &[f64], y: &mut [f64]) -> Result<(), NumericError> {
        Matrix::matvec_transpose_into(self, x, y)
    }
}

/// Checks the buffer lengths a [`LinearOperator::matvec_into`] call expects.
///
/// Shared by structured operator implementations so their error messages
/// match the dense matrix's.
pub fn check_matvec_dims(
    rows: usize,
    cols: usize,
    x: &[f64],
    y: &[f64],
) -> Result<(), NumericError> {
    if x.len() != cols || y.len() != rows {
        return Err(NumericError::DimensionMismatch {
            expected: format!("x of length {cols}, y of length {rows}"),
            actual: format!("x of length {}, y of length {}", x.len(), y.len()),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apply_dyn(op: &dyn LinearOperator, x: &[f64]) -> Vec<f64> {
        op.matvec(x).unwrap()
    }

    #[test]
    fn matrix_implements_operator_consistently() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let x = [1.0, 0.5, -1.0];
        let via_trait = LinearOperator::matvec(&a, &x).unwrap();
        let direct = a.matvec(&x).unwrap();
        assert_eq!(via_trait, direct);
        let y = [2.0, -1.0];
        let via_trait = LinearOperator::matvec_transpose(&a, &y).unwrap();
        assert_eq!(via_trait, a.matvec_transpose(&y).unwrap());
        assert_eq!(LinearOperator::rows(&a), 2);
        assert_eq!(LinearOperator::cols(&a), 3);
    }

    #[test]
    fn trait_is_object_safe() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 2.0]).unwrap();
        let y = apply_dyn(&a, &[3.0, 4.0]);
        assert_eq!(y, vec![3.0, 8.0]);
    }

    #[test]
    fn provided_methods_validate_dims() {
        let a = Matrix::zeros(2, 3);
        assert!(LinearOperator::matvec(&a, &[1.0]).is_err());
        assert!(LinearOperator::matvec_transpose(&a, &[1.0]).is_err());
        assert!(check_matvec_dims(2, 3, &[0.0; 3], &[0.0; 2]).is_ok());
        assert!(check_matvec_dims(2, 3, &[0.0; 2], &[0.0; 2]).is_err());
        assert!(check_matvec_dims(2, 3, &[0.0; 3], &[0.0; 3]).is_err());
    }
}
