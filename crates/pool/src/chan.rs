//! A bounded multi-producer, single-consumer channel with **blocking
//! backpressure**.
//!
//! The collector's concurrent serve path needs exactly one queue shape:
//! many connection threads producing decoded batches, one absorber thread
//! consuming them, with a hard bound on in-flight work so a fast fleet of
//! forwarders cannot balloon the collector's memory. [`Sender::push`]
//! therefore **blocks** when the channel is full — backpressure propagates
//! to the TCP connection (the forwarder's next frame simply isn't acked
//! yet) instead of dropping or buffering unboundedly. Nothing is ever
//! silently discarded: every pushed value is either delivered to the
//! receiver or handed back in a [`SendError`] when the receiver is gone.
//!
//! Disconnection is symmetric and explicit:
//!
//! - when every [`Sender`] has been dropped, [`Receiver::pop`] drains the
//!   remaining values and then returns `None`;
//! - when the [`Receiver`] is dropped, every blocked and future
//!   [`Sender::push`] returns [`SendError`] carrying the rejected value.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;

/// The channel's shared core.
struct Chan<T> {
    state: Mutex<State<T>>,
    /// Producers park here while the buffer is full.
    not_full: Condvar,
    /// The consumer parks here while the buffer is empty.
    not_empty: Condvar,
}

struct State<T> {
    buf: VecDeque<T>,
    capacity: usize,
    senders: usize,
    receiver_alive: bool,
}

/// The value a [`Sender::push`] could not deliver because the receiver was
/// dropped. The payload is returned so the producer can retry elsewhere,
/// log it, or surface it — a bounded channel must never eat data silently.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "the channel's receiver was dropped")
    }
}

/// Creates a bounded MPSC channel holding at most `capacity` values
/// (clamped to ≥ 1). Producers clone the [`Sender`]; the single
/// [`Receiver`] is the consumer end.
#[must_use]
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(State {
            buf: VecDeque::new(),
            capacity: capacity.max(1),
            senders: 1,
            receiver_alive: true,
        }),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
    });
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

/// The producing end of a [`bounded`] channel. Cloneable; dropping the
/// last clone disconnects the channel (the receiver drains, then sees
/// `None`).
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Sender<T> {
    /// Delivers `value`, **blocking while the channel is full** — this is
    /// the backpressure edge. Returns `Err` with the value if the receiver
    /// has been dropped (nothing is ever silently discarded).
    pub fn push(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.chan.state.lock();
        loop {
            if !state.receiver_alive {
                return Err(SendError(value));
            }
            if state.buf.len() < state.capacity {
                state.buf.push_back(value);
                drop(state);
                self.chan.not_empty.notify_one();
                return Ok(());
            }
            self.chan.not_full.wait(&mut state);
        }
    }

    /// Non-blocking variant: delivers `value` only if there is room right
    /// now. Returns the value back on a full channel (`Err` with
    /// `full = true`) or a dropped receiver (`full = false`).
    pub fn try_push(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut state = self.chan.state.lock();
        if !state.receiver_alive {
            return Err(TrySendError { value, full: false });
        }
        if state.buf.len() < state.capacity {
            state.buf.push_back(value);
            drop(state);
            self.chan.not_empty.notify_one();
            Ok(())
        } else {
            Err(TrySendError { value, full: true })
        }
    }
}

/// The value and cause of a failed [`Sender::try_push`].
#[derive(Debug, PartialEq, Eq)]
pub struct TrySendError<T> {
    /// The undelivered value.
    pub value: T,
    /// `true` when the channel was full; `false` when the receiver was
    /// dropped.
    pub full: bool,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().senders += 1;
        Sender {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut state = self.chan.state.lock();
            state.senders -= 1;
            state.senders
        };
        if remaining == 0 {
            // Wake the consumer so it can observe the disconnect.
            self.chan.not_empty.notify_all();
        }
    }
}

/// The consuming end of a [`bounded`] channel.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Receiver<T> {
    /// Takes the next value in FIFO order, blocking while the channel is
    /// empty. Returns `None` once every sender has been dropped **and**
    /// the buffer is drained — the clean end-of-stream signal.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.chan.state.lock();
        loop {
            if let Some(value) = state.buf.pop_front() {
                drop(state);
                self.chan.not_full.notify_one();
                return Some(value);
            }
            if state.senders == 0 {
                return None;
            }
            self.chan.not_empty.wait(&mut state);
        }
    }

    /// Non-blocking variant of [`Receiver::pop`]: `None` means "nothing
    /// available right now", not necessarily disconnection.
    pub fn try_pop(&self) -> Option<T> {
        let mut state = self.chan.state.lock();
        let value = state.buf.pop_front();
        if value.is_some() {
            drop(state);
            self.chan.not_full.notify_one();
        }
        value
    }

    /// Values currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.chan.state.lock().buf.len()
    }

    /// Whether the buffer is currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fixed capacity this channel was created with.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.chan.state.lock().capacity
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.chan.state.lock().receiver_alive = false;
        // Unblock every producer parked on a full buffer.
        self.chan.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    #[test]
    fn fifo_order_within_one_producer() {
        let (tx, rx) = bounded(8);
        for i in 0..8 {
            tx.push(i).unwrap();
        }
        drop(tx);
        let drained: Vec<i32> = std::iter::from_fn(|| rx.pop()).collect();
        assert_eq!(drained, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn push_blocks_on_a_full_channel_instead_of_dropping() {
        let (tx, rx) = bounded(2);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        let third_delivered = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                tx.push(3).unwrap(); // must block until the consumer pops
                third_delivered.store(true, Ordering::SeqCst);
            });
            std::thread::sleep(Duration::from_millis(80));
            assert!(
                !third_delivered.load(Ordering::SeqCst),
                "push must block while the channel is full"
            );
            assert_eq!(rx.pop(), Some(1));
            // The blocked producer now gets its slot.
            while !third_delivered.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        // Nothing was dropped: every pushed value arrives, in order.
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), Some(3));
        drop(tx);
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn multi_producer_values_all_arrive() {
        let (tx, rx) = bounded(4);
        std::thread::scope(|s| {
            for p in 0..4 {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..25 {
                        tx.push(p * 100 + i).unwrap();
                    }
                });
            }
            drop(tx);
            let mut got: Vec<i32> = std::iter::from_fn(|| rx.pop()).collect();
            got.sort_unstable();
            let mut expected: Vec<i32> = (0..4)
                .flat_map(|p| (0..25).map(move |i| p * 100 + i))
                .collect();
            expected.sort_unstable();
            assert_eq!(got, expected);
        });
    }

    #[test]
    fn dropping_all_senders_disconnects_after_drain() {
        let (tx, rx) = bounded(4);
        let tx2 = tx.clone();
        tx.push("a").unwrap();
        drop(tx);
        tx2.push("b").unwrap();
        drop(tx2);
        assert_eq!(rx.pop(), Some("a"));
        assert_eq!(rx.pop(), Some("b"));
        assert_eq!(rx.pop(), None);
        assert_eq!(rx.pop(), None, "disconnect is sticky");
    }

    #[test]
    fn dropping_the_receiver_fails_pushes_with_the_value() {
        let (tx, rx) = bounded(1);
        tx.push(7).unwrap(); // fills the buffer
        std::thread::scope(|s| {
            let blocked = s.spawn(|| tx.push(8)); // parks on the full buffer
            std::thread::sleep(Duration::from_millis(50));
            drop(rx); // must wake and fail the parked producer
            assert_eq!(blocked.join().unwrap(), Err(SendError(8)));
        });
        assert_eq!(tx.push(9), Err(SendError(9)));
    }

    #[test]
    fn try_push_reports_full_and_disconnected_distinctly() {
        let (tx, rx) = bounded(1);
        tx.try_push(1).unwrap();
        let err = tx.try_push(2).unwrap_err();
        assert!(err.full);
        assert_eq!(err.value, 2);
        assert_eq!(rx.try_pop(), Some(1));
        assert_eq!(rx.try_pop(), None);
        drop(rx);
        let err = tx.try_push(3).unwrap_err();
        assert!(!err.full);
    }

    #[test]
    fn len_and_capacity_observe_the_buffer() {
        let (tx, rx) = bounded(3);
        assert_eq!(rx.capacity(), 3);
        assert!(rx.is_empty());
        tx.push(()).unwrap();
        tx.push(()).unwrap();
        assert_eq!(rx.len(), 2);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let (tx, rx) = bounded(0);
        assert_eq!(rx.capacity(), 1);
        tx.push(42).unwrap();
        assert_eq!(rx.pop(), Some(42));
    }
}
