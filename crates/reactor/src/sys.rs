//! Raw Linux syscalls for the reactor, invoked directly via inline
//! assembly.
//!
//! The workspace builds offline — no `libc` crate is available — so the
//! four kernel facilities the reactor needs (`epoll_create1`,
//! `epoll_ctl`, `epoll_pwait`, `eventfd2`, plus `read`/`write`/`close`
//! on the eventfd) are issued as direct syscalls. Only the syscall
//! numbers differ per architecture; the calling convention is the
//! standard Linux one (`syscall` on x86_64, `svc 0` on aarch64).
//!
//! Every wrapper converts the kernel's `-errno` return into
//! [`std::io::Error`], so callers above this module never see a raw
//! return value.

use std::io;

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod nr {
    pub const READ: usize = 0;
    pub const WRITE: usize = 1;
    pub const CLOSE: usize = 3;
    pub const EPOLL_CTL: usize = 233;
    pub const EPOLL_PWAIT: usize = 281;
    pub const EVENTFD2: usize = 290;
    pub const EPOLL_CREATE1: usize = 291;
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
mod nr {
    pub const READ: usize = 63;
    pub const WRITE: usize = 64;
    pub const CLOSE: usize = 57;
    pub const EPOLL_CTL: usize = 21;
    pub const EPOLL_PWAIT: usize = 22;
    pub const EVENTFD2: usize = 19;
    pub const EPOLL_CREATE1: usize = 20;
}

/// `EPOLL_CLOEXEC` / `EFD_CLOEXEC` — both alias `O_CLOEXEC`.
pub const CLOEXEC: usize = 0o2000000;
/// `EFD_NONBLOCK` — aliases `O_NONBLOCK`.
pub const EFD_NONBLOCK: usize = 0o4000;

/// `epoll_ctl` op: register a new fd.
pub const EPOLL_CTL_ADD: usize = 1;
/// `epoll_ctl` op: remove a registration.
pub const EPOLL_CTL_DEL: usize = 2;
/// `epoll_ctl` op: change an existing registration.
pub const EPOLL_CTL_MOD: usize = 3;

/// Readable.
pub const EPOLLIN: u32 = 0x001;
/// Writable.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition on the fd.
pub const EPOLLERR: u32 = 0x008;
/// Hangup (both directions closed).
pub const EPOLLHUP: u32 = 0x010;
/// Peer half-closed its write side.
pub const EPOLLRDHUP: u32 = 0x2000;
/// Edge-triggered delivery.
pub const EPOLLET: u32 = 1 << 31;

/// `EINTR`, the one errno the wait loop handles specially.
pub const EINTR: i32 = 4;
/// `EAGAIN`, returned by a drained nonblocking eventfd read.
pub const EAGAIN: i32 = 11;

/// The kernel's `struct epoll_event`. x86_64 declares it packed (12
/// bytes); every other architecture uses natural alignment (16 bytes).
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Readiness bits (`EPOLL*`).
    pub events: u32,
    /// The caller's registration token, returned verbatim.
    pub data: u64,
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
#[inline]
unsafe fn syscall6(n: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
    let ret;
    // SAFETY: the caller passes arguments valid for syscall `n`; the asm
    // block clobbers only what the Linux syscall ABI says it clobbers
    // (rcx, r11, and the return register).
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") n => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            in("r8") e,
            in("r9") f,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
#[inline]
unsafe fn syscall6(n: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
    let ret;
    // SAFETY: as for x86_64 — the aarch64 Linux syscall ABI preserves
    // everything except x0 (return).
    unsafe {
        core::arch::asm!(
            "svc 0",
            in("x8") n,
            inlateout("x0") a => ret,
            in("x1") b,
            in("x2") c,
            in("x3") d,
            in("x4") e,
            in("x5") f,
            options(nostack),
        );
    }
    ret
}

/// Converts a raw syscall return into `Ok(value)` or the `io::Error` for
/// its `-errno`.
fn check(ret: isize) -> io::Result<usize> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

/// `epoll_create1(CLOEXEC)` — a new epoll instance fd.
pub fn epoll_create1() -> io::Result<i32> {
    // SAFETY: no pointers involved.
    check(unsafe { syscall6(nr::EPOLL_CREATE1, CLOEXEC, 0, 0, 0, 0, 0) }).map(|fd| fd as i32)
}

/// `epoll_ctl(epfd, op, fd, event)`. `event` may be null for
/// [`EPOLL_CTL_DEL`].
pub fn epoll_ctl(epfd: i32, op: usize, fd: i32, event: Option<&mut EpollEvent>) -> io::Result<()> {
    let ptr = event.map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
    // SAFETY: `ptr` is null (DEL) or points at a live EpollEvent; the
    // kernel only reads it during the call.
    check(unsafe {
        syscall6(
            nr::EPOLL_CTL,
            epfd as usize,
            op,
            fd as usize,
            ptr as usize,
            0,
            0,
        )
    })
    .map(|_| ())
}

/// `epoll_pwait(epfd, events, maxevents, timeout_ms, NULL, 0)` — used on
/// every architecture (plain `epoll_wait` does not exist on aarch64).
/// Returns the number of ready events.
pub fn epoll_wait(epfd: i32, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
    // SAFETY: `events` is a live, writable slice; the kernel writes at
    // most `events.len()` entries. The null sigmask (with size 8) means
    // "don't touch the signal mask", making this equivalent to
    // epoll_wait.
    check(unsafe {
        syscall6(
            nr::EPOLL_PWAIT,
            epfd as usize,
            events.as_mut_ptr() as usize,
            events.len(),
            timeout_ms as usize,
            0,
            8,
        )
    })
}

/// `eventfd2(0, EFD_CLOEXEC | EFD_NONBLOCK)` — the reactor's wakeup fd.
pub fn eventfd() -> io::Result<i32> {
    // SAFETY: no pointers involved.
    check(unsafe { syscall6(nr::EVENTFD2, 0, CLOEXEC | EFD_NONBLOCK, 0, 0, 0, 0) })
        .map(|fd| fd as i32)
}

/// `write(fd, buf, len)` on a reactor-owned fd.
pub fn write(fd: i32, buf: &[u8]) -> io::Result<usize> {
    // SAFETY: `buf` is a live readable slice for the duration of the
    // call.
    check(unsafe {
        syscall6(
            nr::WRITE,
            fd as usize,
            buf.as_ptr() as usize,
            buf.len(),
            0,
            0,
            0,
        )
    })
}

/// `read(fd, buf, len)` on a reactor-owned fd.
pub fn read(fd: i32, buf: &mut [u8]) -> io::Result<usize> {
    // SAFETY: `buf` is a live writable slice for the duration of the
    // call.
    check(unsafe {
        syscall6(
            nr::READ,
            fd as usize,
            buf.as_mut_ptr() as usize,
            buf.len(),
            0,
            0,
            0,
        )
    })
}

/// `close(fd)` — errors are reported but safe to ignore on drop paths.
pub fn close(fd: i32) -> io::Result<()> {
    // SAFETY: closing an owned fd.
    check(unsafe { syscall6(nr::CLOSE, fd as usize, 0, 0, 0, 0, 0) }).map(|_| ())
}
