//! Streaming, mergeable report aggregation.
//!
//! A real deployment does not hold all reports in memory: collectors
//! receive perturbed values one at a time, on many shards, and periodically
//! merge partial histograms. [`ShardAggregator`] is that object — a fixed
//! set of output-bucket counters that can be fed incrementally, merged
//! across shards, serialized as plain counts, and finally handed to the
//! EM/EMS reconstruction. Aggregating counts loses nothing: the EM
//! algorithm only ever consumes the report histogram (paper §5.5).

use crate::error::SwError;
use crate::pipeline::SwPipeline;
use ldp_core::snapshot::{
    expect_tag, next_line, parse_fields, parse_snapshot_field, SnapshotState,
};
use ldp_core::CoreError;
use serde::{Deserialize, Serialize};
use std::fmt::Write;

/// An incremental histogram of perturbed reports for one SW configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardAggregator {
    /// Output domain left edge (-b).
    lo: f64,
    /// Output domain right edge (1 + b).
    hi: f64,
    /// Output granularity d̃.
    counts: Vec<u64>,
}

impl ShardAggregator {
    /// Creates an empty aggregator matching a pipeline's output geometry.
    #[must_use]
    pub fn for_pipeline(pipeline: &SwPipeline) -> Self {
        ShardAggregator {
            lo: pipeline.wave().output_lo(),
            hi: pipeline.wave().output_hi(),
            counts: vec![0; pipeline.output_buckets()],
        }
    }

    /// Number of output buckets.
    #[must_use]
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// Total number of reports absorbed so far.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The raw per-bucket counts.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Whether a report could have been produced by the matching mechanism.
    #[inline]
    fn in_domain(&self, report: f64) -> bool {
        report.is_finite() && report >= self.lo - 1e-12 && report <= self.hi + 1e-12
    }

    /// Output bucket of an in-domain report.
    #[inline]
    fn bucket(&self, report: f64) -> usize {
        let d = self.counts.len();
        let pos = ((report - self.lo) / (self.hi - self.lo) * d as f64) as isize;
        pos.clamp(0, d as isize - 1) as usize
    }

    /// Absorbs one perturbed report. Reports outside the output domain are
    /// rejected — they cannot have been produced by the matching mechanism,
    /// so silently clamping them would let a malformed client skew the
    /// boundary buckets.
    pub fn push(&mut self, report: f64) -> Result<(), SwError> {
        if !self.in_domain(report) {
            return Err(SwError::InvalidParameter(format!(
                "report {report} outside the output domain [{}, {}]",
                self.lo, self.hi
            )));
        }
        let idx = self.bucket(report);
        self.counts[idx] += 1;
        Ok(())
    }

    /// Bulk ingestion: absorbs every report in `reports`, or absorbs
    /// nothing if any report is malformed.
    ///
    /// One validation pass over the slice up front, then a branch-free
    /// counting pass — no per-report `Result` plumbing in the hot loop,
    /// which is what the batched randomization path and the experiment
    /// runner feed through. All-or-nothing: on error the aggregator is
    /// unchanged and the message names the first offending index.
    ///
    /// Both passes run through the `ldp_numeric::kernels` AVX2 kernels
    /// when available (`LDP_NO_SIMD=1` forces scalar): ordered compares
    /// reject NaN/out-of-range lanes exactly like [`ShardAggregator::push`]'s
    /// `in_domain` (a finite `r` inside the tolerated bounds passes both
    /// formulations; NaN and infinities fail both), and the bucket pass
    /// performs the identical `sub/div/mul/trunc/clamp` sequence per lane
    /// — bit-identical counts, pinned by the kernel-equivalence suite.
    pub fn push_slice(&mut self, reports: &[f64]) -> Result<(), SwError> {
        let (lo_tol, hi_tol) = (self.lo - 1e-12, self.hi + 1e-12);
        if let Some(bad) = ldp_numeric::kernels::first_out_of_range(reports, lo_tol, hi_tol) {
            return Err(SwError::InvalidParameter(format!(
                "report {} (index {bad}) outside the output domain [{}, {}]",
                reports[bad], self.lo, self.hi
            )));
        }
        ldp_numeric::kernels::bucket_histogram(&mut self.counts, reports, self.lo, self.hi);
        Ok(())
    }

    /// Merges another shard's counts into this one. Both shards must have
    /// been created for the same mechanism configuration.
    pub fn merge(&mut self, other: &ShardAggregator) -> Result<(), SwError> {
        if self.counts.len() != other.counts.len()
            || (self.lo - other.lo).abs() > 1e-12
            || (self.hi - other.hi).abs() > 1e-12
        {
            return Err(SwError::InvalidParameter(
                "cannot merge aggregators with different configurations".into(),
            ));
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        Ok(())
    }

    /// The counts as floats, ready for [`crate::em::reconstruct`].
    #[must_use]
    pub fn to_counts(&self) -> Vec<f64> {
        self.counts.iter().map(|&c| c as f64).collect()
    }
}

/// One line: `sw-shard <lo> <hi> <d̃> <count…>`. The output-domain edges
/// are rendered with Rust's shortest-round-trip `f64` formatting, so the
/// restored aggregator validates incoming reports against bit-identical
/// bounds.
impl SnapshotState for ShardAggregator {
    fn encode_state(&self, out: &mut String) {
        let _ = write!(
            out,
            "sw-shard {} {} {}",
            self.lo,
            self.hi,
            self.counts.len()
        );
        for c in &self.counts {
            let _ = write!(out, " {c}");
        }
        out.push('\n');
    }

    fn decode_state(lines: &mut dyn Iterator<Item = &str>) -> Result<Self, CoreError> {
        let line = next_line(lines, "SW shard state")?;
        let mut it = line.split_whitespace();
        expect_tag(it.next(), "sw-shard")?;
        let lo: f64 = parse_snapshot_field(it.next(), "SW output lo")?;
        let hi: f64 = parse_snapshot_field(it.next(), "SW output hi")?;
        if !lo.is_finite() || !hi.is_finite() || !(lo < hi) {
            return Err(CoreError::Snapshot(format!(
                "SW output domain [{lo}, {hi}] is not a finite interval"
            )));
        }
        let buckets: usize = parse_snapshot_field(it.next(), "SW bucket count")?;
        let counts: Vec<u64> = parse_fields(it, buckets, "SW bucket count entry")?;
        Ok(ShardAggregator { lo, hi, counts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Reconstruction;
    use ldp_numeric::SplitMix64;

    fn pipeline() -> SwPipeline {
        SwPipeline::new(1.0, 64).unwrap()
    }

    #[test]
    fn incremental_matches_batch_aggregation() {
        let p = pipeline();
        let mut rng = SplitMix64::new(5001);
        let values: Vec<f64> = (0..5_000).map(|i| (i % 100) as f64 / 100.0).collect();
        let reports: Vec<f64> = values
            .iter()
            .map(|&v| p.randomize(v, &mut rng).unwrap())
            .collect();
        let batch = p.aggregate(&reports);
        let mut agg = ShardAggregator::for_pipeline(&p);
        for &r in &reports {
            agg.push(r).unwrap();
        }
        assert_eq!(agg.total(), reports.len() as u64);
        for (a, b) in agg.to_counts().iter().zip(&batch) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn sharded_merge_equals_single_shard() {
        let p = pipeline();
        let mut rng = SplitMix64::new(5002);
        let reports: Vec<f64> = (0..3_000)
            .map(|i| p.randomize((i % 97) as f64 / 97.0, &mut rng).unwrap())
            .collect();
        let mut single = ShardAggregator::for_pipeline(&p);
        for &r in &reports {
            single.push(r).unwrap();
        }
        let mut shard_a = ShardAggregator::for_pipeline(&p);
        let mut shard_b = ShardAggregator::for_pipeline(&p);
        for (i, &r) in reports.iter().enumerate() {
            if i % 2 == 0 {
                shard_a.push(r).unwrap();
            } else {
                shard_b.push(r).unwrap();
            }
        }
        shard_a.merge(&shard_b).unwrap();
        assert_eq!(shard_a, single);
    }

    #[test]
    fn push_slice_matches_sequential_pushes() {
        let p = pipeline();
        let mut rng = SplitMix64::new(5004);
        let reports: Vec<f64> = (0..4_000)
            .map(|i| p.randomize((i % 89) as f64 / 89.0, &mut rng).unwrap())
            .collect();
        let mut bulk = ShardAggregator::for_pipeline(&p);
        bulk.push_slice(&reports).unwrap();
        let mut seq = ShardAggregator::for_pipeline(&p);
        for &r in &reports {
            seq.push(r).unwrap();
        }
        assert_eq!(bulk, seq);
    }

    #[test]
    fn push_slice_is_all_or_nothing() {
        let p = pipeline();
        let mut agg = ShardAggregator::for_pipeline(&p);
        let err = agg.push_slice(&[0.1, 0.2, f64::INFINITY, 0.3]).unwrap_err();
        assert!(err.to_string().contains("index 2"), "{err}");
        assert_eq!(agg.total(), 0, "failed bulk ingest must not mutate");
        agg.push_slice(&[]).unwrap();
        assert_eq!(agg.total(), 0);
    }

    #[test]
    fn malformed_reports_are_rejected() {
        let p = pipeline();
        let mut agg = ShardAggregator::for_pipeline(&p);
        let b = p.wave().b();
        assert!(agg.push(f64::NAN).is_err());
        assert!(agg.push(-b - 0.5).is_err());
        assert!(agg.push(1.0 + b + 0.5).is_err());
        assert_eq!(agg.total(), 0);
        // Legal boundary values are accepted.
        assert!(agg.push(-b).is_ok());
        assert!(agg.push(1.0 + b).is_ok());
        assert_eq!(agg.total(), 2);
    }

    #[test]
    fn merge_rejects_mismatched_configurations() {
        let a = ShardAggregator::for_pipeline(&pipeline());
        let mut b = ShardAggregator::for_pipeline(&SwPipeline::new(2.0, 64).unwrap());
        assert!(b.merge(&a).is_err());
        let mut c = ShardAggregator::for_pipeline(&SwPipeline::new(1.0, 128).unwrap());
        assert!(c.merge(&a).is_err());
    }

    #[test]
    fn snapshot_state_round_trips_bit_identically() {
        let p = pipeline();
        let mut rng = SplitMix64::new(5005);
        let mut agg = ShardAggregator::for_pipeline(&p);
        for i in 0..2_000 {
            agg.push(p.randomize((i % 83) as f64 / 83.0, &mut rng).unwrap())
                .unwrap();
        }
        let mut text = String::new();
        agg.encode_state(&mut text);
        assert_eq!(text.lines().count(), 1);
        let mut lines = text.lines();
        let restored = ShardAggregator::decode_state(&mut lines).unwrap();
        assert_eq!(restored, agg);
        // Continued ingestion behaves identically (domain bounds intact).
        let mut a = agg.clone();
        let mut b = restored;
        let r = p.randomize(0.5, &mut rng).unwrap();
        a.push(r).unwrap();
        b.push(r).unwrap();
        assert_eq!(a, b);
        // Malformed states are rejected.
        let mut it = "sw-shard 0.5 0.5 2 1 2".lines();
        assert!(ShardAggregator::decode_state(&mut it).is_err(), "lo == hi");
        let mut it = "sw-shard -0.5 1.5 3 1 2".lines();
        assert!(
            ShardAggregator::decode_state(&mut it).is_err(),
            "short counts"
        );
    }

    #[test]
    fn aggregated_counts_reconstruct_end_to_end() {
        let p = pipeline();
        let mut rng = SplitMix64::new(5003);
        let mut agg = ShardAggregator::for_pipeline(&p);
        for i in 0..20_000 {
            let v = 0.3 + 0.4 * ((i % 500) as f64 / 500.0);
            agg.push(p.randomize(v, &mut rng).unwrap()).unwrap();
        }
        let result = p
            .reconstruct(&agg.to_counts(), &Reconstruction::Ems)
            .unwrap();
        // Mass concentrated in [0.3, 0.7].
        let mass = result.histogram.range_mass(0.25, 0.75);
        assert!(mass > 0.8, "mass {mass}");
    }
}
