//! A thin safe wrapper over one epoll instance.

use crate::sys;
use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// What a registration wants to be told about.
///
/// The reactor registers every connection edge-triggered with both
/// directions armed ([`Interest::edge_rw`]) and drains readiness to
/// `WouldBlock` — no per-state `epoll_ctl` churn. Level-triggered
/// read-only ([`Interest::level_read`]) fits always-drained fds like the
/// wakeup eventfd and the listener.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Report readability (`EPOLLIN`, plus `EPOLLRDHUP` so a peer
    /// half-close wakes the slot).
    pub readable: bool,
    /// Report writability (`EPOLLOUT`).
    pub writable: bool,
    /// Edge-triggered (`EPOLLET`): one wakeup per readiness *change*;
    /// the owner must drain to `WouldBlock` before sleeping again.
    pub edge: bool,
}

impl Interest {
    /// Edge-triggered, both directions — the connection-slot default.
    #[must_use]
    pub fn edge_rw() -> Self {
        Interest {
            readable: true,
            writable: true,
            edge: true,
        }
    }

    /// Level-triggered, read only — wakers and listeners.
    #[must_use]
    pub fn level_read() -> Self {
        Interest {
            readable: true,
            writable: false,
            edge: false,
        }
    }

    fn bits(self) -> u32 {
        let mut bits = 0;
        if self.readable {
            bits |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if self.writable {
            bits |= sys::EPOLLOUT;
        }
        if self.edge {
            bits |= sys::EPOLLET;
        }
        bits
    }
}

/// One readiness report from [`Epoll::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// Readable (or the peer half-closed — read to find out which).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// `EPOLLERR`/`EPOLLHUP`: the fd is dead; the owner should read to
    /// collect the error and retire the slot.
    pub closed: bool,
}

/// Reusable buffer of kernel-filled events, sized once per reactor.
pub struct Events {
    raw: Vec<sys::EpollEvent>,
    filled: usize,
}

impl Events {
    /// A buffer receiving at most `capacity` events per wait (clamped to
    /// ≥ 1).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Events {
            raw: vec![sys::EpollEvent { events: 0, data: 0 }; capacity.max(1)],
            filled: 0,
        }
    }

    /// Iterates the events the last [`Epoll::wait`] filled in.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.raw[..self.filled].iter().map(|raw| {
            let bits = raw.events;
            Event {
                token: raw.data,
                readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                writable: bits & sys::EPOLLOUT != 0,
                closed: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
            }
        })
    }

    /// How many events the last wait reported.
    #[must_use]
    pub fn len(&self) -> usize {
        self.filled
    }

    /// Whether the last wait reported nothing (timeout).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.filled == 0
    }
}

/// One `epoll_create1` instance. Registrations are keyed by caller-chosen
/// `u64` tokens (the reactor uses slab tokens); the fd is closed on drop.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// A fresh epoll instance (`EPOLL_CLOEXEC`).
    pub fn new() -> io::Result<Self> {
        Ok(Epoll {
            fd: sys::epoll_create1()?,
        })
    }

    /// Registers `fd` under `token` with `interest`.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events: interest.bits(),
            data: token,
        };
        sys::epoll_ctl(self.fd, sys::EPOLL_CTL_ADD, fd, Some(&mut ev))
    }

    /// Changes an existing registration's token or interest.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events: interest.bits(),
            data: token,
        };
        sys::epoll_ctl(self.fd, sys::EPOLL_CTL_MOD, fd, Some(&mut ev))
    }

    /// Removes a registration. Closing the fd deregisters implicitly;
    /// this exists for slots that outlive an fd's interest.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        sys::epoll_ctl(self.fd, sys::EPOLL_CTL_DEL, fd, None)
    }

    /// Blocks until at least one registered fd is ready, `timeout`
    /// elapses (`None` = forever), or a signal interrupts — `EINTR`
    /// returns cleanly with zero events, like a timeout. Fills `events`
    /// and returns the count.
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms = match timeout {
            None => -1,
            Some(d) => i32::try_from(d.as_millis()).unwrap_or(i32::MAX),
        };
        events.filled = 0;
        match sys::epoll_wait(self.fd, &mut events.raw, timeout_ms) {
            Ok(n) => {
                events.filled = n;
                Ok(n)
            }
            Err(e) if e.raw_os_error() == Some(crate::sys::EINTR) => Ok(0),
            Err(e) => Err(e),
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        let _ = sys::close(self.fd);
    }
}

// SAFETY: the epoll fd is just an integer handle; every syscall on it is
// thread-safe per the kernel contract.
unsafe impl Send for Epoll {}
unsafe impl Sync for Epoll {}
