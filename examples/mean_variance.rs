//! Scalar statistics under LDP: mean and variance of retirement
//! contributions.
//!
//! SR and PM are purpose-built mean estimators; SW+EMS reconstructs the
//! whole distribution and *then* reads the moments off it. The paper's
//! Figure 4 finding is that the general-purpose SW+EMS is competitive with
//! the specialized mechanisms for the mean and better for the variance
//! (which costs SR/PM half their population).
//!
//! ```sh
//! cargo run --release --example mean_variance
//! ```

use sw_ldp::prelude::*;

fn main() {
    let epsilon = 1.0;
    let dataset = DatasetSpec {
        kind: DatasetKind::Retirement,
        n: 178_012, // the paper-scale population for this dataset
        seed: 23,
    }
    .generate();
    let d = 1024;
    let truth = dataset.histogram(d).expect("non-empty dataset");
    println!(
        "retirement workload: {} users, eps = {epsilon}",
        dataset.n()
    );
    println!(
        "true mean = {:.5}, true variance = {:.5}\n",
        truth.mean(),
        truth.variance()
    );

    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>12}",
        "method", "mean", "|mean err|", "variance", "|var err|"
    );

    let mut rng = SplitMix64::new(29);
    for (name, mech) in [("SR", MeanMechanism::Sr), ("PM", MeanMechanism::Pm)] {
        let proto = MeanVariance::new(mech, epsilon).expect("valid epsilon");
        let mean = proto
            .estimate_mean(&dataset.values, &mut rng)
            .expect("mean estimation succeeds");
        let mv = proto
            .estimate(&dataset.values, &mut rng)
            .expect("variance estimation succeeds");
        println!(
            "{name:<8} {:>10.5} {:>10.5} {:>12.5} {:>12.5}",
            mean,
            (mean - truth.mean()).abs(),
            mv.variance,
            (mv.variance - truth.variance()).abs()
        );
    }

    let pipeline = SwPipeline::new(epsilon, d).expect("valid parameters");
    let est = pipeline
        .estimate(&dataset.values, &Reconstruction::Ems, &mut rng)
        .expect("reconstruction succeeds");
    println!(
        "{:<8} {:>10.5} {:>10.5} {:>12.5} {:>12.5}",
        "SW-EMS",
        est.mean(),
        (est.mean() - truth.mean()).abs(),
        est.variance(),
        (est.variance() - truth.variance()).abs()
    );
    println!(
        "\n(SW-EMS additionally yields the full distribution: median {:.4}, P90 {:.4})",
        est.quantile(0.5),
        est.quantile(0.9)
    );
}
