//! Durable aggregator state: the [`SnapshotState`] persistence contract
//! and the versioned snapshot container format.
//!
//! A collection window in a real deployment runs for hours or days; the
//! collector must be able to crash at any point and resume without losing
//! the window or changing the final estimate. This module provides the two
//! halves of that guarantee:
//!
//! - [`SnapshotState`] — a text encoding for [`Mechanism::State`] types,
//!   in the same exact-round-trip spirit as [`crate::wire::WireReport`]:
//!   decoding an encoded state reproduces the accumulator such that every
//!   later `absorb`/`merge_state`/`finalize` yields bit-identical results;
//! - the **snapshot container** ([`encode_snapshot`]/[`decode_snapshot`])
//!   — a self-describing file format with a version line, the mechanism's
//!   configuration identity (a human-readable id plus the 64-bit
//!   [`Mechanism::fingerprint`]), the absorbed-report count, a body-line
//!   count, and a trailing checksum line, so that truncated, corrupted,
//!   and cross-configuration snapshot files are *rejected* instead of
//!   silently skewing a window.
//!
//! The normative container specification lives in `docs/WIRE_FORMAT.md`;
//! the operator's guide for snapshot cadence and recovery lives in
//! `docs/OPERATIONS.md`.
//!
//! # Examples
//!
//! Round-trip an aggregator state through the container format (using the
//! `Vec<u64>` state impl that backs count-style accumulators):
//!
//! ```
//! use ldp_core::snapshot::{encode_snapshot, decode_snapshot};
//! use ldp_core::{Epsilon, Mechanism};
//!
//! #[derive(Clone)]
//! struct Tally;
//! impl Mechanism for Tally {
//!     type Input = usize;
//!     type Report = usize;
//!     type State = Vec<u64>;
//!     type Output = Vec<u64>;
//!     fn epsilon(&self) -> Epsilon { Epsilon::new(1.0).unwrap() }
//!     fn fingerprint(&self) -> u64 { 0xfeed }
//!     fn randomize<R: rand::Rng + ?Sized>(&self, v: &usize, _: &mut R)
//!         -> Result<usize, ldp_core::CoreError> { Ok(*v) }
//!     fn empty_state(&self) -> Vec<u64> { vec![0; 4] }
//!     fn absorb(&self, s: &mut Vec<u64>, r: &usize) -> Result<(), ldp_core::CoreError> {
//!         s[*r % 4] += 1;
//!         Ok(())
//!     }
//!     fn merge_state(&self, s: &mut Vec<u64>, o: &Vec<u64>) -> Result<(), ldp_core::CoreError> {
//!         for (a, b) in s.iter_mut().zip(o) { *a += b; }
//!         Ok(())
//!     }
//!     fn finalize(&self, s: &Vec<u64>) -> Result<Vec<u64>, ldp_core::CoreError> {
//!         Ok(s.clone())
//!     }
//! }
//!
//! let mech = Tally;
//! let state = vec![3, 1, 4, 1];
//! let text = encode_snapshot(&mech, "tally:d=4", &state, 9);
//! let (restored, count) = decode_snapshot(&mech, "tally:d=4", &text).unwrap();
//! assert_eq!(restored, state);
//! assert_eq!(count, 9);
//! // A flipped byte is rejected, never silently absorbed.
//! assert!(decode_snapshot(&mech, "tally:d=4", &text.replace("3 1 4 1", "3 1 5 1")).is_err());
//! ```

use crate::error::CoreError;
use crate::mechanism::Mechanism;
use std::collections::BTreeMap;
use std::fmt::Write;

/// The container format version this build writes and the only version it
/// reads. Bump on any incompatible change to the header or body layout.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Magic first token of every snapshot file.
const MAGIC: &str = "ldp-snapshot";

/// A mechanism state with an exact text encoding for persistence.
///
/// The contract mirrors [`crate::wire::WireReport`], lifted from single
/// reports to whole accumulators:
///
/// - [`SnapshotState::encode_state`] appends zero or more complete
///   newline-terminated lines to `out`;
/// - [`SnapshotState::decode_state`] consumes exactly the lines its
///   encoder wrote from the iterator and reconstructs the state;
/// - the reconstructed state is *operationally identical*: finalizing it,
///   absorbing further reports into it, or merging it produces results
///   bit-identical to the original accumulator.
///
/// Implementations must validate structurally (counts, tags, field
/// arity) and reject anything their encoder could not have produced;
/// configuration-level validation (does this state belong to *this*
/// mechanism?) is the container's job via the fingerprint line.
pub trait SnapshotState: Sized {
    /// Appends the encoded state as complete `\n`-terminated lines.
    fn encode_state(&self, out: &mut String);

    /// Decodes the lines produced by [`SnapshotState::encode_state`],
    /// consuming exactly as many items from `lines` as the encoder wrote.
    fn decode_state(lines: &mut dyn Iterator<Item = &str>) -> Result<Self, CoreError>;
}

/// `Vec<u64>` is the simplest useful accumulator (per-bucket counts); its
/// encoding doubles as the reference single-line layout: a length prefix
/// followed by that many fields.
impl SnapshotState for Vec<u64> {
    fn encode_state(&self, out: &mut String) {
        let _ = write!(out, "u64 {}", self.len());
        for v in self {
            let _ = write!(out, " {v}");
        }
        out.push('\n');
    }

    fn decode_state(lines: &mut dyn Iterator<Item = &str>) -> Result<Self, CoreError> {
        let line = next_line(lines, "u64 state")?;
        let mut it = line.split_whitespace();
        expect_tag(it.next(), "u64")?;
        let len: usize = parse_snapshot_field(it.next(), "u64 state length")?;
        let vals: Vec<u64> = parse_fields(it, len, "u64 state entry")?;
        Ok(vals)
    }
}

/// Pulls the next line or reports what was missing — the uniform
/// truncation error every decoder uses.
pub fn next_line<'a>(
    lines: &mut dyn Iterator<Item = &'a str>,
    what: &str,
) -> Result<&'a str, CoreError> {
    lines.next().ok_or_else(|| {
        CoreError::Snapshot(format!("unexpected end of snapshot body: missing {what}"))
    })
}

/// Checks a state line's leading tag.
pub fn expect_tag(field: Option<&str>, tag: &str) -> Result<(), CoreError> {
    match field {
        Some(f) if f == tag => Ok(()),
        other => Err(CoreError::Snapshot(format!(
            "expected state tag {tag:?}, found {other:?}"
        ))),
    }
}

/// Parses one mandatory whitespace-separated field.
pub fn parse_snapshot_field<T: std::str::FromStr>(
    field: Option<&str>,
    what: &str,
) -> Result<T, CoreError> {
    let field = field.ok_or_else(|| CoreError::Snapshot(format!("missing field: {what}")))?;
    field
        .parse()
        .map_err(|_| CoreError::Snapshot(format!("cannot parse {what} from {field:?}")))
}

/// Parses exactly `len` fields from `it` and rejects both shortfall and
/// trailing surplus — a tampered length prefix must fail, not misparse.
pub fn parse_fields<'a, T: std::str::FromStr>(
    mut it: impl Iterator<Item = &'a str>,
    len: usize,
    what: &str,
) -> Result<Vec<T>, CoreError> {
    let mut out = Vec::new();
    for i in 0..len {
        let field = it.next().ok_or_else(|| {
            CoreError::Snapshot(format!("expected {len} x {what}, found only {i}"))
        })?;
        out.push(
            field
                .parse()
                .map_err(|_| CoreError::Snapshot(format!("cannot parse {what} from {field:?}")))?,
        );
    }
    if let Some(extra) = it.next() {
        return Err(CoreError::Snapshot(format!(
            "trailing field {extra:?} after {len} x {what}"
        )));
    }
    Ok(out)
}

/// Per-session dedup cursors: session id → next expected frame sequence
/// number. The sequenced ingest protocol (`docs/WIRE_FORMAT.md` §3)
/// persists these inside the snapshot container so a collector restart
/// suppresses replayed frames exactly like a live reconnect does.
pub type SessionCursors = BTreeMap<String, u64>;

/// Whether `id` is a well-formed session id: 1–64 characters drawn from
/// `[A-Za-z0-9._-]`. Session ids appear as single whitespace-delimited
/// tokens in both the wire hello and the snapshot sessions section, so
/// the charset is restricted to keep every parser unambiguous.
#[must_use]
pub fn valid_session_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 64
        && id
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
}

/// The parsed header of a snapshot file — everything a tool can know
/// without the mechanism in hand (see the `inspect` collector subcommand).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotHeader {
    /// Container format version.
    pub version: u32,
    /// Human-readable mechanism configuration id (the collector's
    /// canonical spec string).
    pub mechanism: String,
    /// The mechanism's 64-bit configuration fingerprint.
    pub fingerprint: u64,
    /// Reports absorbed into the snapshotted state.
    pub count: u64,
    /// Number of state body lines that follow the header.
    pub body_lines: u64,
    /// Sequenced-session dedup cursors from the optional `sessions`
    /// section (empty for windows that never served a sequenced session).
    pub sessions: SessionCursors,
}

/// FNV-1a 64-bit over the header-and-body text: cheap, dependency-free,
/// and plenty to catch torn writes and bit rot (snapshots are not an
/// integrity boundary against adversaries — see `docs/OPERATIONS.md`).
#[must_use]
pub fn snapshot_checksum(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Renders a complete snapshot file for `state` as collected by `mech`
/// under the configuration id `mechanism_id`.
///
/// Layout (one header field per line, then the body, then the checksum —
/// normative spec in `docs/WIRE_FORMAT.md`):
///
/// ```text
/// ldp-snapshot v1
/// mechanism <id>
/// fingerprint <16 hex digits>
/// count <u64>
/// body-lines <u64>
/// <body ...>
/// checksum <16 hex digits>
/// ```
#[must_use]
pub fn encode_snapshot<M>(mech: &M, mechanism_id: &str, state: &M::State, count: u64) -> String
where
    M: Mechanism,
    M::State: SnapshotState,
{
    encode_snapshot_with_sessions(mech, mechanism_id, state, count, &SessionCursors::new())
}

/// [`encode_snapshot`] plus the optional **sessions section**: when
/// `sessions` is non-empty, the lines
///
/// ```text
/// sessions <k>
/// session <id> <cursor>      × k, sorted by id
/// ```
///
/// are appended between the state body and the checksum line (so the
/// checksum covers them). An empty cursor map writes no section at all —
/// windows that never served a sequenced session stay byte-identical to
/// containers from earlier builds.
#[must_use]
pub fn encode_snapshot_with_sessions<M>(
    mech: &M,
    mechanism_id: &str,
    state: &M::State,
    count: u64,
    sessions: &SessionCursors,
) -> String
where
    M: Mechanism,
    M::State: SnapshotState,
{
    debug_assert!(
        !mechanism_id.contains('\n'),
        "mechanism ids are single-line"
    );
    debug_assert!(
        sessions.keys().all(|id| valid_session_id(id)),
        "session ids must be validated before they reach the container"
    );
    let mut body = String::new();
    state.encode_state(&mut body);
    let body_lines = body.lines().count() as u64;
    let mut out = String::new();
    let _ = writeln!(out, "{MAGIC} v{SNAPSHOT_VERSION}");
    let _ = writeln!(out, "mechanism {mechanism_id}");
    let _ = writeln!(out, "fingerprint {:016x}", mech.fingerprint());
    let _ = writeln!(out, "count {count}");
    let _ = writeln!(out, "body-lines {body_lines}");
    out.push_str(&body);
    if !sessions.is_empty() {
        let _ = writeln!(out, "sessions {}", sessions.len());
        for (id, cursor) in sessions {
            let _ = writeln!(out, "session {id} {cursor}");
        }
    }
    let _ = writeln!(out, "checksum {:016x}", snapshot_checksum(&out));
    out
}

/// Parses and validates the header and checksum of a snapshot file
/// without needing the mechanism. Returns the header and the body lines.
///
/// Rejects: a missing/foreign magic line, an unsupported version, a
/// malformed header field, a body shorter than `body-lines` claims
/// (truncated mid-write), a missing or mismatched checksum line, and
/// trailing content after the checksum.
pub fn parse_snapshot(text: &str) -> Result<(SnapshotHeader, Vec<&str>), CoreError> {
    let mut lines = text.lines();
    let magic = lines
        .next()
        .ok_or_else(|| CoreError::Snapshot("empty snapshot file".into()))?;
    let version = match magic.strip_prefix(MAGIC) {
        Some(rest) => {
            let rest = rest.trim();
            let v = rest
                .strip_prefix('v')
                .ok_or_else(|| CoreError::Snapshot(format!("malformed version token {rest:?}")))?;
            v.parse::<u32>()
                .map_err(|_| CoreError::Snapshot(format!("malformed version token {rest:?}")))?
        }
        None => {
            return Err(CoreError::Snapshot(format!(
                "not a snapshot file (first line {magic:?})"
            )))
        }
    };
    if version != SNAPSHOT_VERSION {
        return Err(CoreError::Snapshot(format!(
            "unsupported snapshot version {version} (this build reads v{SNAPSHOT_VERSION})"
        )));
    }
    let header_field = |lines: &mut std::str::Lines<'_>, key: &str| -> Result<String, CoreError> {
        let line = lines.next().ok_or_else(|| {
            CoreError::Snapshot(format!("truncated snapshot: missing {key} header line"))
        })?;
        line.strip_prefix(key)
            .and_then(|rest| rest.strip_prefix(' '))
            .map(str::to_owned)
            .ok_or_else(|| {
                CoreError::Snapshot(format!("expected {key:?} header line, found {line:?}"))
            })
    };
    let mechanism = header_field(&mut lines, "mechanism")?;
    let fingerprint = u64::from_str_radix(&header_field(&mut lines, "fingerprint")?, 16)
        .map_err(|_| CoreError::Snapshot("malformed fingerprint header".into()))?;
    let count: u64 = header_field(&mut lines, "count")?
        .parse()
        .map_err(|_| CoreError::Snapshot("malformed count header".into()))?;
    let body_lines: u64 = header_field(&mut lines, "body-lines")?
        .parse()
        .map_err(|_| CoreError::Snapshot("malformed body-lines header".into()))?;
    // The header is untrusted until the checksum verifies: never size an
    // allocation from it (a hostile `body-lines` must produce a clean
    // truncation error, not a capacity-overflow panic). The vector grows
    // as real lines are actually read.
    let mut body = Vec::with_capacity((body_lines as usize).min(1024));
    for i in 0..body_lines {
        body.push(lines.next().ok_or_else(|| {
            CoreError::Snapshot(format!(
                "truncated snapshot: {i} of {body_lines} body lines present"
            ))
        })?);
    }
    let mut after_body = lines
        .next()
        .ok_or_else(|| CoreError::Snapshot("truncated snapshot: missing checksum line".into()))?;
    let mut sessions = SessionCursors::new();
    if let Some(rest) = after_body.strip_prefix("sessions ") {
        let declared: u64 = rest
            .parse()
            .map_err(|_| CoreError::Snapshot(format!("malformed sessions count {rest:?}")))?;
        if declared == 0 {
            return Err(CoreError::Snapshot(
                "empty sessions section (omit the section instead)".into(),
            ));
        }
        for i in 0..declared {
            let line = lines.next().ok_or_else(|| {
                CoreError::Snapshot(format!(
                    "truncated snapshot: {i} of {declared} session lines present"
                ))
            })?;
            let mut it = line.split_whitespace();
            expect_tag(it.next(), "session")
                .map_err(|_| CoreError::Snapshot(format!("malformed session line {line:?}")))?;
            let id = it
                .next()
                .ok_or_else(|| CoreError::Snapshot(format!("malformed session line {line:?}")))?;
            if !valid_session_id(id) {
                return Err(CoreError::Snapshot(format!("invalid session id {id:?}")));
            }
            let cursor: u64 = parse_snapshot_field(it.next(), "session cursor")?;
            if let Some(extra) = it.next() {
                return Err(CoreError::Snapshot(format!(
                    "trailing field {extra:?} on session line {line:?}"
                )));
            }
            if sessions.insert(id.to_owned(), cursor).is_some() {
                return Err(CoreError::Snapshot(format!("duplicate session id {id:?}")));
            }
        }
        after_body = lines.next().ok_or_else(|| {
            CoreError::Snapshot("truncated snapshot: missing checksum line".into())
        })?;
    }
    let checksum_line = after_body;
    let recorded = checksum_line
        .strip_prefix("checksum ")
        .and_then(|h| u64::from_str_radix(h, 16).ok())
        .ok_or_else(|| CoreError::Snapshot(format!("malformed checksum line {checksum_line:?}")))?;
    if lines.next().is_some() {
        return Err(CoreError::Snapshot(
            "trailing content after the checksum line".into(),
        ));
    }
    // The checksum covers everything up to and including the last body
    // line. The checksum line is the final line (verified above), so
    // strip it — plus its trailing newline if present — positionally
    // rather than by substring search, which a body line could spoof.
    let tail = if text.ends_with('\n') {
        checksum_line.len() + 1
    } else {
        checksum_line.len()
    };
    let covered = &text[..text.len() - tail];
    let actual = snapshot_checksum(covered);
    if actual != recorded {
        return Err(CoreError::Snapshot(format!(
            "checksum mismatch: recorded {recorded:016x}, computed {actual:016x} (corrupted snapshot)"
        )));
    }
    Ok((
        SnapshotHeader {
            version,
            mechanism,
            fingerprint,
            count,
            body_lines,
            sessions,
        },
        body,
    ))
}

/// Decodes a snapshot produced by [`encode_snapshot`], validating it
/// against the receiving mechanism. Returns the restored state and the
/// absorbed-report count.
///
/// On top of [`parse_snapshot`]'s structural checks this rejects snapshots
/// whose mechanism id or configuration fingerprint differ from the
/// receiver's — a snapshot from a different ε, domain, or protocol must
/// never merge into this window. The decoded state is additionally folded
/// through [`Mechanism::merge_state`] into a fresh empty state, so the
/// mechanism's own dimension checks run before anything is trusted.
pub fn decode_snapshot<M>(
    mech: &M,
    mechanism_id: &str,
    text: &str,
) -> Result<(M::State, u64), CoreError>
where
    M: Mechanism,
    M::State: SnapshotState,
{
    let (state, count, _) = decode_snapshot_with_sessions(mech, mechanism_id, text)?;
    Ok((state, count))
}

/// [`decode_snapshot`] plus the sequenced-session dedup cursors from the
/// optional sessions section (an empty map when the section is absent).
/// Collectors that resume a window use this so replayed frames from
/// before the crash are suppressed, not double-counted.
pub fn decode_snapshot_with_sessions<M>(
    mech: &M,
    mechanism_id: &str,
    text: &str,
) -> Result<(M::State, u64, SessionCursors), CoreError>
where
    M: Mechanism,
    M::State: SnapshotState,
{
    let (header, body) = parse_snapshot(text)?;
    if header.mechanism != mechanism_id {
        return Err(CoreError::ShardMismatch(format!(
            "snapshot was collected for mechanism {:?}, this collector runs {mechanism_id:?}",
            header.mechanism
        )));
    }
    let expected = mech.fingerprint();
    if header.fingerprint != expected {
        return Err(CoreError::ShardMismatch(format!(
            "snapshot fingerprint {:016x} does not match this configuration ({expected:016x})",
            header.fingerprint
        )));
    }
    let mut lines = body.into_iter();
    let decoded = M::State::decode_state(&mut lines)?;
    if let Some(extra) = lines.next() {
        return Err(CoreError::Snapshot(format!(
            "trailing body line {extra:?} after the state"
        )));
    }
    // Fold through merge_state so the mechanism's structural validation
    // (bucket counts, level counts, …) runs on the decoded state.
    let mut state = mech.empty_state();
    mech.merge_state(&mut state, &decoded)?;
    Ok((state, header.count, header.sessions))
}

/// A single-slot, latest-wins handoff between the thread that *renders*
/// snapshots and the thread that *persists* them.
///
/// The copy-on-snapshot discipline for concurrent ingest: the absorber
/// renders the container text (a cheap O(d̃) encode of a clone-free borrow
/// — encoding never mutates the state) and [`publish`](Self::publish)es
/// it without ever blocking; a dedicated writer service loops on
/// [`take`](Self::take) and does the slow fsync-and-rename I/O off the
/// hot path. If the writer falls behind, newly published snapshots
/// *replace* the unwritten one — persisting a superseded recovery point
/// would be pure wasted I/O, and crash recovery only ever needs the most
/// recent snapshot plus the replay log.
///
/// [`close`](Self::close) ends the stream: the writer drains the last
/// pending snapshot (if any) and then sees `None`.
#[derive(Debug, Default)]
pub struct SnapshotSpool {
    slot: std::sync::Mutex<SpoolSlot>,
    ready: std::sync::Condvar,
}

#[derive(Debug, Default)]
struct SpoolSlot {
    pending: Option<(u64, String)>,
    closed: bool,
    superseded: u64,
    /// Generation stamp of the most recent publish.
    published: u64,
    /// Highest generation the writer has durably persisted.
    written: u64,
    /// The writer died without persisting: waiters must not block forever.
    poisoned: bool,
}

impl SnapshotSpool {
    /// An empty, open spool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Deposits a rendered snapshot, replacing any unwritten predecessor,
    /// and returns the publication's generation stamp (monotonic; pass it
    /// to [`wait_written`](Self::wait_written) when the caller must not
    /// proceed until this snapshot — or a newer one — is durable).
    /// Never blocks — this is the absorber-side half of the "snapshot
    /// writes never stall ingest" guarantee. Publishing after
    /// [`close`](Self::close) is a no-op (the stamp of the last accepted
    /// publish is returned).
    pub fn publish(&self, text: String) -> u64 {
        let mut slot = self.slot.lock().expect("spool lock poisoned");
        if slot.closed {
            return slot.published;
        }
        slot.published += 1;
        let generation = slot.published;
        if slot.pending.replace((generation, text)).is_some() {
            slot.superseded += 1;
        }
        drop(slot);
        self.ready.notify_all();
        generation
    }

    /// Blocks until a snapshot is pending or the spool is closed. Returns
    /// `None` only when the spool is closed *and* drained — the writer's
    /// clean shutdown signal.
    pub fn take(&self) -> Option<String> {
        self.take_tagged().map(|(_, text)| text)
    }

    /// [`take`](Self::take) plus the snapshot's generation stamp, for
    /// writers that report durability back through
    /// [`mark_written`](Self::mark_written).
    pub fn take_tagged(&self) -> Option<(u64, String)> {
        let mut slot = self.slot.lock().expect("spool lock poisoned");
        loop {
            if let Some(tagged) = slot.pending.take() {
                return Some(tagged);
            }
            if slot.closed {
                return None;
            }
            slot = self.ready.wait(slot).expect("spool lock poisoned");
        }
    }

    /// Non-blocking variant of [`take`](Self::take): `None` means
    /// "nothing pending right now", not necessarily closed.
    pub fn try_take(&self) -> Option<String> {
        self.slot
            .lock()
            .expect("spool lock poisoned")
            .pending
            .take()
            .map(|(_, text)| text)
    }

    /// Records that the snapshot stamped `generation` has been durably
    /// persisted, releasing any [`wait_written`](Self::wait_written)
    /// caller waiting at or below it. Because the spool is latest-wins,
    /// persisting a later snapshot subsumes every earlier one.
    pub fn mark_written(&self, generation: u64) {
        let mut slot = self.slot.lock().expect("spool lock poisoned");
        slot.written = slot.written.max(generation);
        drop(slot);
        self.ready.notify_all();
    }

    /// Marks the writer as dead without durability: every current and
    /// future [`wait_written`](Self::wait_written) call returns `false`
    /// instead of blocking forever.
    pub fn poison(&self) {
        self.slot.lock().expect("spool lock poisoned").poisoned = true;
        self.ready.notify_all();
    }

    /// Blocks until the writer has persisted the snapshot stamped
    /// `generation` (or a newer one). Returns `false` if the spool was
    /// [`poison`](Self::poison)ed first — the caller must treat the
    /// snapshot as *not* durable.
    pub fn wait_written(&self, generation: u64) -> bool {
        let mut slot = self.slot.lock().expect("spool lock poisoned");
        loop {
            if slot.written >= generation {
                return true;
            }
            if slot.poisoned {
                return false;
            }
            slot = self.ready.wait(slot).expect("spool lock poisoned");
        }
    }

    /// Ends the stream and wakes the writer so it can drain and exit.
    pub fn close(&self) {
        self.slot.lock().expect("spool lock poisoned").closed = true;
        self.ready.notify_all();
    }

    /// How many published snapshots were superseded before being written
    /// — a writer-falling-behind signal worth surfacing in serve stats.
    #[must_use]
    pub fn superseded(&self) -> u64 {
        self.slot.lock().expect("spool lock poisoned").superseded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Epsilon;

    #[derive(Clone)]
    struct Tally {
        buckets: usize,
    }

    impl Mechanism for Tally {
        type Input = usize;
        type Report = usize;
        type State = Vec<u64>;
        type Output = Vec<u64>;

        fn epsilon(&self) -> Epsilon {
            Epsilon::new(1.0).unwrap()
        }

        fn fingerprint(&self) -> u64 {
            0xbeef ^ self.buckets as u64
        }

        fn randomize<R: rand::Rng + ?Sized>(
            &self,
            v: &usize,
            _rng: &mut R,
        ) -> Result<usize, CoreError> {
            Ok(*v)
        }

        fn empty_state(&self) -> Vec<u64> {
            vec![0; self.buckets]
        }

        fn absorb(&self, s: &mut Vec<u64>, r: &usize) -> Result<(), CoreError> {
            s[*r] += 1;
            Ok(())
        }

        fn merge_state(&self, s: &mut Vec<u64>, o: &Vec<u64>) -> Result<(), CoreError> {
            if s.len() != o.len() {
                return Err(CoreError::ShardMismatch("bucket counts differ".into()));
            }
            for (a, b) in s.iter_mut().zip(o) {
                *a += b;
            }
            Ok(())
        }

        fn finalize(&self, s: &Vec<u64>) -> Result<Vec<u64>, CoreError> {
            Ok(s.clone())
        }
    }

    fn snapshot() -> (Tally, String) {
        let mech = Tally { buckets: 4 };
        let state = vec![5, 0, 2, 9];
        (
            mech.clone(),
            encode_snapshot(&mech, "tally:d=4", &state, 16),
        )
    }

    #[test]
    fn round_trips_exactly() {
        let (mech, text) = snapshot();
        let (state, count) = decode_snapshot(&mech, "tally:d=4", &text).unwrap();
        assert_eq!(state, vec![5, 0, 2, 9]);
        assert_eq!(count, 16);
        let header = parse_snapshot(&text).unwrap().0;
        assert_eq!(header.version, SNAPSHOT_VERSION);
        assert_eq!(header.mechanism, "tally:d=4");
        assert_eq!(header.count, 16);
    }

    #[test]
    fn truncation_at_every_point_is_rejected() {
        let (mech, text) = snapshot();
        // Cut the file after every prefix length that ends at a line
        // boundary (a torn write without the atomic rename discipline).
        let mut offset = 0;
        for line in text.lines() {
            offset += line.len() + 1;
            if offset >= text.len() {
                break;
            }
            let truncated = &text[..offset];
            assert!(
                decode_snapshot(&mech, "tally:d=4", truncated).is_err(),
                "prefix of {offset} bytes must be rejected"
            );
        }
        // Mid-line truncation too.
        assert!(decode_snapshot(&mech, "tally:d=4", &text[..text.len() - 3]).is_err());
    }

    #[test]
    fn corruption_is_rejected() {
        let (mech, text) = snapshot();
        let corrupted = text.replace("5 0 2 9", "5 0 3 9");
        assert!(matches!(
            decode_snapshot(&mech, "tally:d=4", &corrupted),
            Err(CoreError::Snapshot(msg)) if msg.contains("checksum")
        ));
    }

    #[test]
    fn cross_configuration_is_rejected() {
        let (_, text) = snapshot();
        let other = Tally { buckets: 8 };
        // Same id, different fingerprint.
        assert!(matches!(
            decode_snapshot(&other, "tally:d=4", &text),
            Err(CoreError::ShardMismatch(_))
        ));
        // Different id entirely.
        let mech = Tally { buckets: 4 };
        assert!(matches!(
            decode_snapshot(&mech, "tally:d=8", &text),
            Err(CoreError::ShardMismatch(_))
        ));
    }

    #[test]
    fn foreign_and_future_files_are_rejected() {
        let mech = Tally { buckets: 4 };
        assert!(decode_snapshot(&mech, "x", "").is_err());
        assert!(decode_snapshot(&mech, "x", "not a snapshot\n").is_err());
        let (_, text) = snapshot();
        let future = text.replacen("ldp-snapshot v1", "ldp-snapshot v2", 1);
        assert!(matches!(
            decode_snapshot(&mech, "tally:d=4", &future),
            Err(CoreError::Snapshot(msg)) if msg.contains("version")
        ));
    }

    #[test]
    fn trailing_content_is_rejected() {
        let (mech, text) = snapshot();
        let padded = format!("{text}stray line\n");
        assert!(decode_snapshot(&mech, "tally:d=4", &padded).is_err());
    }

    #[test]
    fn tampered_length_prefix_is_rejected() {
        let mut s = String::new();
        vec![1u64, 2, 3].encode_state(&mut s);
        // Claim more fields than present.
        let long = s.replacen("u64 3", "u64 4", 1);
        let mut it = long.lines();
        assert!(Vec::<u64>::decode_state(&mut it).is_err());
        // Claim fewer fields than present.
        let short = s.replacen("u64 3", "u64 2", 1);
        let mut it = short.lines();
        assert!(Vec::<u64>::decode_state(&mut it).is_err());
    }

    #[test]
    fn hostile_body_lines_header_errors_without_allocating() {
        // A tampered body-lines count must produce a truncation error —
        // never a capacity-overflow panic or a multi-GB allocation.
        let (mech, text) = snapshot();
        for huge in ["18446744073709551615", "9999999999"] {
            let hostile = text.replacen("body-lines 1", &format!("body-lines {huge}"), 1);
            match decode_snapshot(&mech, "tally:d=4", &hostile) {
                Err(CoreError::Snapshot(msg)) => {
                    assert!(msg.contains("truncated"), "{msg}")
                }
                other => panic!("expected truncation error, got {other:?}"),
            }
        }
        assert!(decode_snapshot(
            &mech,
            "tally:d=4",
            &text.replacen("body-lines 1", "body-lines -1", 1)
        )
        .is_err());
    }

    #[test]
    fn spool_is_latest_wins() {
        let spool = SnapshotSpool::new();
        spool.publish("first".into());
        spool.publish("second".into());
        spool.publish("third".into());
        assert_eq!(spool.superseded(), 2);
        assert_eq!(spool.take().as_deref(), Some("third"));
        spool.close();
        assert_eq!(spool.take(), None);
    }

    #[test]
    fn spool_close_drains_the_pending_snapshot_first() {
        let spool = SnapshotSpool::new();
        spool.publish("last".into());
        spool.close();
        assert_eq!(spool.take().as_deref(), Some("last"));
        assert_eq!(spool.take(), None);
        // Publishing after close is a no-op.
        spool.publish("late".into());
        assert_eq!(spool.take(), None);
    }

    #[test]
    fn spool_take_blocks_until_published() {
        let spool = SnapshotSpool::new();
        std::thread::scope(|s| {
            let taker = s.spawn(|| spool.take());
            std::thread::sleep(std::time::Duration::from_millis(30));
            spool.publish("arrived".into());
            assert_eq!(taker.join().unwrap().as_deref(), Some("arrived"));
        });
        assert_eq!(spool.try_take(), None);
    }

    #[test]
    fn spool_generations_track_durability() {
        let spool = SnapshotSpool::new();
        let g1 = spool.publish("one".into());
        let g2 = spool.publish("two".into());
        assert!(g2 > g1);
        // Latest-wins: the writer takes g2, and marking it written
        // subsumes g1.
        let (taken, text) = spool.take_tagged().unwrap();
        assert_eq!((taken, text.as_str()), (g2, "two"));
        spool.mark_written(taken);
        assert!(spool.wait_written(g1));
        assert!(spool.wait_written(g2));
    }

    #[test]
    fn spool_wait_written_blocks_until_the_writer_reports() {
        let spool = SnapshotSpool::new();
        let g = spool.publish("pending".into());
        std::thread::scope(|s| {
            let waiter = s.spawn(|| spool.wait_written(g));
            std::thread::sleep(std::time::Duration::from_millis(30));
            let (taken, _) = spool.take_tagged().unwrap();
            spool.mark_written(taken);
            assert!(waiter.join().unwrap());
        });
    }

    #[test]
    fn spool_poison_releases_waiters_as_not_durable() {
        let spool = SnapshotSpool::new();
        let g = spool.publish("never written".into());
        std::thread::scope(|s| {
            let waiter = s.spawn(|| spool.wait_written(g));
            std::thread::sleep(std::time::Duration::from_millis(30));
            spool.poison();
            assert!(!waiter.join().unwrap());
        });
        // Poisoned stays poisoned for later waiters too.
        assert!(!spool.wait_written(g));
    }

    #[test]
    fn spool_take_blocks_until_closed() {
        let spool = SnapshotSpool::new();
        std::thread::scope(|s| {
            let taker = s.spawn(|| spool.take());
            std::thread::sleep(std::time::Duration::from_millis(30));
            spool.close();
            assert_eq!(taker.join().unwrap(), None);
        });
    }

    #[test]
    fn sessions_section_round_trips() {
        let mech = Tally { buckets: 4 };
        let state = vec![5, 0, 2, 9];
        let mut cursors = SessionCursors::new();
        cursors.insert("phone-7".into(), 42);
        cursors.insert("fleet.3_b".into(), 1);
        let text = encode_snapshot_with_sessions(&mech, "tally:d=4", &state, 16, &cursors);
        let (restored, count, sessions) =
            decode_snapshot_with_sessions(&mech, "tally:d=4", &text).unwrap();
        assert_eq!(restored, state);
        assert_eq!(count, 16);
        assert_eq!(sessions, cursors);
        // The plain decoder still accepts the file (and discards cursors).
        let (restored2, _) = decode_snapshot(&mech, "tally:d=4", &text).unwrap();
        assert_eq!(restored2, state);
        // Deterministic layout: ids sorted, one line each.
        assert!(text.contains("sessions 2\nsession fleet.3_b 1\nsession phone-7 42\n"));
    }

    #[test]
    fn empty_sessions_map_keeps_legacy_bytes() {
        let mech = Tally { buckets: 4 };
        let state = vec![5, 0, 2, 9];
        let legacy = encode_snapshot(&mech, "tally:d=4", &state, 16);
        let with_empty =
            encode_snapshot_with_sessions(&mech, "tally:d=4", &state, 16, &SessionCursors::new());
        assert_eq!(legacy, with_empty);
        assert!(!legacy.contains("sessions"));
        let (_, _, sessions) = decode_snapshot_with_sessions(&mech, "tally:d=4", &legacy).unwrap();
        assert!(sessions.is_empty());
    }

    #[test]
    fn malformed_sessions_sections_are_rejected() {
        let mech = Tally { buckets: 4 };
        let state = vec![5, 0, 2, 9];
        let mut cursors = SessionCursors::new();
        cursors.insert("s1".into(), 7);
        cursors.insert("s2".into(), 9);
        let text = encode_snapshot_with_sessions(&mech, "tally:d=4", &state, 16, &cursors);
        let reject = |mutated: String, why: &str| {
            assert!(
                decode_snapshot_with_sessions(&mech, "tally:d=4", &mutated).is_err(),
                "{why} must be rejected"
            );
        };
        // Any textual tamper trips the checksum.
        reject(text.replace("session s1 7", "session s1 8"), "cursor edit");
        reject(text.replace("sessions 2", "sessions 1"), "count edit");
        // Structural breakage is caught even when re-checksummed.
        let rechecksum = |body_edit: &str, to: &str| {
            let edited = text.replace(body_edit, to);
            let covered_end = edited.rfind("checksum ").unwrap();
            let covered = &edited[..covered_end];
            format!("{covered}checksum {:016x}\n", snapshot_checksum(covered))
        };
        reject(
            rechecksum("session s2 9", "session s1 9"),
            "duplicate session id",
        );
        reject(
            rechecksum("session s2 9", "session bad!id 9"),
            "invalid session id",
        );
        reject(
            rechecksum("session s2 9", "session s2 9 extra"),
            "trailing session field",
        );
        reject(rechecksum("session s2 9", "session s2"), "missing cursor");
        reject(rechecksum("sessions 2", "sessions 3"), "overlong count");
        reject(
            rechecksum("sessions 2\nsession s1 7\nsession s2 9\n", "sessions 0\n"),
            "explicit empty section",
        );
        reject(
            rechecksum("sessions 2", "sessions x"),
            "non-numeric session count",
        );
    }

    #[test]
    fn session_id_validation() {
        assert!(valid_session_id("a"));
        assert!(valid_session_id("fleet-3_b.7"));
        assert!(valid_session_id(&"x".repeat(64)));
        assert!(!valid_session_id(""));
        assert!(!valid_session_id(&"x".repeat(65)));
        assert!(!valid_session_id("has space"));
        assert!(!valid_session_id("new\nline"));
        assert!(!valid_session_id("ütf"));
    }

    #[test]
    fn checksum_is_stable_and_sensitive() {
        let a = snapshot_checksum("hello snapshot");
        assert_eq!(a, snapshot_checksum("hello snapshot"));
        assert_ne!(a, snapshot_checksum("hello snapshos"));
        assert_ne!(snapshot_checksum(""), snapshot_checksum("\n"));
    }
}
