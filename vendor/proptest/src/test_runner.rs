//! Test configuration, case-level errors, the deterministic RNG, and the
//! `proptest!` assertion macros.

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per property.
    pub cases: u32,
    /// Upper bound on rejected draws before the property errors out.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case's inputs were rejected by `prop_assume!` or a filter; the
    /// runner retries with fresh inputs.
    Reject(String),
    /// An assertion failed; the runner panics with this message.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure from a formatted message.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection from a formatted message.
    #[must_use]
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Deterministic RNG driving value generation (SplitMix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG seeded deterministically from a label (the test name),
    /// so every `cargo test` run explores the same case sequence.
    #[must_use]
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a over the label, then a fixed tweak so empty labels work.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Returns the next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[0, 1]`.
    pub fn unit_f64_inclusive(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
    }

    /// Uniform draw from `[lo, hi]`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        let width = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % width) as usize
    }
}

/// Defines property tests over strategy-drawn inputs, mirroring
/// `proptest::proptest!`.
///
/// Supports the attribute-decorated `fn name(arg in strategy, ..) { body }`
/// form with an optional leading `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(clippy::redundant_clone)]
                let config: $crate::test_runner::ProptestConfig = ($cfg).clone();
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases {
                    $(
                        let $arg = match $crate::strategy::Strategy::sample(&($strat), &mut rng) {
                            ::core::option::Option::Some(v) => v,
                            ::core::option::Option::None => {
                                rejected += 1;
                                assert!(
                                    rejected <= config.max_global_rejects,
                                    "proptest: too many rejected inputs in {}",
                                    stringify!($name),
                                );
                                continue;
                            }
                        };
                    )+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match outcome {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {
                            rejected += 1;
                            assert!(
                                rejected <= config.max_global_rejects,
                                "proptest: too many rejected inputs in {}",
                                stringify!($name),
                            );
                        }
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "proptest case failed in {} (case {}): {}",
                                stringify!($name), accepted, msg
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Asserts a condition inside a `proptest!` body, mirroring
/// `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body, mirroring
/// `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Rejects the current case's inputs, mirroring `proptest::prop_assume!`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(format!($($fmt)+)),
            );
        }
    };
}
