//! Generation-tagged connection slots.

/// A slab of connection slots addressed by `u64` tokens that double as
/// epoll registration tokens.
///
/// A token packs the slot index (low 32 bits) with a per-slot
/// **generation** (high 32 bits) that bumps on every reuse, so a stale
/// event or completion addressed to a retired connection misses cleanly
/// instead of landing on whoever inherited the slot — the classic
/// use-after-close hazard of index-only tokens.
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
}

struct Slot<T> {
    generation: u32,
    value: Option<T>,
}

impl<T> Slab<T> {
    /// An empty slab.
    #[must_use]
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Inserts a value, returning its token.
    pub fn insert(&mut self, value: T) -> u64 {
        self.len += 1;
        match self.free.pop() {
            Some(index) => {
                let slot = &mut self.slots[index as usize];
                slot.value = Some(value);
                pack(index, slot.generation)
            }
            None => {
                let index = u32::try_from(self.slots.len()).expect("slab exceeds 2^32 slots");
                self.slots.push(Slot {
                    generation: 0,
                    value: Some(value),
                });
                pack(index, 0)
            }
        }
    }

    /// The value a live token addresses (`None` if it was removed or the
    /// slot was since reused).
    #[must_use]
    pub fn get(&self, token: u64) -> Option<&T> {
        let (index, generation) = unpack(token);
        self.slots
            .get(index as usize)
            .filter(|s| s.generation == generation)
            .and_then(|s| s.value.as_ref())
    }

    /// Mutable access under the same liveness rule as [`Slab::get`].
    #[must_use]
    pub fn get_mut(&mut self, token: u64) -> Option<&mut T> {
        let (index, generation) = unpack(token);
        self.slots
            .get_mut(index as usize)
            .filter(|s| s.generation == generation)
            .and_then(|s| s.value.as_mut())
    }

    /// Removes and returns the value; the slot's generation bumps so the
    /// token (and any copies of it in flight) are dead from here on.
    pub fn remove(&mut self, token: u64) -> Option<T> {
        let (index, generation) = unpack(token);
        let slot = self.slots.get_mut(index as usize)?;
        if slot.generation != generation || slot.value.is_none() {
            return None;
        }
        let value = slot.value.take();
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(index);
        self.len -= 1;
        value
    }

    /// Live values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no slot is live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The tokens of every live slot (snapshot — safe to mutate the slab
    /// while iterating the returned list).
    #[must_use]
    pub fn tokens(&self) -> Vec<u64> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.value.is_some())
            .map(|(i, s)| pack(i as u32, s.generation))
            .collect()
    }
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

fn pack(index: u32, generation: u32) -> u64 {
    (u64::from(generation) << 32) | u64::from(index)
}

fn unpack(token: u64) -> (u32, u32) {
    (token as u32, (token >> 32) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&"a"));
        *slab.get_mut(b).unwrap() = "b2";
        assert_eq!(slab.remove(b), Some("b2"));
        assert_eq!(slab.get(b), None);
        assert_eq!(slab.len(), 1);
        let mut tokens = slab.tokens();
        tokens.sort_unstable();
        assert_eq!(tokens, vec![a]);
    }

    #[test]
    fn a_reused_slot_kills_the_old_token() {
        let mut slab = Slab::new();
        let old = slab.insert(1);
        assert_eq!(slab.remove(old), Some(1));
        let new = slab.insert(2);
        // Same slot index, different generation.
        assert_eq!(new as u32, old as u32);
        assert_ne!(new, old);
        assert_eq!(slab.get(old), None, "stale token must miss");
        assert_eq!(slab.remove(old), None);
        assert_eq!(slab.get(new), Some(&2));
    }

    #[test]
    fn double_remove_is_a_clean_miss() {
        let mut slab = Slab::new();
        let t = slab.insert(7);
        assert_eq!(slab.remove(t), Some(7));
        assert_eq!(slab.remove(t), None);
        assert!(slab.is_empty());
    }
}
