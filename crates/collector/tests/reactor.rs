//! Reactor-engine acceptance suite.
//!
//! The epoll serve path must carry the whole exactly-once contract at
//! fleet scale: 256 concurrent sequenced sessions multiplexed over 4
//! reactor threads, under fault injection, ending bit-identical to a
//! serial ingest — plus the router's per-window snapshots and the
//! accept-loop's fd-pressure backoff.
//!
//! The multi-window test needs the reactor (`--window` routing is
//! reactor-only) and skips itself when the `LDP_SERVE_ENGINE=threaded`
//! compat lane pins the legacy engine; everything else asserts
//! engine-agnostic contracts and runs on whichever engine the lane
//! picks.

use ldp_collector::server::{
    serve, serve_routed, summary_json, ServeOptions, ServeSummary, SnapshotPolicy, WindowRoute,
};
use ldp_collector::{build_session, faults};
use ldp_loadgen::{generate_frames, run, Plan};
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The fault schedule is process-global; every test that installs one
/// holds this lock for its whole serve run.
static FAULTS: Mutex<()> = Mutex::new(());

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ldp-reactor-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Serial reference: one session ingesting every generated frame in
/// order — the bit-exact target for any concurrent run.
fn reference_finalize(spec: &str, frames: &[Vec<String>]) -> (String, u64) {
    let mut session = build_session(spec).unwrap();
    for conn in frames {
        for frame in conn {
            session.ingest_text(frame).unwrap();
        }
    }
    (session.finalize_text().unwrap(), session.count())
}

fn threaded_lane() -> bool {
    std::env::var("LDP_SERVE_ENGINE").as_deref() == Ok("threaded")
}

/// The headline acceptance run: 256 concurrent sequenced sessions on 4
/// reactor threads, riding out an injected fault schedule, must end
/// bit-identical to the serial reference with zero duplicate absorbs.
#[test]
fn c256_fleet_on_four_reactor_threads_is_bit_identical_under_chaos() {
    let guard = FAULTS.lock().unwrap_or_else(|e| e.into_inner());
    let spec = "sw-ems:eps=1,d=32";
    let plan = Plan {
        spec: spec.into(),
        connections: 256,
        frames_per_connection: 3,
        reports_per_frame: 16,
        seed: 77,
        session: Some("swarm".into()),
        retry_budget: Duration::from_secs(120),
        ..Plan::default()
    };
    let frames = generate_frames(&plan).unwrap();
    let (expected, expected_count) = reference_finalize(spec, &frames);

    faults::install("frame-read=err@101,ack-write=err@211,commit-push=err@307").unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let options = ServeOptions {
        max_connections: 300,
        reactor_threads: 4,
        ..ServeOptions::default()
    };
    let shutdown = Arc::clone(&options.shutdown);
    let server = std::thread::spawn({
        let spec = spec.to_string();
        move || {
            let mut session = build_session(&spec).unwrap();
            let policy = SnapshotPolicy {
                path: None,
                every: 0,
                keep: 0,
            };
            let summary = serve(&listener, session.as_mut(), &policy, &options).unwrap();
            (summary, session.finalize_text().unwrap(), session.count())
        }
    });

    let report = run(&addr, &plan).unwrap();
    shutdown.store(true, Ordering::SeqCst);
    let (summary, finalized, count) = server.join().unwrap();
    faults::clear();
    drop(guard);

    assert_eq!(report.reports, plan.total_reports());
    assert!(summary.faults_injected > 0, "the schedule never fired");
    assert!(
        report.reconnects > 0,
        "faults should have forced reconnects"
    );
    assert_eq!(count, expected_count, "lost or doubled reports");
    assert_eq!(
        finalized, expected,
        "256-session reactor run must be bit-identical to the serial reference"
    );
    assert!(summary.window_reports.is_empty(), "no routes configured");
}

/// Hello-routed sessions must land in their named windows: each window
/// finalizes exactly like a serial ingest of its own traffic, writes
/// its own snapshot file, and the summary carries per-window counts.
#[test]
fn routed_sessions_land_in_their_named_windows() {
    if threaded_lane() {
        eprintln!("skipped: --window routing needs the reactor engine");
        return;
    }
    let dir = scratch("windows");
    let spec = "sw-ems:eps=1,d=16";
    let mk_plan = |prefix: &str, window: Option<&str>, seed: u64| Plan {
        spec: spec.into(),
        connections: 4,
        frames_per_connection: 2,
        reports_per_frame: 10,
        seed,
        session: Some(prefix.into()),
        retry_budget: Duration::from_secs(60),
        window: window.map(str::to_string),
        ..Plan::default()
    };
    let plans = [
        mk_plan("pa", None, 11),
        mk_plan("pb", Some("hourly"), 22),
        mk_plan("pc", Some("daily"), 33),
    ];
    let references: Vec<(String, u64)> = plans
        .iter()
        .map(|p| reference_finalize(spec, &generate_frames(p).unwrap()))
        .collect();

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let options = ServeOptions {
        reactor_threads: 2,
        ..ServeOptions::default()
    };
    let shutdown = Arc::clone(&options.shutdown);
    let route = {
        let dir = dir.clone();
        move |name: &str| WindowRoute {
            name: name.into(),
            session: build_session(spec).unwrap(),
            policy: SnapshotPolicy {
                path: Some(dir.join(format!("{name}.snap"))),
                every: 0,
                keep: 2,
            },
        }
    };
    let server = std::thread::spawn({
        let spec = spec.to_string();
        let default_path = dir.join("default.snap");
        move || {
            let mut windows = vec![route("hourly"), route("daily")];
            let mut session = build_session(&spec).unwrap();
            let policy = SnapshotPolicy {
                path: Some(default_path),
                every: 0,
                keep: 2,
            };
            let summary =
                serve_routed(&listener, session.as_mut(), &policy, &options, &mut windows).unwrap();
            let mut outcomes = vec![(
                "default".to_string(),
                session.finalize_text().unwrap(),
                session.count(),
            )];
            for w in &mut windows {
                outcomes.push((
                    w.name.clone(),
                    w.session.finalize_text().unwrap(),
                    w.session.count(),
                ));
            }
            (summary, outcomes)
        }
    });

    let clients: Vec<_> = plans
        .iter()
        .map(|plan| {
            let addr = addr.clone();
            let plan = plan.clone();
            std::thread::spawn(move || run(&addr, &plan).unwrap())
        })
        .collect();
    for (client, plan) in clients.into_iter().zip(&plans) {
        let report = client.join().unwrap();
        assert_eq!(report.reports, plan.total_reports());
    }
    shutdown.store(true, Ordering::SeqCst);
    let (summary, outcomes) = server.join().unwrap();

    for ((name, finalized, count), (expected, expected_count)) in outcomes.iter().zip(&references) {
        assert_eq!(count, expected_count, "window {name}: wrong report count");
        assert_eq!(
            finalized, expected,
            "window {name}: must be bit-identical to a serial ingest of its own traffic"
        );
    }
    // The summary's per-window counts line up with the routed traffic.
    let per_window: std::collections::HashMap<_, _> =
        summary.window_reports.iter().cloned().collect();
    for ((name, _, _), (_, expected_count)) in outcomes.iter().zip(&references) {
        assert_eq!(
            per_window.get(name.as_str()),
            Some(expected_count),
            "summary.window_reports[{name}]"
        );
    }
    // Every window wrote its own snapshot; a fresh session restores each
    // to the window's exact count.
    for (name, _, count) in &outcomes {
        let path = dir.join(format!("{name}.snap"));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("window {name}: no snapshot at {}: {e}", path.display()));
        let mut restored = build_session(spec).unwrap();
        restored.merge_snapshot(&text).unwrap();
        assert_eq!(restored.count(), *count, "window {name}: snapshot count");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Transient accept-loop failures (fd exhaustion, injected here) must
/// back off and keep serving instead of killing the listener; the
/// summary counts them.
#[test]
fn a_transient_accept_failure_backs_off_and_the_fleet_completes() {
    let guard = FAULTS.lock().unwrap_or_else(|e| e.into_inner());
    let spec = "sw-ems:eps=1,d=16";
    let plan = Plan {
        spec: spec.into(),
        connections: 4,
        frames_per_connection: 2,
        reports_per_frame: 8,
        seed: 5,
        session: Some("fdp".into()),
        retry_budget: Duration::from_secs(60),
        ..Plan::default()
    };
    let frames = generate_frames(&plan).unwrap();
    let (expected, expected_count) = reference_finalize(spec, &frames);

    faults::install("accept=err@1").unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let options = ServeOptions::default();
    let shutdown = Arc::clone(&options.shutdown);
    let server = std::thread::spawn({
        let spec = spec.to_string();
        move || {
            let mut session = build_session(&spec).unwrap();
            let policy = SnapshotPolicy {
                path: None,
                every: 0,
                keep: 0,
            };
            let summary = serve(&listener, session.as_mut(), &policy, &options).unwrap();
            (summary, session.finalize_text().unwrap(), session.count())
        }
    });

    let report = run(&addr, &plan).unwrap();
    shutdown.store(true, Ordering::SeqCst);
    let (summary, finalized, count) = server.join().unwrap();
    faults::clear();
    drop(guard);

    assert_eq!(report.reports, plan.total_reports());
    assert!(
        summary.accept_errors >= 1,
        "the injected accept failure must be counted, got {}",
        summary.accept_errors
    );
    assert_eq!(count, expected_count);
    assert_eq!(finalized, expected);
}

/// `--summary-json` consumers parse this by key: pin the exact shape,
/// including escaping and the `null` for a clean run.
#[test]
fn summary_json_pins_the_shape() {
    let summary = ServeSummary {
        accepted: 3,
        reports: 42,
        window_reports: vec![("default".to_string(), 40), ("hourly".to_string(), 2)],
        last_session_error: Some("boom \"quoted\"\nline".to_string()),
        ..ServeSummary::default()
    };
    let json = summary_json(&summary);
    assert_eq!(
        json,
        "{\"accepted\":3,\"completed\":0,\"failed\":0,\"reports\":42,\
         \"snapshots_superseded\":0,\"duplicates_suppressed\":0,\
         \"sessions_resumed\":0,\"idle_disconnects\":0,\"admission_sheds\":0,\
         \"quota_sheds\":0,\"rate_sheds\":0,\"oversized_frames\":0,\
         \"evictions\":0,\"supervisor_restarts\":0,\"peak_queue_bytes\":0,\
         \"accept_errors\":0,\"faults_injected\":0,\
         \"window_reports\":{\"default\":40,\"hourly\":2},\
         \"last_session_error\":\"boom \\\"quoted\\\"\\nline\"}"
    );

    let clean = ServeSummary::default();
    assert!(summary_json(&clean).ends_with("\"last_session_error\":null}"));
    assert!(summary_json(&clean).contains("\"window_reports\":{}"));
}
