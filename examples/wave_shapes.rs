//! Wave-shape and bandwidth exploration (the paper's §5.2–5.3 analysis,
//! Figures 5 and 6, at example scale).
//!
//! Shows (1) that the square wave beats trapezoid and triangle shapes of
//! the same bandwidth, matching Theorem 5.3, and (2) that the closed-form
//! mutual-information bandwidth b* sits at (or near) the empirical optimum.
//!
//! ```sh
//! cargo run --release --example wave_shapes
//! ```

use sw_ldp::prelude::*;

fn main() {
    let epsilon = 1.0;
    let d = 256;
    let dataset = DatasetSpec {
        kind: DatasetKind::Beta,
        n: 100_000,
        seed: 31,
    }
    .generate();
    let truth = dataset.histogram(d).expect("non-empty dataset");

    // --- Shape comparison at fixed b (Figure 5) ---------------------------
    let b = optimal_b(epsilon).expect("valid epsilon");
    println!("shape comparison at eps = {epsilon}, b = {b:.3}:");
    let shapes: [(&str, WaveShape); 4] = [
        ("square", WaveShape::Square),
        ("trapezoid r=0.6", WaveShape::Trapezoid { ratio: 0.6 }),
        ("trapezoid r=0.2", WaveShape::Trapezoid { ratio: 0.2 }),
        ("triangle", WaveShape::Triangle),
    ];
    for (name, shape) in shapes {
        let wave = Wave::new(shape, b, epsilon).expect("valid wave");
        let pipeline = SwPipeline::with_wave(wave, d, d).expect("valid pipeline");
        let mut rng = SplitMix64::new(37);
        let est = pipeline
            .estimate(&dataset.values, &Reconstruction::Ems, &mut rng)
            .expect("reconstruction succeeds");
        println!(
            "  {name:<16} W1 = {:.5}  (q = {:.4})",
            wasserstein(&truth, &est).unwrap(),
            pipeline.wave().q()
        );
    }

    // --- Bandwidth sweep for the square wave (Figure 6) -------------------
    println!("\nbandwidth sweep (square wave, eps = {epsilon}), b* = {b:.3}:");
    for bb in [0.05, 0.15, b, 0.35, 0.45] {
        let wave = Wave::square(bb, epsilon).expect("valid wave");
        let pipeline = SwPipeline::with_wave(wave, d, d).expect("valid pipeline");
        let mut rng = SplitMix64::new(41);
        let est = pipeline
            .estimate(&dataset.values, &Reconstruction::Ems, &mut rng)
            .expect("reconstruction succeeds");
        let marker = if (bb - b).abs() < 1e-9 {
            "  <-- b*"
        } else {
            ""
        };
        println!(
            "  b = {bb:.3}   W1 = {:.5}{marker}",
            wasserstein(&truth, &est).unwrap()
        );
    }
}
