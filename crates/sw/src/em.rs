//! Expectation Maximization over aggregated report counts
//! (paper §5.5, Algorithm 1, Appendix A), with the optional smoothing step
//! that turns EM into EMS.
//!
//! Given the column-stochastic transition matrix `M` and the histogram of
//! perturbed reports `n_j`, one EM iteration performs
//!
//! ```text
//! E-step:  Pᵢ = x̂ᵢ · Σⱼ nⱼ · Mⱼᵢ / (M·x̂)ⱼ
//! M-step:  x̂ᵢ = Pᵢ / Σ Pᵢ
//! S-step:  (EMS only) binomial smoothing of x̂
//! ```
//!
//! The loop stops when the log-likelihood `L = Σⱼ nⱼ ln (M·x̂)ⱼ` improves by
//! less than a threshold (paper §6.1 uses `τ = 10⁻³·eᵉ` for EM and
//! `τ = 10⁻³` for EMS), with an L1-change safeguard and an iteration cap —
//! the theorem 5.6 concavity guarantees convergence to the MLE for plain
//! EM.
//!
//! The transition matrix is only ever *applied*, so [`reconstruct`] is
//! generic over [`LinearOperator`]: pass the dense
//! [`Matrix`](ldp_numeric::Matrix) or the `O(d)`
//! [`crate::operator::BandedBaselineOperator`] interchangeably. The loop is
//! also *fused*: the `M·x̂` computed for the log-likelihood of iteration `k`
//! is exactly the E-step conditional of iteration `k + 1`, so each
//! iteration performs one forward and one transposed application instead of
//! two forward plus one transposed.

use crate::error::SwError;
use crate::smoothing::SmoothingKernel;
use ldp_numeric::{Histogram, LinearOperator};

/// Configuration of the EM/EMS loop.
#[derive(Debug, Clone)]
pub struct EmConfig {
    /// Stop once the absolute log-likelihood improvement drops below this.
    pub ll_threshold: f64,
    /// Hard cap on iterations.
    pub max_iterations: usize,
    /// Run at least this many iterations before testing convergence.
    pub min_iterations: usize,
    /// Optional S-step kernel; `Some` makes this EMS.
    pub smoothing: Option<SmoothingKernel>,
}

impl EmConfig {
    /// The paper's plain-EM configuration: `τ = 10⁻³·eᵉ`, no smoothing.
    #[must_use]
    pub fn em(eps: f64) -> Self {
        EmConfig {
            ll_threshold: 1e-3 * eps.exp(),
            max_iterations: 10_000,
            min_iterations: 2,
            smoothing: None,
        }
    }

    /// The paper's EMS configuration: `τ = 10⁻³`, binomial (1,2,1) S-step.
    #[must_use]
    pub fn ems() -> Self {
        EmConfig {
            ll_threshold: 1e-3,
            max_iterations: 10_000,
            min_iterations: 2,
            smoothing: Some(SmoothingKernel::binomial3()),
        }
    }
}

/// Outcome of a reconstruction run.
#[derive(Debug, Clone)]
pub struct EmResult {
    /// The reconstructed input distribution (valid histogram).
    pub histogram: Histogram,
    /// Number of iterations executed.
    pub iterations: usize,
    /// Final log-likelihood `Σⱼ nⱼ ln (M·x̂)ⱼ`.
    pub log_likelihood: f64,
    /// Whether the log-likelihood test triggered (vs the iteration cap).
    pub converged: bool,
}

/// Runs EM (or EMS, when `config.smoothing` is set) on aggregated counts.
///
/// `counts[j]` is the number of reports landing in output bucket `j`; it
/// must have the operator's row count. Fractional counts are permitted (the
/// experiment harness sometimes feeds normalized histograms).
///
/// `m` is any [`LinearOperator`] — the dense transition
/// [`Matrix`](ldp_numeric::Matrix) and the structured
/// [`BandedBaselineOperator`](crate::operator::BandedBaselineOperator)
/// produce the same reconstruction, the latter in `O(d)` per iteration.
pub fn reconstruct<M: LinearOperator + ?Sized>(
    m: &M,
    counts: &[f64],
    config: &EmConfig,
) -> Result<EmResult, SwError> {
    let d = m.cols();
    let d_tilde = m.rows();
    if counts.len() != d_tilde {
        return Err(SwError::Reconstruction(format!(
            "got {} count buckets, transition matrix expects {d_tilde}",
            counts.len()
        )));
    }
    if counts.iter().any(|&c| c < 0.0 || !c.is_finite()) {
        return Err(SwError::Reconstruction(
            "counts must be finite and non-negative".into(),
        ));
    }
    let total: f64 = counts.iter().sum();
    if total <= 0.0 {
        return Err(SwError::Reconstruction(
            "need at least one report to reconstruct".into(),
        ));
    }
    if config.max_iterations == 0 {
        return Err(SwError::InvalidParameter(
            "max_iterations must be positive".into(),
        ));
    }
    if !(config.ll_threshold >= 0.0) {
        return Err(SwError::InvalidParameter(
            "ll_threshold must be non-negative".into(),
        ));
    }

    let mut theta = vec![1.0 / d as f64; d];
    let mut cond = vec![0.0; d_tilde];
    let mut ratio = vec![0.0; d_tilde];
    let mut tmp = vec![0.0; d];
    let mut smoothed = vec![0.0; d];

    let mut old_ll = f64::NEG_INFINITY;
    let mut iterations = 0;
    let mut converged = false;
    let mut log_likelihood = f64::NEG_INFINITY;

    // Prime `cond = M·θ` once; inside the loop the log-likelihood
    // application of iteration k doubles as the E-step conditional of
    // iteration k + 1, halving the forward applications.
    m.matvec_into(&theta, &mut cond)
        .map_err(|e| SwError::Reconstruction(e.to_string()))?;

    for iter in 0..config.max_iterations {
        iterations = iter + 1;

        // E-step: ratio_j = n_j / (M·θ)_j, tmp = Mᵀ·ratio.
        for j in 0..d_tilde {
            ratio[j] = if cond[j] > 0.0 {
                counts[j] / cond[j]
            } else {
                0.0
            };
        }
        m.matvec_transpose_into(&ratio, &mut tmp)
            .map_err(|e| SwError::Reconstruction(e.to_string()))?;

        // M-step: θᵢ ∝ θᵢ·tmpᵢ.
        let mut sum = 0.0;
        for i in 0..d {
            theta[i] *= tmp[i];
            sum += theta[i];
        }
        if sum <= 0.0 {
            return Err(SwError::Reconstruction(
                "EM iterate collapsed to zero mass".into(),
            ));
        }
        for t in &mut theta {
            *t /= sum;
        }

        // S-step.
        if let Some(kernel) = &config.smoothing {
            kernel.smooth_into(&theta, &mut smoothed);
            theta.copy_from_slice(&smoothed);
            let s: f64 = theta.iter().sum();
            for t in &mut theta {
                *t /= s;
            }
        }

        // Log-likelihood of the updated iterate; `cond` is reused as the
        // next iteration's E-step conditional.
        m.matvec_into(&theta, &mut cond)
            .map_err(|e| SwError::Reconstruction(e.to_string()))?;
        log_likelihood = 0.0;
        for j in 0..d_tilde {
            if counts[j] > 0.0 {
                if cond[j] <= 0.0 {
                    log_likelihood = f64::NEG_INFINITY;
                    break;
                }
                log_likelihood += counts[j] * cond[j].ln();
            }
        }

        if iterations >= config.min_iterations.max(1)
            && (log_likelihood - old_ll).abs() < config.ll_threshold
        {
            converged = true;
            break;
        }
        old_ll = log_likelihood;
    }

    let histogram =
        Histogram::from_probs(theta).map_err(|e| SwError::Reconstruction(e.to_string()))?;
    Ok(EmResult {
        histogram,
        iterations,
        log_likelihood,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::BandedBaselineOperator;
    use crate::transition::transition_matrix;
    use crate::wave::Wave;
    use ldp_numeric::Matrix;

    /// Exact expected counts for a known input distribution — EM must
    /// recover the input from noiseless (expected) observations.
    fn expected_counts(m: &Matrix, truth: &[f64], n: f64) -> Vec<f64> {
        m.matvec(truth).unwrap().iter().map(|p| p * n).collect()
    }

    #[test]
    fn em_recovers_truth_from_expected_counts() {
        let wave = Wave::square(0.25, 2.0).unwrap();
        let d = 16;
        let m = transition_matrix(&wave, d, d).unwrap();
        let mut truth = vec![0.0; d];
        truth[3] = 0.5;
        truth[4] = 0.3;
        truth[10] = 0.2;
        let counts = expected_counts(&m, &truth, 1e6);
        let config = EmConfig {
            ll_threshold: 1e-10,
            max_iterations: 50_000,
            min_iterations: 2,
            smoothing: None,
        };
        let result = reconstruct(&m, &counts, &config).unwrap();
        for (i, (&got, &want)) in result.histogram.probs().iter().zip(&truth).enumerate() {
            assert!((got - want).abs() < 0.01, "bucket {i}: {got} vs {want}");
        }
    }

    #[test]
    fn em_increases_log_likelihood_monotonically() {
        let wave = Wave::square(0.3, 1.0).unwrap();
        let d = 8;
        let m = transition_matrix(&wave, d, d).unwrap();
        let counts = vec![10.0, 40.0, 80.0, 50.0, 30.0, 20.0, 10.0, 5.0];
        // Track the likelihood trajectory by running with increasing caps.
        let mut lls = Vec::new();
        for cap in [1, 2, 4, 8, 16, 64] {
            let config = EmConfig {
                ll_threshold: 0.0,
                max_iterations: cap,
                min_iterations: cap + 1, // disable early stop
                smoothing: None,
            };
            let r = reconstruct(&m, &counts, &config).unwrap();
            lls.push(r.log_likelihood);
        }
        for w in lls.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "log-likelihood decreased: {lls:?}");
        }
    }

    #[test]
    fn ems_converges_and_produces_valid_histogram() {
        let wave = Wave::square(0.256, 1.0).unwrap();
        let d = 32;
        let m = transition_matrix(&wave, d, d).unwrap();
        let mut truth = vec![0.0; d];
        for (i, t) in truth.iter_mut().enumerate() {
            *t = (i as f64 / d as f64).powi(2);
        }
        let s: f64 = truth.iter().sum();
        for t in &mut truth {
            *t /= s;
        }
        let counts = expected_counts(&m, &truth, 1e5);
        let result = reconstruct(&m, &counts, &EmConfig::ems()).unwrap();
        assert!(result.converged, "EMS should converge");
        let probs = result.histogram.probs();
        assert!(probs.iter().all(|&p| p >= 0.0));
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Reconstruction tracks the increasing shape.
        assert!(probs[d - 1] > probs[0]);
    }

    #[test]
    fn em_threshold_scaling_follows_paper() {
        let c = EmConfig::em(2.0);
        assert!((c.ll_threshold - 1e-3 * 2f64.exp()).abs() < 1e-12);
        assert!(c.smoothing.is_none());
        let c = EmConfig::ems();
        assert!((c.ll_threshold - 1e-3).abs() < 1e-15);
        assert!(c.smoothing.is_some());
    }

    #[test]
    fn reconstruct_validates_inputs() {
        let wave = Wave::square(0.25, 1.0).unwrap();
        let m = transition_matrix(&wave, 8, 8).unwrap();
        let ok = vec![1.0; 8];
        assert!(reconstruct(&m, &ok[..7], &EmConfig::ems()).is_err());
        assert!(reconstruct(&m, &[-1.0; 8], &EmConfig::ems()).is_err());
        assert!(reconstruct(&m, &[0.0; 8], &EmConfig::ems()).is_err());
        let bad = EmConfig {
            max_iterations: 0,
            ..EmConfig::ems()
        };
        assert!(reconstruct(&m, &ok, &bad).is_err());
        let bad = EmConfig {
            ll_threshold: f64::NAN,
            ..EmConfig::ems()
        };
        assert!(reconstruct(&m, &ok, &bad).is_err());
    }

    #[test]
    fn fractional_counts_are_accepted() {
        let wave = Wave::square(0.25, 1.0).unwrap();
        let m = transition_matrix(&wave, 8, 8).unwrap();
        let counts = vec![0.125; 8];
        let r = reconstruct(&m, &counts, &EmConfig::ems()).unwrap();
        assert_eq!(r.histogram.len(), 8);
    }

    #[test]
    fn structured_operator_reconstructs_identically_to_dense() {
        let wave = Wave::square(0.25, 1.0).unwrap();
        let d = 32;
        let dense = transition_matrix(&wave, d, d).unwrap();
        let op = BandedBaselineOperator::from_wave(&wave, d, d).unwrap();
        let mut truth = vec![0.0; d];
        truth[5] = 0.6;
        truth[20] = 0.4;
        let counts = expected_counts(&dense, &truth, 5e4);
        for config in [EmConfig::em(1.0), EmConfig::ems()] {
            let a = reconstruct(&dense, &counts, &config).unwrap();
            let b = reconstruct(&op, &counts, &config).unwrap();
            assert_eq!(a.iterations, b.iterations);
            for (x, y) in a.histogram.probs().iter().zip(b.histogram.probs()) {
                assert!((x - y).abs() < 1e-9, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn reconstruct_accepts_dyn_operators() {
        let wave = Wave::square(0.25, 1.0).unwrap();
        let m = transition_matrix(&wave, 8, 8).unwrap();
        let dynamic: &dyn ldp_numeric::LinearOperator = &m;
        let r = reconstruct(dynamic, &[10.0; 8], &EmConfig::ems()).unwrap();
        assert_eq!(r.histogram.len(), 8);
    }

    #[test]
    fn ems_is_smoother_than_em_on_noisy_counts() {
        // Feed deliberately jagged counts; the EMS output must have lower
        // total variation than the EM output.
        let wave = Wave::square(0.256, 1.0).unwrap();
        let d = 32;
        let m = transition_matrix(&wave, d, d).unwrap();
        let counts: Vec<f64> = (0..d)
            .map(|j| if j % 2 == 0 { 500.0 } else { 100.0 })
            .collect();
        let em = reconstruct(&m, &counts, &EmConfig::em(1.0)).unwrap();
        let ems = reconstruct(&m, &counts, &EmConfig::ems()).unwrap();
        let tv = |h: &Histogram| -> f64 { h.probs().windows(2).map(|w| (w[1] - w[0]).abs()).sum() };
        assert!(
            tv(&ems.histogram) < tv(&em.histogram),
            "EMS TV {} vs EM TV {}",
            tv(&ems.histogram),
            tv(&em.histogram)
        );
    }
}
