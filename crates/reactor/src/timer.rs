//! Deadline bookkeeping for connection slots.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::time::Instant;

/// A deadline set for connection timers — idle timeouts, ack deadlines,
/// shutdown grace — keyed by `(token, kind)` so one connection can hold
/// several independent timers.
///
/// Internally a min-heap with **lazy deletion**: [`TimerWheel::set`] and
/// [`TimerWheel::clear`] update a live-deadline map in O(log n) / O(1),
/// and stale heap entries (re-armed or cleared timers) are discarded when
/// they surface. The reactor asks [`TimerWheel::next_deadline`] for its
/// `epoll_wait` timeout and drains [`TimerWheel::pop_due`] after every
/// wake.
pub struct TimerWheel {
    heap: BinaryHeap<Reverse<(Instant, u64, u32)>>,
    live: HashMap<(u64, u32), Instant>,
}

impl TimerWheel {
    /// An empty wheel.
    #[must_use]
    pub fn new() -> Self {
        TimerWheel {
            heap: BinaryHeap::new(),
            live: HashMap::new(),
        }
    }

    /// Arms (or re-arms) the `(token, kind)` timer to fire at `at`.
    pub fn set(&mut self, token: u64, kind: u32, at: Instant) {
        self.live.insert((token, kind), at);
        self.heap.push(Reverse((at, token, kind)));
    }

    /// Disarms the `(token, kind)` timer if armed.
    pub fn clear(&mut self, token: u64, kind: u32) {
        self.live.remove(&(token, kind));
    }

    /// The earliest live deadline, after discarding stale heap entries.
    pub fn next_deadline(&mut self) -> Option<Instant> {
        while let Some(Reverse((at, token, kind))) = self.heap.peek().copied() {
            if self.live.get(&(token, kind)) == Some(&at) {
                return Some(at);
            }
            self.heap.pop();
        }
        None
    }

    /// Takes one timer that is due at `now` (disarming it), or `None`
    /// when nothing is due — call in a loop after each wake.
    pub fn pop_due(&mut self, now: Instant) -> Option<(u64, u32)> {
        while let Some(Reverse((at, token, kind))) = self.heap.peek().copied() {
            if self.live.get(&(token, kind)) != Some(&at) {
                self.heap.pop();
                continue;
            }
            if at > now {
                return None;
            }
            self.heap.pop();
            self.live.remove(&(token, kind));
            return Some((token, kind));
        }
        None
    }

    /// Live (armed) timers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether nothing is armed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }
}

impl Default for TimerWheel {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fires_in_deadline_order_and_disarms() {
        let mut wheel = TimerWheel::new();
        let base = Instant::now();
        wheel.set(1, 0, base + Duration::from_millis(30));
        wheel.set(2, 0, base + Duration::from_millis(10));
        wheel.set(3, 1, base + Duration::from_millis(20));
        assert_eq!(
            wheel.next_deadline(),
            Some(base + Duration::from_millis(10))
        );
        let late = base + Duration::from_millis(60);
        assert_eq!(wheel.pop_due(late), Some((2, 0)));
        assert_eq!(wheel.pop_due(late), Some((3, 1)));
        assert_eq!(wheel.pop_due(late), Some((1, 0)));
        assert_eq!(wheel.pop_due(late), None);
        assert!(wheel.is_empty());
    }

    #[test]
    fn rearm_supersedes_and_clear_disarms() {
        let mut wheel = TimerWheel::new();
        let base = Instant::now();
        wheel.set(7, 0, base + Duration::from_millis(5));
        wheel.set(7, 0, base + Duration::from_millis(50)); // re-arm later
        wheel.set(8, 0, base + Duration::from_millis(5));
        wheel.clear(8, 0);
        let mid = base + Duration::from_millis(20);
        assert_eq!(wheel.pop_due(mid), None, "stale entries must not fire");
        assert_eq!(
            wheel.next_deadline(),
            Some(base + Duration::from_millis(50))
        );
        assert_eq!(
            wheel.pop_due(base + Duration::from_millis(60)),
            Some((7, 0))
        );
        assert!(wheel.is_empty());
    }

    #[test]
    fn nothing_due_before_the_deadline() {
        let mut wheel = TimerWheel::new();
        let base = Instant::now();
        wheel.set(1, 2, base + Duration::from_secs(10));
        assert_eq!(wheel.pop_due(base), None);
        assert_eq!(wheel.len(), 1);
    }
}
