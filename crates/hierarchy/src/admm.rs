//! HH-ADMM (paper §4.3, Algorithm 2 / Appendix B): post-processing of
//! hierarchical-histogram estimates by the Alternating Direction Method of
//! Multipliers.
//!
//! The optimization is
//!
//! ```text
//! minimize   ½ ‖x̂ − x̃‖₂²
//! subject to A·x̂ = 0   (parent = Σ children)
//!            x̂ ≥ 0     (non-negativity)
//!            x̂₀ = 1    (the total is public under LDP)
//! ```
//!
//! solved by splitting into three proxable pieces: a quadratic `y`-block, an
//! indicator of the consistency subspace (projection = Hay constrained
//! inference, [`crate::consistency::project_consistent`]) and an indicator
//! of the per-level simplex (projection = Norm-Sub,
//! [`ldp_cfo::postprocess::norm_sub`]). The L2 objective is deliberate: CFO
//! noise is approximately Gaussian, so least squares is the MLE (§4.3).

use crate::consistency::project_consistent;
use crate::error::HierarchyError;
use crate::hh::HhRaw;
use crate::tree::{TreeShape, TreeValues};
use ldp_cfo::postprocess::norm_sub;
use ldp_numeric::Histogram;

/// Configuration of the ADMM solver.
#[derive(Debug, Clone, Copy)]
pub struct AdmmConfig {
    /// Maximum number of iterations.
    pub max_iterations: usize,
    /// Stop when the L1 change of `x̂` between iterations falls below this.
    pub tolerance: f64,
}

impl Default for AdmmConfig {
    fn default() -> Self {
        AdmmConfig {
            max_iterations: 300,
            tolerance: 1e-8,
        }
    }
}

/// Outcome of an ADMM run.
#[derive(Debug, Clone)]
pub struct AdmmResult {
    /// The post-processed tree (consistent, non-negative, levels sum to 1
    /// up to the solver tolerance).
    pub tree: TreeValues,
    /// Iterations actually executed.
    pub iterations: usize,
    /// Final L1 change of the primal iterate.
    pub final_change: f64,
}

/// Projection onto `N+`: every level clamped to the probability simplex
/// (non-negative, summing to 1). Norm-Sub per level (Appendix B).
fn project_levels_simplex(v: &TreeValues) -> TreeValues {
    let levels = v.levels.iter().map(|level| norm_sub(level, 1.0)).collect();
    TreeValues { levels }
}

/// Runs HH-ADMM post-processing on raw hierarchical estimates.
pub fn hh_admm(
    shape: &TreeShape,
    raw: &HhRaw,
    config: AdmmConfig,
) -> Result<AdmmResult, HierarchyError> {
    if config.max_iterations == 0 {
        return Err(HierarchyError::InvalidParameter(
            "max_iterations must be positive".into(),
        ));
    }
    if !(config.tolerance >= 0.0) {
        return Err(HierarchyError::InvalidParameter(
            "tolerance must be non-negative".into(),
        ));
    }
    let x_tilde = raw.tree.flatten();
    let n = x_tilde.len();
    if n != shape.total_nodes() {
        return Err(HierarchyError::InvalidParameter(format!(
            "raw tree has {n} nodes, shape expects {}",
            shape.total_nodes()
        )));
    }

    let mut x_hat = x_tilde.clone();
    let mut y = vec![0.0; n];
    let mut mu = vec![0.0; n];
    let mut nu = vec![0.0; n];
    let mut eta = vec![0.0; n];

    let mut iterations = 0;
    let mut change = f64::INFINITY;
    for iter in 0..config.max_iterations {
        iterations = iter + 1;

        // y-update: argmin ½‖y‖² + ρ/2 ‖x̂ − x̃ − y + μ‖², ρ = 1.
        for i in 0..n {
            y[i] = 0.5 * (x_hat[i] - x_tilde[i] + mu[i]);
        }

        // z-update: Euclidean projection of (x̂ + ν) onto {Ax = 0}.
        let zin: Vec<f64> = (0..n).map(|i| x_hat[i] + nu[i]).collect();
        let z_tree = project_consistent(shape, &TreeValues::unflatten(shape, &zin)?)?;
        let z = z_tree.flatten();

        // w-update: projection of (x̂ + η) onto per-level simplices.
        let win: Vec<f64> = (0..n).map(|i| x_hat[i] + eta[i]).collect();
        let w_tree = project_levels_simplex(&TreeValues::unflatten(shape, &win)?);
        let w = w_tree.flatten();

        // x̂-update: average of the three blocks' pullbacks.
        change = 0.0;
        for i in 0..n {
            let next = ((y[i] + x_tilde[i] - mu[i]) + (z[i] - nu[i]) + (w[i] - eta[i])) / 3.0;
            change += (next - x_hat[i]).abs();
            x_hat[i] = next;
        }

        // Dual updates.
        for i in 0..n {
            mu[i] += x_hat[i] - x_tilde[i] - y[i];
            nu[i] += x_hat[i] - z[i];
            eta[i] += x_hat[i] - w[i];
        }

        if change < config.tolerance {
            break;
        }
    }

    // Final polish: the iterate is feasible only in the limit, so project
    // once more onto each constraint in sequence (consistency, then the
    // leaf simplex via the caller).
    let tree = project_consistent(shape, &TreeValues::unflatten(shape, &x_hat)?)?;
    Ok(AdmmResult {
        tree,
        iterations,
        final_change: change,
    })
}

/// Convenience: runs HH-ADMM and returns the leaf distribution as a valid
/// [`Histogram`] (final Norm-Sub on the leaves guards against residual
/// infeasibility at finite iteration counts).
pub fn hh_admm_histogram(
    shape: &TreeShape,
    raw: &HhRaw,
    config: AdmmConfig,
) -> Result<Histogram, HierarchyError> {
    let result = hh_admm(shape, raw, config)?;
    let leaves = norm_sub(result.tree.leaves(), 1.0);
    Histogram::from_probs(leaves).map_err(|e| HierarchyError::InvalidParameter(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hh::HierarchicalHistogram;
    use ldp_numeric::SplitMix64;

    fn run_raw(eps: f64, seed: u64, d: usize) -> (HierarchicalHistogram, HhRaw) {
        let hh = HierarchicalHistogram::new(4, d, eps).unwrap();
        let mut rng = SplitMix64::new(seed);
        // Mass concentrated on the first quarter of the domain.
        let values: Vec<usize> = (0..40_000).map(|i| (i * 7) % (d / 4)).collect();
        let raw = hh.collect(&values, &mut rng).unwrap();
        (hh, raw)
    }

    #[test]
    fn admm_output_satisfies_all_constraints() {
        let (hh, raw) = run_raw(1.0, 91, 64);
        let result = hh_admm(hh.shape(), &raw, AdmmConfig::default()).unwrap();
        // Consistent.
        assert!(result.tree.consistency_gap(hh.shape()) < 1e-6);
        // Leaves nearly a distribution (non-negativity is enforced in the
        // limit; after the finishing projection residual negativity is tiny).
        let leaves = result.tree.leaves();
        let min = leaves.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(min > -1e-3, "min leaf {min}");
        let sum: f64 = leaves.iter().sum();
        assert!((sum - 1.0).abs() < 1e-3, "sum {sum}");
    }

    #[test]
    fn admm_histogram_is_valid_distribution() {
        let (hh, raw) = run_raw(0.5, 92, 64);
        let h = hh_admm_histogram(hh.shape(), &raw, AdmmConfig::default()).unwrap();
        assert_eq!(h.len(), 64);
        assert!(h.probs().iter().all(|&p| p >= 0.0));
        assert!((h.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn admm_improves_over_raw_leaves() {
        // Compare L1 distance to the truth before/after post-processing.
        let d = 64;
        let hh = HierarchicalHistogram::new(4, d, 0.5).unwrap();
        let mut rng = SplitMix64::new(93);
        let values: Vec<usize> = (0..40_000).map(|i| (i * 13) % (d / 4)).collect();
        let mut truth = vec![0.0; d];
        for &v in &values {
            truth[v] += 1.0 / values.len() as f64;
        }
        let raw = hh.collect(&values, &mut rng).unwrap();
        let raw_leaves = hh.make_consistent(&raw).unwrap().leaves().to_vec();
        let admm = hh_admm_histogram(hh.shape(), &raw, AdmmConfig::default()).unwrap();
        let err_raw: f64 = raw_leaves
            .iter()
            .zip(&truth)
            .map(|(a, b)| (a - b).abs())
            .sum();
        let err_admm: f64 = admm
            .probs()
            .iter()
            .zip(&truth)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(
            err_admm < err_raw,
            "ADMM {err_admm} should beat raw {err_raw}"
        );
    }

    #[test]
    fn admm_converges_and_reports_iterations() {
        let (hh, raw) = run_raw(2.0, 94, 64);
        let result = hh_admm(
            hh.shape(),
            &raw,
            AdmmConfig {
                max_iterations: 500,
                tolerance: 1e-10,
            },
        )
        .unwrap();
        assert!(result.iterations >= 1);
        assert!(result.final_change.is_finite());
    }

    #[test]
    fn admm_validates_config() {
        let (hh, raw) = run_raw(1.0, 95, 16);
        assert!(hh_admm(
            hh.shape(),
            &raw,
            AdmmConfig {
                max_iterations: 0,
                tolerance: 1e-8
            }
        )
        .is_err());
        assert!(hh_admm(
            hh.shape(),
            &raw,
            AdmmConfig {
                max_iterations: 10,
                tolerance: f64::NAN
            }
        )
        .is_err());
    }

    #[test]
    fn noiseless_input_is_preserved() {
        // If the raw tree is already feasible, ADMM should essentially
        // return it.
        let shape = TreeShape::new(2, 4).unwrap();
        let leaves = [0.4, 0.1, 0.3, 0.2];
        let tree = TreeValues::from_leaves(&shape, &leaves);
        let raw = HhRaw::new(shape, tree, vec![1e-12, 1.0, 1.0]).unwrap();
        let result = hh_admm(&shape, &raw, AdmmConfig::default()).unwrap();
        for (a, b) in result.tree.leaves().iter().zip(leaves.iter()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }
}
