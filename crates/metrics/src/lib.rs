//! Utility metrics for reconstructed numerical distributions (paper §3).
//!
//! - [`distance`] — Wasserstein (earth-mover) and Kolmogorov–Smirnov
//!   distances between CDFs;
//! - [`range_query`] — MAE of random range queries `R(x, i, α)`, supporting
//!   the signed leaf vectors produced by HH/HaarHRR;
//! - [`moments`] — `|μ − μ̂|` and `|σ² − σ̂²|`;
//! - [`quantile`] — mean absolute quantile-position error over
//!   `B = {10%, …, 90%}`.

#![forbid(unsafe_code)]
// `!(x > 0.0)` is used deliberately throughout: unlike `x <= 0.0` it is
// also true for NaN, which is exactly what the validators need to reject.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod distance;
pub mod error;
pub mod moments;
pub mod quantile;
pub mod range_query;

pub use distance::{ks_distance, wasserstein};
pub use error::MetricError;
pub use moments::{mean_error, mean_error_scalar, variance_error, variance_error_scalar};
pub use quantile::{paper_levels, quantile_mae};
pub use range_query::{range_query_mae, range_query_mae_signed, signed_cdf_at};
