//! Trait-object registry dispatch over the unified `ldp-core` API.
//!
//! Every estimation method in the evaluation is driven through the same
//! streaming loop: map each dataset value to the mechanism's input type,
//! perturb it through a [`Client`], push the wire report into an
//! [`Aggregator`], and adapt the finalized output into an [`Estimate`].
//! [`MethodRunner`] erases the mechanism's associated types so the grid
//! executor dispatches through one trait object; what used to be
//! per-mechanism randomize/aggregate match arms in `run_method` is now a
//! thin constructor table in [`crate::methods::Method::runner`].

use crate::error::ExperimentError;
use crate::methods::Estimate;
use ldp_core::{Aggregator, Client, Mechanism};
use ldp_mean::MeanVariance;
use ldp_numeric::SplitMix64;

/// How many reports the streaming loop buffers before a bulk
/// `push_slice`: keeps per-report overhead off the hot path while holding
/// O(block) memory (the aggregator state itself is O(d̃)).
const INGEST_BLOCK: usize = 8 * 1024;

/// An erased, ready-to-run estimation method: one trial = one streaming
/// pass over the population.
pub trait MethodRunner: Send + Sync {
    /// Runs one trial over the users' private values in `[0, 1]`.
    fn run(&self, values: &[f64], rng: &mut SplitMix64) -> Result<Estimate, ExperimentError>;
}

/// The generic streaming runner: a mechanism plus input/output adapters.
///
/// `to_input` maps a dataset value in `[0, 1]` to the mechanism's input
/// domain (identity, bucketization, or the signed transform); `to_estimate`
/// adapts the mechanism output into the evaluation's [`Estimate`] currency
/// (possibly applying post-processing such as constrained inference or
/// ADMM, which the paper treats as server-side estimation choices).
pub(crate) struct Streaming<M, FIn, FOut> {
    pub(crate) mechanism: M,
    pub(crate) to_input: FIn,
    pub(crate) to_estimate: FOut,
}

/// Streams `values` through `mechanism` on `rng`, bulk-ingesting reports
/// in fixed-size blocks, and finalizes the estimate.
pub(crate) fn stream<M>(
    mechanism: &M,
    inputs: impl Iterator<Item = M::Input>,
    rng: &mut SplitMix64,
) -> Result<M::Output, ExperimentError>
where
    M: Mechanism,
    M::Input: Sized,
{
    let client = Client::new(mechanism);
    let mut agg = Aggregator::new(mechanism);
    let mut block = Vec::with_capacity(INGEST_BLOCK);
    for input in inputs {
        block.push(client.randomize(&input, rng)?);
        if block.len() == INGEST_BLOCK {
            agg.push_slice(&block)?;
            block.clear();
        }
    }
    agg.push_slice(&block)?;
    Ok(agg.finalize()?)
}

impl<M, FIn, FOut> MethodRunner for Streaming<M, FIn, FOut>
where
    M: Mechanism + Send + Sync,
    M::Input: Sized,
    M::Report: Send,
    M::State: Send,
    FIn: Fn(f64) -> M::Input + Send + Sync,
    FOut: Fn(M::Output) -> Result<Estimate, ExperimentError> + Send + Sync,
{
    fn run(&self, values: &[f64], rng: &mut SplitMix64) -> Result<Estimate, ExperimentError> {
        let output = stream(
            &self.mechanism,
            values.iter().map(|&v| (self.to_input)(v)),
            rng,
        )?;
        (self.to_estimate)(output)
    }
}

/// Runner for the mean/variance methods (SR, PM): the mean estimate
/// streams through the unified mechanism API over the full population (the
/// paper's first-row setup), then the two-phase variance protocol re-runs
/// on a fresh stream — a genuinely two-round interaction the one-round
/// `Mechanism` contract cannot express.
pub(crate) struct MeanRunner<M> {
    pub(crate) mechanism: M,
    pub(crate) protocol: MeanVariance,
}

impl<M> MethodRunner for MeanRunner<M>
where
    M: Mechanism<Input = f64, Output = f64> + Send + Sync,
    M::Report: Send,
    M::State: Send,
{
    fn run(&self, values: &[f64], rng: &mut SplitMix64) -> Result<Estimate, ExperimentError> {
        // Phase "mean": every user reports its (signed) value.
        let signed = values
            .iter()
            .map(|&v| ldp_mean::to_signed(v.clamp(0.0, 1.0)));
        let mean_signed = stream(&self.mechanism, signed, rng)?;
        let mean = ldp_mean::from_signed(mean_signed.clamp(-1.0, 1.0));
        // Variance: the two-phase protocol on a fresh report stream.
        let mv = self.protocol.estimate(values, rng)?;
        Ok(Estimate::Scalar {
            mean,
            variance: mv.variance,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::Method;

    #[test]
    fn runners_are_constructible_for_every_method() {
        for method in Method::moment_methods()
            .into_iter()
            .chain([Method::Hh, Method::HaarHrr])
        {
            assert!(method.runner(64, 1.0).is_ok(), "{}", method.name());
        }
    }

    #[test]
    fn runner_construction_rejects_invalid_parameters() {
        assert!(Method::SwEms.runner(64, 0.0).is_err());
        assert!(Method::SwEms.runner(1, 1.0).is_err());
        assert!(Method::HhAdmm.runner(100, 1.0).is_err(), "non-power domain");
        assert!(Method::CfoBinning { bins: 16 }.runner(100, 1.0).is_err());
    }

    #[test]
    fn streaming_runner_is_deterministic_per_seed() {
        let runner = Method::CfoBinning { bins: 16 }.runner(64, 1.0).unwrap();
        let values: Vec<f64> = (0..4_000).map(|i| (i % 100) as f64 / 100.0).collect();
        let a = runner.run(&values, &mut SplitMix64::new(7)).unwrap();
        let b = runner.run(&values, &mut SplitMix64::new(7)).unwrap();
        match (a, b) {
            (Estimate::Distribution(x), Estimate::Distribution(y)) => {
                assert_eq!(x.probs(), y.probs());
            }
            _ => panic!("expected distributions"),
        }
    }
}
