//! The collector's error surface.

use ldp_core::CoreError;
use std::fmt;

/// Errors produced by the collection service.
#[derive(Debug, Clone, PartialEq)]
pub enum CollectorError {
    /// A mechanism spec string could not be parsed or named unknown
    /// parameters.
    Spec(String),
    /// The unified mechanism API rejected an operation (malformed report,
    /// shard mismatch, snapshot rejection, …).
    Core(CoreError),
    /// Filesystem I/O failed (message carries the path and OS error).
    Io(String),
    /// The socket framing protocol was violated.
    Protocol(String),
    /// The resume invariant was violated (e.g. the replay log is shorter
    /// than the snapshot's absorbed count).
    Resume(String),
    /// A deterministic fault injected by the [`crate::faults`] layer
    /// (never produced in production; see `LDP_FAULTS`).
    Fault(String),
    /// A serve pipeline stage panicked and the supervisor contained it:
    /// the loop quiesced, a final durable snapshot was attempted, and the
    /// panic is reported here instead of wedging the process.
    Panicked(String),
}

impl fmt::Display for CollectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectorError::Spec(msg) => write!(f, "invalid mechanism spec: {msg}"),
            CollectorError::Core(e) => write!(f, "{e}"),
            CollectorError::Io(msg) => write!(f, "i/o error: {msg}"),
            CollectorError::Protocol(msg) => write!(f, "framing protocol violation: {msg}"),
            CollectorError::Resume(msg) => write!(f, "cannot resume: {msg}"),
            CollectorError::Fault(msg) => write!(f, "injected fault: {msg}"),
            CollectorError::Panicked(msg) => {
                write!(
                    f,
                    "pipeline stage panicked (supervisor contained it): {msg}"
                )
            }
        }
    }
}

impl std::error::Error for CollectorError {}

impl From<CoreError> for CollectorError {
    fn from(e: CoreError) -> Self {
        CollectorError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_problem() {
        assert!(CollectorError::Spec("bad".into())
            .to_string()
            .contains("bad"));
        assert!(CollectorError::Core(CoreError::Wire("x".into()))
            .to_string()
            .contains("wire"));
        assert!(CollectorError::Resume("short log".into())
            .to_string()
            .contains("short log"));
    }
}
