//! Structured long-lived service threads.
//!
//! The work-stealing [`Pool`](crate::Pool) is built for short, indexed,
//! CPU-bound jobs — it deliberately has no notion of a thread that lives
//! for the duration of a TCP session or an absorber loop. [`service_scope`]
//! fills that gap: a thin structured-concurrency wrapper over
//! [`std::thread::scope`] that
//!
//! - names every spawned thread (`ldp-svc-<name>`), so stack traces and
//!   `/proc` are readable under load;
//! - contains panics: a panicking service unwinds its own thread (dropping
//!   its channel endpoints, which is how peers find out), every other
//!   service still runs to completion and is joined, and the whole call
//!   returns [`PoolError::JobPanicked`](crate::PoolError::JobPanicked)
//!   instead of aborting the process;
//! - hands the body a [`ServiceScope`] handle that is `Copy`, so an
//!   acceptor service can itself spawn per-connection services.
//!
//! Services communicate over [`bounded`](crate::chan::bounded) channels;
//! the scope guarantees they have all exited before [`service_scope`]
//! returns, so borrowed data (listener sockets, sessions, counters) can
//! live on the caller's stack.

use crate::PoolError;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread;

/// A handle for spawning named service threads inside a
/// [`service_scope`]. `Copy`, so it can be captured by services that
/// spawn further services (e.g. an acceptor spawning one handler per
/// accepted connection).
#[derive(Clone, Copy)]
pub struct ServiceScope<'scope, 'env> {
    scope: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> ServiceScope<'scope, 'env> {
    /// Spawns a service thread named `ldp-svc-<name>`. A panic inside
    /// `f` unwinds only that thread; the enclosing [`service_scope`]
    /// call reports it as an error after every service has joined.
    ///
    /// # Panics
    ///
    /// Panics if the OS refuses to spawn a thread (resource
    /// exhaustion) — inside a scope this surfaces as the scope's
    /// [`PoolError::JobPanicked`], not a process abort.
    pub fn spawn<F>(&self, name: &str, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        thread::Builder::new()
            .name(format!("ldp-svc-{name}"))
            .spawn_scoped(self.scope, f)
            .unwrap_or_else(|e| panic!("failed to spawn service thread ldp-svc-{name}: {e}"));
    }
}

/// Runs `f` with a [`ServiceScope`], joins every spawned service, and
/// returns `f`'s value — or [`PoolError::JobPanicked`] if `f` or any
/// service panicked (all of them are still joined first, so no thread
/// ever outlives the scope).
pub fn service_scope<'env, F, R>(f: F) -> Result<R, PoolError>
where
    F: for<'scope> FnOnce(ServiceScope<'scope, 'env>) -> R,
{
    // std::thread::scope already joins every spawned thread and re-panics
    // on the caller if any of them panicked; containing that re-panic is
    // exactly the error boundary we want.
    catch_unwind(AssertUnwindSafe(|| {
        thread::scope(|scope| f(ServiceScope { scope }))
    }))
    .map_err(|_| PoolError::JobPanicked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chan::bounded;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    #[test]
    fn services_join_before_the_scope_returns() {
        let counter = AtomicUsize::new(0);
        let total = service_scope(|scope| {
            for _ in 0..4 {
                scope.spawn("adder", || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
            &counter
        })
        .unwrap();
        assert_eq!(total.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn a_panicking_service_fails_the_scope_without_aborting() {
        let survived = AtomicBool::new(false);
        let result = service_scope(|scope| {
            scope.spawn("doomed", || panic!("service panic"));
            scope.spawn("fine", || {
                survived.store(true, Ordering::SeqCst);
            });
        });
        assert_eq!(result, Err(PoolError::JobPanicked));
        assert!(
            survived.load(Ordering::SeqCst),
            "healthy services still run and join"
        );
    }

    #[test]
    fn scope_handle_is_copy_so_services_can_spawn_services() {
        let hits = AtomicUsize::new(0);
        let hits_ref = &hits;
        service_scope(|scope| {
            scope.spawn("acceptor", move || {
                for _ in 0..3 {
                    scope.spawn("handler", move || {
                        hits_ref.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn a_panicking_producer_disconnects_its_channel() {
        // The unwinding thread drops its Sender, so the consumer sees a
        // clean end-of-stream instead of hanging — panic containment and
        // channel disconnect semantics compose.
        let (tx, rx) = bounded(2);
        let drained = AtomicUsize::new(0);
        let result = service_scope(|scope| {
            scope.spawn("producer", move || {
                tx.push(1).unwrap();
                panic!("producer dies mid-stream");
            });
            scope.spawn("consumer", || {
                while rx.pop().is_some() {
                    drained.fetch_add(1, Ordering::SeqCst);
                }
            });
        });
        assert_eq!(result, Err(PoolError::JobPanicked));
        assert_eq!(drained.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn services_pipeline_over_bounded_channels() {
        let (tx, rx) = bounded(2);
        let sum = AtomicUsize::new(0);
        service_scope(|scope| {
            scope.spawn("producer", move || {
                for i in 1..=10usize {
                    tx.push(i).unwrap();
                }
            });
            scope.spawn("consumer", || {
                while let Some(v) = rx.pop() {
                    sum.fetch_add(v, Ordering::SeqCst);
                }
            });
        })
        .unwrap();
        assert_eq!(sum.load(Ordering::SeqCst), 55);
    }
}
