//! Deterministic, splittable random number generation.
//!
//! Experiments in this workspace must be exactly reproducible from a single
//! seed even when trials run on different threads. [`SplitMix64`] is a tiny,
//! statistically solid generator (Steele, Lea & Flood, OOPSLA 2014) whose
//! state is a single `u64`, which makes deriving independent per-trial
//! streams trivial via [`SplitMix64::split`].

use rand::{Error, RngCore, SeedableRng};

/// The SplitMix64 state increment (Weyl constant).
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The 64-bit finalizer alone (no Weyl increment): the output function
/// applied to each advanced state.
#[inline]
fn finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The 64-bit finalizer from SplitMix64 / MurmurHash3.
///
/// Also used across the workspace as a cheap integer mixer (e.g. the OLH
/// hash family seeds).
#[inline]
pub fn mix64(z: u64) -> u64 {
    finalize(z.wrapping_add(GAMMA))
}

/// A SplitMix64 pseudo-random generator.
///
/// Not cryptographically secure — the workspace uses it for *simulation* of
/// LDP randomizers, where speed and reproducibility matter. A production
/// client deployment would swap in a CSPRNG via the `rand::Rng` bounds used
/// throughout the public APIs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derives an independent generator for a labelled substream.
    ///
    /// `split(a) != split(b)` streams are statistically independent for
    /// `a != b`; used to give each (trial, method) pair its own stream.
    #[must_use]
    pub fn split(&self, stream: u64) -> Self {
        SplitMix64 {
            state: mix64(self.state ^ mix64(stream)),
        }
    }

    /// Returns the next raw 64-bit output.
    // The name mirrors the canonical SplitMix64 reference implementation;
    // this type is not an Iterator.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GAMMA);
        finalize(self.state)
    }

    /// Fills `out` with raw 64-bit outputs, **draw-order-compatible** with
    /// the serial path: `out[i]` equals the `i`-th sequential
    /// [`SplitMix64::next`] call, and the generator is left in the state
    /// those calls would leave it in. SplitMix64 is counter-based — output
    /// `i` is `finalize(state + (i + 1)·GAMMA)` — so the batch fill runs a
    /// 4-lane independent unroll with no serial dependency between lanes.
    pub fn fill_u64(&mut self, out: &mut [u64]) {
        let base = self.state;
        let mut blocks = out.chunks_exact_mut(4);
        let mut i: u64 = 0;
        for b in &mut blocks {
            b[0] = finalize(base.wrapping_add((i + 1).wrapping_mul(GAMMA)));
            b[1] = finalize(base.wrapping_add((i + 2).wrapping_mul(GAMMA)));
            b[2] = finalize(base.wrapping_add((i + 3).wrapping_mul(GAMMA)));
            b[3] = finalize(base.wrapping_add((i + 4).wrapping_mul(GAMMA)));
            i += 4;
        }
        for o in blocks.into_remainder() {
            i += 1;
            *o = finalize(base.wrapping_add(i.wrapping_mul(GAMMA)));
        }
        self.state = base.wrapping_add((out.len() as u64).wrapping_mul(GAMMA));
    }

    /// Fills `out` with uniform `f64` draws in `[0, 1)`, draw-order-
    /// compatible with `rng.gen::<f64>()` on this generator: each output
    /// is `(u >> 11) · 2⁻⁵³` of the corresponding raw draw.
    pub fn fill_f64(&mut self, out: &mut [f64]) {
        const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
        let base = self.state;
        for (i, o) in out.iter_mut().enumerate() {
            let u = finalize(base.wrapping_add((i as u64 + 1).wrapping_mul(GAMMA)));
            *o = (u >> 11) as f64 * SCALE;
        }
        self.state = base.wrapping_add((out.len() as u64).wrapping_mul(GAMMA));
    }

    /// Fills `out` with bounded draws in `[0, bound)`, draw-order-
    /// compatible with `rng.gen_range(0..bound)` on this generator: each
    /// output is `u % bound` of the corresponding raw draw (the vendored
    /// `rand` integer-range reduction).
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn fill_bounded(&mut self, bound: u64, out: &mut [u64]) {
        assert!(bound > 0, "fill_bounded requires a positive bound");
        let base = self.state;
        for (i, o) in out.iter_mut().enumerate() {
            let u = finalize(base.wrapping_add((i as u64 + 1).wrapping_mul(GAMMA)));
            *o = u % bound;
        }
        self.state = base.wrapping_add((out.len() as u64).wrapping_mul(GAMMA));
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }

    fn fill_u64_stream(&mut self, dest: &mut [u64]) {
        // The counter-based batch fill replays the serial draw order
        // exactly, so generic `Rng` bulk paths get the unrolled kernel.
        self.fill_u64(dest);
    }
}

impl SeedableRng for SplitMix64 {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        SplitMix64::new(u64::from_le_bytes(seed))
    }

    fn seed_from_u64(state: u64) -> Self {
        SplitMix64::new(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn known_answer_vector() {
        // Reference values from the canonical SplitMix64 implementation
        // seeded with 1234567.
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next(), 6457827717110365317);
        assert_eq!(rng.next(), 3203168211198807973);
        assert_eq!(rng.next(), 9817491932198370423);
    }

    #[test]
    fn deterministic_from_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn split_streams_differ_from_parent_and_each_other() {
        let root = SplitMix64::new(7);
        let mut s1 = root.split(1);
        let mut s2 = root.split(2);
        let mut s1b = root.split(1);
        assert_ne!(s1.next(), s2.next());
        let mut s1c = root.split(1);
        assert_eq!(s1b.next(), s1c.next());
    }

    #[test]
    fn uniform_f64_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = SplitMix64::new(99);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SplitMix64::new(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        // Not all bytes should be zero with overwhelming probability.
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn batched_fills_match_serial_draw_order() {
        for n in [0usize, 1, 3, 4, 5, 8, 17, 256] {
            let mut serial = SplitMix64::new(4242);
            let mut batched = SplitMix64::new(4242);
            let expect: Vec<u64> = (0..n).map(|_| serial.next()).collect();
            let mut got = vec![0u64; n];
            batched.fill_u64(&mut got);
            assert_eq!(got, expect, "n = {n}");
            assert_eq!(batched, serial, "state after fill, n = {n}");
        }
        // f64 fills replay gen::<f64>() exactly (same raw draws, same
        // mantissa scaling), bounded fills replay gen_range(0..bound).
        let mut serial = SplitMix64::new(77);
        let expect: Vec<f64> = (0..100).map(|_| serial.gen::<f64>()).collect();
        let mut batched = SplitMix64::new(77);
        let mut got = vec![0.0f64; 100];
        batched.fill_f64(&mut got);
        for (g, e) in got.iter().zip(&expect) {
            assert_eq!(g.to_bits(), e.to_bits());
        }
        let mut serial = SplitMix64::new(78);
        let expect: Vec<u64> = (0..100).map(|_| serial.gen_range(0..37u64)).collect();
        let mut batched = SplitMix64::new(78);
        let mut got = vec![0u64; 100];
        batched.fill_bounded(37, &mut got);
        assert_eq!(got, expect);
    }

    #[test]
    fn batched_fill_golden_vector() {
        // Pins the counter-based formulation against the canonical
        // sequential known-answer vector for seed 1234567.
        let mut rng = SplitMix64::new(1234567);
        let mut out = [0u64; 3];
        rng.fill_u64(&mut out);
        assert_eq!(
            out,
            [
                6457827717110365317,
                3203168211198807973,
                9817491932198370423
            ]
        );
    }

    #[test]
    fn bounded_fill_is_roughly_uniform_chi_square() {
        // Chi-square smoke test over 16 cells: with 64k draws the statistic
        // for a uniform source sits near its 15 degrees of freedom; 60 is
        // far beyond any plausible p-value for a healthy generator.
        const CELLS: u64 = 16;
        const N: usize = 1 << 16;
        let mut rng = SplitMix64::new(20_260_808);
        let mut out = vec![0u64; N];
        rng.fill_bounded(CELLS, &mut out);
        let mut counts = [0u64; CELLS as usize];
        for &v in &out {
            counts[v as usize] += 1;
        }
        let expected = N as f64 / CELLS as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        assert!(chi2 < 60.0, "chi-square statistic {chi2} too large");
    }

    #[test]
    fn mix64_is_a_bijection_sample() {
        // Spot check: distinct inputs give distinct outputs.
        let outs: Vec<u64> = (0u64..1000).map(mix64).collect();
        let mut sorted = outs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), outs.len());
    }
}
