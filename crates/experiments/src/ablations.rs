//! Ablation experiments for the design choices DESIGN.md calls out.
//!
//! These go beyond the paper's printed figures but directly test its design
//! arguments:
//!
//! - [`ablation_em_threshold`] — §5.5's motivation for EMS: plain EM's
//!   accuracy is highly sensitive to the stopping threshold τ, while EMS is
//!   stable across several orders of magnitude.
//! - [`ablation_reconstruction`] — EMS vs EM vs the classical unbiased
//!   matrix-inversion estimator (+ Norm-Sub): what the MLE machinery buys.
//! - [`ablation_smoothing`] — S-step kernel width: none vs (1,2,1) vs
//!   (1,4,6,4,1).

use crate::config::ExperimentConfig;
use crate::error::ExperimentError;
use crate::report::{Chart, Figure, Series};
use crate::runner::parallel_jobs;
use ldp_datasets::{DatasetKind, DatasetSpec};
use ldp_metrics as metrics;
use ldp_numeric::rng::mix64;
use ldp_numeric::{Histogram, SplitMix64};
use ldp_sw::{reconstruct, reconstruct_inversion, EmConfig, SmoothingKernel, SwPipeline};

fn first_dataset(config: &ExperimentConfig) -> DatasetKind {
    config
        .datasets
        .first()
        .copied()
        .unwrap_or(DatasetKind::Beta)
}

/// Generates one set of perturbed counts for a (dataset, ε, trial seed).
fn perturbed_counts(
    pipeline: &SwPipeline,
    values: &[f64],
    seed: u64,
) -> Result<Vec<f64>, ExperimentError> {
    let mut rng = SplitMix64::new(seed);
    let mut counts = vec![0.0; pipeline.output_buckets()];
    for &v in values {
        let r = pipeline.randomize(v, &mut rng)?;
        counts[pipeline.report_bucket(r)] += 1.0;
    }
    Ok(counts)
}

/// EM stopping-threshold sensitivity (the paper's §5.5 motivation for EMS).
///
/// Sweeps the log-likelihood threshold τ over several decades and reports
/// W1 for plain EM and for EMS at each value. The expected shape: EM has a
/// sweet spot and degrades on both sides (too early = underfit, too late =
/// fits the noise), while the EMS curve is flat.
pub fn ablation_em_threshold(config: &ExperimentConfig) -> Result<Figure, ExperimentError> {
    let eps = 1.0;
    let kind = first_dataset(config);
    let d = kind.paper_buckets();
    let spec = DatasetSpec::scaled(kind, config.scale, mix64(config.seed ^ 0xAB1));
    let ds = spec.generate();
    let truth = ds.histogram(d)?;
    let pipeline = SwPipeline::new(eps, d)?;

    let thresholds: Vec<f64> = vec![1e-6, 1e-4, 1e-2, 1e0, 1e2];
    let variants: Vec<(&str, bool)> = vec![("EM", false), ("EMS", true)];

    let jobs = thresholds.len() * variants.len() * config.repeats;
    let flat = parallel_jobs(jobs, config.threads, |idx| {
        let trial = idx % config.repeats;
        let rest = idx / config.repeats;
        let ti = rest % thresholds.len();
        let vi = rest / thresholds.len();
        // Reuse the same reports across thresholds within a trial so the
        // comparison isolates the stopping rule.
        let counts = perturbed_counts(
            &pipeline,
            &ds.values,
            mix64(config.seed ^ mix64(trial as u64 + 0xE41)),
        )?;
        let em_config = EmConfig {
            ll_threshold: thresholds[ti],
            max_iterations: 10_000,
            min_iterations: 2,
            smoothing: if variants[vi].1 {
                Some(SmoothingKernel::binomial3())
            } else {
                None
            },
        };
        let est = reconstruct(pipeline.operator(), &counts, &em_config)?;
        let w1 = metrics::wasserstein(&truth, &est.histogram)?;
        Ok((vi, ti, w1))
    })?;

    let mut per: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); thresholds.len()]; variants.len()];
    for (vi, ti, w1) in flat {
        per[vi][ti].push(w1);
    }
    let series = variants
        .iter()
        .enumerate()
        .map(|(vi, (name, _))| Series {
            label: (*name).into(),
            x: thresholds.clone(),
            y: per[vi]
                .iter()
                .map(|v| ldp_numeric::stats::mean(v))
                .collect(),
            std: per[vi]
                .iter()
                .map(|v| ldp_numeric::stats::std_dev(v))
                .collect(),
        })
        .collect();
    Ok(Figure {
        id: "ablation-em-threshold".into(),
        caption: "EM vs EMS sensitivity to the log-likelihood stopping threshold".into(),
        charts: vec![Chart {
            title: format!("{} (eps = {eps}, d = {d})", kind.name()),
            x_label: "threshold tau".into(),
            y_label: "W1".into(),
            series,
        }],
        notes: vec![format!(
            "dataset {}, scale {}, repeats {}",
            kind.name(),
            config.scale,
            config.repeats
        )],
    })
}

/// EMS vs EM vs ridge-inversion + Norm-Sub across ε.
pub fn ablation_reconstruction(config: &ExperimentConfig) -> Result<Figure, ExperimentError> {
    let kind = first_dataset(config);
    let d = kind.paper_buckets();
    let spec = DatasetSpec::scaled(kind, config.scale, mix64(config.seed ^ 0xAB2));
    let ds = spec.generate();
    let truth = ds.histogram(d)?;

    #[derive(Clone, Copy)]
    enum Rec {
        Ems,
        Em,
        Inversion,
    }
    let variants: Vec<(&str, Rec)> = vec![
        ("SW-EMS", Rec::Ems),
        ("SW-EM", Rec::Em),
        ("SW-inversion", Rec::Inversion),
    ];

    let jobs = config.epsilons.len() * variants.len() * config.repeats;
    let flat = parallel_jobs(jobs, config.threads, |idx| {
        let trial = idx % config.repeats;
        let rest = idx / config.repeats;
        let ei = rest % config.epsilons.len();
        let vi = rest / config.epsilons.len();
        let eps = config.epsilons[ei];
        let pipeline = SwPipeline::new(eps, d)?;
        let counts = perturbed_counts(
            &pipeline,
            &ds.values,
            mix64(config.seed ^ mix64((trial as u64) << 8 ^ ei as u64 ^ 0xE42)),
        )?;
        let hist: Histogram = match variants[vi].1 {
            Rec::Ems => reconstruct(pipeline.operator(), &counts, &EmConfig::ems())?.histogram,
            Rec::Em => reconstruct(pipeline.operator(), &counts, &EmConfig::em(eps))?.histogram,
            Rec::Inversion => reconstruct_inversion(pipeline.transition(), &counts)?,
        };
        let w1 = metrics::wasserstein(&truth, &hist)?;
        Ok((vi, ei, w1))
    })?;

    let mut per: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); config.epsilons.len()]; variants.len()];
    for (vi, ei, w1) in flat {
        per[vi][ei].push(w1);
    }
    let series = variants
        .iter()
        .enumerate()
        .map(|(vi, (name, _))| Series {
            label: (*name).into(),
            x: config.epsilons.clone(),
            y: per[vi]
                .iter()
                .map(|v| ldp_numeric::stats::mean(v))
                .collect(),
            std: per[vi]
                .iter()
                .map(|v| ldp_numeric::stats::std_dev(v))
                .collect(),
        })
        .collect();
    Ok(Figure {
        id: "ablation-reconstruction".into(),
        caption: "Reconstruction algorithm: EMS vs EM vs unbiased inversion + Norm-Sub".into(),
        charts: vec![Chart {
            title: format!("{} (d = {d})", kind.name()),
            x_label: "epsilon".into(),
            y_label: "W1".into(),
            series,
        }],
        notes: vec![format!(
            "scale {}, repeats {}",
            config.scale, config.repeats
        )],
    })
}

/// Smoothing-kernel width ablation: no S-step vs (1,2,1) vs (1,4,6,4,1).
pub fn ablation_smoothing(config: &ExperimentConfig) -> Result<Figure, ExperimentError> {
    let kind = first_dataset(config);
    let d = kind.paper_buckets();
    let spec = DatasetSpec::scaled(kind, config.scale, mix64(config.seed ^ 0xAB3));
    let ds = spec.generate();
    let truth = ds.histogram(d)?;

    let variants: Vec<(&str, Option<SmoothingKernel>)> = vec![
        ("none (EM)", None),
        ("binomial (1,2,1)", Some(SmoothingKernel::binomial3())),
        ("binomial (1,4,6,4,1)", Some(SmoothingKernel::binomial5())),
    ];

    let jobs = config.epsilons.len() * variants.len() * config.repeats;
    let flat = parallel_jobs(jobs, config.threads, |idx| {
        let trial = idx % config.repeats;
        let rest = idx / config.repeats;
        let ei = rest % config.epsilons.len();
        let vi = rest / config.epsilons.len();
        let eps = config.epsilons[ei];
        let pipeline = SwPipeline::new(eps, d)?;
        let counts = perturbed_counts(
            &pipeline,
            &ds.values,
            mix64(config.seed ^ mix64((trial as u64) << 8 ^ ei as u64 ^ 0xE43)),
        )?;
        let em_config = EmConfig {
            ll_threshold: if variants[vi].1.is_none() {
                1e-3 * eps.exp()
            } else {
                1e-3
            },
            max_iterations: 10_000,
            min_iterations: 2,
            smoothing: variants[vi].1.clone(),
        };
        let est = reconstruct(pipeline.operator(), &counts, &em_config)?;
        let w1 = metrics::wasserstein(&truth, &est.histogram)?;
        Ok((vi, ei, w1))
    })?;

    let mut per: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); config.epsilons.len()]; variants.len()];
    for (vi, ei, w1) in flat {
        per[vi][ei].push(w1);
    }
    let series = variants
        .iter()
        .enumerate()
        .map(|(vi, (name, _))| Series {
            label: (*name).into(),
            x: config.epsilons.clone(),
            y: per[vi]
                .iter()
                .map(|v| ldp_numeric::stats::mean(v))
                .collect(),
            std: per[vi]
                .iter()
                .map(|v| ldp_numeric::stats::std_dev(v))
                .collect(),
        })
        .collect();
    Ok(Figure {
        id: "ablation-smoothing".into(),
        caption: "S-step kernel width: none vs (1,2,1) vs (1,4,6,4,1)".into(),
        charts: vec![Chart {
            title: format!("{} (d = {d})", kind.name()),
            x_label: "epsilon".into(),
            y_label: "W1".into(),
            series,
        }],
        notes: vec![format!(
            "scale {}, repeats {}",
            config.scale, config.repeats
        )],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn em_threshold_ablation_smoke() {
        let fig = ablation_em_threshold(&ExperimentConfig::smoke()).unwrap();
        assert_eq!(fig.charts[0].series.len(), 2);
        assert_eq!(fig.charts[0].series[0].x.len(), 5);
    }

    #[test]
    fn reconstruction_ablation_smoke() {
        let fig = ablation_reconstruction(&ExperimentConfig::smoke()).unwrap();
        let labels: Vec<&str> = fig.charts[0]
            .series
            .iter()
            .map(|s| s.label.as_str())
            .collect();
        assert!(labels.contains(&"SW-inversion"));
    }

    #[test]
    fn smoothing_ablation_smoke() {
        let fig = ablation_smoothing(&ExperimentConfig::smoke()).unwrap();
        assert_eq!(fig.charts[0].series.len(), 3);
    }
}
