//! Structured (banded + baseline) transition operators.
//!
//! Every wave transition matrix (paper §5.5) has the form
//!
//! ```text
//! M = baseline · 1·1ᵀ + B
//! ```
//!
//! where the rank-1 baseline is the far density `q` integrated over one
//! output bucket and `B` is a *band*: `B[j][i] ≠ 0` only when the output
//! bucket `B̃j` is within the wave bandwidth `b` of the input bucket `Bi`.
//! Inside the band, every entry whose bucket pair sits entirely under the
//! wave's flat top equals the same plateau value `(peak − q)·w̃`; only the
//! few buckets straddling a flat-top edge need an exact fractional-overlap
//! integral. [`BandedBaselineOperator`] stores exactly that decomposition —
//! a scalar baseline, a scalar plateau, and per-row/per-column runs with
//! explicit edge entries — so applying `M` (or `Mᵀ`) costs
//! `O(d + d̃ + edges)` instead of the dense `O(d·d̃)`: the baseline needs
//! one running sum of the input, the plateau run one prefix-sum window, and
//! the edges a handful of multiplies. For the square wave (flat top = whole
//! band) `edges` is `O(d + d̃)`, making EM/EMS reconstruction linear in the
//! domain size per iteration.
//!
//! The constructors are *exact*: entries are produced by the same analytic
//! integrals [`crate::transition::transition_matrix`] uses, so the operator
//! matches the dense matrix to within a few ulps (the dense path's final
//! column normalization only erases quadrature residue of that order).

use crate::error::SwError;
use crate::wave::{Wave, WaveShape};
use ldp_core::Epsilon;
use ldp_numeric::operator::{check_matvec_dims, LinearOperator};
use ldp_numeric::quad::{integral_of_interval_overlap, integrate_with_breakpoints};
use ldp_numeric::{Matrix, NumericError};

/// One compressed row (or column) of the band `B`: explicit edge entries
/// before and after a constant plateau run.
///
/// The covered index range is `[head_start, head_start + head.len() +
/// run_len + tail.len())`; entries outside it are zero (so the full matrix
/// entry there is just the baseline).
#[derive(Debug, Clone, PartialEq)]
struct BandLine {
    /// First index with a non-zero band entry.
    head_start: usize,
    /// Explicit entries preceding the plateau run.
    head: Vec<f64>,
    /// Length of the constant plateau run that follows `head`.
    run_len: usize,
    /// Explicit entries following the plateau run.
    tail: Vec<f64>,
}

/// Below this many explicit entries a plain serial loop wins: the square
/// wave keeps only 1–2 fractional edges per line, where the blocked path's
/// setup costs more than the multiply-adds it saves. Longer edge runs
/// (trapezoid/triangle shapes, coarse output grids) take the 4-wide path.
const EDGE_UNROLL_THRESHOLD: usize = 8;

/// Dot product of a long explicit-edge run against the matching window of
/// `x`, through the shared 4-accumulator kernel
/// [`ldp_numeric::kernels::dot4`] (AVX2 when available, with each vector
/// lane standing in for one scalar accumulator — bit-identical either
/// way). Only reached through operators whose lines cleared
/// [`EDGE_UNROLL_THRESHOLD`] at construction.
#[inline]
fn dot_edges(entries: &[f64], window: &[f64]) -> f64 {
    debug_assert_eq!(entries.len(), window.len());
    ldp_numeric::kernels::dot4(entries, window)
}

impl BandLine {
    /// Dot product of this line (plus plateau) against `x`, using the
    /// prefix-sum array `prefix` (`prefix[k] = x[0] + … + x[k-1]`) for the
    /// plateau window. The serial variant for short edge runs — the square
    /// wave's lines carry only 1–2 fractional entries each, where any
    /// blocking setup costs more than it saves.
    #[inline]
    fn dot(&self, plateau: f64, x: &[f64], prefix: &[f64]) -> f64 {
        let mut acc = 0.0;
        let mut idx = self.head_start;
        for &e in &self.head {
            acc += e * x[idx];
            idx += 1;
        }
        let run_end = idx + self.run_len;
        acc += plateau * (prefix[run_end] - prefix[idx]);
        idx = run_end;
        for &e in &self.tail {
            acc += e * x[idx];
            idx += 1;
        }
        acc
    }

    /// [`Self::dot`] for long explicit-edge runs: both edge segments go
    /// through the blocked 4-accumulator [`dot_edges`] kernel. Selected
    /// once per operator (see `long_edges`), so the per-line hot loop
    /// carries no length branches.
    #[inline]
    fn dot_unrolled(&self, plateau: f64, x: &[f64], prefix: &[f64]) -> f64 {
        let head_end = self.head_start + self.head.len();
        let mut acc = dot_edges(&self.head, &x[self.head_start..head_end]);
        let run_end = head_end + self.run_len;
        acc += plateau * (prefix[run_end] - prefix[head_end]);
        acc += dot_edges(&self.tail, &x[run_end..run_end + self.tail.len()]);
        acc
    }

    /// Number of explicitly stored entries.
    fn explicit(&self) -> usize {
        self.head.len() + self.tail.len()
    }
}

/// A wave transition matrix in `baseline + banded` form (see the module
/// docs). Implements [`LinearOperator`], so [`crate::em::reconstruct`] and
/// [`crate::bootstrap::bootstrap`] accept it wherever a dense
/// [`Matrix`] works.
#[derive(Debug, Clone, PartialEq)]
pub struct BandedBaselineOperator {
    /// Input granularity `d` (columns).
    d: usize,
    /// Output granularity `d̃` (rows).
    d_tilde: usize,
    /// The rank-1 part: every matrix entry is at least this.
    baseline: f64,
    /// Band entry value where a bucket pair sits fully under the flat top.
    plateau: f64,
    /// Row-compressed band, one line per output bucket.
    rows: Vec<BandLine>,
    /// Column-compressed band, one line per input bucket (for `Mᵀ·x`).
    cols: Vec<BandLine>,
    /// Whether any line's explicit edges reach [`EDGE_UNROLL_THRESHOLD`]:
    /// decided once at construction so the matvecs pick the serial or the
    /// blocked 4-accumulator kernel without per-line branching.
    long_edges: bool,
}

/// Geometry shared by the row and column sweeps of the continuous
/// constructor.
struct WaveGrid<'a> {
    wave: &'a Wave,
    w_in: f64,
    w_out: f64,
    out_lo: f64,
    baseline: f64,
}

impl WaveGrid<'_> {
    /// The band entry `B[j][i] = M[j][i] − baseline`, via the same exact
    /// integrals the dense builder uses.
    fn bump(&self, j: usize, i: usize) -> f64 {
        let bj_lo = self.out_lo + j as f64 * self.w_out;
        let bj_hi = bj_lo + self.w_out;
        let bi_lo = i as f64 * self.w_in;
        let bi_hi = bi_lo + self.w_in;
        let wave = self.wave;
        match wave.shape() {
            WaveShape::Square => {
                let avg =
                    integral_of_interval_overlap(bi_lo, bi_hi, wave.b(), bj_lo, bj_hi) / self.w_in;
                (wave.peak() - wave.q()) * avg
            }
            _ => {
                let wave_breaks = wave.breakpoints();
                let mut vbreaks = Vec::with_capacity(2 * wave_breaks.len());
                for &z in &wave_breaks {
                    vbreaks.push(bj_lo - z);
                    vbreaks.push(bj_hi - z);
                }
                let integral = integrate_with_breakpoints(
                    |v| wave.mass_on_interval(v, bj_lo, bj_hi),
                    &vbreaks,
                    bi_lo,
                    bi_hi,
                    1,
                );
                integral / self.w_in - self.baseline
            }
        }
    }
}

/// Clamps a real-valued index bound into `[0, n]`, mapping negatives to 0.
#[inline]
fn clamp_index(x: f64, n: usize) -> usize {
    if x <= 0.0 {
        0
    } else {
        (x as usize).min(n)
    }
}

/// Builds one compressed line over indices `[lo, hi)` with a plateau run
/// candidate `[run_lo, run_hi)`, filling explicit entries from `entry`.
fn build_line(
    lo: usize,
    hi: usize,
    run_lo: usize,
    run_hi: usize,
    mut entry: impl FnMut(usize) -> f64,
) -> BandLine {
    let (run_lo, run_hi) = {
        let a = run_lo.clamp(lo, hi);
        let b = run_hi.clamp(lo, hi);
        if a < b {
            (a, b)
        } else {
            (hi, hi) // empty run: everything explicit, in `head`
        }
    };
    BandLine {
        head_start: lo,
        head: (lo..run_lo).map(&mut entry).collect(),
        run_len: run_hi - run_lo,
        tail: (run_hi..hi).map(&mut entry).collect(),
    }
}

impl BandedBaselineOperator {
    /// Builds the structured operator exactly equivalent to
    /// [`crate::transition::transition_matrix`]`(wave, d, d_tilde)` (to a
    /// few ulps — see the module docs).
    pub fn from_wave(wave: &Wave, d: usize, d_tilde: usize) -> Result<Self, SwError> {
        if d == 0 || d_tilde == 0 {
            return Err(SwError::InvalidParameter(
                "bucket counts must be positive".into(),
            ));
        }
        let w_in = 1.0 / d as f64;
        let out_lo = wave.output_lo();
        let w_out = (wave.output_hi() - out_lo) / d_tilde as f64;
        let b = wave.b();
        let ft = wave.flat_top_halfwidth();
        let baseline = wave.q() * w_out;
        let plateau = (wave.peak() - wave.q()) * w_out;
        let grid = WaveGrid {
            wave,
            w_in,
            w_out,
            out_lo,
            baseline,
        };

        // Row sweep: for output bucket j, band columns are the input
        // buckets meeting (bj_lo − b, bj_hi + b); the plateau run holds the
        // columns with Bi × B̃j entirely under the flat top, i.e.
        // bi_lo ≥ bj_hi − ft and bi_hi ≤ bj_lo + ft.
        let rows: Vec<BandLine> = (0..d_tilde)
            .map(|j| {
                let bj_lo = out_lo + j as f64 * w_out;
                let bj_hi = bj_lo + w_out;
                let lo = clamp_index(((bj_lo - b) / w_in).floor(), d);
                let hi = clamp_index(((bj_hi + b) / w_in).ceil(), d);
                let run_lo = clamp_index(((bj_hi - ft) / w_in).ceil(), d);
                let run_hi = clamp_index(((bj_lo + ft) / w_in).floor(), d);
                build_line(lo, hi, run_lo, run_hi, |i| grid.bump(j, i))
            })
            .collect();

        // Column sweep: the same conditions with the roles of the bucket
        // grids swapped (the plateau condition is symmetric).
        let cols: Vec<BandLine> = (0..d)
            .map(|i| {
                let bi_lo = i as f64 * w_in;
                let bi_hi = bi_lo + w_in;
                let lo = clamp_index(((bi_lo - b - out_lo) / w_out).floor(), d_tilde);
                let hi = clamp_index(((bi_hi + b - out_lo) / w_out).ceil(), d_tilde);
                let run_lo = clamp_index(((bi_hi - ft - out_lo) / w_out).ceil(), d_tilde);
                let run_hi = clamp_index(((bi_lo + ft - out_lo) / w_out).floor(), d_tilde);
                build_line(lo, hi, run_lo, run_hi, |j| grid.bump(j, i))
            })
            .collect();

        let long_edges = rows
            .iter()
            .chain(cols.iter())
            .any(|l| l.head.len().max(l.tail.len()) >= EDGE_UNROLL_THRESHOLD);
        Ok(BandedBaselineOperator {
            d,
            d_tilde,
            baseline: grid.baseline,
            plateau,
            rows,
            cols,
            long_edges,
        })
    }

    /// Builds the structured operator exactly equivalent to
    /// [`crate::transition::discrete_transition_matrix`]`(d, b, eps)`.
    ///
    /// The discrete matrix is the ideal case: the whole band is one
    /// plateau (`p` near, `q` far, no fractional edges), so both matvecs
    /// are strictly `O(d)`.
    pub fn from_discrete(d: usize, b: usize, eps: f64) -> Result<Self, SwError> {
        Epsilon::new(eps)?;
        if d < 2 {
            return Err(SwError::InvalidParameter(format!(
                "discrete domain needs at least 2 buckets, got {d}"
            )));
        }
        let e = eps.exp();
        let width = (2 * b + 1) as f64;
        let p = e / (width * e + d as f64 - 1.0);
        let q = 1.0 / (width * e + d as f64 - 1.0);
        let d_tilde = d + 2 * b;
        // Row j is `p` on columns i ∈ [j − 2b, j] ∩ [0, d); column i is `p`
        // on rows j ∈ [i, i + 2b].
        let rows = (0..d_tilde)
            .map(|j| {
                let lo = j.saturating_sub(2 * b);
                let hi = (j + 1).min(d);
                build_line(lo, hi, lo, hi, |_| unreachable!("run covers the band"))
            })
            .collect();
        let cols = (0..d)
            .map(|i| build_line(i, i + 2 * b + 1, i, i + 2 * b + 1, |_| unreachable!()))
            .collect();
        Ok(BandedBaselineOperator {
            d,
            d_tilde,
            baseline: q,
            plateau: p - q,
            rows,
            cols,
            // The discrete band is one pure plateau — no explicit entries.
            long_edges: false,
        })
    }

    /// Total number of explicitly stored (fractional edge) entries. For
    /// square waves this is `O(d + d̃)`; the dense matrix stores `d·d̃`.
    #[must_use]
    pub fn explicit_entries(&self) -> usize {
        self.rows.iter().map(BandLine::explicit).sum()
    }

    /// Materializes the dense matrix this operator represents (tests and
    /// debugging; the point of the operator is to never need this).
    #[must_use]
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::from_fn(self.d_tilde, self.d, |_, _| self.baseline);
        for (j, line) in self.rows.iter().enumerate() {
            let mut idx = line.head_start;
            for &e in &line.head {
                m.set(j, idx, self.baseline + e);
                idx += 1;
            }
            for _ in 0..line.run_len {
                m.set(j, idx, self.baseline + self.plateau);
                idx += 1;
            }
            for &e in &line.tail {
                m.set(j, idx, self.baseline + e);
                idx += 1;
            }
        }
        m
    }
}

/// `prefix[k] = x[0] + … + x[k−1]`, with `prefix[len] = Σx`.
fn prefix_sums(x: &[f64]) -> Vec<f64> {
    let mut prefix = Vec::with_capacity(x.len() + 1);
    let mut acc = 0.0;
    prefix.push(0.0);
    for &v in x {
        acc += v;
        prefix.push(acc);
    }
    prefix
}

impl LinearOperator for BandedBaselineOperator {
    fn rows(&self) -> usize {
        self.d_tilde
    }

    fn cols(&self) -> usize {
        self.d
    }

    fn matvec_into(&self, x: &[f64], y: &mut [f64]) -> Result<(), NumericError> {
        check_matvec_dims(self.d_tilde, self.d, x, y)?;
        let prefix = prefix_sums(x);
        let base = self.baseline * prefix[x.len()];
        if self.long_edges {
            for (line, yj) in self.rows.iter().zip(y.iter_mut()) {
                *yj = base + line.dot_unrolled(self.plateau, x, &prefix);
            }
        } else {
            for (line, yj) in self.rows.iter().zip(y.iter_mut()) {
                *yj = base + line.dot(self.plateau, x, &prefix);
            }
        }
        Ok(())
    }

    fn matvec_transpose_into(&self, x: &[f64], y: &mut [f64]) -> Result<(), NumericError> {
        check_matvec_dims(self.d, self.d_tilde, x, y)?;
        let prefix = prefix_sums(x);
        let base = self.baseline * prefix[x.len()];
        if self.long_edges {
            for (line, yi) in self.cols.iter().zip(y.iter_mut()) {
                *yi = base + line.dot_unrolled(self.plateau, x, &prefix);
            }
        } else {
            for (line, yi) in self.cols.iter().zip(y.iter_mut()) {
                *yi = base + line.dot(self.plateau, x, &prefix);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transition::{discrete_transition_matrix, transition_matrix};

    fn max_entry_diff(a: &Matrix, b: &Matrix) -> f64 {
        assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
        let mut worst: f64 = 0.0;
        for j in 0..a.rows() {
            for i in 0..a.cols() {
                worst = worst.max((a.get(j, i) - b.get(j, i)).abs());
            }
        }
        worst
    }

    #[test]
    fn square_operator_matches_dense_entrywise() {
        for &(d, dt) in &[
            (16usize, 16usize),
            (16, 24),
            (24, 16),
            (1, 8),
            (8, 1),
            (64, 64),
        ] {
            let wave = Wave::square(0.25, 1.0).unwrap();
            let dense = transition_matrix(&wave, d, dt).unwrap();
            let op = BandedBaselineOperator::from_wave(&wave, d, dt).unwrap();
            let diff = max_entry_diff(&dense, &op.to_dense());
            assert!(diff < 1e-13, "d={d} dt={dt}: diff {diff}");
        }
    }

    #[test]
    fn all_shapes_match_dense_entrywise() {
        for shape in [
            WaveShape::Square,
            WaveShape::Trapezoid { ratio: 0.4 },
            WaveShape::Triangle,
        ] {
            let wave = Wave::new(shape, 0.3, 1.5).unwrap();
            let dense = transition_matrix(&wave, 20, 28).unwrap();
            let op = BandedBaselineOperator::from_wave(&wave, 20, 28).unwrap();
            let diff = max_entry_diff(&dense, &op.to_dense());
            assert!(diff < 1e-13, "shape {shape:?}: diff {diff}");
        }
    }

    #[test]
    fn square_operator_is_sparse() {
        let wave = Wave::square(0.25, 1.0).unwrap();
        let d = 512;
        let op = BandedBaselineOperator::from_wave(&wave, d, d).unwrap();
        // Each row has O(w̃/w + 1) fractional edge entries; the whole band
        // interior compresses into plateau runs.
        assert!(
            op.explicit_entries() < 16 * d,
            "explicit entries {} should be O(d), dense is {}",
            op.explicit_entries(),
            d * d
        );
    }

    #[test]
    fn matvec_agrees_with_dense_on_random_vectors() {
        let wave = Wave::square(0.18, 2.0).unwrap();
        let (d, dt) = (33, 47);
        let dense = transition_matrix(&wave, d, dt).unwrap();
        let op = BandedBaselineOperator::from_wave(&wave, d, dt).unwrap();
        let x: Vec<f64> = (0..d)
            .map(|i| ((i * 37 + 11) % 101) as f64 / 101.0)
            .collect();
        let yd = dense.matvec(&x).unwrap();
        let yo = LinearOperator::matvec(&op, &x).unwrap();
        for (a, b) in yd.iter().zip(&yo) {
            assert!((a - b).abs() < 1e-13, "{a} vs {b}");
        }
        let t: Vec<f64> = (0..dt).map(|j| ((j * 53 + 3) % 97) as f64 / 97.0).collect();
        let yd = dense.matvec_transpose(&t).unwrap();
        let yo = LinearOperator::matvec_transpose(&op, &t).unwrap();
        for (a, b) in yd.iter().zip(&yo) {
            assert!((a - b).abs() < 1e-13, "{a} vs {b}");
        }
    }

    #[test]
    fn unrolled_matvec_agrees_with_dense_for_long_edge_shapes() {
        // Triangle/trapezoid waves have little or no flat top, so their
        // band lines carry long explicit-edge runs — the blocked
        // 4-accumulator kernel, not the square wave's serial loop.
        for shape in [WaveShape::Triangle, WaveShape::Trapezoid { ratio: 0.3 }] {
            let wave = Wave::new(shape, 0.3, 1.2).unwrap();
            let (d, dt) = (48, 56);
            let dense = transition_matrix(&wave, d, dt).unwrap();
            let op = BandedBaselineOperator::from_wave(&wave, d, dt).unwrap();
            assert!(
                op.long_edges,
                "shape {shape:?} should select the unrolled kernel"
            );
            let x: Vec<f64> = (0..d).map(|i| ((i * 29 + 7) % 83) as f64 / 83.0).collect();
            let yd = dense.matvec(&x).unwrap();
            let yo = LinearOperator::matvec(&op, &x).unwrap();
            for (a, b) in yd.iter().zip(&yo) {
                assert!((a - b).abs() < 1e-12, "shape {shape:?}: {a} vs {b}");
            }
            let t: Vec<f64> = (0..dt).map(|j| ((j * 31 + 5) % 89) as f64 / 89.0).collect();
            let yd = dense.matvec_transpose(&t).unwrap();
            let yo = LinearOperator::matvec_transpose(&op, &t).unwrap();
            for (a, b) in yd.iter().zip(&yo) {
                assert!((a - b).abs() < 1e-12, "shape {shape:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn discrete_operator_matches_dense() {
        for &(d, b) in &[(8usize, 2usize), (8, 0), (32, 5), (2, 1)] {
            let dense = discrete_transition_matrix(d, b, 1.3).unwrap();
            let op = BandedBaselineOperator::from_discrete(d, b, 1.3).unwrap();
            let diff = max_entry_diff(&dense, &op.to_dense());
            assert!(diff < 1e-13, "d={d} b={b}: diff {diff}");
            assert_eq!(op.explicit_entries(), 0, "discrete band is pure plateau");
        }
    }

    #[test]
    fn operator_validates_inputs() {
        let wave = Wave::square(0.25, 1.0).unwrap();
        assert!(BandedBaselineOperator::from_wave(&wave, 0, 8).is_err());
        assert!(BandedBaselineOperator::from_wave(&wave, 8, 0).is_err());
        assert!(BandedBaselineOperator::from_discrete(1, 2, 1.0).is_err());
        assert!(BandedBaselineOperator::from_discrete(8, 2, -1.0).is_err());
        let op = BandedBaselineOperator::from_wave(&wave, 8, 12).unwrap();
        let mut y = vec![0.0; 12];
        assert!(op.matvec_into(&[0.0; 7], &mut y).is_err());
        assert!(op.matvec_transpose_into(&[0.0; 12], &mut [0.0; 7]).is_err());
        assert!(op.matvec_transpose_into(&[0.0; 11], &mut [0.0; 8]).is_err());
    }

    #[test]
    fn column_sums_are_stochastic_without_normalization() {
        for shape in [
            WaveShape::Square,
            WaveShape::Trapezoid { ratio: 0.7 },
            WaveShape::Triangle,
        ] {
            let wave = Wave::new(shape, 0.22, 1.0).unwrap();
            let op = BandedBaselineOperator::from_wave(&wave, 12, 18).unwrap();
            for s in op.to_dense().column_sums() {
                assert!((s - 1.0).abs() < 1e-12, "shape {shape:?}: column sum {s}");
            }
        }
    }
}
