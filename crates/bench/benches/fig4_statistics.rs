//! Figure 4 harness benchmark: mean/variance/quantile trials, including
//! the SR and PM scalar protocols.

use criterion::{criterion_group, criterion_main, Criterion};
use ldp_bench::{bench_dataset, bench_truth, BENCH_D, BENCH_N};
use ldp_datasets::DatasetKind;
use ldp_experiments::{evaluate_trial, Method};
use std::time::Duration;

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));
    let ds = bench_dataset(DatasetKind::Retirement, BENCH_N);
    let truth = bench_truth(&ds, BENCH_D);
    for method in [Method::Sr, Method::Pm, Method::SwEms] {
        group.bench_function(method.name(), |b| {
            let mut seed = 200u64;
            b.iter(|| {
                seed += 1;
                evaluate_trial(method, &ds.values, &truth, BENCH_D, 1.0, seed, 20).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
