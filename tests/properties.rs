//! Property-based tests (proptest) on the workspace's core invariants.

use proptest::prelude::*;
use sw_ldp::cfo::postprocess::{norm_mul, norm_sub};
use sw_ldp::hierarchy::{haar_forward, haar_inverse, project_consistent, TreeShape, TreeValues};
use sw_ldp::prelude::*;
use sw_ldp::sw::{reconstruct, transition_matrix};

fn prob_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1.0, 2..max_len).prop_filter_map("need positive mass", |v| {
        let s: f64 = v.iter().sum();
        if s > 1e-9 {
            Some(v.iter().map(|x| x / s).collect::<Vec<f64>>())
        } else {
            None
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn histogram_cdf_is_monotone_and_normalized(probs in prob_vec(64)) {
        let h = Histogram::from_probs(probs).unwrap();
        let cdf = h.cdf();
        for w in cdf.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-12);
        }
        prop_assert!((cdf.last().unwrap() - 1.0).abs() < 1e-9);
        // Interpolated CDF agrees at bucket boundaries.
        for i in 0..h.len() {
            let t = (i + 1) as f64 / h.len() as f64;
            prop_assert!((h.cdf_at(t) - cdf[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn histogram_quantile_inverts_cdf(probs in prob_vec(48), beta in 0.01f64..0.99) {
        let h = Histogram::from_probs(probs).unwrap();
        let q = h.quantile(beta);
        prop_assert!((0.0..=1.0).contains(&q));
        // CDF at the quantile is at least beta (up to numeric tolerance)
        // and the CDF just below is at most beta.
        prop_assert!(h.cdf_at(q) >= beta - 1e-9);
        if q > 1e-9 {
            prop_assert!(h.cdf_at(q - 1e-9) <= beta + 1e-9);
        }
    }

    #[test]
    fn norm_sub_projects_onto_simplex(
        raw in prop::collection::vec(-1.0f64..1.0, 1..64),
        target in 0.1f64..4.0
    ) {
        let out = norm_sub(&raw, target);
        prop_assert_eq!(out.len(), raw.len());
        prop_assert!(out.iter().all(|&v| v >= 0.0));
        let sum: f64 = out.iter().sum();
        prop_assert!((sum - target).abs() < 1e-6, "sum {} target {}", sum, target);
        // Idempotence.
        let twice = norm_sub(&out, target);
        for (a, b) in out.iter().zip(&twice) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn norm_mul_projects_onto_simplex(
        raw in prop::collection::vec(-1.0f64..1.0, 1..64),
    ) {
        let out = norm_mul(&raw, 1.0);
        prop_assert!(out.iter().all(|&v| v >= 0.0));
        prop_assert!((out.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn wasserstein_is_a_metric_sample(
        a in prob_vec(32),
        b in prob_vec(32),
    ) {
        // Pad to equal length by renormalizing over the max length.
        let len = a.len().max(b.len());
        let pad = |v: &[f64]| {
            let mut p = v.to_vec();
            p.resize(len, 0.0);
            Histogram::from_probs(p).unwrap()
        };
        let ha = pad(&a);
        let hb = pad(&b);
        let dab = wasserstein(&ha, &hb).unwrap();
        let dba = wasserstein(&hb, &ha).unwrap();
        prop_assert!((dab - dba).abs() < 1e-12);
        prop_assert!(dab >= 0.0);
        prop_assert!(wasserstein(&ha, &ha).unwrap() < 1e-12);
        prop_assert!(ks_distance(&ha, &hb).unwrap() >= 0.0);
    }

    #[test]
    fn haar_roundtrip_for_arbitrary_vectors(
        leaves in prop::collection::vec(-10.0f64..10.0, 1..5usize)
            .prop_map(|seed| {
                // Expand the seed to a power-of-two length vector.
                let len = 1usize << (seed.len() + 1); // 4..64
                (0..len).map(|i| seed[i % seed.len()] * ((i % 7) as f64 - 3.0)).collect::<Vec<f64>>()
            })
    ) {
        let coeffs = haar_forward(&leaves).unwrap();
        let back = haar_inverse(&coeffs).unwrap();
        prop_assert_eq!(back.len(), leaves.len());
        for (x, y) in leaves.iter().zip(&back) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn consistency_projection_is_consistent_and_idempotent(
        flat in prop::collection::vec(-1.0f64..1.0, 21)
    ) {
        // β=4, 16 leaves: 1 + 4 + 16 = 21 nodes.
        let shape = TreeShape::new(4, 16).unwrap();
        let tree = TreeValues::unflatten(&shape, &flat).unwrap();
        let proj = project_consistent(&shape, &tree).unwrap();
        prop_assert!(proj.consistency_gap(&shape) < 1e-9);
        let again = project_consistent(&shape, &proj).unwrap();
        for (a, b) in proj.flatten().iter().zip(again.flatten().iter()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn transition_matrices_are_column_stochastic(
        b in 0.02f64..0.6,
        eps in 0.2f64..4.0,
        shape_pick in 0usize..3,
    ) {
        let shape = match shape_pick {
            0 => WaveShape::Square,
            1 => WaveShape::Trapezoid { ratio: 0.5 },
            _ => WaveShape::Triangle,
        };
        let wave = Wave::new(shape, b, eps).unwrap();
        let m = transition_matrix(&wave, 12, 16).unwrap();
        prop_assert!(m.is_nonnegative());
        for s in m.column_sums() {
            prop_assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn em_reconstruction_is_always_a_distribution(
        counts in prop::collection::vec(0.0f64..1000.0, 16),
        eps in 0.3f64..3.0,
    ) {
        prop_assume!(counts.iter().sum::<f64>() > 1.0);
        let wave = Wave::square(optimal_b(eps).unwrap(), eps).unwrap();
        let m = transition_matrix(&wave, 16, 16).unwrap();
        let result = reconstruct(&m, &counts, &EmConfig::ems()).unwrap();
        let probs = result.histogram.probs();
        prop_assert!(probs.iter().all(|&p| p >= 0.0));
        prop_assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sw_randomize_stays_in_output_domain(
        v in 0.0f64..=1.0,
        eps in 0.2f64..4.0,
        seed in 0u64..1000,
    ) {
        let b = optimal_b(eps).unwrap();
        let wave = Wave::square(b, eps).unwrap();
        let mut rng = SplitMix64::new(seed);
        for _ in 0..20 {
            let out = wave.randomize(v, &mut rng).unwrap();
            prop_assert!(out >= -b - 1e-12 && out <= 1.0 + b + 1e-12);
        }
    }

    #[test]
    fn optimal_b_is_in_range_and_decreasing(eps in 0.05f64..8.0) {
        let b = optimal_b(eps).unwrap();
        prop_assert!(b > 0.0 && b <= 0.5 + 1e-9);
        let b2 = optimal_b(eps + 0.1).unwrap();
        prop_assert!(b2 <= b + 1e-9);
    }

    #[test]
    fn grr_estimates_sum_to_one(
        seed in 0u64..500,
        d in 2usize..20,
    ) {
        let g = Grr::new(d, 1.0).unwrap();
        let mut rng = SplitMix64::new(seed);
        let values: Vec<usize> = (0..500).map(|i| i % d).collect();
        let est = g.run(&values, &mut rng).unwrap();
        // The GRR inverse estimator preserves the total exactly.
        prop_assert!((est.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
