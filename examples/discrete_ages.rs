//! Discrete-domain collection: estimating an age distribution.
//!
//! Paper §5.4: when the attribute is already discrete (age in years), the
//! client can bucketize *before* randomizing — the discrete Square Wave
//! mechanism works directly on bucket indices with `p = eᵉ/((2b+1)eᵉ+d−1)`.
//! This example also demonstrates the streaming [`ShardAggregator`]-style
//! aggregation for the discrete mechanism via plain counts.
//!
//! ```sh
//! cargo run --release --example discrete_ages
//! ```

use sw_ldp::prelude::*;
use sw_ldp::sw::reconstruct;

/// Synthesizes an age distribution over 0..=99: working-age bulge plus a
/// retirement shoulder.
fn synthesize_ages(n: usize, rng: &mut SplitMix64) -> Vec<usize> {
    use rand::Rng;
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen();
            let age = if u < 0.22 {
                // Children and students, roughly uniform 0..25.
                rng.gen_range(0..25)
            } else if u < 0.80 {
                // Working-age bell around 40.
                let x: f64 = rng.gen::<f64>() + rng.gen::<f64>() + rng.gen::<f64>();
                (25.0 + (x / 3.0) * 40.0) as usize
            } else {
                // Retirees tapering to 99.
                65 + (rng.gen::<f64>().powf(1.5) * 34.0) as usize
            };
            age.min(99)
        })
        .collect()
}

fn main() {
    let d = 100; // ages 0..=99, one bucket per year
    let epsilon = 1.0;
    let n = 500_000;
    let mut rng = SplitMix64::new(61);
    let ages = synthesize_ages(n, &mut rng);

    // Ground truth for comparison.
    let mut truth_counts = vec![0u64; d];
    for &a in &ages {
        truth_counts[a] += 1;
    }
    let truth = Histogram::from_counts(&truth_counts).expect("non-empty population");

    // --- Client side: discrete SW on bucket indices -----------------------
    let sw = DiscreteSw::new(d, epsilon).expect("valid parameters");
    println!(
        "discrete SW over {d} ages: integer bandwidth b = {}, output domain {} buckets",
        sw.bandwidth(),
        sw.output_size()
    );
    let reports: Vec<usize> = ages
        .iter()
        .map(|&a| sw.randomize(a, &mut rng).expect("age in domain"))
        .collect();

    // --- Server side -------------------------------------------------------
    let counts = sw.aggregate(&reports).expect("reports are in range");
    let m = sw.transition_matrix().expect("valid mechanism");
    let est = reconstruct(&m, &counts, &EmConfig::ems())
        .expect("reconstruction succeeds")
        .histogram;

    println!(
        "\nW1 = {:.5}, KS = {:.5}",
        wasserstein(&truth, &est).unwrap(),
        ks_distance(&truth, &est).unwrap()
    );
    println!(
        "median age: true {:.1}, estimated {:.1}",
        truth.quantile(0.5) * 100.0,
        est.quantile(0.5) * 100.0
    );
    println!(
        "share under 18: true {:.3}, estimated {:.3}",
        truth.range_mass(0.0, 0.18),
        est.range_mass(0.0, 0.18)
    );
    println!(
        "share 65+:      true {:.3}, estimated {:.3}",
        truth.range_mass(0.65, 1.0),
        est.range_mass(0.65, 1.0)
    );

    // A coarse text rendering of the two distributions.
    println!("\nage decade | true vs estimated mass");
    for decade in 0..10 {
        let lo = decade as f64 / 10.0;
        let hi = lo + 0.1;
        let t = truth.range_mass(lo, hi);
        let e = est.range_mass(lo, hi);
        let bar = |m: f64| "#".repeat((m * 200.0) as usize);
        println!(
            "{:>2}0s  true {t:>6.3} {}\n      est  {e:>6.3} {}",
            decade,
            bar(t),
            bar(e)
        );
    }
}
