//! `ldp-loadgen` — a wire-format load generator for the collector's
//! concurrent serve path.
//!
//! The generator plays the *fleet* side of the protocol in
//! `docs/WIRE_FORMAT.md`: it builds valid wire reports for any registry
//! mechanism spec (through the same [`build_session`] the collector
//! uses), splits them into length-delimited frames, and drives N
//! concurrent TCP sessions against a listening collector — optionally
//! throttled to a target aggregate report rate. Every frame waits for
//! its `+`/`-` ack, so the per-frame round trip *is* the commit latency
//! of the decode → queue → absorb pipeline; the [`RunReport`] summarizes
//! throughput and the ack-latency tail (p50/p99/max).
//!
//! Two delivery modes:
//!
//! - **Bare** (the default): PR 6's at-least-once framing. An io error
//!   mid-session fails that connection's run — there is no safe retry.
//! - **Sequenced** ([`Plan::session`] set): the exactly-once protocol of
//!   `docs/WIRE_FORMAT.md` §4. Each connection opens a stable session id,
//!   numbers its frames, and on *any* io error or `-` ack reconnects with
//!   capped exponential backoff ([`Backoff`]), re-handshakes, and resumes
//!   from the **server's** cursor — resending whatever the collector
//!   rolled back and trusting it to suppress whatever it already
//!   committed. A faulted, crashing, restarting collector therefore ends
//!   the run with exactly the planned reports absorbed, and the run
//!   report counts the retries ([`RunReport::reconnects`],
//!   [`RunReport::frames_resent`]) instead of failing.
//!
//! Two consumers: the `ldp-loadgen` binary for operator drills, and the
//! `sustained_ingest` bench in `ldp-bench`, which records the collector's
//! end-to-end ingest rate into `BENCH_em.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ldp_collector::build_session;
use ldp_collector::protocol;
use ldp_collector::server::write_frame;
use ldp_collector::CollectorError;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// First retry delay of a [`Backoff`].
pub const BACKOFF_BASE: Duration = Duration::from_millis(20);

/// Ceiling a [`Backoff`] delay never exceeds.
pub const BACKOFF_CAP: Duration = Duration::from_secs(1);

/// Default total sleep budget for connects and reconnects
/// ([`Plan::retry_budget`]).
pub const DEFAULT_RETRY_BUDGET: Duration = Duration::from_millis(15_000);

/// What to send: which mechanism's reports, how many sessions, how fast.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Registry mechanism spec (`sw-ems:eps=1,d=1024`, paper legends too).
    pub spec: String,
    /// Concurrent TCP sessions to drive.
    pub connections: usize,
    /// Frames each session sends before its end-of-stream.
    pub frames_per_connection: usize,
    /// Wire-report lines per frame.
    pub reports_per_frame: usize,
    /// Base seed; connection `c` generates with `seed + c`.
    pub seed: u64,
    /// Target aggregate rate in reports/second across all connections
    /// (`0.0` = unthrottled).
    pub rate: f64,
    /// Sequenced-session id prefix. `Some("fleet")` switches every
    /// connection to the exactly-once protocol with session ids
    /// `fleet-0`, `fleet-1`, … and reconnect-with-resume; `None` keeps
    /// bare at-least-once framing.
    pub session: Option<String>,
    /// Total sleep budget shared by a connection's initial connect
    /// retries and (in sequenced mode) every reconnect backoff. The
    /// budget refills each time the session makes progress, so it bounds
    /// *consecutive* futility, not run length.
    pub retry_budget: Duration,
    /// Route every sequenced session to this named collector window
    /// (the hello's `window` line; requires [`Plan::session`]). `None`
    /// lands in the default window.
    pub window: Option<String>,
}

impl Default for Plan {
    fn default() -> Self {
        Plan {
            spec: "sw-ems:eps=1,d=1024".into(),
            connections: 8,
            frames_per_connection: 8,
            reports_per_frame: 256,
            seed: 1,
            rate: 0.0,
            session: None,
            retry_budget: DEFAULT_RETRY_BUDGET,
            window: None,
        }
    }
}

impl Plan {
    /// Total reports the plan sends across all connections.
    #[must_use]
    pub fn total_reports(&self) -> u64 {
        (self.connections * self.frames_per_connection * self.reports_per_frame) as u64
    }
}

/// What happened: counts, wall-clock, and the ack-latency tail.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Sessions driven (== the plan's `connections`).
    pub connections: usize,
    /// Distinct reports positively acked (resends of the same sequenced
    /// frame count once).
    pub reports: u64,
    /// Frames sent and acked, *including* sequenced resends (excluding
    /// end-of-stream frames).
    pub frames: u64,
    /// Frames the collector rejected with `-`.
    pub rejected_frames: u64,
    /// TCP connect attempts across all connections (1 per connection on
    /// a quiet network; more under backoff).
    pub connect_attempts: u64,
    /// Successful re-handshakes after a broken sequenced session.
    pub reconnects: u64,
    /// Sequenced frames re-sent below a connection's high-water mark —
    /// the at-least-once duplicates the collector must suppress.
    pub frames_resent: u64,
    /// `!busy` shed responses honored (admission, quota, or rate — the
    /// collector absorbed nothing, the generator waited the hint and
    /// retried). Distinct from [`RunReport::rejected_frames`], which are
    /// permanent `-` verdicts.
    pub sheds: u64,
    /// Connections the collector closed mid-session on an otherwise
    /// healthy socket — the slow-consumer eviction signature (sequenced
    /// runs recover by re-handshaking; counted separately from
    /// [`RunReport::reconnects`] causes like crashes).
    pub evictions: u64,
    /// Wall-clock for the whole run (connect to last end-of-stream ack).
    pub elapsed: Duration,
    /// Acked reports per second of wall-clock.
    pub reports_per_sec: f64,
    /// Median frame ack latency, microseconds.
    pub ack_p50_us: u64,
    /// 99th-percentile frame ack latency, microseconds.
    pub ack_p99_us: u64,
    /// Worst frame ack latency, microseconds.
    pub ack_max_us: u64,
}

/// How [`run_frames_with`] should drive each connection.
#[derive(Debug, Clone)]
pub struct DriveOptions {
    /// Wire-report lines per frame (for the report's `reports` count).
    pub reports_per_frame: usize,
    /// Per-connection pacing between frame sends (zero = none).
    pub frame_interval: Duration,
    /// Sequenced-session id prefix (see [`Plan::session`]).
    pub session: Option<String>,
    /// Backoff sleep budget (see [`Plan::retry_budget`]).
    pub retry_budget: Duration,
    /// Named collector window for sequenced hellos (see [`Plan::window`]).
    pub window: Option<String>,
}

/// Per-connection frame payloads for `plan` — valid wire-report lines
/// from the spec's own mechanism, each connection seeded distinctly so
/// the collector sees a heterogeneous fleet, not one repeated client.
pub fn generate_frames(plan: &Plan) -> Result<Vec<Vec<String>>, CollectorError> {
    if plan.connections == 0 || plan.frames_per_connection == 0 || plan.reports_per_frame == 0 {
        return Err(CollectorError::Spec(
            "connections, frames, and reports-per-frame must all be nonzero".into(),
        ));
    }
    let per_connection = (plan.frames_per_connection * plan.reports_per_frame) as u64;
    let mut out = Vec::with_capacity(plan.connections);
    for c in 0..plan.connections {
        let session = build_session(&plan.spec)?;
        let text = session.gen_reports(per_connection, plan.seed.wrapping_add(c as u64))?;
        let lines: Vec<&str> = text.lines().collect();
        out.push(
            lines
                .chunks(plan.reports_per_frame)
                .map(|chunk| chunk.join("\n"))
                .collect(),
        );
    }
    Ok(out)
}

/// Capped exponential backoff with a refillable sleep budget: 20 ms,
/// 40 ms, 80 ms, … capped at 1 s, until the cumulative sleep exhausts
/// the budget. [`reset`](Backoff::reset) (called whenever the session
/// makes progress) drops the delay back to the base *and* refills the
/// budget — a run only gives up after `budget` of *consecutive*
/// fruitless retrying.
#[derive(Debug)]
pub struct Backoff {
    next_delay: Duration,
    slept: Duration,
    budget: Duration,
}

impl Backoff {
    /// A fresh backoff with `budget` of total sleep before giving up.
    #[must_use]
    pub fn new(budget: Duration) -> Backoff {
        Backoff {
            next_delay: BACKOFF_BASE,
            slept: Duration::ZERO,
            budget,
        }
    }

    /// Sleeps before the next retry. Returns `false` — without sleeping —
    /// once the budget is exhausted; the caller must give up.
    pub fn wait(&mut self) -> bool {
        let remaining = self.budget.saturating_sub(self.slept);
        if remaining.is_zero() {
            return false;
        }
        let delay = self.next_delay.min(remaining);
        std::thread::sleep(delay);
        self.slept += delay;
        self.next_delay = (self.next_delay * 2).min(BACKOFF_CAP);
        true
    }

    /// Progress was made: restart from the base delay with a full budget.
    pub fn reset(&mut self) {
        self.next_delay = BACKOFF_BASE;
        self.slept = Duration::ZERO;
    }
}

/// One connection's tally, merged into the [`RunReport`] at the end.
struct ConnStats {
    frames: u64,
    rejected: u64,
    connect_attempts: u64,
    reconnects: u64,
    frames_resent: u64,
    sheds: u64,
    evictions: u64,
    /// Distinct frames this connection got committed (drives the
    /// report count; resends count once).
    acked_unique: u64,
    latencies_us: Vec<u64>,
}

impl ConnStats {
    fn new(capacity: usize) -> ConnStats {
        ConnStats {
            frames: 0,
            rejected: 0,
            connect_attempts: 0,
            reconnects: 0,
            frames_resent: 0,
            sheds: 0,
            evictions: 0,
            acked_unique: 0,
            latencies_us: Vec::with_capacity(capacity),
        }
    }
}

/// Sleeps out a `!busy` retry hint (capped at [`BACKOFF_CAP`] so a bogus
/// hint cannot park a connection), after the shared backoff has charged
/// its budget — the hint is the server's pacing, the budget is the
/// client's patience.
fn sleep_busy_hint(stream: &mut TcpStream, stats: &mut ConnStats) -> std::io::Result<()> {
    let mut raw = [0u8; 4];
    stream.read_exact(&mut raw)?;
    stats.sheds += 1;
    let hint = Duration::from_millis(u64::from(protocol::decode_busy_ms(raw)));
    std::thread::sleep(hint.min(BACKOFF_CAP));
    Ok(())
}

/// Connects under `backoff` — load runs routinely start while the
/// collector is still binding its listener, and sequenced reconnects
/// race collector restarts. Every attempt is counted into `attempts`.
fn connect_with_retry(
    addr: &str,
    backoff: &mut Backoff,
    attempts: &mut u64,
) -> Result<TcpStream, CollectorError> {
    loop {
        *attempts += 1;
        match TcpStream::connect(addr) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                return Ok(stream);
            }
            Err(e) => {
                if !backoff.wait() {
                    return Err(CollectorError::Io(format!(
                        "connect {addr}: {e} (retry budget exhausted)"
                    )));
                }
            }
        }
    }
}

/// Streams `frames` over one bare session: frame, ack, repeat,
/// end-of-stream. `frame_interval` paces sends against the connection's
/// own start time (zero = as fast as acks allow). No retry after an io
/// error once a frame has been acked: bare framing is at-least-once, so
/// resending on error could double-count. The two *safe* retries are
/// honored: a `!busy` shed (the collector promises nothing was absorbed —
/// wait the hint and re-send the same frame), and a connection that dies
/// before any frame was acked (the admission-shed signature — reconnect
/// and replay from the top).
fn drive_connection(
    addr: &str,
    frames: &[String],
    frame_interval: Duration,
    retry_budget: Duration,
) -> Result<ConnStats, CollectorError> {
    let mut stats = ConnStats::new(frames.len());
    let mut backoff = Backoff::new(retry_budget);
    let mut stream = connect_with_retry(addr, &mut backoff, &mut stats.connect_attempts)?;
    let io = |what: &str, e: std::io::Error| CollectorError::Io(format!("{what}: {e}"));
    let started = Instant::now();
    let mut i = 0usize;
    while i < frames.len() {
        if !frame_interval.is_zero() {
            let due = frame_interval * i as u32;
            let now = started.elapsed();
            if now < due {
                std::thread::sleep(due - now);
            }
        }
        // A connection shed at admission gets `!busy` and a close before
        // its first frame is looked at; with zero acked frames,
        // reconnecting and replaying from the top cannot double-count.
        let retry_from_scratch = |stats: &mut ConnStats,
                                  backoff: &mut Backoff,
                                  what: &str,
                                  e: std::io::Error|
         -> Result<TcpStream, CollectorError> {
            if stats.acked_unique > 0 || !backoff.wait() {
                return Err(io(what, e));
            }
            connect_with_retry(addr, backoff, &mut stats.connect_attempts)
        };
        let sent = Instant::now();
        if let Err(e) = write_frame(&mut stream, &frames[i]) {
            stream = retry_from_scratch(&mut stats, &mut backoff, "write frame", e)?;
            i = 0;
            continue;
        }
        let mut ack = [0u8; 1];
        if let Err(e) = stream.read_exact(&mut ack) {
            stream = retry_from_scratch(&mut stats, &mut backoff, "read ack", e)?;
            i = 0;
            continue;
        }
        match ack[0] {
            b'+' => {
                stats
                    .latencies_us
                    .push(sent.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
                stats.frames += 1;
                stats.acked_unique += 1;
                backoff.reset();
                i += 1;
            }
            b'-' => {
                // A rejected frame ends the session server-side; count it
                // and stop rather than erroring the whole run.
                stats.frames += 1;
                stats.rejected += 1;
                return Ok(stats);
            }
            protocol::BUSY_BYTE => {
                // Transient shed: nothing was absorbed, re-sending this
                // same frame is safe. Budget-bounded, then the hint.
                if !backoff.wait() {
                    return Err(CollectorError::Io(
                        "collector kept shedding !busy (retry budget exhausted)".into(),
                    ));
                }
                if let Err(e) = sleep_busy_hint(&mut stream, &mut stats) {
                    stream = retry_from_scratch(&mut stats, &mut backoff, "read busy hint", e)?;
                    i = 0;
                }
            }
            other => {
                return Err(CollectorError::Protocol(format!(
                    "unexpected ack byte {other:#04x}"
                )))
            }
        }
    }
    stream
        .write_all(&0u32.to_be_bytes())
        .map_err(|e| io("write end-of-stream", e))?;
    let mut ack = [0u8; 1];
    stream
        .read_exact(&mut ack)
        .map_err(|e| io("read final ack", e))?;
    if ack[0] != b'+' {
        return Err(CollectorError::Protocol(
            "end-of-stream frame was not acked".into(),
        ));
    }
    Ok(stats)
}

/// Streams `frames` over one sequenced session with reconnect-and-resume.
///
/// The loop trusts the server's cursor absolutely: after every
/// (re)handshake it resumes from the cursor in the hello ack — skipping
/// frames the collector already committed, resending frames it rolled
/// back. Any io error, refused hello, or `-` ack tears the connection
/// down and re-handshakes under the shared [`Backoff`]; only an
/// exhausted budget (or a protocol-breaking ack byte) fails the run.
fn drive_sequenced(
    addr: &str,
    session_id: &str,
    frames: &[String],
    options: &DriveOptions,
) -> Result<ConnStats, CollectorError> {
    let mut stats = ConnStats::new(frames.len());
    let mut backoff = Backoff::new(options.retry_budget);
    // One past the highest sequence number ever written: writes below it
    // are resends the collector must dedup.
    let mut watermark: u64 = 0;
    let mut initial_cursor: Option<u64> = None;
    let mut had_session = false;
    let give_up = |what: &str| {
        CollectorError::Io(format!(
            "session {session_id}: {what} (retry budget exhausted)"
        ))
    };
    let started = Instant::now();
    'session: loop {
        let mut stream = connect_with_retry(addr, &mut backoff, &mut stats.connect_attempts)?;
        // Handshake. Horizon 0: the generator holds every frame in
        // memory, so it can always replay from the beginning.
        let mut first = [0u8; 1];
        let hello = protocol::encode_hello_routed(session_id, 0, options.window.as_deref());
        let handshake =
            write_frame(&mut stream, &hello).and_then(|()| stream.read_exact(&mut first));
        if handshake.is_err() {
            // Torn mid-handshake: nothing was committed under this
            // connection; back off and re-handshake.
            if !backoff.wait() {
                return Err(give_up("hello not accepted"));
            }
            continue 'session;
        }
        let cursor = match first[0] {
            b'+' => {
                let mut raw = [0u8; 8];
                match stream.read_exact(&mut raw) {
                    Ok(()) => u64::from_be_bytes(raw),
                    Err(_) => {
                        if !backoff.wait() {
                            return Err(give_up("hello not accepted"));
                        }
                        continue 'session;
                    }
                }
            }
            protocol::BUSY_BYTE => {
                // Shed at admission or over quota: wait the server's hint
                // (budget-bounded) and try the whole handshake again.
                if !backoff.wait() {
                    return Err(give_up("shed with !busy"));
                }
                let _ = sleep_busy_hint(&mut stream, &mut stats);
                continue 'session;
            }
            // Refused (`-`): back off and re-handshake.
            _ => {
                if !backoff.wait() {
                    return Err(give_up("hello not accepted"));
                }
                continue 'session;
            }
        };
        if had_session {
            stats.reconnects += 1;
        }
        had_session = true;
        backoff.reset();
        if initial_cursor.is_none() {
            initial_cursor = Some(cursor);
        }
        let mut i = (cursor as usize).min(frames.len());
        while i < frames.len() {
            let payload = &frames[i];
            let seq = i as u64;
            if !options.frame_interval.is_zero() {
                let due = options.frame_interval * i as u32;
                let now = started.elapsed();
                if now < due {
                    std::thread::sleep(due - now);
                }
            }
            if seq < watermark {
                stats.frames_resent += 1;
            }
            // Inner retry: a `!busy` shed re-sends this same frame on
            // this same connection without counting another resend (the
            // collector absorbed nothing, so it is not a duplicate the
            // cursor must suppress).
            loop {
                let sent = Instant::now();
                if write_frame(&mut stream, &protocol::encode_seq_frame(seq, payload)).is_err() {
                    if !backoff.wait() {
                        return Err(give_up("write frame"));
                    }
                    continue 'session;
                }
                watermark = watermark.max(seq + 1);
                let mut ack = [0u8; 1];
                if let Err(e) = stream.read_exact(&mut ack) {
                    if e.kind() == std::io::ErrorKind::UnexpectedEof {
                        // A clean close where an ack was due is the
                        // slow-consumer eviction signature; the commit
                        // may stand, so re-handshake and let the cursor
                        // say what to resend.
                        stats.evictions += 1;
                    }
                    if !backoff.wait() {
                        return Err(give_up("read ack"));
                    }
                    continue 'session;
                }
                match ack[0] {
                    b'+' => {
                        stats
                            .latencies_us
                            .push(sent.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
                        stats.frames += 1;
                        backoff.reset();
                        break;
                    }
                    b'-' => {
                        // The collector could not commit this frame
                        // (injected fault, restart-induced gap, …). Its
                        // cursor still tells the truth: re-handshake and
                        // resume from it.
                        stats.frames += 1;
                        stats.rejected += 1;
                        if !backoff.wait() {
                            return Err(give_up("frame rejected"));
                        }
                        continue 'session;
                    }
                    protocol::BUSY_BYTE => {
                        if !backoff.wait() {
                            return Err(give_up("shed with !busy"));
                        }
                        if sleep_busy_hint(&mut stream, &mut stats).is_err() {
                            continue 'session;
                        }
                    }
                    other => {
                        return Err(CollectorError::Protocol(format!(
                            "unexpected ack byte {other:#04x}"
                        )))
                    }
                }
            }
            i += 1;
        }
        // End of stream. In a sequenced session the `+` arrives only
        // after the final snapshot is durable — a `-` (flush failed) or a
        // torn ack means the window may roll back, so resume and let the
        // server's next cursor decide what must be resent.
        let eos = stream.write_all(&0u32.to_be_bytes()).and_then(|()| {
            let mut ack = [0u8; 1];
            stream.read_exact(&mut ack).map(|()| ack[0])
        });
        match eos {
            Ok(b'+') => {
                stats.acked_unique =
                    (frames.len() as u64).saturating_sub(initial_cursor.unwrap_or(0));
                return Ok(stats);
            }
            Ok(b'-') | Err(_) => {
                if !backoff.wait() {
                    return Err(give_up("end-of-stream not acked"));
                }
                continue 'session;
            }
            Ok(other) => {
                return Err(CollectorError::Protocol(format!(
                    "unexpected ack byte {other:#04x}"
                )))
            }
        }
    }
}

/// The `p`-th percentile (0.0–1.0, nearest-rank) of sorted microseconds.
fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((sorted_us.len() as f64) * p).ceil() as usize;
    sorted_us[rank.clamp(1, sorted_us.len()) - 1]
}

/// Runs `plan` against a collector listening at `addr` and reports the
/// aggregate throughput and ack-latency tail. Connection errors on any
/// session fail the run — a load test that silently drops sessions would
/// report a flattering rate.
pub fn run(addr: &str, plan: &Plan) -> Result<RunReport, CollectorError> {
    let frames = generate_frames(plan)?;
    if let Some(prefix) = &plan.session {
        for c in 0..plan.connections {
            let id = format!("{prefix}-{c}");
            if !protocol::valid_session_id(&id) {
                return Err(CollectorError::Spec(format!(
                    "--session {prefix:?} yields invalid session id {id:?} \
                     (1–64 chars of [A-Za-z0-9._-])"
                )));
            }
        }
    }
    // Aggregate rate splits evenly: each connection paces its own frames.
    let frame_interval = if plan.rate > 0.0 {
        Duration::from_secs_f64(
            plan.reports_per_frame as f64 / (plan.rate / plan.connections as f64),
        )
    } else {
        Duration::ZERO
    };
    run_frames_with(
        addr,
        &frames,
        &DriveOptions {
            reports_per_frame: plan.reports_per_frame,
            frame_interval,
            session: plan.session.clone(),
            retry_budget: plan.retry_budget,
            window: plan.window.clone(),
        },
    )
}

/// Drives pre-generated `frames` (one `Vec<String>` per connection, as
/// [`generate_frames`] returns) against `addr` in bare mode. Benchmarks
/// use this to keep report generation out of the measured window.
pub fn run_frames(
    addr: &str,
    frames: &[Vec<String>],
    reports_per_frame: usize,
    frame_interval: Duration,
) -> Result<RunReport, CollectorError> {
    run_frames_with(
        addr,
        frames,
        &DriveOptions {
            reports_per_frame,
            frame_interval,
            session: None,
            retry_budget: DEFAULT_RETRY_BUDGET,
            window: None,
        },
    )
}

/// Drives pre-generated `frames` with full control over delivery mode.
pub fn run_frames_with(
    addr: &str,
    frames: &[Vec<String>],
    options: &DriveOptions,
) -> Result<RunReport, CollectorError> {
    if options.window.is_some() && options.session.is_none() {
        return Err(CollectorError::Spec(
            "--window routing needs a sequenced session (--session PREFIX)".into(),
        ));
    }
    let started = Instant::now();
    let results: Vec<Result<ConnStats, CollectorError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = frames
            .iter()
            .enumerate()
            .map(|(c, conn_frames)| {
                scope.spawn(move || match &options.session {
                    None => drive_connection(
                        addr,
                        conn_frames,
                        options.frame_interval,
                        options.retry_budget,
                    ),
                    Some(prefix) => {
                        drive_sequenced(addr, &format!("{prefix}-{c}"), conn_frames, options)
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    Err(CollectorError::Io("a load connection panicked".into()))
                })
            })
            .collect()
    });
    let elapsed = started.elapsed();
    let mut frames_sent = 0u64;
    let mut rejected = 0u64;
    let mut connect_attempts = 0u64;
    let mut reconnects = 0u64;
    let mut frames_resent = 0u64;
    let mut sheds = 0u64;
    let mut evictions = 0u64;
    let mut unique = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    for result in results {
        let stats = result?;
        frames_sent += stats.frames;
        rejected += stats.rejected;
        connect_attempts += stats.connect_attempts;
        reconnects += stats.reconnects;
        frames_resent += stats.frames_resent;
        sheds += stats.sheds;
        evictions += stats.evictions;
        unique += stats.acked_unique;
        latencies.extend(stats.latencies_us);
    }
    latencies.sort_unstable();
    let reports = unique * options.reports_per_frame as u64;
    Ok(RunReport {
        connections: frames.len(),
        reports,
        frames: frames_sent,
        rejected_frames: rejected,
        connect_attempts,
        reconnects,
        frames_resent,
        sheds,
        evictions,
        elapsed,
        reports_per_sec: reports as f64 / elapsed.as_secs_f64().max(1e-9),
        ack_p50_us: percentile(&latencies, 0.50),
        ack_p99_us: percentile(&latencies, 0.99),
        ack_max_us: latencies.last().copied().unwrap_or(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_collector::server::{serve, ServeOptions, SnapshotPolicy};
    use std::net::TcpListener;

    #[test]
    fn percentile_is_nearest_rank() {
        let us: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&us, 0.50), 50);
        assert_eq!(percentile(&us, 0.99), 99);
        assert_eq!(percentile(&us, 1.0), 100);
        assert_eq!(percentile(&[], 0.99), 0);
        assert_eq!(percentile(&[7], 0.5), 7);
    }

    #[test]
    fn backoff_doubles_to_the_cap_and_respects_its_budget() {
        let mut b = Backoff::new(Duration::from_millis(50));
        assert_eq!(b.next_delay, BACKOFF_BASE);
        assert!(b.wait()); // sleeps 20ms
        assert_eq!(b.next_delay, BACKOFF_BASE * 2);
        assert!(b.wait()); // sleeps 30ms (clipped to the budget)
        assert!(!b.wait(), "budget exhausted");
        b.reset();
        assert_eq!(b.next_delay, BACKOFF_BASE);
        assert!(b.wait(), "reset refills the budget");
        // The delay never exceeds the cap.
        let mut b = Backoff::new(Duration::MAX);
        for _ in 0..4 {
            b.next_delay = (b.next_delay * 2).min(BACKOFF_CAP);
        }
        b.next_delay = (b.next_delay * 2).min(BACKOFF_CAP);
        assert!(b.next_delay <= BACKOFF_CAP);
    }

    #[test]
    fn connect_gives_up_when_nothing_listens() {
        let mut backoff = Backoff::new(Duration::from_millis(40));
        let mut attempts = 0;
        // A port from the dynamic range with nothing bound to it.
        let err = connect_with_retry("127.0.0.1:1", &mut backoff, &mut attempts).unwrap_err();
        assert!(err.to_string().contains("retry budget exhausted"), "{err}");
        assert!(attempts >= 2, "retried before giving up: {attempts}");
    }

    #[test]
    fn generated_frames_match_the_plan_shape() {
        let plan = Plan {
            spec: "grr:eps=1,d=8".into(),
            connections: 3,
            frames_per_connection: 4,
            reports_per_frame: 10,
            ..Plan::default()
        };
        let frames = generate_frames(&plan).unwrap();
        assert_eq!(frames.len(), 3);
        for conn in &frames {
            assert_eq!(conn.len(), 4);
            for frame in conn {
                assert_eq!(frame.lines().count(), 10);
            }
        }
        // Distinct seeds: connections are not clones of one client.
        assert_ne!(frames[0][0], frames[1][0]);
    }

    fn policy_none() -> SnapshotPolicy {
        SnapshotPolicy {
            path: None,
            every: 0,
            keep: 0,
        }
    }

    #[test]
    fn a_run_against_a_live_collector_reports_every_report() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let plan = Plan {
            spec: "grr:eps=1,d=8".into(),
            connections: 4,
            frames_per_connection: 3,
            reports_per_frame: 50,
            ..Plan::default()
        };
        let total = plan.total_reports();
        let server = std::thread::spawn(move || {
            let mut session = build_session("grr:eps=1,d=8").unwrap();
            let options = ServeOptions {
                connections: 4,
                ..ServeOptions::default()
            };
            let summary = serve(&listener, session.as_mut(), &policy_none(), &options).unwrap();
            (summary, session.count())
        });
        let report = run(&addr, &plan).unwrap();
        let (summary, count) = server.join().unwrap();
        assert_eq!(report.reports, total);
        assert_eq!(report.rejected_frames, 0);
        assert_eq!(report.connect_attempts, 4);
        assert_eq!(report.reconnects, 0);
        assert_eq!(report.frames_resent, 0);
        assert_eq!(count, total);
        assert_eq!(summary.completed, 4);
        assert!(report.reports_per_sec > 0.0);
        assert!(report.ack_p99_us >= report.ack_p50_us);
    }

    #[test]
    fn a_sequenced_run_delivers_exactly_once_and_resumes_across_runs() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let plan = Plan {
            spec: "grr:eps=1,d=8".into(),
            connections: 3,
            frames_per_connection: 4,
            reports_per_frame: 25,
            session: Some("fleet".into()),
            ..Plan::default()
        };
        let total = plan.total_reports();
        let server = std::thread::spawn(move || {
            let mut session = build_session("grr:eps=1,d=8").unwrap();
            let options = ServeOptions {
                connections: 6,
                ..ServeOptions::default()
            };
            let summary = serve(&listener, session.as_mut(), &policy_none(), &options).unwrap();
            (summary, session.count())
        });
        let report = run(&addr, &plan).unwrap();
        assert_eq!(report.reports, total);
        assert_eq!(report.reconnects, 0);
        // Re-running the same plan against the same live collector is a
        // pure replay: the cursors already cover every frame, so nothing
        // new is absorbed and the report says zero *unique* reports.
        let replay = run(&addr, &plan).unwrap();
        assert_eq!(replay.reports, 0, "replay absorbed something");
        let (summary, count) = server.join().unwrap();
        assert_eq!(count, total, "duplicates were absorbed");
        assert_eq!(summary.sessions_resumed, 3);
        assert_eq!(summary.duplicates_suppressed, 0, "replays skip, not resend");
    }

    #[test]
    fn a_throttled_run_respects_the_target_rate() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let plan = Plan {
            spec: "grr:eps=1,d=8".into(),
            connections: 2,
            frames_per_connection: 3,
            reports_per_frame: 20,
            rate: 400.0,
            ..Plan::default()
        };
        // 120 reports at 400/s ≈ 0.3s minimum (pacing starts at frame 0,
        // so the floor is (frames-1) * interval per connection = 0.2s).
        let server = std::thread::spawn(move || {
            let mut session = build_session("grr:eps=1,d=8").unwrap();
            let options = ServeOptions {
                connections: 2,
                ..ServeOptions::default()
            };
            serve(&listener, session.as_mut(), &policy_none(), &options).unwrap();
        });
        let report = run(&addr, &plan).unwrap();
        server.join().unwrap();
        assert!(
            report.elapsed >= Duration::from_millis(180),
            "throttle ignored: {:?}",
            report.elapsed
        );
        assert!(
            report.reports_per_sec <= 900.0,
            "{}",
            report.reports_per_sec
        );
    }
}
