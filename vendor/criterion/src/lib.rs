//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Implements the subset of the criterion 0.5 API the workspace's bench
//! targets use — `Criterion::benchmark_group`, group configuration,
//! `bench_function`, `Bencher::iter` / `iter_batched`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! median-of-samples timer instead of criterion's full statistical engine.
//! Benches compile unchanged against the real crate.
//!
//! Timing model: each `bench_function` runs a short warm-up, then
//! `sample_size` samples; each sample runs the routine in a loop sized so a
//! sample takes roughly `measurement_time / sample_size`. The median
//! per-iteration time is printed to stdout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing away a benchmarked value.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost; the stub runs one routine call
/// per setup regardless of variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh setup for every routine call.
    PerIteration,
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1500),
        }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the default warm-up duration.
    #[must_use]
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Sets the default measurement duration.
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        let warm_up_time = self.warm_up_time;
        let measurement_time = self.measurement_time;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            warm_up_time,
            measurement_time,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        let warm_up_time = self.warm_up_time;
        let measurement_time = self.measurement_time;
        run_one(name, sample_size, warm_up_time, measurement_time, &mut f);
        self
    }
}

/// A named group of benchmarks sharing timing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the warm-up duration for benchmarks in this group.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Sets the measurement duration for benchmarks in this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Runs one named benchmark in this group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_one(
            &full,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut f,
        );
        self
    }

    /// Finishes the group (no-op in the stub; matches criterion's API).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    f: &mut F,
) {
    // Warm-up: repeatedly run single iterations until the budget elapses.
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_nanos(0);
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < warm_up_time || warm_iters == 0 {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter = if warm_iters == 0 {
            b.elapsed
        } else {
            (per_iter * warm_iters as u32 + b.elapsed) / (warm_iters as u32 + 1)
        };
        warm_iters += 1;
        if warm_iters >= 1000 {
            break;
        }
    }

    // Size each sample so the whole measurement fits the time budget.
    let sample_budget = measurement_time / sample_size.max(1) as u32;
    let iters_per_sample = if per_iter.as_nanos() == 0 {
        1000
    } else {
        (sample_budget.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64
    };

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_nanos() as f64 / iters_per_sample as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    println!("bench: {name:60} {median:>14.1} ns/iter ({iters_per_sample} iters x {sample_size} samples)");
}

/// Per-benchmark timing context handed to the closure, mirroring
/// `criterion::Bencher`.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with a fresh un-timed `setup` product per call.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut group = c.benchmark_group("stub");
        let mut runs = 0u64;
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
        runs += 1;
        assert_eq!(runs, 1);
    }
}
