//! Kernel-equivalence differential suite: every vectorized / unrolled
//! kernel in `ldp_numeric::kernels`, the batched `SplitMix64` fills, and
//! `ExactSum::add_slice` are pinned **bit-for-bit** against their scalar
//! serial references.
//!
//! The suite sweeps domain sizes `d ∈ {1, 2, 7, 64, 257, 1024}`, every
//! lane-remainder length (0..=17 and beyond the 4-lane / 7-row block
//! boundaries), and hostile payloads: signed zeros, subnormals,
//! large-magnitude cancellation, NaN/infinity domain violations and stray
//! tail bits past the domain edge. Property tests run ≥ 20 randomized
//! cases on top of the deterministic sweeps.
//!
//! CI runs this suite twice — once with SIMD dispatch live and once under
//! `LDP_NO_SIMD=1` — so both sides of the runtime dispatch stay pinned.

use proptest::prelude::*;
use rand::Rng;
use sw_ldp::numeric::kernels;
use sw_ldp::numeric::{ExactSum, SplitMix64};

/// Domain sizes crossing every dispatch boundary: single bucket, tiny,
/// sub-word, exactly one word, word + remainder, and multi-word large.
const D_SWEEP: [usize; 6] = [1, 2, 7, 64, 257, 1024];

/// Slice lengths covering every 4-lane and 7-row remainder class.
fn len_sweep() -> Vec<usize> {
    let mut lens: Vec<usize> = (0..=17).collect();
    lens.extend([28, 29, 63, 64, 65, 255, 1000]);
    lens
}

/// Hostile f64 payloads: signed zeros, subnormals, and magnitudes that
/// force catastrophic cancellation in naive summation.
fn hostile_values() -> Vec<f64> {
    vec![
        0.0,
        -0.0,
        f64::MIN_POSITIVE,
        f64::MIN_POSITIVE / 8.0,
        -f64::MIN_POSITIVE / 4.0,
        1e16,
        -1e16,
        1.0,
        -1.0,
        1e-16,
        f64::MAX / 4.0,
        -f64::MAX / 4.0,
    ]
}

// ---------------------------------------------------------------------------
// dot4: SW band-edge dot product
// ---------------------------------------------------------------------------

#[test]
fn dot4_equals_scalar_at_every_remainder_length() {
    let mut rng = SplitMix64::new(9001);
    for n in len_sweep() {
        let a: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
        let b: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 4.0 - 2.0).collect();
        assert_eq!(
            kernels::dot4(&a, &b).to_bits(),
            kernels::dot4_scalar(&a, &b).to_bits(),
            "dot4 diverged from scalar at n = {n}"
        );
    }
}

#[test]
fn dot4_equals_scalar_on_hostile_payloads() {
    let h = hostile_values();
    // Repeat the hostile set to push past the 8-element SIMD threshold and
    // land every value in every lane position.
    for reps in 1..=5 {
        let a: Vec<f64> = h.iter().cycle().take(h.len() * reps).copied().collect();
        let b: Vec<f64> = a.iter().rev().copied().collect();
        assert_eq!(
            kernels::dot4(&a, &b).to_bits(),
            kernels::dot4_scalar(&a, &b).to_bits(),
            "dot4 diverged on hostile payloads (reps = {reps})"
        );
    }
}

// ---------------------------------------------------------------------------
// first_out_of_range: SW domain validation
// ---------------------------------------------------------------------------

#[test]
fn range_check_equals_scalar_for_every_violation_position() {
    // One violating value planted at every index of every remainder-class
    // length, for each kind of violation the SW aggregator must catch.
    let violations = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.5, 1.5];
    for n in len_sweep() {
        let base: Vec<f64> = (0..n).map(|i| (i % 97) as f64 / 96.0).collect();
        assert_eq!(
            kernels::first_out_of_range(&base, 0.0, 1.0),
            kernels::first_out_of_range_scalar(&base, 0.0, 1.0),
            "clean slice, n = {n}"
        );
        for &bad in &violations {
            for pos in 0..n {
                let mut v = base.clone();
                v[pos] = bad;
                let got = kernels::first_out_of_range(&v, 0.0, 1.0);
                let want = kernels::first_out_of_range_scalar(&v, 0.0, 1.0);
                assert_eq!(got, want, "n = {n}, bad = {bad}, pos = {pos}");
                assert_eq!(want, Some(pos));
            }
        }
    }
}

#[test]
fn range_check_boundary_values_are_inside() {
    for n in [1usize, 4, 5, 8, 13] {
        let lo_edge = vec![0.0; n];
        let hi_edge = vec![1.0; n];
        assert_eq!(kernels::first_out_of_range(&lo_edge, 0.0, 1.0), None);
        assert_eq!(kernels::first_out_of_range(&hi_edge, 0.0, 1.0), None);
        // -0.0 == 0.0 under IEEE comparison: inside on both paths.
        let neg_zero = vec![-0.0; n];
        assert_eq!(kernels::first_out_of_range(&neg_zero, 0.0, 1.0), None);
    }
}

// ---------------------------------------------------------------------------
// bucket_histogram: SW report absorption
// ---------------------------------------------------------------------------

#[test]
fn bucket_histogram_equals_scalar_across_domains_and_lengths() {
    let mut rng = SplitMix64::new(9002);
    for d in D_SWEEP {
        for n in len_sweep() {
            let vals: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 1.5 - 0.25).collect();
            let mut simd = vec![0u64; d];
            let mut scalar = vec![0u64; d];
            kernels::bucket_histogram(&mut simd, &vals, -0.25, 1.25);
            kernels::bucket_histogram_scalar(&mut scalar, &vals, -0.25, 1.25);
            assert_eq!(simd, scalar, "d = {d}, n = {n}");
        }
    }
}

#[test]
fn bucket_histogram_pins_the_bucket_edges() {
    // Values sitting exactly on bucket boundaries exercise the
    // truncation-rounding agreement between `as isize` and `cvttpd`.
    for d in D_SWEEP {
        let edges: Vec<f64> = (0..=d).map(|i| i as f64 / d as f64).collect();
        let mut simd = vec![0u64; d];
        let mut scalar = vec![0u64; d];
        kernels::bucket_histogram(&mut simd, &edges, 0.0, 1.0);
        kernels::bucket_histogram_scalar(&mut scalar, &edges, 0.0, 1.0);
        assert_eq!(simd, scalar, "bucket edges, d = {d}");
        let total: u64 = simd.iter().sum();
        assert_eq!(total, edges.len() as u64, "every edge lands in a bucket");
    }
}

#[test]
fn bucket_histogram_accumulates_into_existing_counts() {
    let vals = [0.1, 0.9, 0.5, 0.5001, 0.25];
    let mut simd = vec![7u64; 8];
    let mut scalar = vec![7u64; 8];
    kernels::bucket_histogram(&mut simd, &vals, 0.0, 1.0);
    kernels::bucket_histogram_scalar(&mut scalar, &vals, 0.0, 1.0);
    assert_eq!(simd, scalar);
}

// ---------------------------------------------------------------------------
// bitcount_rows: OUE absorption (CSA-7 block kernel)
// ---------------------------------------------------------------------------

#[test]
fn bitcount_equals_scalar_across_domains_and_row_counts() {
    let mut rng = SplitMix64::new(9003);
    for d in D_SWEEP {
        let words = d.div_ceil(64);
        // 0..=17 rows covers every 7-row block remainder twice over.
        for n_rows in 0..=17 {
            let rows: Vec<Vec<u64>> = (0..n_rows)
                .map(|_| (0..words).map(|_| rng.gen::<u64>()).collect())
                .collect();
            let mut blocked = vec![0u64; d];
            let mut reference = vec![0u64; d];
            kernels::bitcount_rows(&mut blocked, rows.iter().map(Vec::as_slice));
            kernels::bitcount_rows_scalar(&mut reference, rows.iter().map(Vec::as_slice));
            assert_eq!(blocked, reference, "d = {d}, rows = {n_rows}");
        }
    }
}

#[test]
fn bitcount_ignores_stray_bits_past_the_domain_edge() {
    // Hostile payload: every bit set, including positions >= d in the
    // final word. The blocked kernel's tail mask must match the scalar
    // reference's index guard exactly.
    for d in [1usize, 2, 7, 63, 65, 127, 257, 1023] {
        let words = d.div_ceil(64);
        let rows: Vec<Vec<u64>> = (0..9).map(|_| vec![!0u64; words]).collect();
        let mut blocked = vec![0u64; d];
        let mut reference = vec![0u64; d];
        kernels::bitcount_rows(&mut blocked, rows.iter().map(Vec::as_slice));
        kernels::bitcount_rows_scalar(&mut reference, rows.iter().map(Vec::as_slice));
        assert_eq!(blocked, reference, "d = {d}");
        assert!(blocked.iter().all(|&c| c == 9), "d = {d}");
    }
}

#[test]
fn bitcount_all_zero_rows_leave_counts_untouched() {
    let rows: Vec<Vec<u64>> = (0..14).map(|_| vec![0u64; 2]).collect();
    let mut counts = vec![3u64; 100];
    kernels::bitcount_rows(&mut counts, rows.iter().map(Vec::as_slice));
    assert!(counts.iter().all(|&c| c == 3));
}

// ---------------------------------------------------------------------------
// ExactSum::add_slice: bulk-add path of the mean/collector accumulators
// ---------------------------------------------------------------------------

#[test]
fn exact_sum_add_slice_equals_serial_adds_on_hostile_payloads() {
    // Cancellation-heavy sequence: large magnitudes that annihilate,
    // signed zeros, subnormals. add_slice must reproduce the serial-add
    // expansion representation exactly (not just the rendered value).
    let mut payload = hostile_values();
    payload.extend(hostile_values().iter().map(|v| -v));
    payload.extend((0..200).map(|i| (i as f64 - 100.0) * 1e12));
    payload.extend((0..200).map(|i| (100.0 - i as f64) * 1e12));

    for start_len in [0usize, 1, 5] {
        let mut serial = ExactSum::new();
        let mut bulk = ExactSum::new();
        for i in 0..start_len {
            serial.add(i as f64 * 0.1);
            bulk.add(i as f64 * 0.1);
        }
        for &x in &payload {
            serial.add(x);
        }
        bulk.add_slice(&payload);
        assert_eq!(
            serial.parts(),
            bulk.parts(),
            "expansion diverged (start_len = {start_len})"
        );
        assert_eq!(serial.value().to_bits(), bulk.value().to_bits());
    }
}

#[test]
fn exact_sum_add_slice_survives_expansion_overflow_spill() {
    // Geometrically spaced magnitudes force the expansion to grow past
    // the bulk path's stack buffer; the spill must hand off to serial
    // adds without losing a component.
    let wide: Vec<f64> = (0..900).map(|i| 2f64.powi(i % 120 - 60)).collect();
    let mut serial = ExactSum::new();
    let mut bulk = ExactSum::new();
    for &x in &wide {
        serial.add(x);
    }
    bulk.add_slice(&wide);
    assert_eq!(serial.parts(), bulk.parts());
}

// ---------------------------------------------------------------------------
// Batched SplitMix64 fills: draw-order compatibility + golden pins
// ---------------------------------------------------------------------------

#[test]
fn batched_rng_fills_are_draw_order_compatible_with_serial() {
    for n in [0usize, 1, 3, 4, 5, 7, 8, 9, 16, 17, 255] {
        let mut serial = SplitMix64::new(0xDEAD_BEEF ^ n as u64);
        let mut batched = serial.clone();

        let want: Vec<u64> = (0..n).map(|_| serial.next()).collect();
        let mut got = vec![0u64; n];
        batched.fill_u64(&mut got);
        assert_eq!(want, got, "fill_u64, n = {n}");
        // Post-fill state identical: the streams stay interchangeable.
        assert_eq!(serial.next(), batched.next(), "state after fill, n = {n}");

        let want: Vec<f64> = (0..n).map(|_| serial.gen::<f64>()).collect();
        let mut gotf = vec![0f64; n];
        batched.fill_f64(&mut gotf);
        for (i, (w, g)) in want.iter().zip(&gotf).enumerate() {
            assert_eq!(w.to_bits(), g.to_bits(), "fill_f64 entry {i}, n = {n}");
        }

        let want: Vec<u64> = (0..n).map(|_| serial.gen_range(0..37u64)).collect();
        let mut gotb = vec![0u64; n];
        batched.fill_bounded(37, &mut gotb);
        assert_eq!(want, gotb, "fill_bounded, n = {n}");
    }
}

#[test]
fn batched_rng_golden_vector_pin() {
    // Frozen outputs: any change to the SplitMix64 stream or the batched
    // fill order breaks draw-for-draw reproducibility of recorded
    // experiments and must be deliberate.
    let mut rng = SplitMix64::new(1234567);
    let mut out = [0u64; 3];
    rng.fill_u64(&mut out);
    assert_eq!(
        out,
        [
            6_457_827_717_110_365_317,
            3_203_168_211_198_807_973,
            9_817_491_932_198_370_423,
        ]
    );
}

// ---------------------------------------------------------------------------
// Dispatch plumbing
// ---------------------------------------------------------------------------

#[test]
fn no_simd_env_forces_the_scalar_path() {
    // The flag is process-wide and cached; under LDP_NO_SIMD=1 the CI
    // lane asserts the dispatch actually turned off.
    let forced_off = std::env::var(kernels::NO_SIMD_ENV)
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false);
    if forced_off {
        assert!(!kernels::simd_enabled(), "LDP_NO_SIMD=1 must disable SIMD");
    }
    assert_eq!(kernels::simd_enabled(), kernels::simd_enabled());
}

// ---------------------------------------------------------------------------
// Property tests: ≥ 20 randomized cases per kernel
// ---------------------------------------------------------------------------

/// Mixed hostile/ordinary f64 payload derived from a proptest-drawn seed:
/// mostly ordinary magnitudes, with signed zeros, subnormals, and large
/// cancellation-prone values sprinkled in.
fn hostile_vec(seed: u64, n: usize) -> Vec<f64> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| match rng.gen_range(0..10u32) {
            0 => 0.0,
            1 => -0.0,
            2 => f64::MIN_POSITIVE / 8.0,
            3 => -f64::MIN_POSITIVE / 8.0,
            4 | 5 => (rng.gen::<f64>() - 0.5) * 2e16,
            _ => rng.gen::<f64>() * 2.0 - 1.0,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_dot4_bit_identical(seed in 0u64..u64::MAX, n in 0usize..80) {
        let a = hostile_vec(seed, n);
        let b = hostile_vec(seed ^ 0x5555_5555, n);
        prop_assert_eq!(
            kernels::dot4(&a, &b).to_bits(),
            kernels::dot4_scalar(&a, &b).to_bits()
        );
    }

    #[test]
    fn prop_range_check_bit_identical(seed in 0u64..u64::MAX, n in 0usize..64) {
        let mut rng = SplitMix64::new(seed);
        let values: Vec<f64> = (0..n)
            .map(|_| match rng.gen_range(0..9u32) {
                0 => f64::NAN,
                1 => -0.5,
                2 => 1.5,
                _ => rng.gen::<f64>(),
            })
            .collect();
        prop_assert_eq!(
            kernels::first_out_of_range(&values, 0.0, 1.0),
            kernels::first_out_of_range_scalar(&values, 0.0, 1.0)
        );
    }

    #[test]
    fn prop_bucket_histogram_bit_identical(
        seed in 0u64..u64::MAX,
        n in 0usize..96,
        d in 1usize..300,
    ) {
        let mut rng = SplitMix64::new(seed);
        let values: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let mut simd = vec![0u64; d];
        let mut scalar = vec![0u64; d];
        kernels::bucket_histogram(&mut simd, &values, 0.0, 1.0);
        kernels::bucket_histogram_scalar(&mut scalar, &values, 0.0, 1.0);
        prop_assert_eq!(simd, scalar);
    }

    #[test]
    fn prop_bitcount_bit_identical(
        seed in 0u64..u64::MAX,
        d in 1usize..300,
        n_rows in 0usize..23,
    ) {
        let words = d.div_ceil(64);
        let mut rng = SplitMix64::new(seed);
        let rows: Vec<Vec<u64>> = (0..n_rows)
            .map(|_| (0..words).map(|_| rng.gen::<u64>()).collect())
            .collect();
        let mut blocked = vec![0u64; d];
        let mut reference = vec![0u64; d];
        kernels::bitcount_rows(&mut blocked, rows.iter().map(Vec::as_slice));
        kernels::bitcount_rows_scalar(&mut reference, rows.iter().map(Vec::as_slice));
        prop_assert_eq!(blocked, reference);
    }

    #[test]
    fn prop_exact_sum_add_slice_bit_identical(seed in 0u64..u64::MAX, n in 0usize..200) {
        let values = hostile_vec(seed, n);
        let mut serial = ExactSum::new();
        let mut bulk = ExactSum::new();
        for &x in &values {
            serial.add(x);
        }
        bulk.add_slice(&values);
        prop_assert_eq!(serial.parts(), bulk.parts());
    }

    #[test]
    fn prop_batched_rng_matches_serial_stream(seed in 0u64..u64::MAX, n in 0usize..130) {
        let mut serial = SplitMix64::new(seed);
        let mut batched = serial.clone();
        let want: Vec<u64> = (0..n).map(|_| serial.next()).collect();
        let mut got = vec![0u64; n];
        batched.fill_u64(&mut got);
        prop_assert_eq!(want, got);
        prop_assert_eq!(serial.next(), batched.next());
    }
}
