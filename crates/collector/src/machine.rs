//! The framed-session protocol as a resumable state machine.
//!
//! The blocking serve path ([`crate::server::serve_connection`] and the
//! threaded `serve` handlers) expresses the protocol as straight-line
//! code: read a frame, decode, commit, ack. The reactor serve path
//! multiplexes hundreds of connections on a few threads, so the same
//! protocol must be expressible as **resumable steps**: feed it whatever
//! bytes arrived, get back the actions to perform, park it while a
//! commit or a byte-budget reservation is in flight, resume it when the
//! answer lands.
//!
//! [`Machine`] is that re-expression, and it is deliberately **pure**:
//! no sockets, no threads, no channels — just bytes in, [`Action`]s out.
//! That purity is what makes the equivalence testable: the fuzz suite
//! (`tests/framing_fuzz.rs`) drives a `Machine` one byte at a time and
//! asserts its ack stream is byte-identical to the blocking reader's,
//! for every exchange the protocol defines (hello, sequenced data,
//! replays, gaps, busy sheds, oversized frames, malformed payloads).
//!
//! # Parity contract
//!
//! Every observable behavior of the blocking handler is preserved, in
//! order:
//!
//! - the `frame-read` failpoint fires once per frame-read *attempt* —
//!   at connection start and again after each completed frame — and the
//!   `decode`, `commit-push`, `ack-write`, and `ack-evict` failpoints
//!   fire at exactly the seams the blocking path puts them;
//! - payload bytes are charged against the pipeline budget **before**
//!   the payload buffer is allocated ([`Action::Reserve`] precedes the
//!   body phase) and released on every early-out path;
//! - ack bytes (`+`, `-`, the 9-byte hello ack, the 5-byte busy shed)
//!   and error strings are byte-identical to the blocking path's.
//!
//! # Multi-window routing
//!
//! The machine adds one extension the blocking path doesn't have: a
//! hello frame may carry a `window <name>` line
//! ([`crate::protocol::parse_hello`]), routing the session to one of
//! several named estimation windows. Window indices resolve against
//! [`MachineConfig::windows`]; every budget and commit action names the
//! window it targets, so the driver can keep fully independent
//! per-window pipelines.

use crate::error::CollectorError;
use crate::faults;
use crate::limit::TokenBucket;
use crate::protocol;
use crate::session::{BatchDecoder, PreparedBatch};
use std::time::{Duration, Instant};

/// Tuning for one connection's [`Machine`], distilled from the serve
/// options.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Largest accepted frame payload; a bigger length header is refused
    /// before allocation with the blocking path's exact error.
    pub max_frame_bytes: u32,
    /// Per-connection rate cap in reports/second (`None` = unlimited) —
    /// the machine owns the [`TokenBucket`].
    pub rate: Option<f64>,
    /// The named windows this collector serves, in driver order. Index 0
    /// is the default window — the one a hello without a `window` line
    /// (or a bare session) lands in.
    pub windows: Vec<String>,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            max_frame_bytes: crate::server::DEFAULT_MAX_FRAME_BYTES,
            rate: None,
            windows: vec!["default".to_string()],
        }
    }
}

/// What the driver must do next, in emission order.
pub enum Action {
    /// Queue these bytes to the peer (acks, busy sheds).
    Send(Vec<u8>),
    /// Charge `bytes` against window `window`'s pipeline budget, then
    /// call [`Machine::budget_granted`] (the machine is paused until
    /// then). If the budget is exhausted right now, retry when the
    /// window's absorber makes progress; if the absorber is gone, call
    /// [`Machine::absorber_gone`].
    Reserve {
        /// Index into [`MachineConfig::windows`].
        window: usize,
        /// Payload bytes to charge.
        bytes: usize,
    },
    /// Release a charge previously granted for window `window` (an
    /// early-out path: the bytes never reached the commit queue).
    Release {
        /// Index into [`MachineConfig::windows`].
        window: usize,
        /// Bytes to release.
        bytes: usize,
    },
    /// Submit this commit to its window's absorber, then call
    /// [`Machine::commit_done`] with the outcome (the machine is paused
    /// until then). If the absorber is gone, call
    /// [`Machine::absorber_gone`].
    Commit(CommitRequest),
    /// A frame was shed by the rate limiter — count it.
    RateShed,
    /// A length header exceeded the frame cap — count it.
    Oversized,
    /// The session is over; no further input will be consumed.
    End(MachineEnd),
}

/// A commit the machine asks its driver to run through a window's
/// absorber.
pub enum CommitRequest {
    /// A sequenced session's hello: resolve the dedup cursor.
    Hello {
        /// Index into [`MachineConfig::windows`].
        window: usize,
        /// The stable session id.
        session: String,
    },
    /// A decoded batch. `weight` is the byte charge being transferred
    /// into the queue (already granted; the absorber releases it at
    /// pop).
    Batch {
        /// Index into [`MachineConfig::windows`].
        window: usize,
        /// The decoder's validated, pre-absorbed batch.
        batch: PreparedBatch,
        /// `(session id, sequence number)` for sequenced sessions.
        seq: Option<(String, u64)>,
        /// Byte charge transferred with the batch.
        weight: usize,
    },
    /// The session's end-of-stream: publish a snapshot; for a sequenced
    /// session the outcome must wait until it is durable.
    Flush {
        /// Index into [`MachineConfig::windows`].
        window: usize,
        /// Whether the closing ack vouches for durability.
        sequenced: bool,
    },
}

/// The outcome the driver feeds back for a [`CommitRequest`].
pub enum CommitDone {
    /// The absorber's answer to [`CommitRequest::Hello`].
    Hello {
        /// The next sequence number the window expects for the id.
        cursor: u64,
    },
    /// The absorber's answer to [`CommitRequest::Batch`].
    Batch(Result<(), CollectorError>),
    /// The absorber's answer to [`CommitRequest::Flush`].
    Flush(Result<u64, CollectorError>),
}

/// How the session ended — the machine's analogue of the blocking
/// handler's `SessionEnd`/`Err` pair.
pub enum MachineEnd {
    /// Clean end-of-stream, final `+` queued.
    Completed,
    /// The `ack-evict` failpoint simulated a slow-consumer eviction.
    /// (Real ack-deadline evictions are the driver's: a send buffer that
    /// never drains.)
    Evicted,
    /// The peer closed at a frame boundary without an end-of-stream
    /// frame.
    PeerClosed,
    /// A rejected frame, protocol violation, or injected fault.
    Failed(CollectorError),
}

enum Phase {
    /// Reading the 4-byte length header.
    Header { got: usize, buf: [u8; 4] },
    /// Budget reservation in flight for a `len`-byte payload.
    AwaitBudget { len: u32 },
    /// Reading the payload.
    Body { len: u32, buf: Vec<u8> },
    /// Hello commit in flight.
    AwaitHello {
        session: String,
        horizon: u64,
        route: usize,
    },
    /// Batch commit in flight.
    AwaitBatch,
    /// Flush commit in flight.
    AwaitFlush,
    /// Terminal: an [`Action::End`] was emitted.
    Ended,
}

/// One connection's protocol state: feed bytes, perform actions.
///
/// See the module docs for the lifecycle; the driver's obligations are
/// spelled on each [`Action`] variant.
pub struct Machine {
    config: MachineConfig,
    phase: Phase,
    bucket: Option<TokenBucket>,
    first: bool,
    sequenced: Option<String>,
    /// The window data frames currently route to (0 until a routed hello
    /// lands).
    window: usize,
    /// A granted byte charge not yet transferred or released:
    /// `(window, bytes)`.
    charge: Option<(usize, usize)>,
}

impl Machine {
    /// A fresh machine at connection start. Call [`Machine::start`]
    /// before feeding bytes.
    #[must_use]
    pub fn new(config: MachineConfig, now: Instant) -> Self {
        let bucket = config.rate.map(|rate| TokenBucket::new(rate, rate, now));
        Machine {
            config,
            phase: Phase::Header {
                got: 0,
                buf: [0u8; 4],
            },
            bucket,
            first: true,
            sequenced: None,
            window: 0,
            charge: None,
        }
    }

    /// Arms the first frame read. Mirrors the blocking reader, whose
    /// `frame-read` failpoint fires when the read is *attempted* —
    /// synchronously at connection start, before any byte arrives.
    pub fn start(&mut self, out: &mut Vec<Action>) {
        self.enter_frame(out);
    }

    /// Whether the machine is at a clean frame boundary (no header byte
    /// consumed, nothing in flight) — the only place shutdown and idle
    /// may end the session, exactly like the blocking `fill`.
    #[must_use]
    pub fn at_boundary(&self) -> bool {
        matches!(self.phase, Phase::Header { got: 0, .. })
    }

    /// Whether the machine is paused on a budget grant or a commit
    /// outcome (it will consume no input until the driver resolves it).
    #[must_use]
    pub fn is_awaiting(&self) -> bool {
        matches!(
            self.phase,
            Phase::AwaitBudget { .. }
                | Phase::AwaitHello { .. }
                | Phase::AwaitBatch
                | Phase::AwaitFlush
        )
    }

    /// Whether an [`Action::End`] has been emitted.
    #[must_use]
    pub fn is_ended(&self) -> bool {
        matches!(self.phase, Phase::Ended)
    }

    /// The window this connection's data frames currently route to (an
    /// index into [`MachineConfig::windows`]; 0 until a routed hello's
    /// ack lands). The driver passes the matching window's
    /// [`BatchDecoder`] to [`Machine::on_bytes`] — the route can only
    /// change between frames, never within one.
    #[must_use]
    pub fn window(&self) -> usize {
        self.window
    }

    /// Releases and returns any still-held byte charge as
    /// `(window, bytes)` — for a driver tearing the connection down
    /// mid-frame (eviction, shutdown grace expiry), where the blocking
    /// path's charge guard would drop.
    pub fn take_charge(&mut self) -> Option<(usize, usize)> {
        self.charge.take()
    }

    /// Whether the connection is mid-frame (header partially read, or a
    /// payload incomplete) — where shutdown grants grace instead of
    /// closing, and idleness is tolerated as backpressure.
    #[must_use]
    pub fn mid_frame(&self) -> bool {
        match self.phase {
            Phase::Header { got, .. } => got > 0,
            Phase::AwaitBudget { .. } | Phase::Body { .. } => true,
            _ => false,
        }
    }

    /// Consumes as much of `input` as the current phase allows and
    /// returns how many bytes were taken. Stops early when the machine
    /// pauses (budget, commit) or ends; feed the remainder after the
    /// pause resolves.
    pub fn on_bytes(
        &mut self,
        input: &[u8],
        now: Instant,
        decoder: &dyn BatchDecoder,
        out: &mut Vec<Action>,
    ) -> usize {
        let mut consumed = 0;
        while consumed < input.len() {
            match &mut self.phase {
                Phase::Header { got, buf } => {
                    let take = (4 - *got).min(input.len() - consumed);
                    buf[*got..*got + take].copy_from_slice(&input[consumed..consumed + take]);
                    *got += take;
                    consumed += take;
                    if *got < 4 {
                        break;
                    }
                    let len = u32::from_be_bytes(*buf);
                    if len == 0 {
                        self.phase = Phase::AwaitFlush;
                        out.push(Action::Commit(CommitRequest::Flush {
                            window: self.window,
                            sequenced: self.sequenced.is_some(),
                        }));
                        break;
                    }
                    if len > self.config.max_frame_bytes {
                        out.push(Action::Oversized);
                        out.push(Action::Send(b"-".to_vec()));
                        self.end(
                            MachineEnd::Failed(CollectorError::Protocol(format!(
                                "frame of {len} bytes exceeds the {}-byte limit",
                                self.config.max_frame_bytes
                            ))),
                            out,
                        );
                        break;
                    }
                    // Charge the payload's bytes before its buffer exists —
                    // the same reserve-before-allocate order as the blocking
                    // path's `before_alloc` hook.
                    self.phase = Phase::AwaitBudget { len };
                    out.push(Action::Reserve {
                        window: self.window,
                        bytes: len as usize,
                    });
                    break;
                }
                Phase::Body { len, buf } => {
                    let want = *len as usize - buf.len();
                    let take = want.min(input.len() - consumed);
                    buf.extend_from_slice(&input[consumed..consumed + take]);
                    consumed += take;
                    if buf.len() < *len as usize {
                        break;
                    }
                    let payload = std::mem::take(buf);
                    self.process_frame(payload, now, decoder, out);
                    if self.is_awaiting() || self.is_ended() {
                        break;
                    }
                }
                _ => break,
            }
        }
        consumed
    }

    /// Resolves an [`Action::Reserve`]: the charge was granted.
    pub fn budget_granted(&mut self) {
        if let Phase::AwaitBudget { len } = self.phase {
            self.charge = Some((self.window, len as usize));
            self.phase = Phase::Body {
                len,
                buf: Vec::with_capacity(len as usize),
            };
        } else {
            debug_assert!(false, "budget_granted outside AwaitBudget");
        }
    }

    /// Resolves an [`Action::Commit`] with the absorber's outcome.
    pub fn commit_done(&mut self, done: CommitDone, out: &mut Vec<Action>) {
        match (std::mem::replace(&mut self.phase, Phase::Ended), done) {
            (
                Phase::AwaitHello {
                    session,
                    horizon,
                    route,
                },
                CommitDone::Hello { cursor },
            ) => {
                // The hello frame's own bytes are done with: release them
                // where the blocking path's charge guard drops (after the
                // ack, at `continue`) — same window they were reserved on.
                self.release_charge(out);
                if horizon > cursor {
                    out.push(Action::Send(b"-".to_vec()));
                    self.end(
                        MachineEnd::Failed(CollectorError::Protocol(format!(
                            "session {session:?}: client replay horizon {horizon} is beyond the \
                             collector cursor {cursor} — the missing frames cannot be recovered"
                        ))),
                        out,
                    );
                    return;
                }
                if self.success_ack(protocol::encode_hello_ack(cursor).to_vec(), out) {
                    self.sequenced = Some(session);
                    self.window = route;
                    self.enter_frame(out);
                }
            }
            (Phase::AwaitBatch, CommitDone::Batch(result)) => match result {
                Ok(()) => {
                    if self.success_ack(b"+".to_vec(), out) {
                        self.enter_frame(out);
                    }
                }
                Err(e) => {
                    out.push(Action::Send(b"-".to_vec()));
                    self.end(MachineEnd::Failed(e), out);
                }
            },
            (Phase::AwaitFlush, CommitDone::Flush(result)) => match result {
                Ok(_count) => {
                    if self.success_ack(b"+".to_vec(), out) {
                        self.end(MachineEnd::Completed, out);
                    }
                }
                Err(e) => {
                    out.push(Action::Send(b"-".to_vec()));
                    self.end(MachineEnd::Failed(e), out);
                }
            },
            (phase, _) => {
                debug_assert!(false, "commit_done does not match the in-flight commit");
                self.phase = phase;
            }
        }
    }

    /// The window's absorber is gone (its commit queue disconnected, a
    /// reservation failed, or a pending commit was cancelled). Ends the
    /// session with the blocking path's exact error.
    pub fn absorber_gone(&mut self, out: &mut Vec<Action>) {
        self.release_charge(out);
        self.end(
            MachineEnd::Failed(CollectorError::Io(
                "the absorber stopped before the session ended".into(),
            )),
            out,
        );
    }

    /// The peer closed its write side. At a frame boundary that is the
    /// clean-but-unfinished ending; mid-frame it is the blocking path's
    /// truncation error, byte counts included. Must not be called while
    /// the machine [`Machine::is_awaiting`] — defer EOF until the pause
    /// resolves, as the blocking path only notices EOF when it reads.
    pub fn on_eof(&mut self, out: &mut Vec<Action>) {
        match &self.phase {
            Phase::Header { got: 0, .. } => self.end(MachineEnd::PeerClosed, out),
            Phase::Header { got, .. } => {
                let got = *got;
                self.end(
                    MachineEnd::Failed(CollectorError::Protocol(format!(
                        "connection closed after {got} of 4 frame bytes"
                    ))),
                    out,
                );
            }
            Phase::AwaitBudget { len } => {
                // The budget pause sits between the header and the body
                // read; the blocking path would discover this EOF on the
                // body's first byte.
                let len = *len;
                self.release_charge(out);
                self.end(
                    MachineEnd::Failed(CollectorError::Protocol(format!(
                        "connection closed after 0 of {len} frame bytes"
                    ))),
                    out,
                );
            }
            Phase::Body { len, buf } => {
                let (len, got) = (*len, buf.len());
                self.release_charge(out);
                self.end(
                    MachineEnd::Failed(CollectorError::Protocol(format!(
                        "connection closed after {got} of {len} frame bytes"
                    ))),
                    out,
                );
            }
            Phase::AwaitHello { .. } | Phase::AwaitBatch | Phase::AwaitFlush => {
                debug_assert!(false, "defer EOF while a commit is in flight");
            }
            Phase::Ended => {}
        }
    }

    /// One frame-read attempt begins: the `frame-read` failpoint, then
    /// the header phase.
    fn enter_frame(&mut self, out: &mut Vec<Action>) {
        if faults::hit("frame-read").is_some() {
            self.end(MachineEnd::Failed(faults::error("frame-read")), out);
            return;
        }
        self.phase = Phase::Header {
            got: 0,
            buf: [0u8; 4],
        };
    }

    /// A complete payload: the per-frame pipeline, in the blocking
    /// path's exact order — UTF-8, hello upgrade, seq split, rate
    /// bucket, `decode` failpoint, decoder, `commit-push` failpoint,
    /// batch handoff.
    fn process_frame(
        &mut self,
        payload: Vec<u8>,
        now: Instant,
        decoder: &dyn BatchDecoder,
        out: &mut Vec<Action>,
    ) {
        let text = match String::from_utf8(payload) {
            Ok(text) => text,
            Err(e) => {
                // The blocking reader fails here without an ack byte.
                self.release_charge(out);
                self.end(
                    MachineEnd::Failed(CollectorError::Protocol(format!(
                        "frame is not UTF-8: {e}"
                    ))),
                    out,
                );
                return;
            }
        };
        if std::mem::take(&mut self.first) && protocol::is_hello(&text) {
            let hello = match protocol::parse_hello(&text) {
                Ok(h) => h,
                Err(e) => {
                    self.release_charge(out);
                    out.push(Action::Send(b"-".to_vec()));
                    self.end(MachineEnd::Failed(e), out);
                    return;
                }
            };
            let route = match &hello.window {
                None => 0,
                Some(name) => match self.config.windows.iter().position(|w| w == name) {
                    Some(idx) => idx,
                    None => {
                        self.release_charge(out);
                        out.push(Action::Send(b"-".to_vec()));
                        self.end(
                            MachineEnd::Failed(CollectorError::Protocol(format!(
                                "hello names unknown window {name:?} (serving: {})",
                                self.config.windows.join(", ")
                            ))),
                            out,
                        );
                        return;
                    }
                },
            };
            // The hello's byte charge stays held across the commit, like
            // the blocking guard held across push-and-pop; it is released
            // in commit_done. The commit targets the *routed* window (its
            // absorber owns the cursor), while data frames switch windows
            // only after the hello ack.
            self.phase = Phase::AwaitHello {
                session: hello.session.clone(),
                horizon: hello.horizon,
                route,
            };
            out.push(Action::Commit(CommitRequest::Hello {
                window: route,
                session: hello.session,
            }));
            return;
        }
        let (seq, body) = match &self.sequenced {
            None => (None, text.as_str()),
            Some(id) => match protocol::split_seq_frame(&text) {
                Ok((n, body)) => (Some((id.clone(), n)), body),
                Err(e) => {
                    self.release_charge(out);
                    out.push(Action::Send(b"-".to_vec()));
                    self.end(MachineEnd::Failed(e), out);
                    return;
                }
            },
        };
        if let Some(bucket) = &mut self.bucket {
            let cost = body.lines().filter(|l| !l.trim().is_empty()).count() as u64;
            if let Err(wait) = bucket.admit_at(cost.max(1), now) {
                // Over rate: shed the frame untouched and re-enter the
                // frame loop (the peer re-sends after the hint).
                out.push(Action::RateShed);
                self.release_charge(out);
                out.push(Action::Send(encode_busy_clamped(wait)));
                self.enter_frame(out);
                return;
            }
        }
        if faults::hit("decode").is_some() {
            self.release_charge(out);
            out.push(Action::Send(b"-".to_vec()));
            self.end(MachineEnd::Failed(faults::error("decode")), out);
            return;
        }
        let batch = match decoder.prepare(body) {
            Ok(batch) => batch,
            Err(e) => {
                self.release_charge(out);
                out.push(Action::Send(b"-".to_vec()));
                self.end(MachineEnd::Failed(e), out);
                return;
            }
        };
        if faults::hit("commit-push").is_some() {
            // The blocking path errors here *without* a `-` ack.
            self.release_charge(out);
            self.end(MachineEnd::Failed(faults::error("commit-push")), out);
            return;
        }
        // Transfer the charge into the queue: the absorber releases it at
        // pop, exactly like push_reserved's weight.
        let weight = self.charge.take().map_or(0, |(_, bytes)| bytes);
        self.phase = Phase::AwaitBatch;
        out.push(Action::Commit(CommitRequest::Batch {
            window: self.window,
            batch,
            seq,
            weight,
        }));
    }

    /// A success ack through the `ack-write` and `ack-evict` failpoints —
    /// the blocking path's `write_success_ack`. Returns whether the ack
    /// was queued (`false` = the session just ended).
    fn success_ack(&mut self, ack: Vec<u8>, out: &mut Vec<Action>) -> bool {
        if faults::hit("ack-write").is_some() {
            self.end(MachineEnd::Failed(faults::error("ack-write")), out);
            return false;
        }
        if faults::hit("ack-evict").is_some() {
            self.end(MachineEnd::Evicted, out);
            return false;
        }
        out.push(Action::Send(ack));
        true
    }

    fn release_charge(&mut self, out: &mut Vec<Action>) {
        if let Some((window, bytes)) = self.charge.take() {
            out.push(Action::Release { window, bytes });
        }
    }

    fn end(&mut self, end: MachineEnd, out: &mut Vec<Action>) {
        debug_assert!(self.charge.is_none(), "ending with an unreleased charge");
        self.phase = Phase::Ended;
        out.push(Action::End(end));
    }
}

/// The busy-shed bytes for a token-bucket wait, with the blocking
/// path's millisecond clamp.
fn encode_busy_clamped(wait: Duration) -> Vec<u8> {
    let retry_ms = u32::try_from(wait.as_millis().max(1)).unwrap_or(u32::MAX);
    protocol::encode_busy(retry_ms).to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::build_session;
    use std::sync::Arc;

    fn decoder() -> Arc<dyn BatchDecoder> {
        build_session("grr:eps=1,d=8").unwrap().batch_decoder()
    }

    fn frame_bytes(payload: &str) -> Vec<u8> {
        let mut bytes = (payload.len() as u32).to_be_bytes().to_vec();
        bytes.extend_from_slice(payload.as_bytes());
        bytes
    }

    /// Drives `machine` over `input` one byte at a time, resolving
    /// budget grants inline and collecting everything else.
    fn feed(machine: &mut Machine, input: &[u8], decoder: &dyn BatchDecoder) -> Vec<Action> {
        let mut all = Vec::new();
        let mut out = Vec::new();
        for chunk in input.chunks(1) {
            let mut offset = 0;
            while offset < chunk.len() {
                offset += machine.on_bytes(&chunk[offset..], Instant::now(), decoder, &mut out);
                let mut paused_on_commit = false;
                for action in out.drain(..) {
                    match action {
                        Action::Reserve { .. } => machine.budget_granted(),
                        Action::Commit(_) => paused_on_commit = true,
                        other => all.push(other),
                    }
                }
                if paused_on_commit || machine.is_ended() {
                    return all;
                }
            }
        }
        all
    }

    fn sent(actions: &[Action]) -> Vec<u8> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Send(bytes) => Some(bytes.clone()),
                _ => None,
            })
            .flatten()
            .collect()
    }

    #[test]
    fn bare_frame_commits_then_acks_plus() {
        let decoder = decoder();
        let mut machine = Machine::new(MachineConfig::default(), Instant::now());
        let mut out = Vec::new();
        machine.start(&mut out);
        assert!(out.is_empty());
        let session = build_session("grr:eps=1,d=8").unwrap();
        let reports = session.gen_reports(5, 1).unwrap();
        let actions = feed(&mut machine, &frame_bytes(&reports), decoder.as_ref());
        // One byte at a time: Reserve fired (resolved inline), then the
        // Batch commit paused the machine.
        assert!(machine.is_awaiting());
        assert!(sent(&actions).is_empty(), "no ack before the commit lands");
        machine.commit_done(CommitDone::Batch(Ok(())), &mut out);
        assert_eq!(sent(&out), b"+");
        assert!(machine.at_boundary(), "back at a frame boundary");
    }

    #[test]
    fn eos_flushes_and_completes() {
        let decoder = decoder();
        let mut machine = Machine::new(MachineConfig::default(), Instant::now());
        let mut out = Vec::new();
        machine.start(&mut out);
        feed(&mut machine, &0u32.to_be_bytes(), decoder.as_ref());
        assert!(machine.is_awaiting());
        machine.commit_done(CommitDone::Flush(Ok(0)), &mut out);
        assert_eq!(sent(&out), b"+");
        assert!(machine.is_ended());
        assert!(out
            .iter()
            .any(|a| matches!(a, Action::End(MachineEnd::Completed))));
    }

    #[test]
    fn hello_routes_and_replays_horizon_check() {
        let decoder = decoder();
        let config = MachineConfig {
            windows: vec!["default".into(), "coarse".into()],
            ..MachineConfig::default()
        };
        let mut machine = Machine::new(config.clone(), Instant::now());
        let mut out = Vec::new();
        machine.start(&mut out);
        let hello = protocol::encode_hello_routed("phone-1", 0, Some("coarse"));
        let actions = feed(&mut machine, &frame_bytes(&hello), decoder.as_ref());
        assert!(sent(&actions).is_empty());
        machine.commit_done(CommitDone::Hello { cursor: 3 }, &mut out);
        let bytes = sent(&out);
        assert_eq!(bytes.len(), 9);
        assert_eq!(bytes[0], b'+');
        assert_eq!(u64::from_be_bytes(bytes[1..].try_into().unwrap()), 3);

        // A horizon beyond the cursor is refused with the exact error.
        let mut machine = Machine::new(config, Instant::now());
        machine.start(&mut out);
        out.clear();
        let hello = protocol::encode_hello("phone-2", 9);
        feed(&mut machine, &frame_bytes(&hello), decoder.as_ref());
        machine.commit_done(CommitDone::Hello { cursor: 2 }, &mut out);
        assert_eq!(sent(&out), b"-");
        let end = out.iter().find_map(|a| match a {
            Action::End(MachineEnd::Failed(e)) => Some(e.to_string()),
            _ => None,
        });
        let msg = end.expect("session must fail");
        assert!(msg.contains("replay horizon 9 is beyond the collector cursor 2"));
    }

    #[test]
    fn unknown_window_is_refused_before_any_commit() {
        let decoder = decoder();
        let mut machine = Machine::new(MachineConfig::default(), Instant::now());
        let mut out = Vec::new();
        machine.start(&mut out);
        let hello = protocol::encode_hello_routed("phone-1", 0, Some("nope"));
        let actions = feed(&mut machine, &frame_bytes(&hello), decoder.as_ref());
        assert_eq!(sent(&actions), b"-");
        assert!(machine.is_ended());
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::End(MachineEnd::Failed(CollectorError::Protocol(msg)))
                if msg.contains("unknown window \"nope\"")
        )));
    }

    #[test]
    fn oversized_header_is_refused_before_reserving() {
        let decoder = decoder();
        let config = MachineConfig {
            max_frame_bytes: 16,
            ..MachineConfig::default()
        };
        let mut machine = Machine::new(config, Instant::now());
        let mut out = Vec::new();
        machine.start(&mut out);
        let actions = feed(&mut machine, &1000u32.to_be_bytes(), decoder.as_ref());
        assert_eq!(sent(&actions), b"-");
        assert!(actions.iter().any(|a| matches!(a, Action::Oversized)));
        assert!(
            !actions.iter().any(|a| matches!(a, Action::Release { .. })),
            "nothing was ever reserved"
        );
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::End(MachineEnd::Failed(CollectorError::Protocol(msg)))
                if msg == "frame of 1000 bytes exceeds the 16-byte limit"
        )));
    }

    #[test]
    fn rate_shed_returns_busy_and_stays_open() {
        let decoder = decoder();
        let config = MachineConfig {
            rate: Some(2.0),
            ..MachineConfig::default()
        };
        let mut machine = Machine::new(config, Instant::now());
        let mut out = Vec::new();
        machine.start(&mut out);
        let session = build_session("grr:eps=1,d=8").unwrap();
        let reports = session.gen_reports(50, 2).unwrap();
        // The bucket starts full and clamps oversized costs, so the first
        // frame drains it and is admitted — exactly like the blocking path.
        feed(&mut machine, &frame_bytes(&reports), decoder.as_ref());
        machine.commit_done(CommitDone::Batch(Ok(())), &mut out);
        out.clear();
        // An immediate second frame finds an empty bucket and is shed.
        let actions = feed(&mut machine, &frame_bytes(&reports), decoder.as_ref());
        assert!(actions.iter().any(|a| matches!(a, Action::RateShed)));
        let bytes = sent(&actions);
        assert_eq!(bytes[0], protocol::BUSY_BYTE);
        assert_eq!(bytes.len(), 5);
        assert!(
            machine.at_boundary() && !machine.is_ended(),
            "a shed frame leaves the connection open at a boundary"
        );
        // The charge was released, not transferred.
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Release { window: 0, .. })));
    }

    #[test]
    fn mid_frame_eof_reports_byte_counts() {
        let decoder = decoder();
        let mut machine = Machine::new(MachineConfig::default(), Instant::now());
        let mut out = Vec::new();
        machine.start(&mut out);
        let frame = frame_bytes("grr 1\n");
        feed(&mut machine, &frame[..7], decoder.as_ref());
        machine.on_eof(&mut out);
        assert!(out.iter().any(|a| matches!(
            a,
            Action::End(MachineEnd::Failed(CollectorError::Protocol(msg)))
                if msg == "connection closed after 3 of 6 frame bytes"
        )));

        // At a clean boundary the same close is the PeerClosed ending.
        let mut machine = Machine::new(MachineConfig::default(), Instant::now());
        machine.start(&mut out);
        out.clear();
        machine.on_eof(&mut out);
        assert!(out
            .iter()
            .any(|a| matches!(a, Action::End(MachineEnd::PeerClosed))));
    }

    #[test]
    fn second_frame_of_a_sequenced_session_needs_a_seq_line() {
        let decoder = decoder();
        let mut machine = Machine::new(MachineConfig::default(), Instant::now());
        let mut out = Vec::new();
        machine.start(&mut out);
        feed(
            &mut machine,
            &frame_bytes(&protocol::encode_hello("p", 0)),
            decoder.as_ref(),
        );
        machine.commit_done(CommitDone::Hello { cursor: 0 }, &mut out);
        out.clear();
        let actions = feed(&mut machine, &frame_bytes("grr 1\n"), decoder.as_ref());
        assert_eq!(sent(&actions), b"-");
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::End(MachineEnd::Failed(CollectorError::Protocol(msg)))
                if msg.contains("does not start with a seq line")
        )));
    }
}
