#!/usr/bin/env bash
# Records the perf trajectory of the `em_reconstruction` and
# `sustained_ingest` criterion benches into BENCH_em.json at the repo root
# (a schema-2 file holding a list of snapshots), and gates regressions
# between the two most recent snapshots. The sustained_ingest sections are
# informational only (loopback TCP timing is too noisy to gate).
#
# Usage:
#   scripts/bench_record.sh          # full run, APPENDS a snapshot to
#                                    # BENCH_em.json (migrating the old
#                                    # single-snapshot schema 1 in place)
#   scripts/bench_record.sh smoke    # seconds-long CI smoke run; writes
#                                    # BENCH_em.smoke.json instead
#   scripts/bench_record.sh compare  # diffs the last two snapshots in
#                                    # BENCH_em.json and exits non-zero on
#                                    # a >25% per-iteration regression
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-full}"

if [ "$MODE" = "compare" ]; then
  exec python3 - <<'PY'
import json, sys

LIMIT = 1.25  # fail on >25% per-unit-of-work regression

with open("BENCH_em.json") as f:
    doc = json.load(f)
snapshots = doc.get("snapshots") if isinstance(doc, dict) else None
if not snapshots or len(snapshots) < 2:
    print("bench compare: need at least 2 snapshots in BENCH_em.json "
          f"(found {len(snapshots or [])}); nothing to gate", file=sys.stderr)
    sys.exit(1)
prev, last = snapshots[-2], snapshots[-1]

GATED = [
    ("em_iteration_ns", "ns/EM-iteration"),
    ("grid_ns_per_trial", "ns/grid-trial"),
    ("bootstrap_ns_per_replicate", "ns/bootstrap-replicate"),
    ("streaming_agg_ns_per_report", "ns/report"),
    ("absorb_ns_per_report", "ns/report"),
]
failed = False
for section, unit in GATED:
    a, b = prev.get(section, {}), last.get(section, {})
    for key in sorted(set(a) & set(b)):
        if a[key] <= 0:
            continue
        ratio = b[key] / a[key]
        verdict = "REGRESSION" if ratio > LIMIT else "ok"
        print(f"bench compare: {section}/{key}: {a[key]:.1f} -> {b[key]:.1f} "
              f"{unit}  ({ratio:.1%} of baseline, {verdict})")
        if ratio > LIMIT:
            failed = True
if failed:
    print(f"bench compare: FAILED (>{LIMIT - 1:.0%} regression between the "
          f"last two snapshots)", file=sys.stderr)
    sys.exit(1)
print("bench compare: ok (all gated metrics within "
      f"{LIMIT - 1:.0%} of the previous snapshot)")
PY
fi

OUT="BENCH_em.json"
if [ "$MODE" = "smoke" ]; then
  export BENCH_SMOKE=1
  OUT="BENCH_em.smoke.json"
fi

RAW_EM="$(cargo bench --bench em_reconstruction 2>&1 | tee /dev/stderr | grep '^bench: ' || true)"
RAW_SERVE="$(cargo bench --bench sustained_ingest 2>&1 | tee /dev/stderr | grep '^bench: ' || true)"
RAW="${RAW_EM}${RAW_SERVE:+$'\n'}${RAW_SERVE}"
if [ -z "$RAW" ]; then
  echo "bench_record: no 'bench:' lines captured" >&2
  exit 1
fi

# RAW travels via the environment: the script body arrives on stdin (the
# heredoc), so piping the bench lines in as well would clobber it.
RAW="$RAW" MODE="$MODE" OUT="$OUT" python3 - <<'PY'
import datetime, json, os, re, sys

mode, out = os.environ["MODE"], os.environ["OUT"]

ns = {}
for line in os.environ["RAW"].splitlines():
    parts = line.split()
    if len(parts) >= 3 and parts[0] == "bench:":
        ns[parts[1]] = float(parts[2])

def env_threads():
    override = os.environ.get("LDP_POOL_THREADS", "").strip()
    if override.isdigit() and int(override) >= 1:
        return int(override)
    return os.cpu_count() or 1

snapshot = {
    "mode": mode,
    "recorded_at": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
    "host_threads": os.cpu_count() or 1,
    "pool_threads": env_threads(),
    "em_iters_per_call": 32,
    "median_ns_per_call": {k: round(v, 1) for k, v in sorted(ns.items())},
    "em_iteration_ns": {},
    "em_speedup_structured_vs_dense": {},
    "randomize_reports_per_sec": {},
    "grid_ns_per_trial": {},
    "bootstrap_ns_per_replicate": {},
    "streaming_agg_ns_per_report": {},
    "absorb_ns_per_report": {},
    "absorb_push_ns_per_report": {},
    "absorb_pooled_ns_per_report": {},
    "absorb_speedup_slice_vs_push": {},
    "sustained_ingest_ns_per_report": {},
    "sustained_ingest_reports_per_sec": {},
}

for name, v in sorted(ns.items()):
    m = re.fullmatch(r"em_fixed/(\w+)_d(\d+)_iters(\d+)", name)
    if m:
        kind, d, iters = m.group(1), m.group(2), int(m.group(3))
        snapshot["em_iteration_ns"][f"{kind}_d{d}"] = round(v / iters, 1)
    m = re.fullmatch(r"client_batch/randomize_n(\d+)_w(\d+)", name)
    if m:
        n, w = int(m.group(1)), m.group(2)
        snapshot["randomize_reports_per_sec"][f"w{w}"] = round(n / (v * 1e-9))
    m = re.fullmatch(r"grid/(\w+?)_jobs(\d+)_d(\d+)", name)
    if m:
        label, jobs, d = m.group(1), int(m.group(2)), m.group(3)
        snapshot["grid_ns_per_trial"][f"{label}_d{d}"] = round(v / jobs, 1)
    m = re.fullmatch(r"bootstrap/replicates(\d+)_d(\d+)", name)
    if m:
        reps, d = int(m.group(1)), m.group(2)
        snapshot["bootstrap_ns_per_replicate"][f"d{d}"] = round(v / reps, 1)
    m = re.fullmatch(r"streaming/(\w+?)_n(\d+)_d(\d+)", name)
    if m:
        path, n, d = m.group(1), int(m.group(2)), m.group(3)
        snapshot["streaming_agg_ns_per_report"][f"{path}_d{d}"] = round(v / n, 2)
    m = re.fullmatch(r"absorb/(\w+?)_n(\d+)", name)
    if m:
        fam, n = m.group(1), int(m.group(2))
        snapshot["absorb_ns_per_report"][fam] = round(v / n, 2)
    m = re.fullmatch(r"absorb_push/(\w+?)_n(\d+)", name)
    if m:
        fam, n = m.group(1), int(m.group(2))
        snapshot["absorb_push_ns_per_report"][fam] = round(v / n, 2)
    m = re.fullmatch(r"absorb_pooled/(\w+?)_n(\d+)_w(\d+)", name)
    if m:
        fam, n, w = m.group(1), int(m.group(2)), m.group(3)
        snapshot["absorb_pooled_ns_per_report"][f"{fam}_w{w}"] = round(v / n, 2)
    m = re.fullmatch(r"sustained/ingest_c(\d+)_n(\d+)", name)
    if m:
        conns, n = m.group(1), int(m.group(2))
        snapshot["sustained_ingest_ns_per_report"][f"c{conns}"] = round(v / n, 1)
        snapshot["sustained_ingest_reports_per_sec"][f"c{conns}"] = round(n / (v * 1e-9))

# Kernel-path speedup per family: the per-report push baseline over the
# bulk absorb_slice path (the bit-count families are the headline).
for fam, push_v in snapshot["absorb_push_ns_per_report"].items():
    slice_v = snapshot["absorb_ns_per_report"].get(fam, 0)
    if slice_v > 0:
        snapshot["absorb_speedup_slice_vs_push"][fam] = round(push_v / slice_v, 2)

per_iter = snapshot["em_iteration_ns"]
for key, value in per_iter.items():
    if key.startswith("dense_d"):
        other = "structured_d" + key[len("dense_d"):]
        if other in per_iter and per_iter[other] > 0:
            snapshot["em_speedup_structured_vs_dense"]["d" + key[len("dense_d"):]] = \
                round(value / per_iter[other], 2)

doc = {"schema": 2, "snapshots": []}
if mode == "full" and os.path.exists(out):
    with open(out) as f:
        existing = json.load(f)
    if isinstance(existing, dict) and "snapshots" in existing:
        doc["snapshots"] = existing["snapshots"]
    elif isinstance(existing, dict):
        # Migrate a schema-1 single-snapshot file: it becomes snapshot 0.
        existing.pop("schema", None)
        doc["snapshots"] = [existing]

doc["snapshots"].append(snapshot)
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"bench_record: wrote snapshot {len(doc['snapshots'])} to {out}",
      file=sys.stderr)
PY

cat "$OUT"
