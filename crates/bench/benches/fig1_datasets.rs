//! Figure 1 harness benchmark: dataset generation and ground-truth
//! histogram construction for each of the four evaluation workloads.

use criterion::{criterion_group, criterion_main, Criterion};
use ldp_datasets::{DatasetKind, DatasetSpec};
use std::time::Duration;

fn bench_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    for kind in DatasetKind::all() {
        group.bench_function(format!("generate_{}", kind.name().replace(' ', "_")), |b| {
            b.iter(|| {
                let ds = DatasetSpec {
                    kind,
                    n: 20_000,
                    seed: 1,
                }
                .generate();
                ds.histogram(kind.paper_buckets()).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
