//! Samplers for the statistical distributions used by the evaluation
//! datasets.
//!
//! The offline `rand` crate only ships uniform sampling; the distribution
//! zoo (normal, gamma, beta, lognormal, …) is implemented here with
//! classical algorithms: Marsaglia polar for the normal, Marsaglia–Tsang for
//! the gamma, and the gamma-ratio construction for the beta.

use crate::error::NumericError;
use rand::Rng;

/// A continuous distribution that can be sampled.
pub trait Sampler {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;

    /// Draws `n` samples into a fresh vector.
    fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// The standard normal distribution N(0, 1), sampled with the Marsaglia
/// polar method.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardNormal;

impl Sampler for StandardNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        loop {
            let u: f64 = rng.gen::<f64>() * 2.0 - 1.0;
            let v: f64 = rng.gen::<f64>() * 2.0 - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

/// A normal distribution N(mean, std²).
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// Creates N(mean, std²). Fails if `std` is negative or either
    /// parameter is non-finite.
    pub fn new(mean: f64, std: f64) -> Result<Self, NumericError> {
        if !mean.is_finite() || !std.is_finite() || std < 0.0 {
            return Err(NumericError::InvalidParameter(format!(
                "Normal(mean={mean}, std={std}) requires finite mean and std >= 0"
            )));
        }
        Ok(Normal { mean, std })
    }

    /// The mean parameter.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation parameter.
    #[must_use]
    pub fn std(&self) -> f64 {
        self.std
    }
}

impl Sampler for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std * StandardNormal.sample(rng)
    }
}

/// A gamma distribution with shape `alpha` and scale `theta`, sampled with
/// the Marsaglia–Tsang (2000) squeeze method.
#[derive(Debug, Clone, Copy)]
pub struct Gamma {
    alpha: f64,
    theta: f64,
}

impl Gamma {
    /// Creates Gamma(alpha, theta). Both parameters must be positive.
    pub fn new(alpha: f64, theta: f64) -> Result<Self, NumericError> {
        if !(alpha > 0.0) || !(theta > 0.0) || !alpha.is_finite() || !theta.is_finite() {
            return Err(NumericError::InvalidParameter(format!(
                "Gamma(alpha={alpha}, theta={theta}) requires positive finite parameters"
            )));
        }
        Ok(Gamma { alpha, theta })
    }

    fn sample_shape_ge_one<R: Rng + ?Sized>(alpha: f64, rng: &mut R) -> f64 {
        debug_assert!(alpha >= 1.0);
        let d = alpha - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = StandardNormal.sample(rng);
            let t = 1.0 + c * x;
            if t <= 0.0 {
                continue;
            }
            let v = t * t * t;
            let u: f64 = rng.gen();
            // Squeeze step first, full log check as fallback.
            if u < 1.0 - 0.0331 * x * x * x * x {
                return d * v;
            }
            if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
                return d * v;
            }
        }
    }
}

impl Sampler for Gamma {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.alpha >= 1.0 {
            self.theta * Self::sample_shape_ge_one(self.alpha, rng)
        } else {
            // Boost: Gamma(a) = Gamma(a + 1) * U^(1/a).
            let g = Self::sample_shape_ge_one(self.alpha + 1.0, rng);
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            self.theta * g * u.powf(1.0 / self.alpha)
        }
    }
}

/// A beta distribution Beta(a, b) on `[0, 1]`, sampled as X/(X+Y) with
/// independent gammas.
#[derive(Debug, Clone, Copy)]
pub struct Beta {
    ga: Gamma,
    gb: Gamma,
}

impl Beta {
    /// Creates Beta(a, b). Both shape parameters must be positive.
    pub fn new(a: f64, b: f64) -> Result<Self, NumericError> {
        Ok(Beta {
            ga: Gamma::new(a, 1.0)?,
            gb: Gamma::new(b, 1.0)?,
        })
    }
}

impl Sampler for Beta {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let x = self.ga.sample(rng);
        let y = self.gb.sample(rng);
        if x + y == 0.0 {
            0.5
        } else {
            x / (x + y)
        }
    }
}

/// A lognormal distribution: `exp(N(mu, sigma²))`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    normal: Normal,
}

impl LogNormal {
    /// Creates LogNormal(mu, sigma). `sigma` must be non-negative.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, NumericError> {
        Ok(LogNormal {
            normal: Normal::new(mu, sigma)?,
        })
    }
}

impl Sampler for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.normal.sample(rng).exp()
    }
}

/// An exponential distribution with rate `lambda`.
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates Exp(lambda). The rate must be positive.
    pub fn new(lambda: f64) -> Result<Self, NumericError> {
        if !(lambda > 0.0) || !lambda.is_finite() {
            return Err(NumericError::InvalidParameter(format!(
                "Exponential(lambda={lambda}) requires a positive finite rate"
            )));
        }
        Ok(Exponential { lambda })
    }
}

impl Sampler for Exponential {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        -u.ln() / self.lambda
    }
}

/// One weighted component of a [`Mixture`].
#[derive(Debug, Clone)]
pub enum Component {
    /// Normal component.
    Normal(Normal),
    /// Lognormal component.
    LogNormal(LogNormal),
    /// Exponential component.
    Exponential(Exponential),
    /// Beta component.
    Beta(Beta),
    /// A deterministic point mass (used for the spiky income dataset).
    Point(f64),
    /// Uniform on `[lo, hi]`.
    Uniform(f64, f64),
}

impl Sampler for Component {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match self {
            Component::Normal(d) => d.sample(rng),
            Component::LogNormal(d) => d.sample(rng),
            Component::Exponential(d) => d.sample(rng),
            Component::Beta(d) => d.sample(rng),
            Component::Point(v) => *v,
            Component::Uniform(lo, hi) => lo + (hi - lo) * rng.gen::<f64>(),
        }
    }
}

/// A finite mixture over [`Component`]s with arbitrary non-negative weights.
#[derive(Debug, Clone)]
pub struct Mixture {
    components: Vec<Component>,
    /// Cumulative normalized weights for inverse-CDF component selection.
    cumulative: Vec<f64>,
}

impl Mixture {
    /// Builds a mixture from `(weight, component)` pairs. Weights must be
    /// non-negative with a positive sum.
    pub fn new(parts: Vec<(f64, Component)>) -> Result<Self, NumericError> {
        if parts.is_empty() {
            return Err(NumericError::InvalidParameter(
                "mixture needs at least one component".into(),
            ));
        }
        let total: f64 = parts.iter().map(|(w, _)| *w).sum();
        if !(total > 0.0) || parts.iter().any(|(w, _)| *w < 0.0 || !w.is_finite()) {
            return Err(NumericError::InvalidParameter(
                "mixture weights must be non-negative with positive sum".into(),
            ));
        }
        let mut cumulative = Vec::with_capacity(parts.len());
        let mut acc = 0.0;
        let mut components = Vec::with_capacity(parts.len());
        for (w, c) in parts {
            acc += w / total;
            cumulative.push(acc);
            components.push(c);
        }
        // Guard against floating-point shortfall at the end.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Ok(Mixture {
            components,
            cumulative,
        })
    }
}

impl Sampler for Mixture {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        let idx = match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("weights are finite"))
        {
            Ok(i) => i,
            Err(i) => i,
        };
        self.components[idx.min(self.components.len() - 1)].sample(rng)
    }
}

/// Clamps every sample of an inner distribution into `[lo, hi]`.
///
/// Used to map real-world-style values (income dollars, seconds in a day)
/// into the `[0, 1]` domain the mechanisms work over, mirroring the paper's
/// preprocessing ("we extract the values smaller than … and map them into
/// [0, 1]").
#[derive(Debug, Clone)]
pub struct Clamped<S> {
    inner: S,
    lo: f64,
    hi: f64,
}

impl<S: Sampler> Clamped<S> {
    /// Wraps `inner`, clamping into `[lo, hi]`. Requires `lo < hi`.
    pub fn new(inner: S, lo: f64, hi: f64) -> Result<Self, NumericError> {
        if !(lo < hi) {
            return Err(NumericError::InvalidParameter(format!(
                "Clamped requires lo < hi, got [{lo}, {hi}]"
            )));
        }
        Ok(Clamped { inner, lo, hi })
    }
}

impl<S: Sampler> Sampler for Clamped<S> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.inner.sample(rng).clamp(self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;
    use crate::stats;

    fn draw<S: Sampler>(s: &S, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SplitMix64::new(seed);
        s.sample_n(&mut rng, n)
    }

    #[test]
    fn standard_normal_moments() {
        let xs = draw(&StandardNormal, 200_000, 1);
        let m = stats::mean(&xs);
        let v = stats::variance(&xs);
        assert!(m.abs() < 0.02, "mean {m}");
        assert!((v - 1.0).abs() < 0.03, "var {v}");
    }

    #[test]
    fn normal_rejects_bad_params() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn gamma_moments_shape_above_one() {
        // Gamma(5, 2): mean 10, variance 20.
        let g = Gamma::new(5.0, 2.0).unwrap();
        let xs = draw(&g, 200_000, 2);
        assert!((stats::mean(&xs) - 10.0).abs() < 0.1);
        assert!((stats::variance(&xs) - 20.0).abs() < 0.6);
    }

    #[test]
    fn gamma_moments_shape_below_one() {
        // Gamma(0.5, 1): mean 0.5, variance 0.5.
        let g = Gamma::new(0.5, 1.0).unwrap();
        let xs = draw(&g, 200_000, 3);
        assert!((stats::mean(&xs) - 0.5).abs() < 0.02);
        assert!((stats::variance(&xs) - 0.5).abs() < 0.05);
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn gamma_rejects_bad_params() {
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, 0.0).is_err());
        assert!(Gamma::new(-2.0, 1.0).is_err());
    }

    #[test]
    fn beta_5_2_moments_match_theory() {
        // Beta(5, 2): mean 5/7, variance 5*2/(49*8) = 10/392.
        let b = Beta::new(5.0, 2.0).unwrap();
        let xs = draw(&b, 200_000, 4);
        let expected_mean = 5.0 / 7.0;
        let expected_var = 10.0 / 392.0;
        assert!((stats::mean(&xs) - expected_mean).abs() < 0.005);
        assert!((stats::variance(&xs) - expected_var).abs() < 0.002);
        assert!(xs.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn lognormal_median_is_exp_mu() {
        let d = LogNormal::new(1.0, 0.5).unwrap();
        let mut xs = draw(&d, 100_001, 5);
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        assert!((median - 1f64.exp()).abs() < 0.05, "median {median}");
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let d = Exponential::new(4.0).unwrap();
        let xs = draw(&d, 200_000, 6);
        assert!((stats::mean(&xs) - 0.25).abs() < 0.01);
    }

    #[test]
    fn mixture_respects_weights() {
        let m = Mixture::new(vec![
            (3.0, Component::Point(0.0)),
            (1.0, Component::Point(1.0)),
        ])
        .unwrap();
        let xs = draw(&m, 100_000, 7);
        let ones = xs.iter().filter(|&&x| x == 1.0).count() as f64;
        let frac = ones / xs.len() as f64;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn mixture_rejects_empty_and_negative_weights() {
        assert!(Mixture::new(vec![]).is_err());
        assert!(Mixture::new(vec![(-1.0, Component::Point(0.0))]).is_err());
        assert!(Mixture::new(vec![(0.0, Component::Point(0.0))]).is_err());
    }

    #[test]
    fn clamped_stays_in_range() {
        let d = Clamped::new(Normal::new(0.5, 10.0).unwrap(), 0.0, 1.0).unwrap();
        let xs = draw(&d, 10_000, 8);
        assert!(xs.iter().all(|&x| (0.0..=1.0).contains(&x)));
        // With std 10 almost everything clamps to an endpoint.
        assert!(xs.iter().filter(|&&x| x == 0.0 || x == 1.0).count() > 9_000);
    }

    #[test]
    fn clamped_rejects_inverted_range() {
        assert!(Clamped::new(StandardNormal, 1.0, 0.0).is_err());
    }
}
