//! Output formatting: text tables and CSV for every chart the harness
//! produces.

use std::fmt::Write as _;

/// One line on a chart: y(x) with a standard deviation per point.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label (method name, bin count, wave shape, …).
    pub label: String,
    /// X coordinates (ε, b, bucket counts, …).
    pub x: Vec<f64>,
    /// Mean metric value per x.
    pub y: Vec<f64>,
    /// Standard deviation across trials per x.
    pub std: Vec<f64>,
}

/// One panel of a paper figure.
#[derive(Debug, Clone)]
pub struct Chart {
    /// Panel title, e.g. "Fig 2(a) Beta(5,2) — Wasserstein".
    pub title: String,
    /// X axis label.
    pub x_label: String,
    /// Y axis label.
    pub y_label: String,
    /// All series on the panel.
    pub series: Vec<Series>,
}

impl Chart {
    /// Renders an aligned text table: one row per x, one column per series.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let _ = write!(out, "{:>12}", self.x_label);
        for s in &self.series {
            let _ = write!(out, " {:>18}", truncate(&s.label, 18));
        }
        let _ = writeln!(out);
        let n = self.series.iter().map(|s| s.x.len()).max().unwrap_or(0);
        for i in 0..n {
            let x = self
                .series
                .iter()
                .find_map(|s| s.x.get(i))
                .copied()
                .unwrap_or(f64::NAN);
            let _ = write!(out, "{x:>12.4}");
            for s in &self.series {
                match s.y.get(i) {
                    Some(y) => {
                        let _ = write!(out, " {y:>18.6}");
                    }
                    None => {
                        let _ = write!(out, " {:>18}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Renders CSV: `series,x,y,std` rows with a header.
    #[must_use]
    pub fn render_csv(&self) -> String {
        let mut out = String::from("series,x,y,std\n");
        for s in &self.series {
            for i in 0..s.x.len() {
                let _ = writeln!(
                    out,
                    "{},{},{},{}",
                    escape_csv(&s.label),
                    s.x[i],
                    s.y[i],
                    s.std.get(i).copied().unwrap_or(0.0)
                );
            }
        }
        out
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n.saturating_sub(1)])
    }
}

fn escape_csv(s: &str) -> String {
    if s.contains(',') || s.contains('"') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// A full figure: a set of panels plus free-text notes.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Figure id, e.g. "fig2".
    pub id: String,
    /// Figure caption.
    pub caption: String,
    /// All panels.
    pub charts: Vec<Chart>,
    /// Notes (paper-vs-measured commentary, parameters used).
    pub notes: Vec<String>,
}

impl Figure {
    /// Renders the whole figure as readable text.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.caption);
        for note in &self.notes {
            let _ = writeln!(out, "  note: {note}");
        }
        let _ = writeln!(out);
        for chart in &self.charts {
            out.push_str(&chart.render_text());
            let _ = writeln!(out);
        }
        out
    }

    /// Renders all panels as one CSV document with `panel` as an extra
    /// column.
    #[must_use]
    pub fn render_csv(&self) -> String {
        let mut out = String::from("panel,series,x,y,std\n");
        for chart in &self.charts {
            for s in &chart.series {
                for i in 0..s.x.len() {
                    let _ = writeln!(
                        out,
                        "{},{},{},{},{}",
                        escape_csv(&chart.title),
                        escape_csv(&s.label),
                        s.x[i],
                        s.y[i],
                        s.std.get(i).copied().unwrap_or(0.0)
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> Chart {
        Chart {
            title: "test".into(),
            x_label: "eps".into(),
            y_label: "W1".into(),
            series: vec![
                Series {
                    label: "SW-EMS".into(),
                    x: vec![0.5, 1.0],
                    y: vec![0.01, 0.005],
                    std: vec![0.001, 0.0005],
                },
                Series {
                    label: "a,weird\"label".into(),
                    x: vec![0.5, 1.0],
                    y: vec![0.02, 0.01],
                    std: vec![0.002, 0.001],
                },
            ],
        }
    }

    #[test]
    fn text_table_contains_all_series_and_points() {
        let t = chart().render_text();
        assert!(t.contains("SW-EMS"));
        assert!(t.contains("0.5"));
        assert!(t.contains("0.010000"));
    }

    #[test]
    fn csv_escapes_special_characters() {
        let c = chart().render_csv();
        assert!(c.starts_with("series,x,y,std\n"));
        assert!(c.contains("\"a,weird\"\"label\""));
    }

    #[test]
    fn figure_renders_notes_and_panels() {
        let f = Figure {
            id: "fig9".into(),
            caption: "demo".into(),
            charts: vec![chart()],
            notes: vec!["scaled run".into()],
        };
        let t = f.render_text();
        assert!(t.contains("fig9"));
        assert!(t.contains("note: scaled run"));
        let c = f.render_csv();
        assert!(c.starts_with("panel,series,x,y,std\n"));
    }

    #[test]
    fn mismatched_series_lengths_render_dashes() {
        let c = Chart {
            title: "t".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![
                Series {
                    label: "long".into(),
                    x: vec![1.0, 2.0],
                    y: vec![0.1, 0.2],
                    std: vec![0.0, 0.0],
                },
                Series {
                    label: "short".into(),
                    x: vec![1.0],
                    y: vec![0.3],
                    std: vec![0.0],
                },
            ],
        };
        let t = c.render_text();
        assert!(t.contains('-'));
    }
}
