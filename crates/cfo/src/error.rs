//! Error type for frequency-oracle construction and use.

use std::fmt;

/// Errors produced by CFO protocols.
#[derive(Debug, Clone, PartialEq)]
pub enum CfoError {
    /// The privacy parameter ε must be positive and finite.
    InvalidEpsilon(f64),
    /// The categorical domain must have at least two values.
    DomainTooSmall(usize),
    /// A user value fell outside the declared domain.
    ValueOutOfDomain {
        /// The offending value.
        value: usize,
        /// The domain size it must be below.
        domain: usize,
    },
    /// A parameter other than ε or the domain was invalid.
    InvalidParameter(String),
}

impl fmt::Display for CfoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfoError::InvalidEpsilon(eps) => {
                write!(f, "epsilon must be positive and finite, got {eps}")
            }
            CfoError::DomainTooSmall(d) => {
                write!(f, "domain must have at least 2 values, got {d}")
            }
            CfoError::ValueOutOfDomain { value, domain } => {
                write!(f, "value {value} outside domain of size {domain}")
            }
            CfoError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for CfoError {}

/// Validates ε, shared by all oracle constructors.
pub(crate) fn check_epsilon(eps: f64) -> Result<(), CfoError> {
    if !(eps > 0.0) || !eps.is_finite() {
        return Err(CfoError::InvalidEpsilon(eps));
    }
    Ok(())
}

/// Validates the domain size, shared by all oracle constructors.
pub(crate) fn check_domain(d: usize) -> Result<(), CfoError> {
    if d < 2 {
        return Err(CfoError::DomainTooSmall(d));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validators_accept_and_reject() {
        assert!(check_epsilon(1.0).is_ok());
        assert!(check_epsilon(0.0).is_err());
        assert!(check_epsilon(-1.0).is_err());
        assert!(check_epsilon(f64::NAN).is_err());
        assert!(check_epsilon(f64::INFINITY).is_err());
        assert!(check_domain(2).is_ok());
        assert!(check_domain(1).is_err());
        assert!(check_domain(0).is_err());
    }

    #[test]
    fn display_mentions_the_problem() {
        assert!(CfoError::InvalidEpsilon(-1.0).to_string().contains("-1"));
        assert!(CfoError::DomainTooSmall(1).to_string().contains('1'));
        let e = CfoError::ValueOutOfDomain {
            value: 9,
            domain: 4,
        };
        assert!(e.to_string().contains('9') && e.to_string().contains('4'));
    }
}
