//! General Wave mechanisms (paper §5.1–5.2).
//!
//! A general wave mechanism reports, for input `v ∈ [0, 1]`, a value
//! `ṽ ∈ [-b, 1+b]` with density `M_v(ṽ) = W(ṽ - v)` where the wave function
//! `W` satisfies `W(z) = q` for `|z| > b`, `q ≤ W(z) ≤ eᵉ·q` inside, and
//! `∫_{-b}^{b} W = 1 − q`. Theorem 5.3 shows the *square* wave (constant
//! `eᵉ·q` plateau) maximizes the Wasserstein distance between any two output
//! distributions; this module also implements the trapezoid and triangle
//! shapes the paper compares against in Figure 5.

use crate::error::SwError;
use ldp_core::Epsilon;
use rand::Rng;

/// The profile of a wave inside `[-b, b]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WaveShape {
    /// Constant plateau at `eᵉ·q` — the Square Wave (optimal, Thm 5.3).
    Square,
    /// Flat top of half-width `ratio·b`, linear flanks down to `q` at ±b.
    /// `ratio = 1` degenerates to square, `ratio = 0` to triangle.
    Trapezoid {
        /// Top-to-bottom width ratio in `[0, 1]`.
        ratio: f64,
    },
    /// Linear peak at 0 falling to `q` at ±b (trapezoid with ratio 0).
    Triangle,
}

impl WaveShape {
    fn top_ratio(self) -> f64 {
        match self {
            WaveShape::Square => 1.0,
            WaveShape::Trapezoid { ratio } => ratio,
            WaveShape::Triangle => 0.0,
        }
    }
}

/// A concrete wave: shape + bandwidth + privacy budget, with its derived
/// densities.
#[derive(Debug, Clone, Copy)]
pub struct Wave {
    shape: WaveShape,
    b: f64,
    eps: f64,
    /// Baseline density outside the wave (and the wave's minimum).
    q: f64,
    /// Peak density `eᵉ·q`.
    peak: f64,
}

impl Wave {
    /// Creates a wave. `b` must be in `(0, ∞)`; for shapes other than
    /// square the trapezoid ratio must lie in `[0, 1]`.
    pub fn new(shape: WaveShape, b: f64, eps: f64) -> Result<Self, SwError> {
        Epsilon::new(eps)?;
        if !(b > 0.0) || !b.is_finite() {
            return Err(SwError::InvalidBandwidth(b));
        }
        if let WaveShape::Trapezoid { ratio } = shape {
            if !(0.0..=1.0).contains(&ratio) || !ratio.is_finite() {
                return Err(SwError::InvalidParameter(format!(
                    "trapezoid ratio must be in [0, 1], got {ratio}"
                )));
            }
        }
        let e = eps.exp();
        let r = shape.top_ratio();
        // ∫W over [-b, b] = 2bq + (e^ε - 1)q · b(1 + r) = 1 - q
        //   => q = 1 / (1 + 2b + (e^ε - 1)·b·(1 + r)).
        let q = 1.0 / (1.0 + 2.0 * b + (e - 1.0) * b * (1.0 + r));
        Ok(Wave {
            shape,
            b,
            eps,
            q,
            peak: e * q,
        })
    }

    /// The square wave with the given bandwidth (paper eq. 3:
    /// `p = eᵉ/(2beᵉ+1)`, `q = 1/(2beᵉ+1)`).
    pub fn square(b: f64, eps: f64) -> Result<Self, SwError> {
        Self::new(WaveShape::Square, b, eps)
    }

    /// Shape of this wave.
    #[must_use]
    pub fn shape(&self) -> WaveShape {
        self.shape
    }

    /// Bandwidth `b`.
    #[must_use]
    pub fn b(&self) -> f64 {
        self.b
    }

    /// Privacy budget ε.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.eps
    }

    /// Baseline ("far") density `q`.
    #[must_use]
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Peak density `eᵉ·q` (for the square wave this is `p`).
    #[must_use]
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Half-width of the flat top, `r·b`: the wave density equals
    /// [`Self::peak`] exactly on `|z| ≤ r·b`. For the square wave this is
    /// the whole band (`b`), for the triangle it degenerates to 0.
    #[must_use]
    pub fn flat_top_halfwidth(&self) -> f64 {
        self.shape.top_ratio() * self.b
    }

    /// Left edge of the output domain `[-b, 1+b]`.
    #[must_use]
    pub fn output_lo(&self) -> f64 {
        -self.b
    }

    /// Right edge of the output domain.
    #[must_use]
    pub fn output_hi(&self) -> f64 {
        1.0 + self.b
    }

    /// The wave function `W(z)`: the output density at offset `z` from the
    /// true value (valid for any real `z`; outside `[-b, b]` it is `q`).
    #[must_use]
    pub fn density(&self, z: f64) -> f64 {
        let az = z.abs();
        if az > self.b {
            return self.q;
        }
        let r = self.shape.top_ratio();
        let flat = r * self.b;
        if az <= flat {
            self.peak
        } else {
            // Linear flank from peak at |z| = r·b down to q at |z| = b.
            let t = (self.b - az) / (self.b - flat);
            self.q + (self.peak - self.q) * t
        }
    }

    /// Offsets at which `W` is non-smooth, for exact quadrature.
    #[must_use]
    pub fn breakpoints(&self) -> Vec<f64> {
        let r = self.shape.top_ratio();
        let flat = r * self.b;
        let mut pts = vec![-self.b, -flat, flat, self.b];
        pts.dedup_by(|a, b| (*a - *b).abs() < 1e-15);
        pts
    }

    /// Exact mass the output distribution for input `v` puts on the output
    /// interval `[lo, hi]`: `∫_{lo}^{hi} W(ṽ - v) dṽ`. `W` is piecewise
    /// linear between breakpoints (with jumps at ±b for the square shape),
    /// so the midpoint rule on each piece is exact and never samples a
    /// discontinuity.
    #[must_use]
    pub fn mass_on_interval(&self, v: f64, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return 0.0;
        }
        let mut pts: Vec<f64> = self
            .breakpoints()
            .into_iter()
            .map(|z| v + z)
            .filter(|&p| p > lo && p < hi)
            .collect();
        pts.push(lo);
        pts.push(hi);
        pts.sort_by(|a, b| a.partial_cmp(b).expect("finite breakpoints"));
        let mut total = 0.0;
        for w in pts.windows(2) {
            let (a, c) = (w[0], w[1]);
            total += self.density(0.5 * (a + c) - v) * (c - a);
        }
        total
    }

    /// Client side: randomizes a private value `v ∈ [0, 1]` into
    /// `ṽ ∈ [-b, 1+b]` with density `W(ṽ - v)`.
    ///
    /// The sampler decomposes the density into a uniform baseline of mass
    /// `q·(1+2b)` over the whole output domain and a "bump" of mass
    /// `1 − q(1+2b)` with the trapezoid profile, sampled by inverse CDF.
    pub fn randomize<R: Rng + ?Sized>(&self, v: f64, rng: &mut R) -> Result<f64, SwError> {
        if !(0.0..=1.0).contains(&v) || !v.is_finite() {
            return Err(SwError::ValueOutOfDomain(v));
        }
        let base_mass = self.q * (1.0 + 2.0 * self.b);
        if rng.gen::<f64>() < base_mass {
            return Ok(self.output_lo() + (1.0 + 2.0 * self.b) * rng.gen::<f64>());
        }
        Ok(v + self.sample_bump_offset(rng))
    }

    /// Samples an offset from the normalized bump profile
    /// (peak − q over the flat top, linear flanks).
    fn sample_bump_offset<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let r = self.shape.top_ratio();
        let flat = r * self.b;
        // Bump areas: rectangle 2·flat·h plus two triangles (b-flat)·h/2 each,
        // h = peak - q. Only the ratios matter.
        let rect = 2.0 * flat;
        let tris = self.b - flat; // both triangles combined: 2·(b-flat)/2
        let total = rect + tris;
        if rng.gen::<f64>() < rect / total {
            // Uniform over the flat top.
            -flat + 2.0 * flat * rng.gen::<f64>()
        } else {
            // One of the linear flanks: density decreasing from flat to b.
            let u: f64 = rng.gen();
            let z = flat + (self.b - flat) * (1.0 - u.sqrt());
            if rng.gen::<bool>() {
                z
            } else {
                -z
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_numeric::quad::integrate_with_breakpoints;
    use ldp_numeric::SplitMix64;

    fn waves() -> Vec<Wave> {
        vec![
            Wave::square(0.25, 1.0).unwrap(),
            Wave::new(WaveShape::Trapezoid { ratio: 0.5 }, 0.3, 1.5).unwrap(),
            Wave::new(WaveShape::Triangle, 0.2, 2.0).unwrap(),
            Wave::new(WaveShape::Trapezoid { ratio: 0.2 }, 0.15, 0.5).unwrap(),
        ]
    }

    #[test]
    fn construction_validates() {
        assert!(Wave::square(0.0, 1.0).is_err());
        assert!(Wave::square(-0.1, 1.0).is_err());
        assert!(Wave::square(0.2, 0.0).is_err());
        assert!(Wave::new(WaveShape::Trapezoid { ratio: 1.5 }, 0.2, 1.0).is_err());
        assert!(Wave::new(WaveShape::Trapezoid { ratio: -0.1 }, 0.2, 1.0).is_err());
    }

    #[test]
    fn square_wave_matches_paper_formulas() {
        let eps = 1.0;
        let b = 0.25;
        let w = Wave::square(b, eps).unwrap();
        let e = eps.exp();
        let q_expected = 1.0 / (2.0 * b * e + 1.0);
        assert!((w.q() - q_expected).abs() < 1e-12);
        assert!((w.peak() - e * q_expected).abs() < 1e-12);
        // Density is p inside, q outside.
        assert_eq!(w.density(0.0), w.peak());
        assert_eq!(w.density(0.24), w.peak());
        assert_eq!(w.density(0.26), w.q());
        assert_eq!(w.density(-0.26), w.q());
    }

    #[test]
    fn all_shapes_satisfy_ldp_density_ratio() {
        for w in waves() {
            let e = w.epsilon().exp();
            let zs: Vec<f64> = (-100..=100).map(|k| k as f64 * 0.01).collect();
            for &z in &zs {
                let d = w.density(z);
                assert!(d >= w.q() - 1e-12, "below q at z={z}");
                assert!(d <= e * w.q() + 1e-12, "above e^eps·q at z={z}");
            }
        }
    }

    #[test]
    fn density_integrates_to_one_over_output_domain() {
        for w in waves() {
            for &v in &[0.0, 0.3, 0.77, 1.0] {
                let total = integrate_with_breakpoints(
                    |t| w.density(t - v),
                    &w.breakpoints().iter().map(|z| v + z).collect::<Vec<_>>(),
                    w.output_lo(),
                    w.output_hi(),
                    4,
                );
                assert!(
                    (total - 1.0).abs() < 1e-9,
                    "shape {:?} v={v}: total {total}",
                    w.shape()
                );
            }
        }
    }

    #[test]
    fn mass_on_interval_matches_quadrature() {
        for w in waves() {
            let v = 0.4;
            for &(lo, hi) in &[(-0.3, 0.2), (0.1, 0.9), (0.35, 0.45), (-0.25, 1.25)] {
                let exact = w.mass_on_interval(v, lo, hi);
                let quad = integrate_with_breakpoints(
                    |t| w.density(t - v),
                    &w.breakpoints().iter().map(|z| v + z).collect::<Vec<_>>(),
                    lo,
                    hi,
                    8,
                );
                assert!(
                    (exact - quad).abs() < 1e-9,
                    "shape {:?} [{lo},{hi}]: {exact} vs {quad}",
                    w.shape()
                );
            }
        }
    }

    #[test]
    fn randomize_respects_output_domain() {
        for w in waves() {
            let mut rng = SplitMix64::new(101);
            for &v in &[0.0, 0.5, 1.0] {
                for _ in 0..2000 {
                    let out = w.randomize(v, &mut rng).unwrap();
                    assert!(out >= w.output_lo() - 1e-12 && out <= w.output_hi() + 1e-12);
                }
            }
        }
    }

    #[test]
    fn randomize_rejects_out_of_domain_inputs() {
        let w = Wave::square(0.25, 1.0).unwrap();
        let mut rng = SplitMix64::new(102);
        assert!(w.randomize(-0.1, &mut rng).is_err());
        assert!(w.randomize(1.1, &mut rng).is_err());
        assert!(w.randomize(f64::NAN, &mut rng).is_err());
    }

    #[test]
    fn empirical_histogram_matches_density() {
        // Sample many reports for fixed v and compare bucket frequencies
        // against the exact per-bucket masses.
        for w in waves() {
            let v = 0.6;
            let mut rng = SplitMix64::new(103);
            let n = 400_000;
            let buckets = 20;
            let lo = w.output_lo();
            let width = (w.output_hi() - lo) / buckets as f64;
            let mut counts = vec![0u64; buckets];
            for _ in 0..n {
                let out = w.randomize(v, &mut rng).unwrap();
                let idx = (((out - lo) / width) as usize).min(buckets - 1);
                counts[idx] += 1;
            }
            for (j, &c) in counts.iter().enumerate() {
                let blo = lo + j as f64 * width;
                let expect = w.mass_on_interval(v, blo, blo + width);
                let got = c as f64 / n as f64;
                assert!(
                    (got - expect).abs() < 0.01,
                    "shape {:?} bucket {j}: {got} vs {expect}",
                    w.shape()
                );
            }
        }
    }

    #[test]
    fn square_has_smallest_q_for_fixed_b_eps() {
        // Lemma 5.5: q is minimized (hence signal maximized) by the square.
        let b = 0.25;
        let eps = 1.0;
        let q_square = Wave::square(b, eps).unwrap().q();
        for &ratio in &[0.0, 0.2, 0.5, 0.8] {
            let q_other = Wave::new(WaveShape::Trapezoid { ratio }, b, eps)
                .unwrap()
                .q();
            assert!(q_square < q_other, "ratio {ratio}");
        }
    }

    #[test]
    fn triangle_equals_ratio_zero_trapezoid() {
        let t = Wave::new(WaveShape::Triangle, 0.3, 1.0).unwrap();
        let z = Wave::new(WaveShape::Trapezoid { ratio: 0.0 }, 0.3, 1.0).unwrap();
        for &x in &[-0.3, -0.1, 0.0, 0.15, 0.3, 0.5] {
            assert!((t.density(x) - z.density(x)).abs() < 1e-12);
        }
    }
}
