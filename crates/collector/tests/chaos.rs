//! Chaos suite: the exactly-once contract under deterministic fault
//! injection.
//!
//! Three layers of drill, all asserting the same invariant — a faulted,
//! crashing, restarting collector ends the window **bit-identical** to a
//! fault-free serial ingest of the same reports:
//!
//! 1. protocol-level replay/gap semantics over a raw socket;
//! 2. in-process serve runs with `faults::install` schedules and the
//!    real `ldp-loadgen` sequenced client riding out the injections;
//! 3. the full kill-and-restart drill against the `ldp-collector`
//!    *binary* (`LDP_FAULTS` in the child's environment), including a
//!    torn snapshot write and a mid-ack `process::exit`.

use ldp_collector::server::{serve, write_frame, ServeOptions, SnapshotPolicy};
use ldp_collector::{build_session, faults, protocol};
use ldp_loadgen::{generate_frames, run, Plan};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The fault schedule is process-global; every test that installs one
/// holds this lock for its whole serve run.
static FAULTS: Mutex<()> = Mutex::new(());

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ldp-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Serial reference: one session ingesting every generated frame in
/// order. Exact merges make the faulted concurrent run comparable to
/// this bit for bit.
fn reference_finalize(spec: &str, frames: &[Vec<String>]) -> (String, u64) {
    let mut session = build_session(spec).unwrap();
    for conn in frames {
        for frame in conn {
            session.ingest_text(frame).unwrap();
        }
    }
    (session.finalize_text().unwrap(), session.count())
}

fn read_ack(stream: &mut TcpStream) -> u8 {
    let mut ack = [0u8; 1];
    stream.read_exact(&mut ack).unwrap();
    ack[0]
}

/// Opens a sequenced session and returns (stream, cursor from the ack).
fn hello(addr: &str, session: &str, horizon: u64) -> (TcpStream, u64) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write_frame(&mut stream, &protocol::encode_hello(session, horizon)).unwrap();
    assert_eq!(read_ack(&mut stream), b'+', "hello refused");
    let mut raw = [0u8; 8];
    stream.read_exact(&mut raw).unwrap();
    (stream, u64::from_be_bytes(raw))
}

#[test]
fn replayed_frames_ack_idempotently_and_gaps_are_rejected() {
    let _guard = FAULTS.lock().unwrap_or_else(|e| e.into_inner());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let spec = "grr:eps=1,d=8";
    let generator = build_session(spec).unwrap();
    let log = generator.gen_reports(40, 5).unwrap();
    let frames: Vec<String> = log
        .lines()
        .collect::<Vec<_>>()
        .chunks(10)
        .map(|c| c.join("\n"))
        .collect();

    let options = ServeOptions {
        connections: 3,
        ..ServeOptions::default()
    };
    let server = std::thread::spawn({
        let frames = frames.clone();
        move || {
            let mut session = build_session("grr:eps=1,d=8").unwrap();
            let policy = SnapshotPolicy {
                path: None,
                every: 0,
                keep: 0,
            };
            let summary = serve(&listener, session.as_mut(), &policy, &options).unwrap();
            let mut reference = build_session("grr:eps=1,d=8").unwrap();
            for frame in &frames {
                reference.ingest_text(frame).unwrap();
            }
            assert_eq!(session.count(), 40, "replays were absorbed");
            assert_eq!(
                session.finalize_text().unwrap(),
                reference.finalize_text().unwrap()
            );
            summary
        }
    });

    // Session 1: frames 0 and 1, then the connection "dies" (drop).
    let (mut s1, cursor) = hello(&addr, "drill", 0);
    assert_eq!(cursor, 0);
    for (i, frame) in frames[..2].iter().enumerate() {
        write_frame(&mut s1, &protocol::encode_seq_frame(i as u64, frame)).unwrap();
        assert_eq!(read_ack(&mut s1), b'+');
    }
    drop(s1);

    // Session 2 resumes: the cursor says 2. A client that replays frame 0
    // anyway gets `+` without a second absorb; a gap (seq 3) gets `-`.
    let (mut s2, cursor) = hello(&addr, "drill", 0);
    assert_eq!(cursor, 2, "cursor survives the reconnect");
    write_frame(&mut s2, &protocol::encode_seq_frame(0, &frames[0])).unwrap();
    assert_eq!(read_ack(&mut s2), b'+', "sub-cursor replay must ack +");
    write_frame(&mut s2, &protocol::encode_seq_frame(3, &frames[3])).unwrap();
    assert_eq!(read_ack(&mut s2), b'-', "a gap must be rejected");
    drop(s2);

    // Session 3 finishes the stream properly.
    let (mut s3, cursor) = hello(&addr, "drill", 0);
    assert_eq!(cursor, 2, "the rejected gap frame must not advance");
    for (i, frame) in frames.iter().enumerate().skip(2) {
        write_frame(&mut s3, &protocol::encode_seq_frame(i as u64, frame)).unwrap();
        assert_eq!(read_ack(&mut s3), b'+');
    }
    s3.write_all(&0u32.to_be_bytes()).unwrap();
    assert_eq!(read_ack(&mut s3), b'+');
    drop(s3);

    let summary = server.join().unwrap();
    assert_eq!(summary.duplicates_suppressed, 1);
    assert_eq!(summary.sessions_resumed, 2);
    assert_eq!(summary.reports, 40);
}

#[test]
fn a_hello_below_the_clients_replay_horizon_is_refused() {
    let _guard = FAULTS.lock().unwrap_or_else(|e| e.into_inner());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server = std::thread::spawn(move || {
        let mut session = build_session("grr:eps=1,d=8").unwrap();
        let policy = SnapshotPolicy {
            path: None,
            every: 0,
            keep: 0,
        };
        let options = ServeOptions {
            connections: 1,
            ..ServeOptions::default()
        };
        serve(&listener, session.as_mut(), &policy, &options).unwrap()
    });
    // The client claims it can only replay from seq 5, but the collector
    // has never seen this session (cursor 0): frames 0..5 are
    // unrecoverable, so the hello must be refused, not silently skipped.
    let mut stream = TcpStream::connect(&addr).unwrap();
    write_frame(&mut stream, &protocol::encode_hello("amnesiac", 5)).unwrap();
    assert_eq!(read_ack(&mut stream), b'-');
    drop(stream);
    let summary = server.join().unwrap();
    assert_eq!(summary.failed, 1);
    assert!(summary
        .last_session_error
        .unwrap()
        .contains("replay horizon"));
}

/// One faulted, sequenced fleet run against an in-process serve; asserts
/// the final estimate is bit-identical to the fault-free reference.
fn chaos_fleet_run(spec: &str, schedule: &str) {
    let guard = FAULTS.lock().unwrap_or_else(|e| e.into_inner());
    let plan = Plan {
        spec: spec.into(),
        connections: 4,
        frames_per_connection: 6,
        reports_per_frame: 40,
        seed: 9,
        session: Some("chaos".into()),
        retry_budget: Duration::from_secs(60),
        ..Plan::default()
    };
    let frames = generate_frames(&plan).unwrap();
    let (expected, expected_count) = reference_finalize(spec, &frames);

    faults::install(schedule).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let options = ServeOptions::default(); // connections: 0 — until shutdown
    let shutdown = Arc::clone(&options.shutdown);
    let server = std::thread::spawn({
        let spec = spec.to_string();
        move || {
            let mut session = build_session(&spec).unwrap();
            let policy = SnapshotPolicy {
                path: None,
                every: 0,
                keep: 0,
            };
            let summary = serve(&listener, session.as_mut(), &policy, &options).unwrap();
            (summary, session.finalize_text().unwrap(), session.count())
        }
    });

    let report = run(&addr, &plan).unwrap();
    shutdown.store(true, Ordering::SeqCst);
    let (summary, finalized, count) = server.join().unwrap();
    faults::clear();
    drop(guard);

    assert_eq!(report.reports, plan.total_reports(), "spec {spec}");
    assert!(
        summary.faults_injected > 0,
        "spec {spec}: the schedule never fired"
    );
    assert!(
        report.reconnects > 0,
        "spec {spec}: faults should have forced reconnects"
    );
    assert_eq!(
        count, expected_count,
        "spec {spec}: lost or doubled reports"
    );
    assert_eq!(
        finalized, expected,
        "spec {spec}: faulted run must be bit-identical to the fault-free reference"
    );
}

#[test]
fn faulted_sw_ems_fleet_is_bit_identical_to_fault_free() {
    chaos_fleet_run(
        "sw-ems:eps=1,d=32",
        "frame-read=err@7,ack-write=err@13,commit-push=err@19",
    );
}

#[test]
fn faulted_oue_fleet_is_bit_identical_to_fault_free() {
    chaos_fleet_run(
        "oue:eps=1,d=16",
        "decode=err@3,frame-read=stall:40@9,ack-write=err@16",
    );
}

#[test]
fn faulted_pm_fleet_is_bit_identical_to_fault_free() {
    chaos_fleet_run(
        "pm:eps=1",
        "ack-write=err@5,frame-read=err@11,decode=err@17",
    );
}

#[test]
fn truncation_at_every_byte_boundary_fails_only_that_session() {
    let _guard = FAULTS.lock().unwrap_or_else(|e| e.into_inner());
    let spec = "grr:eps=1,d=8";
    let generator = build_session(spec).unwrap();
    let good_log = generator.gen_reports(30, 21).unwrap();
    let good_frames: Vec<String> = good_log
        .lines()
        .collect::<Vec<_>>()
        .chunks(10)
        .map(|c| c.join("\n"))
        .collect();
    // The frame the truncated connections never finish sending: length
    // header plus payload, cut at every byte boundary from 0 (bare
    // close) to one short of complete.
    let payload = generator.gen_reports(2, 99).unwrap();
    let payload = payload.trim_end();
    let mut full = Vec::new();
    full.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    full.extend_from_slice(payload.as_bytes());
    let cuts = full.len(); // 0..cuts, exclusive of full delivery

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    // Every client connects at once and none retries a `!busy` shed, so
    // the fleet must fit the admission limit for the counts to be exact.
    let options = ServeOptions {
        max_connections: cuts + 1,
        connections: (cuts + 1) as u64,
        ..ServeOptions::default()
    };
    let server = std::thread::spawn(move || {
        let mut session = build_session("grr:eps=1,d=8").unwrap();
        let policy = SnapshotPolicy {
            path: None,
            every: 0,
            keep: 0,
        };
        let summary = serve(&listener, session.as_mut(), &policy, &options).unwrap();
        (summary, session.count())
    });

    std::thread::scope(|scope| {
        scope.spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            for frame in &good_frames {
                write_frame(&mut stream, frame).unwrap();
                assert_eq!(read_ack(&mut stream), b'+', "healthy session suffered");
            }
            stream.write_all(&0u32.to_be_bytes()).unwrap();
            assert_eq!(read_ack(&mut stream), b'+');
        });
        for cut in 0..cuts {
            let prefix = &full[..cut];
            scope.spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                stream.write_all(prefix).unwrap();
                let _ = stream.shutdown(std::net::Shutdown::Write);
                // Drain until the server hangs up on us.
                let mut sink = [0u8; 16];
                while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
            });
        }
    });

    let (summary, count) = server.join().unwrap();
    assert_eq!(count, 30, "truncated bytes must contribute nothing");
    assert_eq!(summary.completed, 1, "the one whole session completes");
    assert_eq!(
        summary.failed as usize, cuts,
        "every truncated session fails alone"
    );
}

// ---------------------------------------------------------------------
// The kill-and-restart drill against the real binary.
// ---------------------------------------------------------------------

fn collector_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ldp-collector"))
}

fn spawn_collector(dir: &Path, addr: &str, spec: &str, faults_env: &str) -> Child {
    let mut cmd = collector_bin();
    cmd.args([
        "serve",
        "--mechanism",
        spec,
        "--listen",
        addr,
        "--snapshot",
        dir.join("window.snap").to_str().unwrap(),
        "--snapshot-every",
        "40",
        "--resume",
        "--shutdown-file",
        dir.join("stop").to_str().unwrap(),
    ]);
    if faults_env.is_empty() {
        cmd.env_remove("LDP_FAULTS");
    } else {
        cmd.env("LDP_FAULTS", faults_env);
    }
    cmd.stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawning ldp-collector")
}

#[test]
fn kill_and_restart_drill_ends_bit_identical() {
    let spec = "sw-ems:eps=1,d=32";
    let dir = scratch("drill");
    // A fixed localhost port for the restart chain: every child must
    // bind the *same* address. Probe for a free one first.
    let addr = {
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        probe.local_addr().unwrap().to_string()
        // probe drops here; the children re-bind the port (SO_REUSEADDR).
    };

    let plan = Plan {
        spec: spec.into(),
        connections: 3,
        frames_per_connection: 8,
        reports_per_frame: 25,
        seed: 4,
        session: Some("restart".into()),
        retry_budget: Duration::from_secs(60),
        ..Plan::default()
    };
    let frames = generate_frames(&plan).unwrap();
    let (expected, expected_count) = reference_finalize(spec, &frames);

    // Child 1 crashes with `process::exit` between an absorb and its ack
    // — the classic exactly-once hole. Start the fleet against it.
    let c1 = spawn_collector(&dir, &addr, spec, "ack-write=exit@9");
    let fleet = std::thread::spawn({
        let addr = addr.clone();
        let plan = plan.clone();
        move || run(&addr, &plan)
    });
    let status = c1.wait_with_output().unwrap().status;
    assert_eq!(
        status.code(),
        Some(faults::FAULT_EXIT_CODE),
        "child 1 should die at the injected exit"
    );

    // Child 2 restarts from the snapshot, then dies on a *torn* cadence
    // snapshot write (the tmp file is left half-written on disk; the
    // real snapshot must be untouched).
    let c2 = spawn_collector(&dir, &addr, spec, "snap-write=torn@1");
    let status = c2.wait_with_output().unwrap().status;
    assert_eq!(
        status.code(),
        Some(1),
        "child 2 should fail on the torn write"
    );

    // Child 3 runs fault-free; the fleet finishes its resumed sessions.
    let c3 = spawn_collector(&dir, &addr, spec, "");
    let report = fleet
        .join()
        .unwrap()
        .expect("the fleet should ride out both crashes");
    std::fs::write(dir.join("stop"), b"").unwrap();
    let status = c3.wait_with_output().unwrap().status;
    assert!(status.success(), "child 3 should retire cleanly");

    assert_eq!(report.reports, plan.total_reports(), "exactly-once count");
    assert!(report.reconnects >= 1, "the fleet must have reconnected");

    // The recovered window equals the fault-free serial reference bit
    // for bit, and the persisted cursors cover every session.
    let snap = std::fs::read_to_string(dir.join("window.snap")).unwrap();
    let mut recovered = build_session(spec).unwrap();
    recovered.restore(&snap).unwrap();
    assert_eq!(recovered.count(), expected_count);
    assert_eq!(recovered.finalize_text().unwrap(), expected);

    // `inspect` surfaces the persisted cursors.
    let out = collector_bin()
        .args(["inspect", dir.join("window.snap").to_str().unwrap()])
        .env_remove("LDP_FAULTS")
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("sessions    3"), "inspect output:\n{text}");
    assert!(
        text.contains("restart-0 cursor 8"),
        "inspect output:\n{text}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
