//! Error type for the experiment harness.

use std::fmt;

/// Errors produced while running experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentError(pub String);

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "experiment error: {}", self.0)
    }
}

impl std::error::Error for ExperimentError {}

impl From<ldp_core::CoreError> for ExperimentError {
    fn from(e: ldp_core::CoreError) -> Self {
        ExperimentError(e.to_string())
    }
}

impl From<ldp_sw::SwError> for ExperimentError {
    fn from(e: ldp_sw::SwError) -> Self {
        ExperimentError(e.to_string())
    }
}

impl From<ldp_cfo::CfoError> for ExperimentError {
    fn from(e: ldp_cfo::CfoError) -> Self {
        ExperimentError(e.to_string())
    }
}

impl From<ldp_hierarchy::HierarchyError> for ExperimentError {
    fn from(e: ldp_hierarchy::HierarchyError) -> Self {
        ExperimentError(e.to_string())
    }
}

impl From<ldp_mean::MeanError> for ExperimentError {
    fn from(e: ldp_mean::MeanError) -> Self {
        ExperimentError(e.to_string())
    }
}

impl From<ldp_metrics::MetricError> for ExperimentError {
    fn from(e: ldp_metrics::MetricError) -> Self {
        ExperimentError(e.to_string())
    }
}

impl From<ldp_numeric::NumericError> for ExperimentError {
    fn from(e: ldp_numeric::NumericError) -> Self {
        ExperimentError(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_messages() {
        let e: ExperimentError = ldp_sw::SwError::InvalidEpsilon(-1.0).into();
        assert!(e.to_string().contains("epsilon"));
        let e: ExperimentError = ldp_cfo::CfoError::DomainTooSmall(1).into();
        assert!(e.to_string().contains("domain"));
    }
}
