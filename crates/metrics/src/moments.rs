//! Mean and variance accuracy (paper §3.2): `|μ − μ̂|` and `|σ² − σ̂²|`.

use crate::error::MetricError;
use ldp_numeric::Histogram;

/// Absolute error between the true histogram's mean and an estimated mean
/// value (for mechanisms like SR/PM that output a scalar directly).
#[must_use]
pub fn mean_error_scalar(truth: &Histogram, estimated_mean: f64) -> f64 {
    (truth.mean() - estimated_mean).abs()
}

/// Absolute mean error between two histograms.
pub fn mean_error(truth: &Histogram, estimate: &Histogram) -> Result<f64, MetricError> {
    check_same(truth, estimate)?;
    Ok((truth.mean() - estimate.mean()).abs())
}

/// Absolute error between the true histogram's variance and an estimated
/// variance value.
#[must_use]
pub fn variance_error_scalar(truth: &Histogram, estimated_variance: f64) -> f64 {
    (truth.variance() - estimated_variance).abs()
}

/// Absolute variance error between two histograms.
pub fn variance_error(truth: &Histogram, estimate: &Histogram) -> Result<f64, MetricError> {
    check_same(truth, estimate)?;
    Ok((truth.variance() - estimate.variance()).abs())
}

fn check_same(truth: &Histogram, estimate: &Histogram) -> Result<(), MetricError> {
    if truth.len() != estimate.len() {
        return Err(MetricError::GranularityMismatch {
            truth: truth.len(),
            estimate: estimate.len(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(probs: &[f64]) -> Histogram {
        Histogram::from_probs(probs.to_vec()).unwrap()
    }

    #[test]
    fn zero_error_for_identical() {
        let a = h(&[0.25, 0.25, 0.25, 0.25]);
        assert_eq!(mean_error(&a, &a).unwrap(), 0.0);
        assert_eq!(variance_error(&a, &a).unwrap(), 0.0);
    }

    #[test]
    fn scalar_variants_match_histogram_variants() {
        let a = h(&[0.7, 0.1, 0.1, 0.1]);
        let b = h(&[0.1, 0.1, 0.1, 0.7]);
        assert!((mean_error(&a, &b).unwrap() - mean_error_scalar(&a, b.mean())).abs() < 1e-12);
        assert!(
            (variance_error(&a, &b).unwrap() - variance_error_scalar(&a, b.variance())).abs()
                < 1e-12
        );
    }

    #[test]
    fn known_mean_shift() {
        // Point masses at bucket centers 1/8 vs 5/8: mean error 0.5.
        let a = h(&[1.0, 0.0, 0.0, 0.0]);
        let b = h(&[0.0, 0.0, 1.0, 0.0]);
        assert!((mean_error(&a, &b).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mismatch_rejected() {
        let a = h(&[0.5, 0.5]);
        let b = h(&[0.25, 0.25, 0.25, 0.25]);
        assert!(mean_error(&a, &b).is_err());
        assert!(variance_error(&a, &b).is_err());
    }
}
