//! Snapshot files on disk: atomic writes, plain reads.
//!
//! A snapshot that is being written when the collector dies must never be
//! mistaken for the current recovery point. The discipline here is the
//! classic one: write the complete file to `<path>.tmp`, fsync it, then
//! `rename` over the destination — on POSIX the rename is atomic, so the
//! destination always holds either the previous complete snapshot or the
//! new complete snapshot, never a torn mixture. (Even without the rename,
//! the container's `body-lines` count and trailing checksum make a torn
//! file *detectable*; the rename makes it *impossible to observe*.)

use crate::error::CollectorError;
use std::fs;
use std::io::Write;
use std::path::Path;

/// Atomically replaces `path` with `text` via the sibling `<path>.tmp`.
pub fn write_snapshot_atomic(path: &Path, text: &str) -> Result<(), CollectorError> {
    let tmp = tmp_path(path);
    let io = |what: &str, e: std::io::Error| {
        CollectorError::Io(format!("{what} {}: {e}", tmp.display()))
    };
    {
        let mut f = fs::File::create(&tmp).map_err(|e| io("create", e))?;
        f.write_all(text.as_bytes()).map_err(|e| io("write", e))?;
        f.sync_all().map_err(|e| io("sync", e))?;
    }
    fs::rename(&tmp, path).map_err(|e| {
        CollectorError::Io(format!(
            "rename {} -> {}: {e}",
            tmp.display(),
            path.display()
        ))
    })
}

/// The sibling temp path the atomic write goes through.
#[must_use]
pub fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Reads a snapshot (or report) file to a string.
pub fn read_to_string(path: &Path) -> Result<String, CollectorError> {
    fs::read_to_string(path)
        .map_err(|e| CollectorError::Io(format!("read {}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_write_round_trips_and_replaces() {
        let dir = std::env::temp_dir().join("ldp-collector-io-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("window.snap");
        write_snapshot_atomic(&path, "first\n").unwrap();
        assert_eq!(read_to_string(&path).unwrap(), "first\n");
        write_snapshot_atomic(&path, "second\n").unwrap();
        assert_eq!(read_to_string(&path).unwrap(), "second\n");
        // The temp sibling never lingers.
        assert!(!tmp_path(&path).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_of_missing_file_names_the_path() {
        let err = read_to_string(Path::new("/nonexistent/x.snap")).unwrap_err();
        assert!(err.to_string().contains("x.snap"));
    }
}
