//! A uniform adapter over every estimation method the paper evaluates
//! (Table 2).
//!
//! [`Method`] is a thin constructor table: [`Method::runner`] builds the
//! mechanism behind each name and wraps it in the registry's generic
//! streaming runner (see [`crate::registry`]). All client-side
//! randomization and server-side aggregation flows through the unified
//! `ldp-core` `Client`/`Aggregator` split — there are no per-mechanism
//! randomize/aggregate paths here.

use crate::error::ExperimentError;
use crate::registry::{MeanRunner, MethodRunner, Streaming};
use ldp_cfo::BinningEstimator;
use ldp_hierarchy::{
    constrained_inference, hh_admm_histogram, AdmmConfig, HaarHrr, HhRaw, HierarchicalHistogram,
    RootPolicy,
};
use ldp_mean::{MeanMechanism, MeanVariance, Pm, Sr};
use ldp_numeric::histogram::bucket_of;
use ldp_numeric::{Histogram, SplitMix64};
use ldp_sw::SwMechanism;

/// The paper's branching factor for hierarchy methods (§6.1: "similar to
/// \[18\], we use a branching factor of 4").
pub const HIERARCHY_BRANCHING: usize = 4;

/// Every estimation method in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Square Wave reporting + EMS reconstruction (the paper's method).
    SwEms,
    /// Square Wave reporting + plain EM.
    SwEm,
    /// Hierarchical histogram + ADMM post-processing (the paper's second
    /// contribution).
    HhAdmm,
    /// CFO with binning into `bins` chunks + Norm-Sub.
    CfoBinning {
        /// Number of bins (the paper uses 16, 32, 64).
        bins: usize,
    },
    /// Hierarchical histogram with constrained inference (range query
    /// only — estimates may be negative).
    Hh,
    /// Haar transform with Hadamard randomized response (range query only).
    HaarHrr,
    /// Stochastic rounding (mean/variance only).
    Sr,
    /// Piecewise mechanism (mean/variance only).
    Pm,
}

impl Method {
    /// Display name matching the paper's legends.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            Method::SwEms => "SW-EMS".into(),
            Method::SwEm => "SW-EM".into(),
            Method::HhAdmm => "HH-ADMM".into(),
            Method::CfoBinning { bins } => format!("CFO-binning-{bins}"),
            Method::Hh => "HH".into(),
            Method::HaarHrr => "HaarHRR".into(),
            Method::Sr => "SR".into(),
            Method::Pm => "PM".into(),
        }
    }

    /// The inverse of [`Method::name`]: resolves a paper legend back to
    /// the method, case-insensitively (`"SW-EMS"`, `"sw-ems"`,
    /// `"CFO-binning-32"`, …). This is how external front ends — the
    /// `ldp-collector` binary's `--mechanism` aliases in particular —
    /// reuse the experiment registry's naming instead of growing a
    /// second name table.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Method> {
        let lower = name.to_ascii_lowercase();
        match lower.as_str() {
            "sw-ems" => Some(Method::SwEms),
            "sw-em" => Some(Method::SwEm),
            "hh-admm" => Some(Method::HhAdmm),
            "hh" => Some(Method::Hh),
            "haarhrr" | "haar-hrr" => Some(Method::HaarHrr),
            "sr" => Some(Method::Sr),
            "pm" => Some(Method::Pm),
            _ => lower
                .strip_prefix("cfo-binning-")
                .and_then(|b| b.parse().ok())
                .filter(|&bins| bins > 0)
                .map(|bins| Method::CfoBinning { bins }),
        }
    }

    /// Every legend [`Method::from_name`] resolves, in display form
    /// (`CFO-binning-<bins>` shown with the paper's bin counts). Front
    /// ends use this to suggest near-matches when a name doesn't resolve
    /// instead of maintaining a second name table.
    #[must_use]
    pub fn known_names() -> Vec<String> {
        Method::moment_methods()
            .into_iter()
            .chain([Method::Hh, Method::HaarHrr])
            .map(|m| m.name())
            .collect()
    }

    /// The methods evaluated on full-distribution metrics
    /// (Figure 2, Figure 4 rows 1–3 minus SR/PM).
    #[must_use]
    pub fn distribution_methods() -> Vec<Method> {
        vec![
            Method::SwEms,
            Method::SwEm,
            Method::HhAdmm,
            Method::CfoBinning { bins: 16 },
            Method::CfoBinning { bins: 32 },
            Method::CfoBinning { bins: 64 },
        ]
    }

    /// The methods evaluated on range queries (Figure 3).
    #[must_use]
    pub fn range_query_methods() -> Vec<Method> {
        let mut m = Self::distribution_methods();
        m.push(Method::Hh);
        m.push(Method::HaarHrr);
        m
    }

    /// The methods evaluated on mean/variance (Figure 4 rows 1–2).
    #[must_use]
    pub fn moment_methods() -> Vec<Method> {
        let mut m = Self::distribution_methods();
        m.push(Method::Sr);
        m.push(Method::Pm);
        m
    }

    /// Whether this method produces a full (valid) distribution.
    #[must_use]
    pub fn yields_distribution(&self) -> bool {
        matches!(
            self,
            Method::SwEms | Method::SwEm | Method::HhAdmm | Method::CfoBinning { .. }
        )
    }

    /// Builds the ready-to-run estimation method at granularity `d` and
    /// budget `eps`: the constructor table behind the trait-object
    /// registry. Each entry names the mechanism, how dataset values map to
    /// its input domain, and how its output maps to an [`Estimate`].
    pub fn runner(&self, d: usize, eps: f64) -> Result<Box<dyn MethodRunner>, ExperimentError> {
        Ok(match *self {
            Method::SwEms => Box::new(Streaming {
                mechanism: SwMechanism::ems(eps, d)?,
                to_input: |v: f64| v,
                to_estimate: |h: Histogram| Ok(Estimate::Distribution(h)),
            }),
            Method::SwEm => Box::new(Streaming {
                mechanism: SwMechanism::em(eps, d)?,
                to_input: |v: f64| v,
                to_estimate: |h: Histogram| Ok(Estimate::Distribution(h)),
            }),
            Method::HhAdmm => Box::new(Streaming {
                mechanism: HierarchicalHistogram::new(HIERARCHY_BRANCHING, d, eps)?,
                to_input: move |v: f64| bucket_of(v, d),
                to_estimate: |raw: HhRaw| {
                    let h = hh_admm_histogram(raw.shape(), &raw, AdmmConfig::default())?;
                    Ok(Estimate::Distribution(h))
                },
            }),
            Method::CfoBinning { bins } => Box::new(Streaming {
                mechanism: BinningEstimator::new(bins, d, eps)?,
                to_input: |v: f64| v,
                to_estimate: |h: Histogram| Ok(Estimate::Distribution(h)),
            }),
            Method::Hh => Box::new(Streaming {
                mechanism: HierarchicalHistogram::new(HIERARCHY_BRANCHING, d, eps)?,
                to_input: move |v: f64| bucket_of(v, d),
                to_estimate: |raw: HhRaw| {
                    let consistent = constrained_inference(
                        raw.shape(),
                        &raw.tree,
                        &raw.level_variances,
                        RootPolicy::Fixed(1.0),
                    )?;
                    Ok(Estimate::SignedLeaves(consistent.leaves().to_vec()))
                },
            }),
            Method::HaarHrr => Box::new(Streaming {
                mechanism: HaarHrr::new(d, eps)?,
                to_input: move |v: f64| bucket_of(v, d),
                to_estimate: |leaves: Vec<f64>| Ok(Estimate::SignedLeaves(leaves)),
            }),
            Method::Sr => Box::new(MeanRunner {
                mechanism: Sr::new(eps)?,
                protocol: MeanVariance::new(MeanMechanism::Sr, eps)?,
            }),
            Method::Pm => Box::new(MeanRunner {
                mechanism: Pm::new(eps)?,
                protocol: MeanVariance::new(MeanMechanism::Pm, eps)?,
            }),
        })
    }
}

/// What a method outputs for one trial.
#[derive(Debug, Clone)]
pub enum Estimate {
    /// A valid probability distribution at the evaluation granularity.
    Distribution(Histogram),
    /// Leaf-level frequency estimates that may contain negative values
    /// (HH, HaarHRR) — range queries only.
    SignedLeaves(Vec<f64>),
    /// Scalar mean and variance estimates (SR, PM).
    Scalar {
        /// Estimated mean in `[0, 1]`.
        mean: f64,
        /// Estimated variance.
        variance: f64,
    },
}

/// Runs one method on one dataset at granularity `d` and budget `eps`.
///
/// `values` are the users' private values in `[0, 1]`; `seed` makes the
/// trial reproducible. Dispatches through the trait-object registry: build
/// the runner once, then stream the whole population through the unified
/// `Client`/`Aggregator` API.
pub fn run_method(
    method: Method,
    values: &[f64],
    d: usize,
    eps: f64,
    seed: u64,
) -> Result<Estimate, ExperimentError> {
    let runner = method.runner(d, eps)?;
    runner.run(values, &mut SplitMix64::new(seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn values() -> Vec<f64> {
        (0..6_000)
            .map(|i| ((i * 37) % 1000) as f64 / 1000.0)
            .collect()
    }

    #[test]
    fn method_lists_match_table_2() {
        assert_eq!(Method::distribution_methods().len(), 6);
        assert_eq!(Method::range_query_methods().len(), 8);
        assert_eq!(Method::moment_methods().len(), 8);
        assert!(Method::SwEms.yields_distribution());
        assert!(!Method::Hh.yields_distribution());
        assert_eq!(Method::CfoBinning { bins: 32 }.name(), "CFO-binning-32");
    }

    #[test]
    fn from_name_inverts_name_for_every_method() {
        for method in Method::moment_methods()
            .into_iter()
            .chain([Method::Hh, Method::HaarHrr])
        {
            assert_eq!(Method::from_name(&method.name()), Some(method));
            assert_eq!(
                Method::from_name(&method.name().to_lowercase()),
                Some(method)
            );
        }
        assert_eq!(Method::from_name("HH-ADMM"), Some(Method::HhAdmm));
        assert_eq!(
            Method::from_name("CFO-binning-32"),
            Some(Method::CfoBinning { bins: 32 })
        );
        assert_eq!(Method::from_name("CFO-binning-0"), None);
        assert_eq!(Method::from_name("CFO-binning-x"), None);
        assert_eq!(Method::from_name("nope"), None);
    }

    #[test]
    fn known_names_all_resolve_back() {
        let names = Method::known_names();
        assert!(names.len() >= 8);
        for name in names {
            assert!(Method::from_name(&name).is_some(), "{name}");
        }
    }

    #[test]
    fn every_distribution_method_returns_valid_histogram() {
        let vals = values();
        for method in Method::distribution_methods() {
            let est = run_method(method, &vals, 64, 1.0, 11).unwrap();
            match est {
                Estimate::Distribution(h) => {
                    assert_eq!(h.len(), 64, "{}", method.name());
                    assert!((h.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
                }
                _ => panic!("{} should yield a distribution", method.name()),
            }
        }
    }

    #[test]
    fn signed_methods_return_leaves() {
        let vals = values();
        for method in [Method::Hh, Method::HaarHrr] {
            let est = run_method(method, &vals, 64, 1.0, 12).unwrap();
            match est {
                Estimate::SignedLeaves(l) => assert_eq!(l.len(), 64),
                _ => panic!("{} should yield signed leaves", method.name()),
            }
        }
    }

    #[test]
    fn scalar_methods_return_plausible_moments() {
        let vals = values();
        for method in [Method::Sr, Method::Pm] {
            let est = run_method(method, &vals, 64, 2.0, 13).unwrap();
            match est {
                Estimate::Scalar { mean, variance } => {
                    assert!((mean - 0.5).abs() < 0.15, "{}: mean {mean}", method.name());
                    assert!(variance >= 0.0);
                }
                _ => panic!("{} should yield scalars", method.name()),
            }
        }
    }

    #[test]
    fn trials_are_reproducible_by_seed() {
        let vals = values();
        let a = run_method(Method::SwEms, &vals, 32, 1.0, 99).unwrap();
        let b = run_method(Method::SwEms, &vals, 32, 1.0, 99).unwrap();
        match (a, b) {
            (Estimate::Distribution(x), Estimate::Distribution(y)) => {
                assert_eq!(x.probs(), y.probs());
            }
            _ => panic!("expected distributions"),
        }
    }

    /// The registry dispatch must preserve the pre-redesign estimates for
    /// the mechanisms whose RNG consumption order is unchanged: the SW
    /// paths randomize each value sequentially on the trial stream exactly
    /// as the old hand-written loop did.
    #[test]
    fn sw_dispatch_is_bit_identical_to_legacy_pipeline_path() {
        let vals = values();
        let eps = 1.0;
        let d = 32;
        for (method, reconstruction) in [
            (Method::SwEms, ldp_sw::Reconstruction::Ems),
            (Method::SwEm, ldp_sw::Reconstruction::Em),
        ] {
            let est = match run_method(method, &vals, d, eps, 1234).unwrap() {
                Estimate::Distribution(h) => h,
                _ => panic!("expected a distribution"),
            };
            // The legacy path: sequential randomization on the trial RNG,
            // ShardAggregator ingestion, EM/EMS reconstruction.
            let pipeline = ldp_sw::SwPipeline::new(eps, d).unwrap();
            let mut rng = SplitMix64::new(1234);
            let mut agg = ldp_sw::ShardAggregator::for_pipeline(&pipeline);
            for &v in &vals {
                agg.push(pipeline.randomize(v, &mut rng).unwrap()).unwrap();
            }
            let legacy = pipeline
                .reconstruct(&agg.to_counts(), &reconstruction)
                .unwrap()
                .histogram;
            assert_eq!(est.probs(), legacy.probs(), "{}", method.name());
        }
    }
}
