//! `sw-ldp` — estimating numerical distributions under local differential
//! privacy.
//!
//! A from-scratch Rust reproduction of *Li, Wang, Lopuhaä-Zwakenberg,
//! Škorić, Li: "Estimating Numerical Distributions under Local Differential
//! Privacy" (SIGMOD 2020)*: the Square Wave mechanism with EM/EMS
//! reconstruction, the HH-ADMM hierarchical estimator, every baseline the
//! paper compares against, and a harness regenerating every table and
//! figure of its evaluation.
//!
//! This crate is a facade: it re-exports the workspace crates under stable
//! names. Start with [`prelude`] and the `examples/` directory.
//!
//! ```
//! use sw_ldp::prelude::*;
//!
//! // 10k users each hold a private value in [0, 1].
//! let values: Vec<f64> = (0..10_000).map(|i| (i % 100) as f64 / 100.0).collect();
//!
//! // ε = 1, reconstruct a 64-bucket histogram with the paper's defaults
//! // (square wave, MI-optimal bandwidth, EMS).
//! let pipeline = SwPipeline::new(1.0, 64).unwrap();
//! let mut rng = SplitMix64::new(42);
//! let estimate = pipeline.estimate(&values, &Reconstruction::Ems, &mut rng).unwrap();
//! assert!((estimate.mean() - 0.5).abs() < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ldp_cfo as cfo;
pub use ldp_collector as collector;
pub use ldp_core as core_api;
pub use ldp_datasets as datasets;
pub use ldp_experiments as experiments;
pub use ldp_hierarchy as hierarchy;
pub use ldp_mean as mean;
pub use ldp_metrics as metrics;
pub use ldp_numeric as numeric;
pub use ldp_pool as pool;
pub use ldp_sw as sw;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use ldp_cfo::{BinningEstimator, FrequencyOracle, Grr, Hrr, Olh, Oue};
    pub use ldp_core::{Aggregator, Client, CoreError, Domain, Epsilon, Mechanism, WireReport};
    pub use ldp_datasets::{Dataset, DatasetKind, DatasetSpec};
    pub use ldp_experiments::{ExperimentConfig, Method, MethodRunner};
    pub use ldp_hierarchy::{
        hh_admm_histogram, AdmmConfig, HaarHrr, HierarchicalHistogram, TreeShape,
    };
    pub use ldp_mean::{Hybrid, MeanMechanism, MeanVariance, Pm, Sr};
    pub use ldp_metrics::{ks_distance, quantile_mae, range_query_mae, wasserstein};
    pub use ldp_numeric::{ExactSum, Histogram, LinearOperator, SplitMix64};
    pub use ldp_sw::{
        optimal_b, BandedBaselineOperator, DiscreteSw, EmConfig, Reconstruction, SmoothingKernel,
        SwMechanism, SwPipeline, Wave, WaveShape,
    };
}
