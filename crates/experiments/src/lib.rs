//! Experiment harness regenerating every table and figure of the SIGMOD
//! 2020 evaluation (paper §6).
//!
//! - [`methods`] — a uniform adapter over all eight estimation methods
//!   (a thin constructor table over the unified `ldp-core` mechanism API);
//! - [`registry`] — the trait-object streaming runner every method
//!   dispatches through;
//! - [`runner`] — the multi-threaded (method × ε × trial) grid executor
//!   with all seven utility metrics evaluated per trial;
//! - [`figures`] — one function per paper figure (`fig1` … `fig7`) plus
//!   `table2`;
//! - [`config`] — scaling knobs (population scale, repeats, threads) with
//!   paper-scale and smoke presets;
//! - [`report`] — text/CSV rendering of figures.

#![forbid(unsafe_code)]
// `!(x > 0.0)` is used deliberately throughout: unlike `x <= 0.0` it is
// also true for NaN, which is exactly what the validators need to reject.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod ablations;
pub mod config;
pub mod error;
pub mod figures;
pub mod methods;
pub mod registry;
pub mod report;
pub mod runner;

pub use config::ExperimentConfig;
pub use error::ExperimentError;
pub use methods::{run_method, Estimate, Method};
pub use registry::MethodRunner;
pub use report::{Chart, Figure, Series};
pub use runner::{evaluate_trial, parallel_jobs, run_grid, GridResults, TrialMetrics};
