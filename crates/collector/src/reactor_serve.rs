//! The nonblocking serve engine: N epoll reactor threads multiplexing
//! every admitted connection through the resumable protocol machine
//! ([`crate::machine`]), feeding the same absorber/snapshot pipeline as
//! the thread-per-connection engine — plus the multi-window session
//! router ([`crate::server::serve_routed`]).
//!
//! # Shape
//!
//! ```text
//!             ┌ reactor thread 0 ── epoll ── conns… ┐
//!  acceptor ──┤ reactor thread 1 ── epoll ── conns… ├─┬─ default absorber ── spool ── writer
//!  (admission,│ …                                   │ ├─ window "hourly"   ── spool ── writer
//!   quota,    └ reactor thread N ── epoll ── conns… ┘ └─ window "coarse"   ── spool ── writer
//!   backoff)
//! ```
//!
//! The acceptor admits exactly like the threaded engine (permit pool,
//! quota sheds, `admission`/`accept` failpoints, EMFILE backoff) and
//! deals admitted sockets round-robin to the reactor threads' mailboxes.
//! Each reactor thread owns an epoll instance, a [`Slab`] of
//! connections, and a [`TimerWheel`] for idle/ack-deadline/shutdown
//! deadlines; each connection owns a [`Machine`] that turns bytes into
//! [`Action`]s. Commits cross to the per-window absorber over the same
//! byte-budgeted queue the threaded engine uses — nonblockingly
//! (`try_reserve` / `try_push_reserved`), with the connection **parked**
//! when the queue pushes back and retried when the absorber signals
//! progress. The absorber answers through a [`Done`] callback that posts
//! to the owning reactor's mailbox and wakes its epoll.
//!
//! Exactly-once semantics, the failpoint schedule, overload defenses,
//! and every counter are shared with the threaded engine — the chaos,
//! overload, and stress suites run identically under both.

use crate::error::CollectorError;
use crate::faults;
use crate::machine::MachineEnd;
use crate::machine::{Action, CommitDone, CommitRequest, Machine, MachineConfig};
use crate::protocol;
use crate::server::{
    absorb_commit, is_fd_exhaustion, panic_message, run_writer, shed_at_accept, AbsorberShared,
    Commit, CommitReply, Done, ServeOptions, ServeSummary, SnapshotPolicy, WindowRoute,
    ACCEPT_BACKOFF_CAP, ACCEPT_TICK, READ_TICK, SHUTDOWN_GRACE_TICKS,
};
use crate::session::{BatchDecoder, CollectorSession};
use ldp_core::snapshot::SnapshotSpool;
use ldp_pool::chan::{bounded, bounded_weighted, Receiver, Sender};
use ldp_reactor::{Events, Interest, Poller, Slab, TimerWheel, Waker};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Timer kinds on the per-thread [`TimerWheel`].
const K_IDLE: u32 = 0;
const K_WRITE: u32 = 1;
const K_GRACE: u32 = 2;

/// Per-connection read chunk. Large enough that a busy peer drains in
/// few syscalls, small enough that one connection cannot monopolize a
/// reactor tick.
const READ_CHUNK: usize = 16 * 1024;

/// How long a mid-frame connection may stall after shutdown is raised
/// before it is dropped — the reactor's analogue of the threaded
/// engine's bounded read ticks.
fn shutdown_grace() -> Duration {
    READ_TICK * SHUTDOWN_GRACE_TICKS
}

/// A reactor thread's inbox: the acceptor posts admitted sockets, the
/// absorbers post commit completions, and both wake the epoll so the
/// thread reacts immediately instead of on its next tick.
struct Mailbox {
    streams: Mutex<Vec<TcpStream>>,
    completions: Mutex<Vec<(u64, Option<CommitReply>)>>,
    waker: Arc<Waker>,
}

impl Mailbox {
    fn post_stream(&self, stream: TcpStream) {
        self.streams.lock().expect("mailbox lock").push(stream);
        self.waker.wake();
    }

    fn post_completion(&self, token: u64, reply: Option<CommitReply>) {
        self.completions
            .lock()
            .expect("mailbox lock")
            .push((token, reply));
        self.waker.wake();
    }
}

/// Why a connection is leaving the slab — the reactor's `SessionEnd`.
enum Close {
    Completed,
    Shutdown,
    PeerClosed,
    Idle,
    Evicted,
    Failed(CollectorError),
}

/// A connection paused on pipeline backpressure, retried every time the
/// thread wakes (the absorbers wake all reactors on progress).
enum Parked {
    /// `Action::Reserve` found the byte budget exhausted.
    Budget { window: usize, bytes: usize },
    /// A commit found its queue's count slots full. `weight > 0` means
    /// the value carries a byte reservation (a batch); the reservation
    /// stays with us until the push lands or the connection dies.
    Push {
        window: usize,
        commit: Commit,
        weight: usize,
    },
}

/// One multiplexed connection.
struct Conn {
    stream: TcpStream,
    machine: Machine,
    /// The machine's pending action queue (also its scratch buffer —
    /// resolving one action may emit more).
    actions: Vec<Action>,
    /// Bytes read from the socket the machine has not consumed yet.
    pending_in: Vec<u8>,
    /// Bytes queued to the peer, flushed before anything else happens.
    out: Vec<u8>,
    out_pos: usize,
    parked: Option<Parked>,
    /// A commit is in flight; the machine is paused until its
    /// completion posts back.
    awaiting: bool,
    eof_seen: bool,
    /// The machine ended; close with this reason once `out` drains.
    closing: Option<Close>,
    write_timer_armed: bool,
    grace_armed: bool,
}

/// Everything one reactor thread needs, mostly borrowed from
/// [`serve_reactor`]'s stack.
struct ReactorShared<'a> {
    machine_cfg: MachineConfig,
    decoders: Vec<Arc<dyn BatchDecoder>>,
    commit_txs: Vec<Sender<Commit>>,
    permit_tx: Sender<()>,
    mailbox: Arc<Mailbox>,
    shutdown: Arc<AtomicBool>,
    accepting_done: &'a AtomicBool,
    idle_timeout: Option<Duration>,
    ack_deadline: Option<Duration>,
    completed: &'a AtomicU64,
    failed: &'a AtomicU64,
    idle_disconnects: &'a AtomicU64,
    evictions: &'a AtomicU64,
    rate_sheds: &'a AtomicU64,
    oversized: &'a AtomicU64,
    last_error: &'a Mutex<Option<String>>,
    reactor_error: &'a Mutex<Option<CollectorError>>,
}

impl ReactorShared<'_> {
    fn note_session_error(&self, msg: String) {
        *self.last_error.lock().expect("last error lock") = Some(msg);
    }
}

/// The reactor engine behind [`crate::server::serve_routed`]. Window 0
/// is the default (the `session`/`policy` arguments); each
/// [`WindowRoute`] adds a named window with its own absorber, spool,
/// and snapshot writer.
pub(crate) fn serve_reactor(
    listener: &TcpListener,
    session: &mut dyn CollectorSession,
    policy: &SnapshotPolicy,
    options: &ServeOptions,
    windows: &mut [WindowRoute],
) -> Result<ServeSummary, CollectorError> {
    let mut names: Vec<String> = vec!["default".to_string()];
    for route in windows.iter() {
        if !protocol::valid_session_id(&route.name) {
            return Err(CollectorError::Spec(format!(
                "window name {:?} must be 1-128 ASCII letters, digits, '.', '_', or '-'",
                route.name
            )));
        }
        if names.iter().any(|n| n == &route.name) {
            return Err(CollectorError::Spec(format!(
                "window {:?} is declared twice",
                route.name
            )));
        }
        names.push(route.name.clone());
    }
    let n_windows = names.len();
    let start_counts: Vec<u64> = std::iter::once(session.count())
        .chain(windows.iter().map(|w| w.session.count()))
        .collect();
    let decoders: Vec<Arc<dyn BatchDecoder>> = std::iter::once(session.batch_decoder())
        .chain(windows.iter().map(|w| w.session.batch_decoder()))
        .collect();
    let policies: Vec<SnapshotPolicy> = std::iter::once(policy.clone())
        .chain(windows.iter().map(|w| w.policy.clone()))
        .collect();
    let machine_cfg = MachineConfig {
        max_frame_bytes: options.max_frame_bytes,
        rate: (options.max_rps_per_conn > 0.0).then_some(options.max_rps_per_conn),
        windows: names.clone(),
    };

    let max_connections = options.max_connections.max(1);
    let mut commit_txs: Vec<Sender<Commit>> = Vec::with_capacity(n_windows);
    let mut commit_rxs: Vec<Receiver<Commit>> = Vec::with_capacity(n_windows);
    for _ in 0..n_windows {
        let (tx, rx) =
            bounded_weighted::<Commit>(options.queue_depth.max(1), options.memory_budget_bytes);
        commit_txs.push(tx);
        commit_rxs.push(rx);
    }
    let (permit_tx, permit_rx) = bounded::<()>(max_connections);
    for _ in 0..max_connections {
        permit_tx
            .push(())
            .expect("filling a fresh permit channel cannot fail");
    }

    let spools: Vec<SnapshotSpool> = (0..n_windows).map(|_| SnapshotSpool::new()).collect();
    let absorbed_totals: Vec<AtomicU64> = start_counts.iter().map(|&c| AtomicU64::new(c)).collect();
    let window_peaks: Vec<AtomicU64> = (0..n_windows).map(|_| AtomicU64::new(0)).collect();

    let accepted = AtomicU64::new(0);
    let completed = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let duplicates = AtomicU64::new(0);
    let resumed = AtomicU64::new(0);
    let idle_disconnects = AtomicU64::new(0);
    let admission_sheds = AtomicU64::new(0);
    let quota_sheds = AtomicU64::new(0);
    let rate_sheds = AtomicU64::new(0);
    let oversized_frames = AtomicU64::new(0);
    let evictions = AtomicU64::new(0);
    let accept_errors = AtomicU64::new(0);
    let supervisor_restarts = AtomicU64::new(0);
    let accepting_done = AtomicBool::new(false);
    let faults_before = faults::injected();
    let last_session_error: Mutex<Option<String>> = Mutex::new(None);
    let writer_error: Mutex<Option<CollectorError>> = Mutex::new(None);
    let accept_error: Mutex<Option<CollectorError>> = Mutex::new(None);
    let reactor_error: Mutex<Option<CollectorError>> = Mutex::new(None);
    let absorber_panic: Mutex<Option<String>> = Mutex::new(None);

    let reactor_threads = if options.reactor_threads > 0 {
        options.reactor_threads
    } else {
        ldp_pool::configured_threads()
    }
    .max(1);
    let mut pollers: Vec<Poller> = Vec::with_capacity(reactor_threads);
    let mut mailboxes: Vec<Arc<Mailbox>> = Vec::with_capacity(reactor_threads);
    for _ in 0..reactor_threads {
        let poller = Poller::new().map_err(|e| CollectorError::Io(format!("epoll: {e}")))?;
        mailboxes.push(Arc::new(Mailbox {
            streams: Mutex::new(Vec::new()),
            completions: Mutex::new(Vec::new()),
            waker: poller.waker(),
        }));
        pollers.push(poller);
    }

    listener
        .set_nonblocking(true)
        .map_err(|e| CollectorError::Io(format!("set_nonblocking: {e}")))?;

    let scope_result = ldp_pool::service_scope(|scope| {
        // Snapshot writers: one per window, all reporting into the same
        // error slot (any one giving up raises shutdown for the whole
        // serve — a window that can no longer persist should wind the
        // fleet down, not keep acking).
        for i in 0..n_windows {
            let spool = &spools[i];
            let window_policy = &policies[i];
            let writer_error_ref = &writer_error;
            let writer_shutdown = Arc::clone(&options.shutdown);
            let restarts_ref = &supervisor_restarts;
            scope.spawn("snapshot-writer", move || {
                run_writer(
                    spool,
                    window_policy,
                    writer_error_ref,
                    &writer_shutdown,
                    restarts_ref,
                );
            });
        }

        // The acceptor: admission is byte-for-byte the threaded
        // engine's (permits, quota, `admission`/`accept` faults, fd
        // exhaustion backoff); admitted sockets go nonblocking and are
        // dealt round-robin to the reactor mailboxes.
        {
            let shutdown = Arc::clone(&options.shutdown);
            let accepted_ref = &accepted;
            let admission_sheds_ref = &admission_sheds;
            let quota_sheds_ref = &quota_sheds;
            let accept_errors_ref = &accept_errors;
            let accept_error_ref = &accept_error;
            let accepting_done_ref = &accepting_done;
            let absorbed_ref = &absorbed_totals;
            let mailboxes_ref = &mailboxes;
            let failed_ref = &failed;
            let last_error_ref = &last_session_error;
            let session_limit = options.connections;
            let report_quota = options.report_quota;
            let busy_retry = options.busy_retry;
            scope.spawn("acceptor", move || {
                let mut permit_held = false;
                let mut accept_backoff = ACCEPT_TICK;
                let mut next_thread = 0usize;
                loop {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    if session_limit > 0 && accepted_ref.load(Ordering::SeqCst) >= session_limit {
                        break;
                    }
                    let quota_met = report_quota > 0
                        && absorbed_ref
                            .iter()
                            .map(|a| a.load(Ordering::SeqCst))
                            .sum::<u64>()
                            >= report_quota;
                    if !permit_held && !quota_met {
                        permit_held = permit_rx.try_pop().is_some();
                    }
                    if faults::hit("accept").is_some() {
                        accept_errors_ref.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(accept_backoff);
                        accept_backoff = (accept_backoff * 2).min(ACCEPT_BACKOFF_CAP);
                        continue;
                    }
                    match listener.accept() {
                        Ok((stream, _addr)) => {
                            accept_backoff = ACCEPT_TICK;
                            if quota_met {
                                let _ = stream.set_nonblocking(false);
                                quota_sheds_ref.fetch_add(1, Ordering::SeqCst);
                                shed_at_accept(stream, busy_retry);
                                continue;
                            }
                            if !permit_held {
                                let _ = stream.set_nonblocking(false);
                                admission_sheds_ref.fetch_add(1, Ordering::SeqCst);
                                shed_at_accept(stream, busy_retry);
                                continue;
                            }
                            if faults::hit("admission").is_some() {
                                let _ = stream.set_nonblocking(false);
                                admission_sheds_ref.fetch_add(1, Ordering::SeqCst);
                                shed_at_accept(stream, busy_retry);
                                continue;
                            }
                            if let Err(e) = stream.set_nonblocking(true) {
                                failed_ref.fetch_add(1, Ordering::SeqCst);
                                *last_error_ref.lock().expect("last error lock") =
                                    Some(format!("set_nonblocking: {e}"));
                                continue;
                            }
                            permit_held = false;
                            accepted_ref.fetch_add(1, Ordering::SeqCst);
                            mailboxes_ref[next_thread].post_stream(stream);
                            next_thread = (next_thread + 1) % mailboxes_ref.len();
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            std::thread::sleep(ACCEPT_TICK);
                        }
                        Err(e) if e.kind() == ErrorKind::Interrupted => {}
                        Err(e) if is_fd_exhaustion(&e) => {
                            accept_errors_ref.fetch_add(1, Ordering::SeqCst);
                            std::thread::sleep(accept_backoff);
                            accept_backoff = (accept_backoff * 2).min(ACCEPT_BACKOFF_CAP);
                        }
                        Err(e) => {
                            *accept_error_ref.lock().expect("accept error lock") =
                                Some(CollectorError::Io(format!("accept: {e}")));
                            break;
                        }
                    }
                }
                accepting_done_ref.store(true, Ordering::SeqCst);
                for mailbox in mailboxes_ref {
                    mailbox.waker.wake();
                }
            });
        }

        // The reactor threads.
        for (poller, mailbox) in pollers.drain(..).zip(mailboxes.iter()) {
            let shared = ReactorShared {
                machine_cfg: machine_cfg.clone(),
                decoders: decoders.clone(),
                commit_txs: commit_txs.iter().map(Clone::clone).collect(),
                permit_tx: permit_tx.clone(),
                mailbox: Arc::clone(mailbox),
                shutdown: Arc::clone(&options.shutdown),
                accepting_done: &accepting_done,
                idle_timeout: options.idle_timeout,
                ack_deadline: options.ack_deadline,
                completed: &completed,
                failed: &failed,
                idle_disconnects: &idle_disconnects,
                evictions: &evictions,
                rate_sheds: &rate_sheds,
                oversized: &oversized_frames,
                last_error: &last_session_error,
                reactor_error: &reactor_error,
            };
            scope.spawn("reactor", move || run_reactor(poller, shared));
        }
        // The originals go now: once every reactor thread exits, the
        // queues disconnect and the absorbers below drain out.
        drop(commit_txs);
        drop(permit_tx);

        // Absorbers for the routed windows, each under the supervisor's
        // catch_unwind (first panic wins the report; any panic
        // quiesces the whole serve).
        let mut rx_iter = commit_rxs.drain(..);
        let default_rx = rx_iter.next().expect("window 0 always exists");
        for (i, (route, rx)) in windows.iter_mut().zip(rx_iter).enumerate() {
            let widx = i + 1;
            let window_policy = &policies[widx];
            let spool = &spools[widx];
            let duplicates_ref = &duplicates;
            let resumed_ref = &resumed;
            let absorbed_ref = &absorbed_totals[widx];
            let peak_ref = &window_peaks[widx];
            let absorber_panic_ref = &absorber_panic;
            let shutdown = Arc::clone(&options.shutdown);
            let mailboxes_ref = &mailboxes;
            let window_session = &mut route.session;
            scope.spawn("absorber", move || {
                let shared = AbsorberShared {
                    policy: window_policy,
                    spool,
                    duplicates: duplicates_ref,
                    resumed: resumed_ref,
                    absorbed_total: absorbed_ref,
                };
                let run = std::panic::AssertUnwindSafe(|| {
                    while let Some(commit) = rx.pop() {
                        absorb_commit(window_session.as_mut(), &shared, commit);
                        for mailbox in mailboxes_ref {
                            mailbox.waker.wake();
                        }
                    }
                });
                if let Err(panic) = std::panic::catch_unwind(run) {
                    let mut slot = absorber_panic_ref.lock().expect("absorber panic lock");
                    if slot.is_none() {
                        *slot = Some(panic_message(panic.as_ref()));
                    }
                    drop(slot);
                    shutdown.store(true, Ordering::SeqCst);
                    for mailbox in mailboxes_ref {
                        mailbox.waker.wake();
                    }
                }
                peak_ref.store(rx.peak_bytes() as u64, Ordering::SeqCst);
                drop(rx);
                spool.close();
            });
        }

        // The default window's absorber runs here, on the scope's own
        // thread — the single owner of `session`, exactly like the
        // threaded engine.
        let shared = AbsorberShared {
            policy: &policies[0],
            spool: &spools[0],
            duplicates: &duplicates,
            resumed: &resumed,
            absorbed_total: &absorbed_totals[0],
        };
        let absorber = std::panic::AssertUnwindSafe(|| {
            while let Some(commit) = default_rx.pop() {
                absorb_commit(session, &shared, commit);
                for mailbox in &mailboxes {
                    mailbox.waker.wake();
                }
            }
        });
        if let Err(panic) = std::panic::catch_unwind(absorber) {
            let mut slot = absorber_panic.lock().expect("absorber panic lock");
            if slot.is_none() {
                *slot = Some(panic_message(panic.as_ref()));
            }
            drop(slot);
            options.shutdown.store(true, Ordering::SeqCst);
            for mailbox in &mailboxes {
                mailbox.waker.wake();
            }
        }
        window_peaks[0].store(default_rx.peak_bytes() as u64, Ordering::SeqCst);
        drop(default_rx);
        spools[0].close();
    });

    let _ = listener.set_nonblocking(false);
    // Final durable snapshots for every window, attempted on every exit
    // path; the first failure is the one reported.
    let mut final_snapshot = policy.apply(session, session.count(), true);
    for (i, route) in windows.iter().enumerate() {
        let applied = policies[i + 1].apply(route.session.as_ref(), route.session.count(), true);
        if final_snapshot.is_ok() {
            final_snapshot = applied;
        }
    }
    scope_result.map_err(|e| CollectorError::Io(format!("serve service failure: {e}")))?;
    if let Some(msg) = absorber_panic.into_inner().expect("absorber panic lock") {
        final_snapshot?;
        return Err(CollectorError::Panicked(format!("absorber: {msg}")));
    }
    if let Some(e) = accept_error.into_inner().expect("accept error lock") {
        return Err(e);
    }
    if let Some(e) = reactor_error.into_inner().expect("reactor error lock") {
        return Err(e);
    }
    if let Some(e) = writer_error.into_inner().expect("writer error lock") {
        return Err(e);
    }
    final_snapshot?;
    let window_counts: Vec<u64> = std::iter::once(session.count())
        .chain(windows.iter().map(|w| w.session.count()))
        .collect();
    let reports: u64 = window_counts
        .iter()
        .zip(&start_counts)
        .map(|(now, start)| now - start)
        .sum();
    let window_reports = if windows.is_empty() {
        Vec::new()
    } else {
        names
            .iter()
            .cloned()
            .zip(
                window_counts
                    .iter()
                    .zip(&start_counts)
                    .map(|(now, start)| now - start),
            )
            .collect()
    };
    Ok(ServeSummary {
        accepted: accepted.into_inner(),
        completed: completed.into_inner(),
        failed: failed.into_inner(),
        reports,
        snapshots_superseded: spools.iter().map(SnapshotSpool::superseded).sum(),
        duplicates_suppressed: duplicates.into_inner(),
        sessions_resumed: resumed.into_inner(),
        idle_disconnects: idle_disconnects.into_inner(),
        admission_sheds: admission_sheds.into_inner(),
        quota_sheds: quota_sheds.into_inner(),
        rate_sheds: rate_sheds.into_inner(),
        oversized_frames: oversized_frames.into_inner(),
        evictions: evictions.into_inner(),
        supervisor_restarts: supervisor_restarts.into_inner(),
        peak_queue_bytes: window_peaks
            .iter()
            .map(|p| p.load(Ordering::SeqCst))
            .max()
            .unwrap_or(0),
        accept_errors: accept_errors.into_inner(),
        faults_injected: faults::injected() - faults_before,
        window_reports,
        last_session_error: last_session_error.into_inner().expect("last error lock"),
    })
}

/// One reactor thread: wait on epoll, drain the mailbox, pump
/// connections, fire timers, and wind down once accepting is over and
/// the slab is empty.
fn run_reactor(poller: Poller, shared: ReactorShared<'_>) {
    let mut events = Events::with_capacity(256);
    let mut slab: Slab<Conn> = Slab::new();
    let mut timers = TimerWheel::new();
    loop {
        let now = Instant::now();
        let mut timeout = READ_TICK;
        if let Some(deadline) = timers.next_deadline() {
            timeout = timeout.min(deadline.saturating_duration_since(now));
        }
        if let Err(e) = poller.wait(&mut events, Some(timeout)) {
            let mut slot = shared.reactor_error.lock().expect("reactor error lock");
            if slot.is_none() {
                *slot = Some(CollectorError::Io(format!("epoll wait: {e}")));
            }
            drop(slot);
            shared.shutdown.store(true, Ordering::SeqCst);
            return;
        }

        // Admitted sockets: register, start the machine (which fires the
        // `frame-read` failpoint, like the blocking reader's first
        // attempt), and pump.
        let new_streams: Vec<TcpStream> =
            std::mem::take(&mut *shared.mailbox.streams.lock().expect("mailbox lock"));
        for stream in new_streams {
            let machine = Machine::new(shared.machine_cfg.clone(), Instant::now());
            let token = slab.insert(Conn {
                stream,
                machine,
                actions: Vec::new(),
                pending_in: Vec::new(),
                out: Vec::new(),
                out_pos: 0,
                parked: None,
                awaiting: false,
                eof_seen: false,
                closing: None,
                write_timer_armed: false,
                grace_armed: false,
            });
            let registered = {
                let conn = slab.get_mut(token).expect("just inserted");
                poller.add(&conn.stream, token, Interest::edge_rw())
            };
            if let Err(e) = registered {
                slab.remove(token);
                shared.failed.fetch_add(1, Ordering::SeqCst);
                shared.note_session_error(format!("epoll add: {e}"));
                let _ = shared.permit_tx.push(());
                continue;
            }
            if let Some(idle) = shared.idle_timeout {
                timers.set(token, K_IDLE, Instant::now() + idle);
            }
            {
                let conn = slab.get_mut(token).expect("just inserted");
                conn.machine.start(&mut conn.actions);
                if let Some(close) = apply_actions(conn, token, &shared) {
                    conn.closing = Some(close);
                }
            }
            pump(token, &mut slab, &mut timers, &poller, &shared);
        }

        // Commit completions from the absorbers. The slab's generation
        // check discards completions for connections that died while
        // their commit was in flight.
        let completions: Vec<(u64, Option<CommitReply>)> =
            std::mem::take(&mut *shared.mailbox.completions.lock().expect("mailbox lock"));
        for (token, reply) in completions {
            let found = {
                let Some(conn) = slab.get_mut(token) else {
                    continue;
                };
                conn.awaiting = false;
                match reply {
                    Some(CommitReply::Hello(resume)) => conn.machine.commit_done(
                        CommitDone::Hello {
                            cursor: resume.cursor,
                        },
                        &mut conn.actions,
                    ),
                    Some(CommitReply::Batch(result)) => conn
                        .machine
                        .commit_done(CommitDone::Batch(result.map(|_| ())), &mut conn.actions),
                    Some(CommitReply::Flush(result)) => conn
                        .machine
                        .commit_done(CommitDone::Flush(result), &mut conn.actions),
                    None => conn.machine.absorber_gone(&mut conn.actions),
                }
                if let Some(close) = apply_actions(conn, token, &shared) {
                    conn.closing = Some(close);
                }
                true
            };
            if found {
                pump(token, &mut slab, &mut timers, &poller, &shared);
            }
        }

        // Socket readiness.
        for event in ldp_reactor::ready_events(&events) {
            pump(event.token, &mut slab, &mut timers, &poller, &shared);
        }

        // Backpressure retries: the absorbers wake every reactor on
        // progress, and the tick bounds the wait otherwise.
        for token in slab.tokens() {
            let is_parked = slab.get(token).is_some_and(|c| c.parked.is_some());
            if is_parked {
                pump(token, &mut slab, &mut timers, &poller, &shared);
            }
        }

        // Deadlines.
        let now = Instant::now();
        while let Some((token, kind)) = timers.pop_due(now) {
            enum Verdict {
                Nothing,
                Close(Close),
                Rearm(Duration),
            }
            let verdict = {
                let Some(conn) = slab.get_mut(token) else {
                    continue;
                };
                match kind {
                    K_IDLE => {
                        let idle_now = conn.machine.at_boundary()
                            && !conn.awaiting
                            && conn.parked.is_none()
                            && conn.closing.is_none()
                            && conn.pending_in.is_empty()
                            && conn.out_pos >= conn.out.len();
                        if idle_now {
                            Verdict::Close(Close::Idle)
                        } else if let Some(idle) = shared.idle_timeout {
                            // Mid-frame or mid-commit stalls are
                            // backpressure, not idleness (blocking-path
                            // parity).
                            Verdict::Rearm(idle)
                        } else {
                            Verdict::Nothing
                        }
                    }
                    K_WRITE => {
                        conn.write_timer_armed = false;
                        if conn.out_pos < conn.out.len() {
                            // A slow consumer: the committed state
                            // stands, exactly like a blocked ack write
                            // past the deadline. A session that already
                            // failed keeps its own reason.
                            match conn.closing.take() {
                                Some(close @ Close::Failed(_))
                                | Some(close @ Close::PeerClosed) => Verdict::Close(close),
                                _ => Verdict::Close(Close::Evicted),
                            }
                        } else {
                            Verdict::Nothing
                        }
                    }
                    K_GRACE => {
                        conn.grace_armed = false;
                        if conn.closing.is_none() && conn.machine.mid_frame() {
                            Verdict::Close(Close::Failed(CollectorError::Protocol(
                                "peer stalled mid-frame during shutdown".into(),
                            )))
                        } else if shared.shutdown.load(Ordering::SeqCst) && !conn.machine.is_ended()
                        {
                            conn.grace_armed = true;
                            Verdict::Rearm(shutdown_grace())
                        } else {
                            Verdict::Nothing
                        }
                    }
                    _ => Verdict::Nothing,
                }
            };
            match verdict {
                Verdict::Nothing => {}
                Verdict::Close(close) => {
                    close_conn(token, close, &mut slab, &mut timers, &poller, &shared);
                }
                Verdict::Rearm(after) => timers.set(token, kind, now + after),
            }
        }

        // Shutdown: close every between-frames connection now, give the
        // mid-frame ones a bounded grace to finish their frame.
        if shared.shutdown.load(Ordering::SeqCst) {
            for token in slab.tokens() {
                pump(token, &mut slab, &mut timers, &poller, &shared);
                if let Some(conn) = slab.get_mut(token) {
                    if !conn.grace_armed {
                        conn.grace_armed = true;
                        timers.set(token, K_GRACE, Instant::now() + shutdown_grace());
                    }
                }
            }
        }

        // Done when no more connections can arrive and none are left.
        // (`accepting_done` is set before the acceptor's last wake, so
        // reading it first makes the mailbox check authoritative.)
        if shared.accepting_done.load(Ordering::SeqCst)
            && slab.is_empty()
            && shared
                .mailbox
                .streams
                .lock()
                .expect("mailbox lock")
                .is_empty()
            && shared
                .mailbox
                .completions
                .lock()
                .expect("mailbox lock")
                .is_empty()
        {
            return;
        }
    }
}

/// Drives one connection as far as it can go right now, closing it if
/// its session ended.
fn pump(
    token: u64,
    slab: &mut Slab<Conn>,
    timers: &mut TimerWheel,
    poller: &Poller,
    shared: &ReactorShared<'_>,
) {
    let close = {
        let Some(conn) = slab.get_mut(token) else {
            return;
        };
        drive(conn, token, timers, shared)
    };
    if let Some(close) = close {
        close_conn(token, close, slab, timers, poller, shared);
    }
}

/// The per-connection state machine driver: flush output, resolve
/// backpressure, feed buffered bytes to the machine, read more, handle
/// EOF — until the connection blocks, pauses on a commit, or ends.
fn drive(
    conn: &mut Conn,
    token: u64,
    timers: &mut TimerWheel,
    shared: &ReactorShared<'_>,
) -> Option<Close> {
    loop {
        let now = Instant::now();
        // Output first: acks precede further reads, like the blocking
        // handler's write-then-read order.
        while conn.out_pos < conn.out.len() {
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => {
                    return Some(Close::Failed(CollectorError::Io(
                        "writing ack: connection closed".into(),
                    )))
                }
                Ok(n) => {
                    conn.out_pos += n;
                    // Progress resets the slow-consumer clock, like a
                    // blocking write timeout does.
                    if conn.write_timer_armed {
                        timers.clear(token, K_WRITE);
                        conn.write_timer_armed = false;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    if let Some(deadline) = shared.ack_deadline {
                        if !conn.write_timer_armed {
                            timers.set(token, K_WRITE, now + deadline);
                            conn.write_timer_armed = true;
                        }
                    }
                    return None;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => {
                    return Some(Close::Failed(CollectorError::Io(format!(
                        "writing ack: {e}"
                    ))))
                }
            }
        }
        if conn.out_pos > 0 {
            conn.out.clear();
            conn.out_pos = 0;
            if conn.write_timer_armed {
                timers.clear(token, K_WRITE);
                conn.write_timer_armed = false;
            }
        }

        // An ended session leaves once its last bytes are out.
        if let Some(close) = conn.closing.take() {
            return Some(close);
        }

        // Shutdown is honored between frames, like the blocking
        // handler's check between reads.
        if shared.shutdown.load(Ordering::SeqCst)
            && conn.machine.at_boundary()
            && !conn.awaiting
            && conn.parked.is_none()
        {
            return Some(Close::Shutdown);
        }

        // Parked backpressure: retry now, stay parked on no progress.
        if let Some(parked) = conn.parked.take() {
            match parked {
                Parked::Budget { window, bytes } => {
                    match shared.commit_txs[window].try_reserve(bytes) {
                        Ok(true) => conn.machine.budget_granted(),
                        Ok(false) => {
                            conn.parked = Some(Parked::Budget { window, bytes });
                            return None;
                        }
                        Err(_) => {
                            conn.machine.absorber_gone(&mut conn.actions);
                            if let Some(close) = apply_actions(conn, token, shared) {
                                conn.closing = Some(close);
                            }
                            continue;
                        }
                    }
                }
                Parked::Push {
                    window,
                    commit,
                    weight,
                } => {
                    let result = if weight > 0 {
                        shared.commit_txs[window].try_push_reserved(commit, weight)
                    } else {
                        shared.commit_txs[window].try_push(commit)
                    };
                    match result {
                        Ok(()) => {}
                        Err(e) if e.full => {
                            conn.parked = Some(Parked::Push {
                                window,
                                commit: e.value,
                                weight,
                            });
                            return None;
                        }
                        // Receiver gone: dropping the commit fires its
                        // `Done` with `None`; the completion resolves
                        // this connection on the next drain.
                        Err(_) => return None,
                    }
                }
            }
        }

        // Feed what we have buffered.
        if !conn.awaiting
            && conn.parked.is_none()
            && !conn.machine.is_ended()
            && !conn.pending_in.is_empty()
        {
            let decoder = Arc::clone(&shared.decoders[conn.machine.window()]);
            let consumed =
                conn.machine
                    .on_bytes(&conn.pending_in, now, decoder.as_ref(), &mut conn.actions);
            conn.pending_in.drain(..consumed);
            let had_actions = !conn.actions.is_empty();
            if let Some(close) = apply_actions(conn, token, shared) {
                conn.closing = Some(close);
                continue;
            }
            if consumed > 0 || had_actions {
                continue;
            }
        }

        // Read until the socket would block (edge-triggered: we must
        // drain it whenever we are able to consume).
        if !conn.awaiting
            && conn.parked.is_none()
            && !conn.machine.is_ended()
            && !conn.eof_seen
            && conn.pending_in.is_empty()
        {
            let mut buf = [0u8; READ_CHUNK];
            match conn.stream.read(&mut buf) {
                Ok(0) => conn.eof_seen = true,
                Ok(n) => {
                    conn.pending_in.extend_from_slice(&buf[..n]);
                    if let Some(idle) = shared.idle_timeout {
                        timers.set(token, K_IDLE, now + idle);
                    }
                    if conn.grace_armed {
                        timers.set(token, K_GRACE, now + shutdown_grace());
                    }
                    continue;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return None,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => {
                    return Some(Close::Failed(CollectorError::Io(format!(
                        "reading frame: {e}"
                    ))))
                }
            }
        }

        // EOF is delivered only once everything read has been consumed
        // and nothing is pending — exactly what the blocking reader saw.
        if conn.eof_seen
            && conn.pending_in.is_empty()
            && !conn.awaiting
            && conn.parked.is_none()
            && !conn.machine.is_ended()
        {
            conn.machine.on_eof(&mut conn.actions);
            if let Some(close) = apply_actions(conn, token, shared) {
                conn.closing = Some(close);
                continue;
            }
        }

        return None;
    }
}

/// Resolves the machine's queued actions. Returns the close reason if
/// the session ended. Resolving one action (a granted budget, a gone
/// absorber) may make the machine emit more — the outer loop drains
/// until quiescent.
fn apply_actions(conn: &mut Conn, token: u64, shared: &ReactorShared<'_>) -> Option<Close> {
    let mut close = None;
    while !conn.actions.is_empty() {
        for action in std::mem::take(&mut conn.actions) {
            match action {
                Action::Send(bytes) => conn.out.extend_from_slice(&bytes),
                Action::Reserve { window, bytes } => {
                    match shared.commit_txs[window].try_reserve(bytes) {
                        Ok(true) => conn.machine.budget_granted(),
                        Ok(false) => conn.parked = Some(Parked::Budget { window, bytes }),
                        Err(_) => conn.machine.absorber_gone(&mut conn.actions),
                    }
                }
                Action::Release { window, bytes } => shared.commit_txs[window].unreserve(bytes),
                Action::Commit(request) => {
                    conn.awaiting = true;
                    let mailbox = Arc::clone(&shared.mailbox);
                    let done = Done::new(move |reply| mailbox.post_completion(token, reply));
                    let (window, commit, weight) = match request {
                        CommitRequest::Hello { window, session } => {
                            (window, Commit::Hello { session, done }, 0)
                        }
                        CommitRequest::Batch {
                            window,
                            batch,
                            seq,
                            weight,
                        } => (window, Commit::Batch { batch, seq, done }, weight),
                        CommitRequest::Flush { window, sequenced } => {
                            (window, Commit::Flush { sequenced, done }, 0)
                        }
                    };
                    let result = if weight > 0 {
                        shared.commit_txs[window].try_push_reserved(commit, weight)
                    } else {
                        shared.commit_txs[window].try_push(commit)
                    };
                    match result {
                        Ok(()) => {}
                        Err(e) if e.full => {
                            conn.parked = Some(Parked::Push {
                                window,
                                commit: e.value,
                                weight,
                            })
                        }
                        // Receiver gone: the dropped commit's `Done`
                        // posts a `None` completion that fails this
                        // connection through the normal path.
                        Err(_) => {}
                    }
                }
                Action::RateShed => {
                    shared.rate_sheds.fetch_add(1, Ordering::SeqCst);
                }
                Action::Oversized => {
                    shared.oversized.fetch_add(1, Ordering::SeqCst);
                }
                Action::End(end) => {
                    close = Some(match end {
                        MachineEnd::Completed => Close::Completed,
                        MachineEnd::Evicted => Close::Evicted,
                        MachineEnd::PeerClosed => Close::PeerClosed,
                        MachineEnd::Failed(e) => Close::Failed(e),
                    });
                }
            }
        }
    }
    close
}

/// Removes a connection: timers cleared, charges released, the last
/// bytes flushed best-effort (a `-` on a failed session, like the
/// blocking path's fire-and-forget reject ack), counters updated, the
/// admission permit returned.
fn close_conn(
    token: u64,
    close: Close,
    slab: &mut Slab<Conn>,
    timers: &mut TimerWheel,
    poller: &Poller,
    shared: &ReactorShared<'_>,
) {
    let Some(mut conn) = slab.remove(token) else {
        return;
    };
    timers.clear(token, K_IDLE);
    timers.clear(token, K_WRITE);
    timers.clear(token, K_GRACE);
    let _ = poller.delete(&conn.stream);
    if let Some((window, bytes)) = conn.machine.take_charge() {
        shared.commit_txs[window].unreserve(bytes);
    }
    if let Some(Parked::Push {
        window,
        commit,
        weight,
    }) = conn.parked.take()
    {
        // The commit's `Done` posts a completion for a token the slab
        // no longer knows — discarded by the generation check.
        drop(commit);
        if weight > 0 {
            shared.commit_txs[window].unreserve(weight);
        }
    }
    if conn.out_pos < conn.out.len() {
        let _ = conn.stream.write(&conn.out[conn.out_pos..]);
    }
    match close {
        Close::Completed => {
            shared.completed.fetch_add(1, Ordering::SeqCst);
        }
        Close::Shutdown => {}
        Close::PeerClosed => {
            shared.failed.fetch_add(1, Ordering::SeqCst);
            shared.note_session_error("peer closed without an end-of-stream frame".into());
        }
        Close::Idle => {
            shared.idle_disconnects.fetch_add(1, Ordering::SeqCst);
            shared.note_session_error("peer idled past --idle-timeout between frames".into());
        }
        Close::Evicted => {
            shared.evictions.fetch_add(1, Ordering::SeqCst);
            shared.note_session_error(
                "slow consumer evicted past --ack-deadline (committed state stands)".into(),
            );
        }
        Close::Failed(e) => {
            shared.failed.fetch_add(1, Ordering::SeqCst);
            shared.note_session_error(e.to_string());
        }
    }
    let _ = shared.permit_tx.push(());
}
