//! The `ldp-collector` binary: a collection window as a process.
//!
//! ```text
//! ldp-collector gen      --mechanism SPEC --n N [--seed S] [--out FILE]
//! ldp-collector ingest   --mechanism SPEC [--input FILE] [--snapshot FILE]
//!                        [--snapshot-every N] [--resume] [--max-reports K]
//!                        [--finalize]
//! ldp-collector merge    --mechanism SPEC --out FILE SNAP [SNAP…]
//! ldp-collector finalize --mechanism SPEC --snapshot FILE
//! ldp-collector inspect  SNAP [SNAP…]
//! ldp-collector specs
//! ldp-collector serve    --mechanism SPEC --listen ADDR [--snapshot FILE]
//!                        [--snapshot-every N] [--keep N] [--max-connections K]
//!                        [--connections N] [--queue-depth Q] [--idle-timeout MS]
//!                        [--max-frame-bytes B] [--max-rps-per-conn R]
//!                        [--memory-budget-bytes B] [--report-quota N]
//!                        [--busy-retry-ms MS] [--ack-deadline-ms MS]
//!                        [--shutdown-file PATH] [--reactor-threads N]
//!                        [--window NAME=SPEC]... [--summary-json PATH]
//!                        [--threads-per-conn] [--serial] [--finalize]
//! ```
//!
//! See `docs/OPERATIONS.md` for the operator's guide and worked examples
//! of every subcommand.

use ldp_collector::io::{read_to_string, write_snapshot_atomic};
use ldp_collector::registry::{build_session, MECHANISMS};
use ldp_collector::server::{
    serve_once_capped, serve_routed, summary_json, ServeOptions, SnapshotPolicy, WindowRoute,
    DEFAULT_MAX_FRAME_BYTES,
};
use ldp_collector::session::{ingest_lines, CollectorSession};
use ldp_collector::CollectorError;
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ldp-collector: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), CollectorError> {
    // Deterministic fault injection for crash drills (no-op unless the
    // LDP_FAULTS environment variable is set; see docs/OPERATIONS.md §6).
    ldp_collector::faults::install_from_env()?;
    let Some((cmd, rest)) = args.split_first() else {
        print_help();
        return Ok(());
    };
    match cmd.as_str() {
        "gen" => cmd_gen(rest),
        "ingest" => cmd_ingest(rest),
        "merge" => cmd_merge(rest),
        "finalize" => cmd_finalize(rest),
        "inspect" => cmd_inspect(rest),
        "specs" => cmd_specs(rest),
        "serve" => cmd_serve(rest),
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => Err(CollectorError::Spec(format!(
            "unknown subcommand {other:?} (run `ldp-collector help`)"
        ))),
    }
}

fn print_help() {
    println!("ldp-collector — crash-recoverable LDP collection over the wire format");
    println!();
    println!("subcommands:");
    println!("  gen      --mechanism SPEC --n N [--seed S] [--out FILE]");
    println!("           simulate N clients; write one wire-report line each");
    println!("  ingest   --mechanism SPEC [--input FILE] [--snapshot FILE]");
    println!("           [--snapshot-every N] [--resume] [--max-reports K] [--finalize]");
    println!("           absorb report lines (stdin when --input is absent)");
    println!("  merge    --mechanism SPEC --out FILE SNAP [SNAP...]");
    println!("           exact multi-shard merge of parallel collectors' snapshots");
    println!("  finalize --mechanism SPEC --snapshot FILE");
    println!("           print the estimate for a snapshotted window");
    println!("  inspect  SNAP [SNAP...]");
    println!("           print snapshot headers (no mechanism needed)");
    println!("  specs    list every mechanism spec name with its parameters");
    println!("  serve    --mechanism SPEC --listen ADDR [--snapshot FILE]");
    println!("           [--snapshot-every N] [--keep N] [--max-connections K]");
    println!("           [--connections N] [--queue-depth Q] [--idle-timeout MS]");
    println!("           [--max-frame-bytes B] [--max-rps-per-conn R]");
    println!("           [--memory-budget-bytes B] [--report-quota N]");
    println!("           [--busy-retry-ms MS] [--ack-deadline-ms MS]");
    println!("           [--shutdown-file PATH] [--reactor-threads N]");
    println!("           [--window NAME=SPEC]... [--summary-json PATH]");
    println!("           [--threads-per-conn] [--serial] [--finalize]");
    println!("           concurrent length-delimited TCP ingestion");
    println!();
    println!("mechanism specs (name:key=value,...):");
    for (name, params) in MECHANISMS {
        println!("  {name:<12} {params}");
    }
    println!();
    println!("Paper legends (SW-EMS, CFO-binning-16, ...) are accepted as names.");
    println!("Docs: docs/OPERATIONS.md, docs/WIRE_FORMAT.md, docs/ARCHITECTURE.md.");
}

/// Minimal flag parser: `--key value` pairs plus positional arguments.
struct Flags {
    pairs: Vec<(String, String)>,
    bools: Vec<String>,
    positional: Vec<String>,
}

impl Flags {
    fn parse(args: &[String], bool_flags: &[&str]) -> Result<Flags, CollectorError> {
        let mut pairs = Vec::new();
        let mut bools = Vec::new();
        let mut positional = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if bool_flags.contains(&name) {
                    bools.push(name.to_string());
                } else {
                    let value = it.next().ok_or_else(|| {
                        CollectorError::Spec(format!("--{name} requires a value"))
                    })?;
                    pairs.push((name.to_string(), value.clone()));
                }
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Flags {
            pairs,
            bools,
            positional,
        })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Every occurrence of a repeatable flag (`--window a=.. --window b=..`),
    /// in the order given.
    fn get_all(&self, name: &str) -> Vec<&str> {
        self.pairs
            .iter()
            .filter(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    fn require(&self, name: &str) -> Result<&str, CollectorError> {
        self.get(name)
            .ok_or_else(|| CollectorError::Spec(format!("missing required flag --{name}")))
    }

    fn has(&self, name: &str) -> bool {
        self.bools.iter().any(|b| b == name)
    }

    fn u64_or(&self, name: &str, default: u64) -> Result<u64, CollectorError> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| {
                CollectorError::Spec(format!("cannot parse --{name} {raw:?} as an integer"))
            }),
        }
    }

    fn f64_or(&self, name: &str, default: f64) -> Result<f64, CollectorError> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| {
                CollectorError::Spec(format!("cannot parse --{name} {raw:?} as a number"))
            }),
        }
    }
}

fn session_for(flags: &Flags) -> Result<Box<dyn CollectorSession>, CollectorError> {
    build_session(flags.require("mechanism")?)
}

fn cmd_gen(args: &[String]) -> Result<(), CollectorError> {
    let flags = Flags::parse(args, &[])?;
    let session = session_for(&flags)?;
    let n = flags.u64_or("n", 0)?;
    if n == 0 {
        return Err(CollectorError::Spec("gen requires --n <reports>".into()));
    }
    let seed = flags.u64_or("seed", 1)?;
    let lines = session.gen_reports(n, seed)?;
    match flags.get("out") {
        Some(path) => write_snapshot_atomic(&PathBuf::from(path), &lines)?,
        None => print!("{lines}"),
    }
    Ok(())
}

fn cmd_ingest(args: &[String]) -> Result<(), CollectorError> {
    let flags = Flags::parse(args, &["resume", "finalize"])?;
    let mut session = session_for(&flags)?;
    let snapshot_path = flags.get("snapshot").map(PathBuf::from);
    let every = flags.u64_or("snapshot-every", 0)?;
    let max_reports = flags.u64_or("max-reports", u64::MAX)?;

    // Recovery: load the snapshot if asked to resume and one exists.
    let resuming = flags.has("resume");
    if resuming {
        let path = snapshot_path
            .as_ref()
            .ok_or_else(|| CollectorError::Spec("--resume requires --snapshot <file>".into()))?;
        if path.exists() {
            session.restore(&read_to_string(path)?)?;
            eprintln!(
                "resumed from {} at {} reports",
                path.display(),
                session.count()
            );
        }
    }

    // Stream the replay log (never materialize it: a window can be far
    // larger than RAM) through the library's one resume implementation,
    // in blocks so the snapshot cadence and the --max-reports crash
    // point apply mid-stream, exactly as against a live feed.
    let reader: Box<dyn BufRead> = match flags.get("input") {
        Some(path) if path != "-" => {
            let file =
                File::open(path).map_err(|e| CollectorError::Io(format!("open {path}: {e}")))?;
            Box::new(BufReader::new(file))
        }
        _ => Box::new(BufReader::new(std::io::stdin())),
    };
    let skip = if resuming { session.count() } else { 0 };
    let block = if every > 0 { every } else { 8_192 };
    let policy = SnapshotPolicy {
        path: snapshot_path.clone(),
        every,
        keep: flags.u64_or("keep", 0)?,
    };
    ingest_lines(
        session.as_mut(),
        reader.lines(),
        skip,
        max_reports,
        block,
        |s, before| policy.apply(s, before, false),
    )?;
    if let Some(path) = &snapshot_path {
        write_snapshot_atomic(path, &session.snapshot_text())?;
    }
    eprintln!("ingested to {} reports total", session.count());
    if flags.has("finalize") {
        print!("{}", session.finalize_text()?);
    }
    Ok(())
}

fn cmd_merge(args: &[String]) -> Result<(), CollectorError> {
    let flags = Flags::parse(args, &["finalize"])?;
    let mut session = session_for(&flags)?;
    let out = PathBuf::from(flags.require("out")?);
    if flags.positional.is_empty() {
        return Err(CollectorError::Spec(
            "merge requires at least one snapshot file".into(),
        ));
    }
    for path in &flags.positional {
        session.merge_snapshot(&read_to_string(&PathBuf::from(path))?)?;
        eprintln!("merged {path} -> {} reports", session.count());
    }
    write_snapshot_atomic(&out, &session.snapshot_text())?;
    if flags.has("finalize") {
        print!("{}", session.finalize_text()?);
    }
    Ok(())
}

fn cmd_finalize(args: &[String]) -> Result<(), CollectorError> {
    let flags = Flags::parse(args, &[])?;
    let mut session = session_for(&flags)?;
    session.restore(&read_to_string(&PathBuf::from(flags.require("snapshot")?))?)?;
    print!("{}", session.finalize_text()?);
    Ok(())
}

fn cmd_inspect(args: &[String]) -> Result<(), CollectorError> {
    let flags = Flags::parse(args, &[])?;
    if flags.positional.is_empty() {
        return Err(CollectorError::Spec(
            "inspect requires at least one snapshot file".into(),
        ));
    }
    for path in &flags.positional {
        let text = read_to_string(&PathBuf::from(path))?;
        let (header, _body) = ldp_core::snapshot::parse_snapshot(&text)?;
        println!("{path}:");
        println!("  version     v{}", header.version);
        println!("  mechanism   {}", header.mechanism);
        println!("  fingerprint {:016x}", header.fingerprint);
        println!("  reports     {}", header.count);
        println!("  body lines  {}", header.body_lines);
        if !header.sessions.is_empty() {
            println!("  sessions    {}", header.sessions.len());
            for (id, cursor) in &header.sessions {
                println!("    {id} cursor {cursor}");
            }
        }
        println!("  checksum    ok");
    }
    Ok(())
}

fn cmd_specs(args: &[String]) -> Result<(), CollectorError> {
    let _ = Flags::parse(args, &[])?;
    for (name, params) in MECHANISMS {
        println!("{name:<12} {params}");
    }
    Ok(())
}

/// Watches for `path` to appear and raises `shutdown` — the portable
/// SIGTERM-equivalent (`touch <path>` from a supervisor or an operator's
/// shell; std has no signal handling and the workspace vendors no libc).
fn spawn_shutdown_watcher(path: PathBuf, shutdown: Arc<AtomicBool>) {
    std::thread::Builder::new()
        .name("ldp-shutdown-watch".into())
        .spawn(move || {
            while !shutdown.load(Ordering::SeqCst) {
                if path.exists() {
                    shutdown.store(true, Ordering::SeqCst);
                    return;
                }
                std::thread::sleep(std::time::Duration::from_millis(200));
            }
        })
        .expect("spawning the shutdown watcher");
}

fn cmd_serve(args: &[String]) -> Result<(), CollectorError> {
    let flags = Flags::parse(args, &["finalize", "resume", "serial", "threads-per-conn"])?;
    let mut session = session_for(&flags)?;
    let snapshot_path = flags.get("snapshot").map(PathBuf::from);
    if flags.has("resume") {
        let path = snapshot_path
            .as_ref()
            .ok_or_else(|| CollectorError::Spec("--resume requires --snapshot <file>".into()))?;
        if path.exists() {
            session.restore(&read_to_string(path)?)?;
            eprintln!(
                "resumed from {} at {} reports",
                path.display(),
                session.count()
            );
        }
    }
    let policy = SnapshotPolicy {
        path: snapshot_path,
        every: flags.u64_or("snapshot-every", 0)?,
        keep: flags.u64_or("keep", 0)?,
    };
    let addr = flags.require("listen")?;
    let listener =
        TcpListener::bind(addr).map_err(|e| CollectorError::Io(format!("bind {addr}: {e}")))?;
    eprintln!(
        "listening on {} for {}",
        listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| addr.to_string()),
        session.mechanism_id()
    );
    let max_frame_bytes =
        flags.u64_or("max-frame-bytes", u64::from(DEFAULT_MAX_FRAME_BYTES))? as u32;
    if flags.has("serial") {
        // The legacy single-session loop, kept for drills and tests.
        let total = serve_once_capped(&listener, session.as_mut(), &policy, max_frame_bytes)?;
        eprintln!("stream ended at {total} reports");
    } else {
        let defaults = ServeOptions::default();
        let options = ServeOptions {
            max_connections: flags.u64_or("max-connections", defaults.max_connections as u64)?
                as usize,
            connections: flags.u64_or("connections", 0)?,
            queue_depth: flags.u64_or("queue-depth", defaults.queue_depth as u64)? as usize,
            shutdown: Arc::new(AtomicBool::new(false)),
            idle_timeout: match flags.u64_or("idle-timeout", 0)? {
                0 => None,
                ms => Some(std::time::Duration::from_millis(ms)),
            },
            max_frame_bytes,
            max_rps_per_conn: flags.f64_or("max-rps-per-conn", 0.0)?,
            memory_budget_bytes: flags.u64_or("memory-budget-bytes", 0)? as usize,
            report_quota: flags.u64_or("report-quota", 0)?,
            busy_retry: std::time::Duration::from_millis(
                flags.u64_or("busy-retry-ms", defaults.busy_retry.as_millis() as u64)?,
            ),
            ack_deadline: match flags.u64_or("ack-deadline-ms", 0)? {
                0 => None,
                ms => Some(std::time::Duration::from_millis(ms)),
            },
            threads_per_conn: flags.has("threads-per-conn"),
            reactor_threads: flags.u64_or("reactor-threads", 0)? as usize,
        };
        // Routed windows: `--window name=spec` each gets its own
        // session, absorber, and snapshot file `<snapshot>.<name>`.
        let mut windows = Vec::new();
        for decl in flags.get_all("window") {
            let (name, spec) = decl.split_once('=').ok_or_else(|| {
                CollectorError::Spec(format!("--window wants name=mechanism-spec, got {decl:?}"))
            })?;
            let window_path = policy.path.as_ref().map(|p| {
                let mut os = p.clone().into_os_string();
                os.push(format!(".{name}"));
                PathBuf::from(os)
            });
            windows.push(WindowRoute {
                name: name.to_string(),
                session: build_session(spec)?,
                policy: SnapshotPolicy {
                    path: window_path,
                    every: policy.every,
                    keep: policy.keep,
                },
            });
        }
        if options.connections == 0 && flags.get("shutdown-file").is_none() {
            eprintln!("serving until killed (no --connections limit or --shutdown-file)");
        }
        if let Some(path) = flags.get("shutdown-file") {
            spawn_shutdown_watcher(PathBuf::from(path), Arc::clone(&options.shutdown));
        }
        let summary = serve_routed(&listener, session.as_mut(), &policy, &options, &mut windows)?;
        if let Some(path) = flags.get("summary-json") {
            std::fs::write(path, summary_json(&summary))
                .map_err(|e| CollectorError::Io(format!("writing {path}: {e}")))?;
        }
        // With routed windows, `session.count()` is only the default
        // window's state; calling it "total" next to the cross-window
        // report count would mislead.
        let scope = if summary.window_reports.is_empty() {
            "total"
        } else {
            "in the default window"
        };
        eprintln!(
            "served {} sessions ({} completed, {} failed): {} reports, {} {scope}",
            summary.accepted,
            summary.completed,
            summary.failed,
            summary.reports,
            session.count()
        );
        for (name, reports) in &summary.window_reports {
            eprintln!("window {name}: {reports} reports");
        }
        if summary.accept_errors > 0 {
            eprintln!(
                "accept: {} transient failures survived with backoff (check ulimit -n)",
                summary.accept_errors
            );
        }
        if summary.sessions_resumed > 0 || summary.duplicates_suppressed > 0 {
            eprintln!(
                "sequenced: {} sessions resumed, {} duplicate frames suppressed",
                summary.sessions_resumed, summary.duplicates_suppressed
            );
        }
        if summary.idle_disconnects > 0 {
            eprintln!(
                "idle: {} peers disconnected past --idle-timeout",
                summary.idle_disconnects
            );
        }
        let sheds = summary.admission_sheds + summary.quota_sheds + summary.rate_sheds;
        if sheds > 0 {
            eprintln!(
                "overload: {} busy sheds ({} admission, {} quota, {} rate)",
                sheds, summary.admission_sheds, summary.quota_sheds, summary.rate_sheds
            );
        }
        if summary.oversized_frames > 0 {
            eprintln!(
                "overload: {} frames rejected over --max-frame-bytes",
                summary.oversized_frames
            );
        }
        if summary.evictions > 0 {
            eprintln!(
                "overload: {} slow consumers evicted past --ack-deadline-ms",
                summary.evictions
            );
        }
        if summary.supervisor_restarts > 0 {
            eprintln!(
                "supervisor: {} snapshot-writer restarts after panics",
                summary.supervisor_restarts
            );
        }
        if summary.peak_queue_bytes > 0 {
            eprintln!(
                "memory: peak pipeline charge {} bytes{}",
                summary.peak_queue_bytes,
                match options.memory_budget_bytes {
                    0 => String::new(),
                    budget => format!(" of --memory-budget-bytes {budget}"),
                }
            );
        }
        if summary.faults_injected > 0 {
            eprintln!("faults: {} injected (LDP_FAULTS)", summary.faults_injected);
        }
        if summary.snapshots_superseded > 0 {
            eprintln!(
                "note: {} cadence snapshots were superseded before hitting disk \
                 (writer lagging; consider a larger --snapshot-every)",
                summary.snapshots_superseded
            );
        }
        if let Some(err) = &summary.last_session_error {
            eprintln!("last session error: {err}");
        }
    }
    if flags.has("finalize") {
        print!("{}", session.finalize_text()?);
    }
    Ok(())
}
