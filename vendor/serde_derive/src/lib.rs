//! Offline stand-in for `serde_derive`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as manifest
//! markers on plain-old-data types; no code path performs actual
//! serialization. These derives therefore accept the same syntax (including
//! `#[serde(...)]` helper attributes) and expand to nothing. Replacing this
//! crate with the real `serde_derive` is a manifest-only change.

#![warn(missing_docs)]

use proc_macro::TokenStream;

/// Marker derive matching `serde_derive::Serialize`; expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Marker derive matching `serde_derive::Deserialize`; expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
