//! Exact transition matrices for wave mechanisms (paper §5.5).
//!
//! The aggregator reconstructs over a discretized domain: the input `[0, 1]`
//! is split into `d` buckets and the output `[-b, 1+b]` into `d̃` buckets.
//! `M ∈ [0,1]^{d̃×d}` holds `M[j][i] = Pr[ṽ ∈ B̃j | v ∈ Bi]` under the
//! assumption that `v` is uniform within its bucket; every column sums
//! to 1. Entries are computed by *exact* integration — the square wave has a
//! closed form via interval-overlap integrals, and the piecewise-linear
//! general waves use Simpson quadrature split at the wave breakpoints
//! (exact for the piecewise-quadratic integrand).

use crate::error::SwError;
use crate::wave::{Wave, WaveShape};
use ldp_numeric::quad::{integral_of_interval_overlap, integrate_with_breakpoints};
use ldp_numeric::Matrix;

/// Builds the `d̃ × d` transition matrix of a continuous wave mechanism
/// ("randomize before bucketize").
pub fn transition_matrix(wave: &Wave, d: usize, d_tilde: usize) -> Result<Matrix, SwError> {
    if d == 0 || d_tilde == 0 {
        return Err(SwError::InvalidParameter(
            "bucket counts must be positive".into(),
        ));
    }
    let in_width = 1.0 / d as f64;
    let out_lo = wave.output_lo();
    let out_width = (wave.output_hi() - wave.output_lo()) / d_tilde as f64;

    let mut m = Matrix::zeros(d_tilde, d);
    match wave.shape() {
        WaveShape::Square => {
            // Closed form: mass = q·|B̃j| + (p − q)·overlap(band, B̃j),
            // averaged over v ∈ Bi.
            let q = wave.q();
            let p = wave.peak();
            let b = wave.b();
            for j in 0..d_tilde {
                let bj_lo = out_lo + j as f64 * out_width;
                let bj_hi = bj_lo + out_width;
                for i in 0..d {
                    let bi_lo = i as f64 * in_width;
                    let bi_hi = bi_lo + in_width;
                    let avg_overlap =
                        integral_of_interval_overlap(bi_lo, bi_hi, b, bj_lo, bj_hi) / in_width;
                    m.set(j, i, q * out_width + (p - q) * avg_overlap);
                }
            }
        }
        _ => {
            let wave_breaks = wave.breakpoints();
            for j in 0..d_tilde {
                let bj_lo = out_lo + j as f64 * out_width;
                let bj_hi = bj_lo + out_width;
                // v-breakpoints where the integrand kinks: bucket edges
                // minus wave breakpoints.
                let mut vbreaks = Vec::with_capacity(2 * wave_breaks.len());
                for &z in &wave_breaks {
                    vbreaks.push(bj_lo - z);
                    vbreaks.push(bj_hi - z);
                }
                for i in 0..d {
                    let bi_lo = i as f64 * in_width;
                    let bi_hi = bi_lo + in_width;
                    let integral = integrate_with_breakpoints(
                        |v| wave.mass_on_interval(v, bj_lo, bj_hi),
                        &vbreaks,
                        bi_lo,
                        bi_hi,
                        1,
                    );
                    m.set(j, i, integral / in_width);
                }
            }
        }
    }
    // Columns integrate to 1 analytically; normalize to erase the last few
    // ulps of quadrature error so EM sees an exactly stochastic matrix.
    m.normalize_columns();
    Ok(m)
}

/// Builds the `(d + 2b) × d` transition matrix of the discrete square wave
/// mechanism ("bucketize before randomize", paper §5.4): output `j`
/// corresponds to input position `j - b`, reported with probability `p` when
/// `|v - (j - b)| ≤ b` and `q` otherwise.
pub fn discrete_transition_matrix(d: usize, b: usize, eps: f64) -> Result<Matrix, SwError> {
    ldp_core::Epsilon::new(eps)?;
    if d < 2 {
        return Err(SwError::InvalidParameter(format!(
            "discrete domain needs at least 2 buckets, got {d}"
        )));
    }
    let e = eps.exp();
    let width = 2 * b + 1;
    let p = e / (width as f64 * e + d as f64 - 1.0);
    let q = 1.0 / (width as f64 * e + d as f64 - 1.0);
    let d_tilde = d + 2 * b;
    let mut m = Matrix::zeros(d_tilde, d);
    for j in 0..d_tilde {
        for i in 0..d {
            // Near iff j ∈ [i, i + 2b].
            let near = j >= i && j <= i + 2 * b;
            m.set(j, i, if near { p } else { q });
        }
    }
    m.normalize_columns();
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wave::WaveShape;
    use ldp_numeric::SplitMix64;

    #[test]
    fn columns_are_stochastic_for_all_shapes() {
        for shape in [
            WaveShape::Square,
            WaveShape::Trapezoid { ratio: 0.4 },
            WaveShape::Triangle,
        ] {
            let wave = Wave::new(shape, 0.25, 1.0).unwrap();
            let m = transition_matrix(&wave, 16, 20).unwrap();
            assert_eq!(m.rows(), 20);
            assert_eq!(m.cols(), 16);
            assert!(m.is_nonnegative());
            for s in m.column_sums() {
                assert!((s - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn square_matrix_matches_monte_carlo() {
        let wave = Wave::square(0.25, 1.0).unwrap();
        let d = 8;
        let d_tilde = 8;
        let m = transition_matrix(&wave, d, d_tilde).unwrap();
        let mut rng = SplitMix64::new(111);
        let n = 600_000;
        let out_lo = wave.output_lo();
        let out_width = (wave.output_hi() - out_lo) / d_tilde as f64;
        // Column for input bucket 2: v uniform in [0.25, 0.375).
        let i = 2;
        let mut counts = vec![0u64; d_tilde];
        for _ in 0..n {
            let v = (i as f64 + rand::Rng::gen::<f64>(&mut rng)) / d as f64;
            let r = wave.randomize(v, &mut rng).unwrap();
            let j = (((r - out_lo) / out_width) as usize).min(d_tilde - 1);
            counts[j] += 1;
        }
        for (j, &c) in counts.iter().enumerate() {
            let got = c as f64 / n as f64;
            let expect = m.get(j, i);
            assert!(
                (got - expect).abs() < 0.005,
                "bucket {j}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn triangle_matrix_matches_monte_carlo() {
        let wave = Wave::new(WaveShape::Triangle, 0.3, 1.5).unwrap();
        let d = 6;
        let d_tilde = 10;
        let m = transition_matrix(&wave, d, d_tilde).unwrap();
        let mut rng = SplitMix64::new(112);
        let n = 600_000;
        let out_lo = wave.output_lo();
        let out_width = (wave.output_hi() - out_lo) / d_tilde as f64;
        let i = 4;
        let mut counts = vec![0u64; d_tilde];
        for _ in 0..n {
            let v = (i as f64 + rand::Rng::gen::<f64>(&mut rng)) / d as f64;
            let r = wave.randomize(v, &mut rng).unwrap();
            let j = (((r - out_lo) / out_width) as usize).min(d_tilde - 1);
            counts[j] += 1;
        }
        for (j, &c) in counts.iter().enumerate() {
            let got = c as f64 / n as f64;
            let expect = m.get(j, i);
            assert!(
                (got - expect).abs() < 0.005,
                "bucket {j}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn uniform_input_maps_to_baseline_plus_band() {
        // For input uniform over [0,1] (all columns averaged), the output
        // density must match q + (p-q)·(band coverage), in particular
        // strictly positive everywhere.
        let wave = Wave::square(0.2, 1.0).unwrap();
        let m = transition_matrix(&wave, 32, 32).unwrap();
        let uniform = vec![1.0 / 32.0; 32];
        let out = m.matvec(&uniform).unwrap();
        assert!(out.iter().all(|&o| o > 0.0));
        assert!((out.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_zero_buckets() {
        let wave = Wave::square(0.25, 1.0).unwrap();
        assert!(transition_matrix(&wave, 0, 8).is_err());
        assert!(transition_matrix(&wave, 8, 0).is_err());
    }

    #[test]
    fn discrete_matrix_shape_and_probabilities() {
        let d = 8;
        let b = 2;
        let eps = 1.0;
        let m = discrete_transition_matrix(d, b, eps).unwrap();
        assert_eq!(m.rows(), 12);
        assert_eq!(m.cols(), 8);
        let e = eps.exp();
        let p = e / (5.0 * e + 7.0);
        let q = 1.0 / (5.0 * e + 7.0);
        // Input 3: near outputs are j in [3, 7].
        for j in 0..12 {
            let expect = if (3..=7).contains(&j) { p } else { q };
            assert!((m.get(j, 3) - expect).abs() < 1e-12, "j={j}");
        }
        for s in m.column_sums() {
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn discrete_matrix_zero_bandwidth_degenerates_to_grr_shape() {
        let m = discrete_transition_matrix(4, 0, 1.0).unwrap();
        assert_eq!(m.rows(), 4);
        // Diagonal entries dominate.
        for i in 0..4 {
            for j in 0..4 {
                if i == j {
                    assert!(m.get(j, i) > m.get((j + 1) % 4, i));
                }
            }
        }
    }

    #[test]
    fn discrete_matrix_validates() {
        assert!(discrete_transition_matrix(1, 2, 1.0).is_err());
        assert!(discrete_transition_matrix(8, 2, -1.0).is_err());
    }
}
