//! Generalized Randomized Response (GRR).
//!
//! The client reports its true value with probability
//! `p = eᵉ / (eᵉ + d - 1)` and any other fixed value with probability
//! `q = 1 / (eᵉ + d - 1)`. The estimator inverts the perturbation:
//! `x̂_v = (C(v)/n - q) / (p - q)` with variance
//! `(d - 2 + eᵉ) / ((eᵉ - 1)² n)` (paper §2.1, eq. 1) — linear in `d`,
//! which is why GRR only wins on small domains.

use crate::error::CfoError;
use crate::oracle::{check_value, FrequencyOracle};
use ldp_core::{Domain, Epsilon};
use rand::Rng;

/// The GRR frequency oracle.
#[derive(Debug, Clone)]
pub struct Grr {
    d: usize,
    eps: f64,
    p: f64,
    q: f64,
}

impl Grr {
    /// Creates a GRR oracle over a domain of size `d` with budget `eps`.
    pub fn new(d: usize, eps: f64) -> Result<Self, CfoError> {
        Domain::new(d)?;
        Epsilon::new(eps)?;
        let e = eps.exp();
        let p = e / (e + d as f64 - 1.0);
        let q = 1.0 / (e + d as f64 - 1.0);
        Ok(Grr { d, eps, p, q })
    }

    /// Probability of reporting the true value.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Probability of reporting any specific other value.
    #[must_use]
    pub fn q(&self) -> f64 {
        self.q
    }

    /// The closed-form per-estimate variance for `n` users (paper eq. 1).
    #[must_use]
    pub fn theoretical_variance(d: usize, eps: f64, n: usize) -> f64 {
        let e = eps.exp();
        (d as f64 - 2.0 + e) / ((e - 1.0) * (e - 1.0) * n as f64)
    }

    /// Debiases raw per-value report counts into frequency estimates — the
    /// single estimator shared by one-shot aggregation and the streaming
    /// [`ldp_core::Aggregator`] state, which is what makes the two paths
    /// bit-identical.
    pub(crate) fn estimate_from_counts(&self, counts: &[u64], n: u64) -> Vec<f64> {
        if n == 0 {
            return vec![0.0; self.d];
        }
        let nf = n as f64;
        counts
            .iter()
            .map(|&c| (c as f64 / nf - self.q) / (self.p - self.q))
            .collect()
    }
}

impl FrequencyOracle for Grr {
    type Report = usize;

    fn domain_size(&self) -> usize {
        self.d
    }

    fn epsilon(&self) -> f64 {
        self.eps
    }

    fn randomize<R: Rng + ?Sized>(&self, value: usize, rng: &mut R) -> Result<usize, CfoError> {
        check_value(value, self.d)?;
        if rng.gen::<f64>() < self.p {
            Ok(value)
        } else {
            // Uniform over the d-1 other values: draw from [0, d-1) and skip
            // the true value.
            let mut other = rng.gen_range(0..self.d - 1);
            if other >= value {
                other += 1;
            }
            Ok(other)
        }
    }

    fn aggregate(&self, reports: &[usize]) -> Vec<f64> {
        let mut counts = vec![0u64; self.d];
        for &r in reports {
            if r < self.d {
                counts[r] += 1;
            }
        }
        self.estimate_from_counts(&counts, reports.len() as u64)
    }

    fn estimate_variance(&self, n: usize) -> f64 {
        Self::theoretical_variance(self.d, self.eps, n.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_numeric::SplitMix64;

    #[test]
    fn construction_validates() {
        assert!(Grr::new(1, 1.0).is_err());
        assert!(Grr::new(4, 0.0).is_err());
        assert!(Grr::new(4, 1.0).is_ok());
    }

    #[test]
    fn probabilities_satisfy_ldp_ratio() {
        let g = Grr::new(10, 1.5).unwrap();
        assert!((g.p() / g.q() - 1.5f64.exp()).abs() < 1e-12);
        // Total probability over the output domain is 1.
        let total = g.p() + (10.0 - 1.0) * g.q();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn randomize_rejects_out_of_domain() {
        let g = Grr::new(4, 1.0).unwrap();
        let mut rng = SplitMix64::new(1);
        assert!(g.randomize(4, &mut rng).is_err());
    }

    #[test]
    fn randomize_never_emits_out_of_domain() {
        let g = Grr::new(5, 0.5).unwrap();
        let mut rng = SplitMix64::new(2);
        for v in 0..5 {
            for _ in 0..1000 {
                let r = g.randomize(v, &mut rng).unwrap();
                assert!(r < 5);
            }
        }
    }

    #[test]
    fn aggregate_is_unbiased_on_skewed_input() {
        let d = 8;
        let g = Grr::new(d, 2.0).unwrap();
        let mut rng = SplitMix64::new(3);
        // 60% value 0, 40% value 5.
        let n = 200_000;
        let values: Vec<usize> = (0..n).map(|i| if i % 5 < 3 { 0 } else { 5 }).collect();
        let est = g.run(&values, &mut rng).unwrap();
        assert!((est[0] - 0.6).abs() < 0.02, "est[0]={}", est[0]);
        assert!((est[5] - 0.4).abs() < 0.02, "est[5]={}", est[5]);
        for (v, &e) in est.iter().enumerate() {
            if v != 0 && v != 5 {
                assert!(e.abs() < 0.02, "est[{v}]={e}");
            }
        }
        // Estimates sum to ~1 by construction of the inverse mapping.
        let sum: f64 = est.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empirical_variance_matches_theory() {
        let d = 4;
        let eps = 1.0;
        let n = 2_000;
        let trials = 300;
        let g = Grr::new(d, eps).unwrap();
        let values = vec![1usize; n];
        let mut errs = Vec::with_capacity(trials);
        for t in 0..trials {
            let mut rng = SplitMix64::new(1000 + t as u64);
            let est = g.run(&values, &mut rng).unwrap();
            errs.push(est[0]); // true frequency of value 0 is 0.
        }
        let emp_var = ldp_numeric::stats::variance(&errs);
        let theory = Grr::theoretical_variance(d, eps, n);
        let ratio = emp_var / theory;
        assert!(
            (0.7..1.3).contains(&ratio),
            "empirical {emp_var} vs theory {theory}"
        );
    }

    #[test]
    fn aggregate_empty_reports_gives_zeros() {
        let g = Grr::new(4, 1.0).unwrap();
        assert_eq!(g.aggregate(&[]), vec![0.0; 4]);
    }

    #[test]
    fn high_epsilon_is_nearly_lossless() {
        let g = Grr::new(4, 20.0).unwrap();
        let mut rng = SplitMix64::new(9);
        let values = vec![2usize; 1000];
        let est = g.run(&values, &mut rng).unwrap();
        assert!((est[2] - 1.0).abs() < 1e-3);
    }
}
