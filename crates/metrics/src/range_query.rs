//! Range-query accuracy (paper §3.2): `R(x, i, α) = P(x, i+α) − P(x, i)`
//! with `i` sampled uniformly from `[0, 1−α]`, reported as mean absolute
//! error over many random queries.
//!
//! HH and HaarHRR produce leaf estimates with negative entries, so the
//! estimate side is expressed as a *signed* leaf vector; valid histograms
//! pass their probabilities directly.

use crate::error::MetricError;
use ldp_numeric::Histogram;
use rand::Rng;

/// Interpolated CDF of a signed leaf vector at `t ∈ [0, 1]`
/// (uniform-within-bucket, like [`Histogram::cdf_at`] but tolerant of
/// negative entries).
#[must_use]
pub fn signed_cdf_at(leaves: &[f64], t: f64) -> f64 {
    if leaves.is_empty() || t <= 0.0 {
        return 0.0;
    }
    if t >= 1.0 {
        return leaves.iter().sum();
    }
    let d = leaves.len() as f64;
    let pos = t * d;
    let i = (pos as usize).min(leaves.len() - 1);
    let frac = pos - i as f64;
    let below: f64 = leaves[..i].iter().sum();
    below + leaves[i] * frac
}

/// Mean absolute error of random range queries of width `alpha`, comparing
/// a true histogram against a signed estimate vector of the same
/// granularity.
pub fn range_query_mae_signed<R: Rng + ?Sized>(
    truth: &Histogram,
    estimate: &[f64],
    alpha: f64,
    queries: usize,
    rng: &mut R,
) -> Result<f64, MetricError> {
    if truth.len() != estimate.len() {
        return Err(MetricError::GranularityMismatch {
            truth: truth.len(),
            estimate: estimate.len(),
        });
    }
    if !(0.0 < alpha && alpha < 1.0) {
        return Err(MetricError::InvalidParameter(format!(
            "range width alpha must be in (0, 1), got {alpha}"
        )));
    }
    if queries == 0 {
        return Err(MetricError::InvalidParameter(
            "need at least one query".into(),
        ));
    }
    let mut total = 0.0;
    for _ in 0..queries {
        let i = rng.gen::<f64>() * (1.0 - alpha);
        let t = truth.cdf_at(i + alpha) - truth.cdf_at(i);
        let e = signed_cdf_at(estimate, i + alpha) - signed_cdf_at(estimate, i);
        total += (t - e).abs();
    }
    Ok(total / queries as f64)
}

/// Mean absolute error of random range queries between two histograms.
pub fn range_query_mae<R: Rng + ?Sized>(
    truth: &Histogram,
    estimate: &Histogram,
    alpha: f64,
    queries: usize,
    rng: &mut R,
) -> Result<f64, MetricError> {
    range_query_mae_signed(truth, estimate.probs(), alpha, queries, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_numeric::SplitMix64;

    fn h(probs: &[f64]) -> Histogram {
        Histogram::from_probs(probs.to_vec()).unwrap()
    }

    #[test]
    fn identical_distributions_have_zero_error() {
        let a = h(&[0.1, 0.4, 0.3, 0.2]);
        let mut rng = SplitMix64::new(171);
        let e = range_query_mae(&a, &a, 0.1, 200, &mut rng).unwrap();
        assert!(e.abs() < 1e-12);
    }

    #[test]
    fn error_scales_with_distribution_gap() {
        let truth = h(&[1.0, 0.0, 0.0, 0.0]);
        let close = h(&[0.9, 0.1, 0.0, 0.0]);
        let far = h(&[0.0, 0.0, 0.0, 1.0]);
        let mut rng = SplitMix64::new(172);
        let e_close = range_query_mae(&truth, &close, 0.4, 500, &mut rng).unwrap();
        let e_far = range_query_mae(&truth, &far, 0.4, 500, &mut rng).unwrap();
        assert!(e_close < e_far, "{e_close} vs {e_far}");
    }

    #[test]
    fn signed_estimates_are_supported() {
        let truth = h(&[0.5, 0.5]);
        let signed = [0.6, -0.1]; // noisy leaf estimates
        let mut rng = SplitMix64::new(173);
        let e = range_query_mae_signed(&truth, &signed, 0.25, 300, &mut rng).unwrap();
        assert!(e.is_finite() && e > 0.0);
    }

    #[test]
    fn signed_cdf_at_matches_histogram_cdf_for_valid_input() {
        let probs = [0.1, 0.2, 0.3, 0.4];
        let hist = h(&probs);
        for &t in &[0.0, 0.13, 0.5, 0.77, 1.0] {
            assert!((signed_cdf_at(&probs, t) - hist.cdf_at(t)).abs() < 1e-12);
        }
    }

    #[test]
    fn parameters_are_validated() {
        let a = h(&[0.5, 0.5]);
        let b = h(&[0.25, 0.25, 0.25, 0.25]);
        let mut rng = SplitMix64::new(174);
        assert!(range_query_mae(&a, &b, 0.1, 10, &mut rng).is_err());
        assert!(range_query_mae(&a, &a, 0.0, 10, &mut rng).is_err());
        assert!(range_query_mae(&a, &a, 1.0, 10, &mut rng).is_err());
        assert!(range_query_mae(&a, &a, 0.1, 0, &mut rng).is_err());
    }

    #[test]
    fn wide_ranges_average_out_local_errors() {
        // A zig-zag estimate has large narrow-range errors but small
        // wide-range errors.
        let truth = h(&[0.25; 8]);
        let zigzag = h(&[0.45, 0.05, 0.45, 0.05, 0.45, 0.05, 0.45, 0.05]);
        let mut rng = SplitMix64::new(175);
        let narrow = range_query_mae(&truth, &zigzag, 0.1, 2000, &mut rng).unwrap();
        let wide = range_query_mae(&truth, &zigzag, 0.4, 2000, &mut rng).unwrap();
        assert!(wide < narrow, "wide {wide} vs narrow {narrow}");
    }
}
