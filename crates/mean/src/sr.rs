//! Stochastic Rounding (SR; Duchi, Jordan & Wainwright, JASA 2018) —
//! paper §2.2.
//!
//! Every user reports one of the two extreme values `-1` or `+1`, with
//! probabilities linear in the private value: with `p = eᵉ/(eᵉ+1)` and
//! `q = 1-p`, the report is `+1` with probability `q + (p-q)(1+v)/2`.
//! Debiasing by `1/(p-q)` makes the per-user report an unbiased estimate of
//! `v`, so the average estimates the population mean.

use crate::error::{check_signed, MeanError};
use ldp_core::Epsilon;
use rand::Rng;

/// The Stochastic Rounding mechanism over the signed domain `[-1, 1]`.
#[derive(Debug, Clone, Copy)]
pub struct Sr {
    eps: f64,
    p: f64,
}

impl Sr {
    /// Creates an SR mechanism with budget `eps`.
    pub fn new(eps: f64) -> Result<Self, MeanError> {
        Epsilon::new(eps)?;
        Ok(Sr {
            eps,
            p: eps.exp() / (eps.exp() + 1.0),
        })
    }

    /// The privacy budget.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.eps
    }

    /// Client side: randomizes `v ∈ [-1, 1]` into `-1` or `+1`.
    pub fn randomize<R: Rng + ?Sized>(&self, v: f64, rng: &mut R) -> Result<f64, MeanError> {
        check_signed(v)?;
        let q = 1.0 - self.p;
        let prob_plus = q + (self.p - q) * (1.0 + v) / 2.0;
        Ok(if rng.gen::<f64>() < prob_plus {
            1.0
        } else {
            -1.0
        })
    }

    /// Debiases one raw report: `ṽ = v' / (p - q)`; `E[ṽ] = v`.
    #[must_use]
    pub fn debias(&self, report: f64) -> f64 {
        report / (2.0 * self.p - 1.0)
    }

    /// Server side: the unbiased mean estimate from raw ±1 reports.
    #[must_use]
    pub fn estimate_mean(&self, reports: &[f64]) -> f64 {
        if reports.is_empty() {
            return 0.0;
        }
        let sum: f64 = reports.iter().map(|&r| self.debias(r)).sum();
        sum / reports.len() as f64
    }

    /// Variance of one debiased report for input `v`:
    /// `1/(p-q)² − v²`.
    #[must_use]
    pub fn report_variance(&self, v: f64) -> f64 {
        let gamma = 2.0 * self.p - 1.0;
        1.0 / (gamma * gamma) - v * v
    }

    /// Full protocol over values in `[-1, 1]`.
    pub fn run<R: Rng + ?Sized>(&self, values: &[f64], rng: &mut R) -> Result<f64, MeanError> {
        let mut sum = 0.0;
        for &v in values {
            sum += self.debias(self.randomize(v, rng)?);
        }
        if values.is_empty() {
            return Ok(0.0);
        }
        Ok(sum / values.len() as f64)
    }
}

/// Maps a value from the dataset domain `[0, 1]` into the mechanism domain
/// `[-1, 1]`.
#[must_use]
pub fn to_signed(v01: f64) -> f64 {
    2.0 * v01 - 1.0
}

/// Maps a mechanism-domain value back to `[0, 1]`.
#[must_use]
pub fn from_signed(v: f64) -> f64 {
    (v + 1.0) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_numeric::SplitMix64;

    #[test]
    fn construction_validates() {
        assert!(Sr::new(1.0).is_ok());
        assert!(Sr::new(0.0).is_err());
        assert!(Sr::new(f64::INFINITY).is_err());
    }

    #[test]
    fn reports_are_extreme_values_only() {
        let sr = Sr::new(1.0).unwrap();
        let mut rng = SplitMix64::new(141);
        for &v in &[-1.0, -0.5, 0.0, 0.5, 1.0] {
            for _ in 0..100 {
                let r = sr.randomize(v, &mut rng).unwrap();
                assert!(r == 1.0 || r == -1.0);
            }
        }
        assert!(sr.randomize(1.5, &mut rng).is_err());
    }

    #[test]
    fn mean_estimate_is_unbiased() {
        let sr = Sr::new(1.0).unwrap();
        let mut rng = SplitMix64::new(142);
        // True mean of the inputs: 0.25.
        let values: Vec<f64> = (0..200_000)
            .map(|i| if i % 2 == 0 { 0.75 } else { -0.25 })
            .collect();
        let est = sr.run(&values, &mut rng).unwrap();
        assert!((est - 0.25).abs() < 0.02, "est {est}");
    }

    #[test]
    fn satisfies_ldp_probability_ratio() {
        // P[+1 | v=1] / P[+1 | v=-1] = p/q = e^eps, the worst case.
        let eps = 1.3f64;
        let p = eps.exp() / (eps.exp() + 1.0);
        let q = 1.0 - p;
        let prob_plus = |v: f64| q + (p - q) * (1.0 + v) / 2.0;
        let ratio = prob_plus(1.0) / prob_plus(-1.0);
        assert!((ratio - eps.exp()).abs() < 1e-9);
    }

    #[test]
    fn debias_inverts_expectation() {
        let sr = Sr::new(2.0).unwrap();
        let p = 2f64.exp() / (2f64.exp() + 1.0);
        let q = 1.0 - p;
        // E[report | v] = (p - q)·v; debias divides by (p - q).
        let v = 0.4;
        let expectation = (prob_plus(p, q, v) - (1.0 - prob_plus(p, q, v))) * 1.0;
        assert!((sr.debias(expectation) - v).abs() < 1e-12);

        fn prob_plus(p: f64, q: f64, v: f64) -> f64 {
            q + (p - q) * (1.0 + v) / 2.0
        }
    }

    #[test]
    fn empirical_variance_matches_formula() {
        let sr = Sr::new(1.0).unwrap();
        let v = 0.3;
        let mut rng = SplitMix64::new(143);
        let n = 200_000;
        let mut sq = 0.0;
        let mut mean = 0.0;
        for _ in 0..n {
            let x = sr.debias(sr.randomize(v, &mut rng).unwrap());
            mean += x;
            sq += x * x;
        }
        mean /= n as f64;
        let var = sq / n as f64 - mean * mean;
        let expect = sr.report_variance(v);
        assert!((var - expect).abs() / expect < 0.05, "{var} vs {expect}");
    }

    #[test]
    fn domain_mapping_roundtrips() {
        for &v in &[0.0, 0.25, 0.5, 1.0] {
            assert!((from_signed(to_signed(v)) - v).abs() < 1e-12);
        }
        assert_eq!(to_signed(0.5), 0.0);
    }

    #[test]
    fn empty_reports_give_zero() {
        let sr = Sr::new(1.0).unwrap();
        assert_eq!(sr.estimate_mean(&[]), 0.0);
    }
}
