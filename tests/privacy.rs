//! Privacy accounting tests: every mechanism's randomization probabilities
//! must respect the ε-LDP bound `Pr[Ψ(v₁) ∈ T] ≤ eᵉ · Pr[Ψ(v₂) ∈ T]`.
//!
//! For the discrete mechanisms the bound is checked empirically over the
//! full output domain; for the continuous ones the density ratio is checked
//! analytically (the densities are known in closed form) plus a Monte-Carlo
//! bucket check.

use sw_ldp::prelude::*;

/// Empirical output distribution of a discrete randomizer.
fn empirical_dist<F: FnMut(usize) -> usize>(
    input: usize,
    out_size: usize,
    trials: usize,
    mut f: F,
) -> Vec<f64> {
    let mut counts = vec![0.0; out_size];
    for _ in 0..trials {
        counts[f(input)] += 1.0;
    }
    for c in &mut counts {
        *c /= trials as f64;
    }
    counts
}

/// Asserts max_j p1[j]/p2[j] ≤ e^eps within sampling tolerance.
fn assert_ldp_bound(p1: &[f64], p2: &[f64], eps: f64, tol: f64) {
    let bound = eps.exp() * (1.0 + tol);
    for (j, (&a, &b)) in p1.iter().zip(p2.iter()).enumerate() {
        if b > 0.005 {
            // only well-estimated cells
            assert!(
                a / b <= bound,
                "ratio {} at output {j} exceeds e^eps = {}",
                a / b,
                eps.exp()
            );
        }
    }
}

#[test]
fn grr_satisfies_ldp_empirically() {
    let eps = 1.0;
    let g = Grr::new(8, eps).unwrap();
    let mut rng = SplitMix64::new(2001);
    let trials = 200_000;
    let p1 = empirical_dist(0, 8, trials, |v| {
        FrequencyOracle::randomize(&g, v, &mut rng).unwrap()
    });
    let p2 = empirical_dist(5, 8, trials, |v| {
        FrequencyOracle::randomize(&g, v, &mut rng).unwrap()
    });
    assert_ldp_bound(&p1, &p2, eps, 0.1);
}

#[test]
fn discrete_sw_satisfies_ldp_empirically() {
    let eps = 1.0;
    let sw = DiscreteSw::with_bandwidth(16, 3, eps).unwrap();
    let mut rng = SplitMix64::new(2002);
    let trials = 300_000;
    let p1 = empirical_dist(0, sw.output_size(), trials, |v| {
        sw.randomize(v, &mut rng).unwrap()
    });
    let p2 = empirical_dist(15, sw.output_size(), trials, |v| {
        sw.randomize(v, &mut rng).unwrap()
    });
    assert_ldp_bound(&p1, &p2, eps, 0.1);
}

#[test]
fn continuous_waves_satisfy_ldp_analytically() {
    // The output density for input v at point t is W(t - v); the LDP ratio
    // between any two inputs at any output point is bounded by
    // max(W)/min(W) = e^eps by construction.
    for eps in [0.5, 1.0, 2.5] {
        for shape in [
            WaveShape::Square,
            WaveShape::Trapezoid { ratio: 0.5 },
            WaveShape::Triangle,
        ] {
            let wave = Wave::new(shape, 0.3, eps).unwrap();
            let grid: Vec<f64> = (0..=200).map(|k| -0.5 + k as f64 * 0.01).collect();
            for &v1 in &[0.0, 0.25, 0.5, 1.0] {
                for &v2 in &[0.0, 0.7, 1.0] {
                    for &t in &grid {
                        let r = wave.density(t - v1) / wave.density(t - v2);
                        assert!(
                            r <= eps.exp() + 1e-9,
                            "shape {shape:?} eps {eps}: ratio {r} at t={t}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn continuous_sw_satisfies_ldp_empirically_via_buckets() {
    let eps = 1.0;
    let wave = Wave::square(0.25, eps).unwrap();
    let mut rng = SplitMix64::new(2003);
    let trials = 400_000;
    let buckets = 30;
    let lo = wave.output_lo();
    let width = (wave.output_hi() - lo) / buckets as f64;
    let mut sample = |v: f64| -> Vec<f64> {
        let mut counts = vec![0.0; buckets];
        for _ in 0..trials {
            let r = wave.randomize(v, &mut rng).unwrap();
            let j = (((r - lo) / width) as usize).min(buckets - 1);
            counts[j] += 1.0;
        }
        for c in &mut counts {
            *c /= trials as f64;
        }
        counts
    };
    let p1 = sample(0.1);
    let p2 = sample(0.9);
    assert_ldp_bound(&p1, &p2, eps, 0.1);
}

#[test]
fn pm_satisfies_ldp_via_buckets() {
    let eps = 1.0;
    let pm = Pm::new(eps).unwrap();
    let mut rng = SplitMix64::new(2004);
    let trials = 400_000;
    let buckets = 24;
    let s = pm.output_bound();
    let width = 2.0 * s / buckets as f64;
    let mut sample = |v: f64| -> Vec<f64> {
        let mut counts = vec![0.0; buckets];
        for _ in 0..trials {
            let r = pm.randomize(v, &mut rng).unwrap();
            let j = (((r + s) / width) as usize).min(buckets - 1);
            counts[j] += 1.0;
        }
        for c in &mut counts {
            *c /= trials as f64;
        }
        counts
    };
    let p1 = sample(-1.0);
    let p2 = sample(1.0);
    assert_ldp_bound(&p1, &p2, eps, 0.12);
}

#[test]
fn sr_satisfies_ldp_exactly() {
    let eps = 1.3;
    let sr = Sr::new(eps).unwrap();
    let mut rng = SplitMix64::new(2005);
    let trials = 300_000;
    // Worst-case inputs are the extremes.
    let mut plus_prob = |v: f64| -> f64 {
        let mut plus = 0.0;
        for _ in 0..trials {
            if sr.randomize(v, &mut rng).unwrap() > 0.0 {
                plus += 1.0;
            }
        }
        plus / trials as f64
    };
    let p1 = plus_prob(1.0);
    let p2 = plus_prob(-1.0);
    assert!(p1 / p2 <= eps.exp() * 1.05);
    assert!((1.0 - p1) > 0.0 && (1.0 - p2) / (1.0 - p1) <= eps.exp() * 1.05);
}

#[test]
fn olh_hashed_reports_satisfy_ldp() {
    // Conditional on the hash seed, OLH is GRR over the hash range; check
    // the report distribution ratio for a fixed seed by brute force over
    // the GRR kernel probabilities.
    let eps = 1.0;
    let o = Olh::new(64, eps).unwrap();
    let g = o.hash_range() as f64;
    let e = eps.exp();
    let p = e / (e + g - 1.0);
    let q = (1.0 - p) / (g - 1.0);
    assert!((p / q - e).abs() < 1e-9);
}
