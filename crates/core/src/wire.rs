//! Exact-round-trip wire encoding for mechanism reports.
//!
//! Reports must cross process boundaries: from user devices to collectors,
//! between collector shards, and into replay logs. This module defines a
//! line-oriented text format — one report per line, space-separated fields
//! — chosen so that decoding reproduces the original report **exactly**
//! (floats are rendered with Rust's shortest-round-trip formatting), which
//! is what lets a replayed stream finalize to the bit-identical estimate.
//!
//! Report structs additionally carry `serde` derives so ecosystem formats
//! (JSON, bincode, …) work once the real `serde` replaces the vendored
//! stub; this hand-rolled format is the workspace's own dependency-free
//! path and the one the round-trip tests exercise.

use crate::error::CoreError;
use std::fmt::Write;

/// A report type with an exact one-line text encoding.
///
/// # Examples
///
/// `f64` reports (SW, PM, SR) round-trip to the exact bit pattern:
///
/// ```
/// use ldp_core::{decode_lines, encode_lines, WireReport};
///
/// let reports = vec![0.1 + 0.2, -0.75, 1.0 / 3.0];
/// let text = encode_lines(&reports);
/// let replayed: Vec<f64> = decode_lines(&text).unwrap();
/// for (a, b) in reports.iter().zip(&replayed) {
///     assert_eq!(a.to_bits(), b.to_bits());
/// }
/// // Malformed lines are rejected, never silently dropped.
/// assert!(decode_lines::<f64>("0.5\noops\n").is_err());
/// ```
pub trait WireReport: Sized {
    /// Appends the encoded report (no trailing newline) to `out`.
    fn encode(&self, out: &mut String);

    /// Decodes one line produced by [`WireReport::encode`].
    fn decode(line: &str) -> Result<Self, CoreError>;
}

/// Encodes a slice of reports as newline-separated lines (with a trailing
/// newline when non-empty).
#[must_use]
pub fn encode_lines<T: WireReport>(reports: &[T]) -> String {
    let mut out = String::new();
    for r in reports {
        r.encode(&mut out);
        out.push('\n');
    }
    out
}

/// Decodes newline-separated report lines; blank lines are skipped.
pub fn decode_lines<T: WireReport>(s: &str) -> Result<Vec<T>, CoreError> {
    let mut reports = Vec::new();
    for line in s.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        reports.push(T::decode(line)?);
    }
    Ok(reports)
}

/// Parses one whitespace-separated field with a uniform error message.
pub fn parse_field<T: std::str::FromStr>(field: &str, what: &str) -> Result<T, CoreError> {
    field
        .parse()
        .map_err(|_| CoreError::Wire(format!("cannot parse {what} from {field:?}")))
}

impl WireReport for f64 {
    fn encode(&self, out: &mut String) {
        // `{}` on f64 is shortest-round-trip: parsing the output recovers
        // the exact bit pattern (NaN payloads excepted, which no mechanism
        // emits).
        let _ = write!(out, "{self}");
    }

    fn decode(line: &str) -> Result<Self, CoreError> {
        parse_field(line, "f64 report")
    }
}

impl WireReport for usize {
    fn encode(&self, out: &mut String) {
        let _ = write!(out, "{self}");
    }

    fn decode(line: &str) -> Result<Self, CoreError> {
        parse_field(line, "usize report")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_round_trips_exactly() {
        let values = [
            0.0,
            -0.0,
            1.0,
            -1.5,
            0.1 + 0.2,
            f64::MIN_POSITIVE,
            1.0 / 3.0,
            -4.9e-324,
            1e308,
        ];
        for &v in &values {
            let mut s = String::new();
            v.encode(&mut s);
            let back = f64::decode(&s).unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "value {v}");
        }
    }

    #[test]
    fn usize_round_trips() {
        for v in [0usize, 1, 63, usize::MAX] {
            let mut s = String::new();
            v.encode(&mut s);
            assert_eq!(usize::decode(&s).unwrap(), v);
        }
    }

    #[test]
    fn lines_round_trip_and_skip_blanks() {
        let reports = vec![0.25f64, -3.5, 1.0 / 7.0];
        let encoded = encode_lines(&reports);
        assert_eq!(encoded.lines().count(), 3);
        let with_blanks = format!("\n{encoded}\n  \n");
        let back: Vec<f64> = decode_lines(&with_blanks).unwrap();
        assert_eq!(back, reports);
    }

    #[test]
    fn malformed_lines_error() {
        assert!(decode_lines::<f64>("not-a-number").is_err());
        assert!(decode_lines::<usize>("-3").is_err());
        assert!(matches!(f64::decode("x").unwrap_err(), CoreError::Wire(_)));
    }

    #[test]
    fn empty_input_decodes_to_empty() {
        assert_eq!(decode_lines::<f64>("").unwrap(), Vec::<f64>::new());
        assert_eq!(encode_lines::<f64>(&[]), "");
    }
}
