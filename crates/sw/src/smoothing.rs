//! Smoothing kernels for the EMS algorithm (paper §5.5).
//!
//! After each M-step, EMS averages every estimate with its neighbours using
//! binomial coefficients — the paper's S-step is the (1, 2, 1)/4 kernel:
//! `x̂ᵢ ← ½x̂ᵢ + ¼(x̂ᵢ₋₁ + x̂ᵢ₊₁)`. At the domain boundary the available
//! weights are renormalized. Wider binomial kernels are provided for the
//! smoothing-strength ablation.

use crate::error::SwError;

/// A symmetric, normalized smoothing kernel of odd width.
#[derive(Debug, Clone, PartialEq)]
pub struct SmoothingKernel {
    weights: Vec<f64>,
}

impl SmoothingKernel {
    /// The paper's kernel: binomial coefficients (1, 2, 1).
    #[must_use]
    pub fn binomial3() -> Self {
        SmoothingKernel {
            weights: vec![1.0, 2.0, 1.0],
        }
    }

    /// A wider binomial kernel (1, 4, 6, 4, 1) for the ablation benches.
    #[must_use]
    pub fn binomial5() -> Self {
        SmoothingKernel {
            weights: vec![1.0, 4.0, 6.0, 4.0, 1.0],
        }
    }

    /// A custom symmetric kernel. Must have odd length, positive entries.
    pub fn custom(weights: Vec<f64>) -> Result<Self, SwError> {
        if weights.is_empty() || weights.len().is_multiple_of(2) {
            return Err(SwError::InvalidParameter(format!(
                "kernel must have odd positive length, got {}",
                weights.len()
            )));
        }
        if weights.iter().any(|&w| !(w > 0.0) || !w.is_finite()) {
            return Err(SwError::InvalidParameter(
                "kernel weights must be positive and finite".into(),
            ));
        }
        let half = weights.len() / 2;
        for k in 0..half {
            if (weights[k] - weights[weights.len() - 1 - k]).abs() > 1e-12 {
                return Err(SwError::InvalidParameter("kernel must be symmetric".into()));
            }
        }
        Ok(SmoothingKernel { weights })
    }

    /// Half-width (number of neighbours on each side).
    #[must_use]
    pub fn radius(&self) -> usize {
        self.weights.len() / 2
    }

    /// The raw (unnormalized) kernel weights.
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Applies the kernel, renormalizing truncated windows at the
    /// boundaries so mass is preserved per-entry before the EM
    /// renormalization.
    #[must_use]
    pub fn smooth(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; x.len()];
        self.smooth_into(x, &mut out);
        out
    }

    /// In-place variant writing into `out` (must have the same length as
    /// `x`); avoids per-iteration allocation in the EMS loop.
    pub fn smooth_into(&self, x: &[f64], out: &mut [f64]) {
        debug_assert_eq!(x.len(), out.len());
        let n = x.len();
        let r = self.radius() as isize;
        for (i, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            let mut wsum = 0.0;
            for (k, &w) in self.weights.iter().enumerate() {
                let idx = i as isize + k as isize - r;
                if idx >= 0 && (idx as usize) < n {
                    acc += w * x[idx as usize];
                    wsum += w;
                }
            }
            *o = acc / wsum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial3_matches_paper_formula_in_interior() {
        let k = SmoothingKernel::binomial3();
        let x = [0.1, 0.4, 0.2, 0.3];
        let y = k.smooth(&x);
        // Interior: ½xᵢ + ¼(xᵢ₋₁ + xᵢ₊₁).
        assert!((y[1] - (0.5 * 0.4 + 0.25 * (0.1 + 0.2))).abs() < 1e-12);
        assert!((y[2] - (0.5 * 0.2 + 0.25 * (0.4 + 0.3))).abs() < 1e-12);
        // Boundary: weights renormalize to (2, 1)/3.
        assert!((y[0] - (2.0 * 0.1 + 0.4) / 3.0).abs() < 1e-12);
        assert!((y[3] - (2.0 * 0.3 + 0.2) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn constant_vectors_are_fixed_points() {
        for k in [SmoothingKernel::binomial3(), SmoothingKernel::binomial5()] {
            let x = vec![0.125; 8];
            let y = k.smooth(&x);
            for &v in &y {
                assert!((v - 0.125).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn smoothing_reduces_total_variation() {
        let k = SmoothingKernel::binomial3();
        let x = [0.0, 1.0, 0.0, 1.0, 0.0, 1.0];
        let y = k.smooth(&x);
        let tv = |v: &[f64]| -> f64 { v.windows(2).map(|w| (w[1] - w[0]).abs()).sum() };
        assert!(tv(&y) < tv(&x));
    }

    #[test]
    fn wider_kernel_smooths_more() {
        let x: Vec<f64> = (0..16).map(|i| if i == 8 { 1.0 } else { 0.0 }).collect();
        let y3 = SmoothingKernel::binomial3().smooth(&x);
        let y5 = SmoothingKernel::binomial5().smooth(&x);
        assert!(y5[8] < y3[8], "peak should flatten more under binomial5");
    }

    #[test]
    fn custom_kernel_validation() {
        assert!(SmoothingKernel::custom(vec![]).is_err());
        assert!(SmoothingKernel::custom(vec![1.0, 2.0]).is_err());
        assert!(SmoothingKernel::custom(vec![1.0, 2.0, 3.0]).is_err());
        assert!(SmoothingKernel::custom(vec![1.0, -2.0, 1.0]).is_err());
        assert!(SmoothingKernel::custom(vec![1.0, 2.0, 1.0]).is_ok());
        assert_eq!(SmoothingKernel::custom(vec![1.0]).unwrap().radius(), 0);
    }

    #[test]
    fn single_bucket_vector_is_unchanged() {
        let k = SmoothingKernel::binomial3();
        assert_eq!(k.smooth(&[1.0]), vec![1.0]);
    }

    #[test]
    fn smoothing_preserves_nonnegativity() {
        let k = SmoothingKernel::binomial5();
        let x = [0.0, 0.9, 0.0, 0.0, 0.1, 0.0];
        assert!(k.smooth(&x).iter().all(|&v| v >= 0.0));
    }
}
