//! Smoke tests for the figure harness: every figure function runs end to
//! end at tiny scale and produces well-formed output.

use sw_ldp::experiments::figures;
use sw_ldp::experiments::ExperimentConfig;

fn smoke() -> ExperimentConfig {
    ExperimentConfig::smoke()
}

#[test]
fn fig1_smoke() {
    let fig = figures::fig1(&smoke()).unwrap();
    assert_eq!(fig.id, "fig1");
    assert!(!fig.charts.is_empty());
    let text = fig.render_text();
    assert!(text.contains("fig1"));
    let csv = fig.render_csv();
    assert!(csv.lines().count() > 10);
}

#[test]
fn fig2_smoke() {
    let fig = figures::fig2(&smoke()).unwrap();
    assert_eq!(fig.charts.len(), 2); // one dataset x {W1, KS}
    for chart in &fig.charts {
        for series in &chart.series {
            for &y in &series.y {
                assert!(y.is_finite() && y >= 0.0, "{}: y={y}", series.label);
            }
        }
    }
}

#[test]
fn fig3_smoke() {
    let fig = figures::fig3(&smoke()).unwrap();
    assert_eq!(fig.charts.len(), 2);
    // HH and HaarHRR must appear in the range-query panels.
    let labels: Vec<&str> = fig.charts[0]
        .series
        .iter()
        .map(|s| s.label.as_str())
        .collect();
    assert!(labels.contains(&"HH"));
    assert!(labels.contains(&"HaarHRR"));
}

#[test]
fn fig4_smoke() {
    let fig = figures::fig4(&smoke()).unwrap();
    assert_eq!(fig.charts.len(), 3); // mean, variance, quantile
    let mean_panel = &fig.charts[0];
    let labels: Vec<&str> = mean_panel.series.iter().map(|s| s.label.as_str()).collect();
    assert!(labels.contains(&"SR"));
    assert!(labels.contains(&"PM"));
    // Quantile panel excludes SR/PM.
    let q_labels: Vec<&str> = fig.charts[2]
        .series
        .iter()
        .map(|s| s.label.as_str())
        .collect();
    assert!(!q_labels.contains(&"SR"));
}

#[test]
fn fig5_smoke() {
    let fig = figures::fig5(&smoke()).unwrap();
    assert_eq!(fig.charts.len(), 1);
    assert_eq!(fig.charts[0].series.len(), 6); // SW + 4 trapezoids + triangle
}

#[test]
fn fig6_smoke() {
    let fig = figures::fig6(&smoke()).unwrap();
    assert_eq!(fig.charts.len(), 4); // eps in {1,2,3,4}
    assert!(fig.notes.iter().any(|n| n.contains("b_SW")));
}

#[test]
fn fig7_smoke() {
    let fig = figures::fig7(&smoke()).unwrap();
    assert_eq!(fig.charts.len(), 1);
    assert_eq!(fig.charts[0].series.len(), 4); // 256..2048 buckets
}

#[test]
fn table2_lists_every_method_family() {
    let t = figures::table2();
    for needle in ["SW with EMS/EM", "HH-ADMM", "CFO binning", "HaarHRR", "PM"] {
        assert!(t.contains(needle), "missing {needle}");
    }
}
