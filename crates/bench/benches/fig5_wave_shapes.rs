//! Figure 5 harness benchmark: one EMS trial per wave shape (square,
//! trapezoid, triangle) at fixed ε and b.

use criterion::{criterion_group, criterion_main, Criterion};
use ldp_bench::{bench_dataset, bench_truth, BENCH_D, BENCH_N};
use ldp_datasets::DatasetKind;
use ldp_metrics::wasserstein;
use ldp_numeric::SplitMix64;
use ldp_sw::{Reconstruction, SwPipeline, Wave, WaveShape};
use std::time::Duration;

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));
    let ds = bench_dataset(DatasetKind::Beta, BENCH_N);
    let truth = bench_truth(&ds, BENCH_D);
    let shapes = [
        ("square", WaveShape::Square),
        ("trapezoid_0.5", WaveShape::Trapezoid { ratio: 0.5 }),
        ("triangle", WaveShape::Triangle),
    ];
    for (name, shape) in shapes {
        group.bench_function(name, |b| {
            let wave = Wave::new(shape, 0.25, 1.0).unwrap();
            let pipeline = SwPipeline::with_wave(wave, BENCH_D, BENCH_D).unwrap();
            let mut seed = 300u64;
            b.iter(|| {
                seed += 1;
                let mut rng = SplitMix64::new(seed);
                let est = pipeline
                    .estimate(&ds.values, &Reconstruction::Ems, &mut rng)
                    .unwrap();
                wasserstein(&truth, &est).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
