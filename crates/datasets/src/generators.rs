//! Synthetic generators for the four evaluation workloads (paper §6.1).
//!
//! `Beta(5, 2)` is exactly the paper's synthetic dataset. The three
//! real-world datasets (NYC taxi pickup times, ACS income, SF retirement)
//! are not redistributable, so each is substituted by a calibrated mixture
//! that reproduces the *shape properties* the paper's evaluation depends on
//! — smooth diurnal structure for taxi, round-number spikiness for income,
//! and a zero spike plus a skewed body for retirement. See DESIGN.md for
//! the substitution rationale.

use ldp_numeric::dist::{Beta, Component, Exponential, LogNormal, Mixture, Normal, Sampler};
use rand::Rng;

/// Samples the paper's synthetic Beta(5, 2) workload on `[0, 1]`.
pub fn beta_5_2<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<f64> {
    let beta = Beta::new(5.0, 2.0).expect("fixed valid parameters");
    (0..n).map(|_| beta.sample(rng)).collect()
}

/// Samples a taxi-pickup-time-like workload on `[0, 1]` (fraction of the
/// day): an overnight trough around 05:00, a morning ridge, sustained
/// midday activity and a broad evening peak — a smooth multi-modal density
/// like Figure 1(b).
pub fn taxi_like<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<f64> {
    let mixture = Mixture::new(vec![
        // Post-midnight activity tailing off (00:00–02:30).
        (
            0.06,
            Component::Normal(Normal::new(0.04, 0.035).expect("valid")),
        ),
        // Morning commute ridge around 08:30.
        (
            0.22,
            Component::Normal(Normal::new(0.35, 0.055).expect("valid")),
        ),
        // Midday plateau.
        (
            0.27,
            Component::Normal(Normal::new(0.55, 0.09).expect("valid")),
        ),
        // Broad evening peak around 19:00.
        (
            0.37,
            Component::Normal(Normal::new(0.79, 0.065).expect("valid")),
        ),
        // Thin uniform background (pickups never stop entirely).
        (0.08, Component::Uniform(0.0, 1.0)),
    ])
    .expect("fixed valid mixture");
    (0..n)
        .map(|_| mixture.sample(rng).clamp(0.0, 1.0 - f64::EPSILON))
        .collect()
}

/// Maximum income retained by the paper's preprocessing: values below
/// 2¹⁹ = 524288 dollars are kept and mapped into `[0, 1]`.
pub const INCOME_CAP: f64 = 524_288.0;

/// Samples an ACS-income-like workload on `[0, 1]`: a lognormal dollar body
/// (median ≈ $45k) with most values *rounded to $1000/$5000/$10000*,
/// reproducing the spiky histogram of Figure 1(c) (the paper: "people are
/// more likely to report $3000 instead of … $3050 or $2980").
pub fn income_like<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<f64> {
    let body = LogNormal::new(10.7, 0.85).expect("fixed valid parameters");
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let raw = body.sample(rng);
        if raw >= INCOME_CAP {
            continue; // paper drops values >= 2^19
        }
        let u: f64 = rng.gen();
        let dollars = if u < 0.45 {
            (raw / 1000.0).round() * 1000.0
        } else if u < 0.70 {
            (raw / 5000.0).round() * 5000.0
        } else if u < 0.85 {
            (raw / 10_000.0).round() * 10_000.0
        } else {
            raw // a minority reports precise values
        };
        out.push((dollars / INCOME_CAP).clamp(0.0, 1.0 - f64::EPSILON));
    }
    out
}

/// Maximum retirement contribution retained by the paper's preprocessing:
/// non-negative values below $60,000 mapped into `[0, 1]`.
pub const RETIREMENT_CAP: f64 = 60_000.0;

/// Samples an SF-retirement-like workload on `[0, 1]`: a mass of zero
/// contributions, an exponential low-value body, and a wide mid-range bump
/// of established employees — the right-skewed shape of Figure 1(d).
pub fn retirement_like<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<f64> {
    let mixture = Mixture::new(vec![
        // Employees with no retirement compensation this period.
        (0.10, Component::Point(0.0)),
        // Low contributions decaying quickly.
        (
            0.45,
            Component::Exponential(Exponential::new(1.0 / 9_000.0).expect("valid")),
        ),
        // Mid-career bump around $22k.
        (
            0.35,
            Component::Normal(Normal::new(22_000.0, 8_000.0).expect("valid")),
        ),
        // Senior plans trailing towards the cap.
        (
            0.10,
            Component::Normal(Normal::new(42_000.0, 9_000.0).expect("valid")),
        ),
    ])
    .expect("fixed valid mixture");
    (0..n)
        .map(|_| {
            let dollars = mixture.sample(rng).clamp(0.0, RETIREMENT_CAP - 1.0);
            dollars / RETIREMENT_CAP
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_numeric::{stats, Histogram, SplitMix64};

    fn tv_against_smooth(values: &[f64], d: usize) -> f64 {
        // Total variation of the bucketized histogram: a proxy for
        // spikiness.
        let h = Histogram::from_samples(values, d).unwrap();
        h.probs().windows(2).map(|w| (w[1] - w[0]).abs()).sum()
    }

    #[test]
    fn all_generators_stay_in_unit_interval() {
        let mut rng = SplitMix64::new(181);
        for values in [
            beta_5_2(20_000, &mut rng),
            taxi_like(20_000, &mut rng),
            income_like(20_000, &mut rng),
            retirement_like(20_000, &mut rng),
        ] {
            assert_eq!(values.len(), 20_000);
            assert!(values.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn beta_matches_theoretical_moments() {
        let mut rng = SplitMix64::new(182);
        let values = beta_5_2(200_000, &mut rng);
        assert!((stats::mean(&values) - 5.0 / 7.0).abs() < 0.005);
        assert!((stats::variance(&values) - 10.0 / 392.0).abs() < 0.002);
    }

    #[test]
    fn taxi_is_multimodal_with_overnight_trough() {
        let mut rng = SplitMix64::new(183);
        let values = taxi_like(300_000, &mut rng);
        let h = Histogram::from_samples(&values, 96).unwrap(); // 15-min bins
                                                               // The 04:00-06:00 trough (buckets 16..24) is far below the evening
                                                               // peak (buckets 72..84).
        let trough: f64 = h.probs()[16..24].iter().sum::<f64>() / 8.0;
        let peak: f64 = h.probs()[72..84].iter().sum::<f64>() / 12.0;
        assert!(peak > 3.0 * trough, "peak {peak} vs trough {trough}");
    }

    #[test]
    fn income_is_spiky_taxi_is_smooth() {
        let mut rng = SplitMix64::new(184);
        let income = income_like(300_000, &mut rng);
        let taxi = taxi_like(300_000, &mut rng);
        let income_tv = tv_against_smooth(&income, 1024);
        let taxi_tv = tv_against_smooth(&taxi, 1024);
        assert!(
            income_tv > 3.0 * taxi_tv,
            "income TV {income_tv} vs taxi TV {taxi_tv}"
        );
    }

    #[test]
    fn income_has_round_number_spikes() {
        let mut rng = SplitMix64::new(185);
        let values = income_like(200_000, &mut rng);
        // Count mass exactly on $10k multiples.
        let on_10k = values
            .iter()
            .filter(|&&v| {
                let dollars = v * INCOME_CAP;
                (dollars / 10_000.0 - (dollars / 10_000.0).round()).abs() < 1e-9
            })
            .count() as f64
            / values.len() as f64;
        assert!(on_10k > 0.1, "mass on $10k multiples: {on_10k}");
    }

    #[test]
    fn retirement_has_zero_spike_and_right_skew() {
        let mut rng = SplitMix64::new(186);
        let values = retirement_like(300_000, &mut rng);
        let zeros = values.iter().filter(|&&v| v == 0.0).count() as f64 / values.len() as f64;
        assert!((0.05..0.2).contains(&zeros), "zero mass {zeros}");
        // Mean well below midpoint: right-skewed.
        assert!(stats::mean(&values) < 0.45);
    }

    #[test]
    fn generators_are_deterministic_given_seed() {
        let mut a = SplitMix64::new(187);
        let mut b = SplitMix64::new(187);
        assert_eq!(income_like(1000, &mut a), income_like(1000, &mut b));
    }
}
