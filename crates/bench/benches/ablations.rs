//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! smoothing kernel width, Norm-Sub vs Norm-Mul, randomize-before-bucketize
//! vs bucketize-before-randomize, and the ADMM iteration budget.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ldp_bench::{bench_dataset, BENCH_N};
use ldp_cfo::postprocess::{norm_mul, norm_sub};
use ldp_datasets::DatasetKind;
use ldp_hierarchy::{hh_admm, AdmmConfig, HierarchicalHistogram};
use ldp_numeric::SplitMix64;
use ldp_sw::{reconstruct, DiscreteSw, EmConfig, Reconstruction, SmoothingKernel, SwPipeline};
use std::time::Duration;

const D: usize = 256;

fn bench_smoothing_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_smoothing");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));

    let ds = bench_dataset(DatasetKind::Beta, BENCH_N);
    let pipeline = SwPipeline::new(1.0, D).unwrap();
    let mut rng = SplitMix64::new(600);
    let reports: Vec<f64> = ds
        .values
        .iter()
        .map(|&v| pipeline.randomize(v, &mut rng).unwrap())
        .collect();
    let counts = pipeline.aggregate(&reports);
    let m = pipeline.transition();

    let configs = [
        ("none_em", EmConfig::em(1.0)),
        ("binomial3_ems", EmConfig::ems()),
        (
            "binomial5_ems",
            EmConfig {
                smoothing: Some(SmoothingKernel::binomial5()),
                ..EmConfig::ems()
            },
        ),
    ];
    for (name, config) in configs {
        group.bench_function(name, |b| {
            b.iter(|| reconstruct(black_box(m), black_box(&counts), &config).unwrap())
        });
    }
    group.finish();
}

fn bench_normalization(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_normalization");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    // A noisy estimate vector with ~30% negative entries.
    let noisy: Vec<f64> = (0..1024)
        .map(|i| ((i * 2654435761u64 as usize) % 1000) as f64 / 1000.0 - 0.3)
        .collect();
    group.bench_function("norm_sub_1024", |b| {
        b.iter(|| norm_sub(black_box(&noisy), 1.0))
    });
    group.bench_function("norm_mul_1024", |b| {
        b.iter(|| norm_mul(black_box(&noisy), 1.0))
    });
    group.finish();
}

fn bench_rb_vs_br(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_rb_vs_br");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));
    let ds = bench_dataset(DatasetKind::Beta, BENCH_N);

    group.bench_function("randomize_before_bucketize", |b| {
        let pipeline = SwPipeline::new(1.0, D).unwrap();
        let mut seed = 700u64;
        b.iter(|| {
            seed += 1;
            let mut rng = SplitMix64::new(seed);
            pipeline
                .estimate(&ds.values, &Reconstruction::Ems, &mut rng)
                .unwrap()
        })
    });

    group.bench_function("bucketize_before_randomize", |b| {
        let sw = DiscreteSw::new(D, 1.0).unwrap();
        let m = sw.transition_matrix().unwrap();
        let buckets = ds.bucket_values(D);
        let mut seed = 800u64;
        b.iter(|| {
            seed += 1;
            let mut rng = SplitMix64::new(seed);
            let reports: Vec<usize> = buckets
                .iter()
                .map(|&v| sw.randomize(v, &mut rng).unwrap())
                .collect();
            let counts = sw.aggregate(&reports).unwrap();
            reconstruct(&m, &counts, &EmConfig::ems()).unwrap()
        })
    });
    group.finish();
}

fn bench_admm_iterations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_admm_iterations");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));
    let ds = bench_dataset(DatasetKind::Income, BENCH_N);
    let buckets = ds.bucket_values(D);
    let hh = HierarchicalHistogram::new(4, D, 1.0).unwrap();
    let mut rng = SplitMix64::new(900);
    let raw = hh.collect(&buckets, &mut rng).unwrap();
    for iters in [50usize, 300] {
        group.bench_function(format!("admm_{iters}_iters"), |b| {
            let config = AdmmConfig {
                max_iterations: iters,
                tolerance: 0.0,
            };
            b.iter(|| hh_admm(hh.shape(), black_box(&raw), config).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_smoothing_kernels,
    bench_normalization,
    bench_rb_vs_br,
    bench_admm_iterations
);
criterion_main!(benches);
