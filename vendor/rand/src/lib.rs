//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate provides the (small) subset of the `rand` 0.8 API the
//! workspace actually uses: [`RngCore`], [`SeedableRng`], the [`Rng`]
//! extension trait with `gen`, `gen_bool`, and `gen_range`, and the
//! [`Error`] type. The generator implementations themselves live in
//! `ldp-numeric` (`SplitMix64`); this crate only defines the trait surface.
//!
//! Swapping in the real `rand` crate requires only replacing the path
//! dependency — the names and signatures match, except for the two bulk
//! extensions [`RngCore::fill_u64_stream`] and [`Rng::fill_unit_f64s`]
//! (draw-order-compatible batch fills that real `rand` has no analogue
//! for), whose callers would need a port.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::fmt;
use core::ops::{Range, RangeInclusive};

/// Error type reported by fallible [`RngCore`] methods.
///
/// The deterministic generators in this workspace never fail, so this is an
/// opaque marker matching `rand::Error`'s role in signatures.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("random number generator failure")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: raw integer output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fills `dest` with random bytes, reporting failure via `Err`.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;

    /// Fills `dest` with exactly the sequence `dest.len()` successive
    /// [`next_u64`](Self::next_u64) calls would produce. Counter-based
    /// generators (ldp-numeric's `SplitMix64`) override this with an
    /// unrolled batched fill; the default loops.
    ///
    /// This is an extension beyond the real `rand` 0.8 API (whose bulk
    /// `fill` paths go through `fill_bytes` and are *not* draw-order
    /// compatible with per-element `gen` calls) — swapping in crates.io
    /// `rand` requires porting callers of this method.
    fn fill_u64_stream(&mut self, dest: &mut [u64]) {
        for d in dest {
            *d = self.next_u64();
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }

    fn fill_u64_stream(&mut self, dest: &mut [u64]) {
        (**self).fill_u64_stream(dest);
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed type, typically a byte array.
    type Seed;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` convenience seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from an [`RngCore`]'s raw output,
/// mirroring `rand`'s `Standard` distribution.
pub trait StandardSample: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Highest bit of the raw output.
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be drawn from uniformly, mirroring `rand`'s
/// `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                // Modulo bias is < 2^-53 for the narrow widths used here.
                self.start + (rng.next_u64() % width) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if width == 0 {
                    // Full-domain u64 range: every output is in range.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % width) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

/// Convenience extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T` (unit interval for floats, full
    /// domain for integers, fair coin for `bool`).
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Fills `dest` with uniform `f64` draws in `[0, 1)`, bit-identical to
    /// calling `gen::<f64>()` per element: each output applies the same
    /// 53-bit mantissa scaling to one raw draw, and the raw draws come from
    /// [`RngCore::fill_u64_stream`] so batched generators accelerate the
    /// loop without changing the stream. Like `fill_u64_stream`, this is an
    /// extension beyond the real `rand` 0.8 API.
    fn fill_unit_f64s(&mut self, dest: &mut [f64]) {
        let mut raw = [0u64; 32];
        for chunk in dest.chunks_mut(32) {
            let raw = &mut raw[..chunk.len()];
            self.fill_u64_stream(raw);
            for (o, &u) in chunk.iter_mut().zip(raw.iter()) {
                *o = (u >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            }
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Counter(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5usize..9);
            assert!((5..9).contains(&v));
            let w = rng.gen_range(1u32..=4);
            assert!((1..=4).contains(&w));
            let x = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bulk_fills_replay_the_serial_draw_order() {
        for n in [0usize, 1, 31, 32, 33, 64, 100] {
            let mut serial = Counter(11);
            let expect_raw: Vec<u64> = (0..n).map(|_| serial.next_u64()).collect();
            let mut bulk = Counter(11);
            let mut raw = vec![0u64; n];
            bulk.fill_u64_stream(&mut raw);
            assert_eq!(raw, expect_raw, "n = {n}");
            assert_eq!(bulk.0, serial.0, "state after fill, n = {n}");

            let mut serial = Counter(12);
            let expect_f: Vec<f64> = (0..n).map(|_| serial.gen::<f64>()).collect();
            let mut bulk = Counter(12);
            let mut out = vec![0.0f64; n];
            bulk.fill_unit_f64s(&mut out);
            for (i, (g, e)) in out.iter().zip(&expect_f).enumerate() {
                assert_eq!(g.to_bits(), e.to_bits(), "n = {n}, draw {i}");
            }
        }
    }

    #[test]
    fn works_through_mut_reference() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = Counter(1);
        let _ = draw(&mut rng);
        let by_ref = &mut rng;
        let _ = draw(by_ref);
    }
}
