//! The unified mechanism API every LDP protocol in this workspace speaks.
//!
//! The paper (Li et al., SIGMOD 2020) compares the Square Wave mechanism
//! against categorical frequency oracles, mean mechanisms, and hierarchical
//! estimators — historically each family grew its own ad-hoc surface. This
//! crate defines the one contract they all implement:
//!
//! - [`params`] — [`Epsilon`] and [`Domain`], the validated newtypes that
//!   centralize the privacy-budget and domain-size checks every mechanism
//!   constructor used to re-implement;
//! - [`mechanism`] — the [`Mechanism`] trait (client-side `randomize`,
//!   server-side streaming state with a one-shot `aggregate` convenience)
//!   plus the [`Client`]/[`Aggregator`] deployment split. An `Aggregator`
//!   is a streaming accumulator: `push`/`push_slice` absorb wire reports
//!   one at a time in O(d̃) state regardless of the population size, and
//!   `merge` combines shards collected on different workers or machines;
//! - [`wire`] — a line-oriented, exact-round-trip text encoding for report
//!   types ([`WireReport`]), so reports can cross process boundaries and be
//!   replayed byte-identically. Report structs additionally carry `serde`
//!   derives for integration with the ecosystem formats;
//! - [`snapshot`] — durable aggregator state: the [`SnapshotState`]
//!   persistence contract every mechanism state implements, plus the
//!   versioned, fingerprint-checked snapshot container that collection
//!   services write for crash recovery and multi-shard merge (see the
//!   `ldp-collector` crate and `docs/OPERATIONS.md`).
//!
//! # Contract
//!
//! For every mechanism, the following invariants hold (and are enforced by
//! the workspace-level conformance suite in `tests/mechanism_conformance.rs`):
//!
//! 1. **Streaming = one-shot.** Pushing reports one at a time through an
//!    [`Aggregator`] and finalizing yields the bit-identical estimate to
//!    [`Mechanism::aggregate`] over the full report slice.
//! 2. **Merge = concatenation.** Splitting a report stream across shard
//!    aggregators and merging them yields the bit-identical estimate to a
//!    single aggregator over the concatenated stream (float-summing
//!    mechanisms achieve this through `ldp_numeric::ExactSum`).
//! 3. **Determinism.** Client randomization is a pure function of the
//!    mechanism configuration, the input, and the RNG stream.
//!
//! # Example
//!
//! ```
//! use ldp_core::{Aggregator, Client, Epsilon, Mechanism};
//! use ldp_numeric::SplitMix64;
//!
//! // A toy mechanism: identity reporting over a two-value domain.
//! #[derive(Clone)]
//! struct Echo;
//! impl Mechanism for Echo {
//!     type Input = usize;
//!     type Report = usize;
//!     type State = [u64; 2];
//!     type Output = Vec<f64>;
//!     fn epsilon(&self) -> Epsilon {
//!         Epsilon::new(f64::MAX).unwrap()
//!     }
//!     fn fingerprint(&self) -> u64 {
//!         0
//!     }
//!     fn randomize<R: rand::Rng + ?Sized>(
//!         &self,
//!         input: &usize,
//!         _rng: &mut R,
//!     ) -> Result<usize, ldp_core::CoreError> {
//!         Ok(*input & 1)
//!     }
//!     fn empty_state(&self) -> [u64; 2] {
//!         [0, 0]
//!     }
//!     fn absorb(&self, state: &mut [u64; 2], report: &usize) -> Result<(), ldp_core::CoreError> {
//!         state[*report] += 1;
//!         Ok(())
//!     }
//!     fn merge_state(&self, state: &mut [u64; 2], other: &[u64; 2]) -> Result<(), ldp_core::CoreError> {
//!         state[0] += other[0];
//!         state[1] += other[1];
//!         Ok(())
//!     }
//!     fn finalize(&self, state: &[u64; 2]) -> Result<Vec<f64>, ldp_core::CoreError> {
//!         let n = (state[0] + state[1]).max(1) as f64;
//!         Ok(vec![state[0] as f64 / n, state[1] as f64 / n])
//!     }
//! }
//!
//! let mech = Echo;
//! let client = Client::new(&mech);
//! let mut agg = Aggregator::new(mech.clone());
//! let mut rng = SplitMix64::new(7);
//! for v in 0..10usize {
//!     let report = client.randomize(&v, &mut rng).unwrap();
//!     agg.push(&report).unwrap();
//! }
//! assert_eq!(agg.count(), 10);
//! assert_eq!(agg.finalize().unwrap(), vec![0.5, 0.5]);
//! ```

#![forbid(unsafe_code)]
// `!(x > 0.0)` is used deliberately throughout: unlike `x <= 0.0` it is
// also true for NaN, which is exactly what the validators need to reject.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod error;
pub mod mechanism;
pub mod params;
pub mod snapshot;
pub mod wire;

pub use error::CoreError;
pub use mechanism::{Aggregator, Client, Mechanism};
pub use params::{Domain, Epsilon};
pub use snapshot::{
    decode_snapshot, decode_snapshot_with_sessions, encode_snapshot, encode_snapshot_with_sessions,
    valid_session_id, SessionCursors, SnapshotHeader, SnapshotState,
};
pub use wire::{decode_lines, encode_lines, WireReport};
