//! Optimized Local Hashing (OLH, Wang et al., USENIX Security 2017).
//!
//! Each user hashes its value into a small domain of size
//! `g = round(eᵉ) + 1` with a per-user random hash function, then applies
//! GRR over the hashed domain. The aggregator counts, for each domain value
//! `v`, how many reports *support* `v` (i.e. `H_j(v) = y_j`) and inverts:
//! `x̂_v = (C(v)/n - 1/g) / (p - 1/g)`. The resulting variance
//! `4eᵉ / ((eᵉ - 1)² n)` does not grow with the domain size, so OLH wins on
//! large domains (paper §2.1).
//!
//! The per-user hash family is seeded SplitMix64 finalizer mixing — pairwise
//! independence across users is what the estimator needs, and each user
//! drawing an independent 64-bit seed provides it.

use crate::error::CfoError;
use crate::oracle::{check_value, FrequencyOracle};
use ldp_core::{Domain, Epsilon};
use ldp_numeric::rng::mix64;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A single OLH report: the user's hash seed and the GRR-perturbed hashed
/// value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OlhReport {
    /// Seed identifying the user's hash function.
    pub seed: u64,
    /// The perturbed hash value in `{0, …, g-1}`.
    pub y: u32,
}

/// The OLH frequency oracle.
#[derive(Debug, Clone)]
pub struct Olh {
    d: usize,
    eps: f64,
    g: usize,
    /// GRR keep-probability over the hashed domain.
    p: f64,
}

/// Evaluates the OLH hash family: maps `value` into `{0, …, g-1}` under
/// hash function `seed`.
#[inline]
#[must_use]
pub fn olh_hash(seed: u64, value: usize, g: usize) -> u32 {
    (mix64(seed ^ mix64(value as u64)) % g as u64) as u32
}

impl Olh {
    /// Creates an OLH oracle with the variance-optimal hash range
    /// `g = round(eᵉ) + 1`.
    pub fn new(d: usize, eps: f64) -> Result<Self, CfoError> {
        Domain::new(d)?;
        Epsilon::new(eps)?;
        let g = ((eps.exp()).round() as usize + 1).max(2);
        Self::with_hash_range(d, eps, g)
    }

    /// Creates an OLH oracle with an explicit hash range `g >= 2`
    /// (exposed for the ablation benches).
    pub fn with_hash_range(d: usize, eps: f64, g: usize) -> Result<Self, CfoError> {
        Domain::new(d)?;
        Epsilon::new(eps)?;
        if g < 2 {
            return Err(CfoError::InvalidParameter(format!(
                "hash range g must be at least 2, got {g}"
            )));
        }
        let e = eps.exp();
        let p = e / (e + g as f64 - 1.0);
        Ok(Olh { d, eps, g, p })
    }

    /// The hash range g.
    #[must_use]
    pub fn hash_range(&self) -> usize {
        self.g
    }

    /// The closed-form per-estimate variance for `n` users (paper §2.1).
    #[must_use]
    pub fn theoretical_variance(eps: f64, n: usize) -> f64 {
        let e = eps.exp();
        4.0 * e / ((e - 1.0) * (e - 1.0) * n as f64)
    }

    /// Adds one report's support pattern to per-value support counts — the
    /// O(d) inversion step shared by one-shot aggregation and streaming
    /// absorption.
    pub(crate) fn add_support(&self, support: &mut [u64], report: &OlhReport) {
        for (v, s) in support.iter_mut().enumerate() {
            if olh_hash(report.seed, v, self.g) == report.y {
                *s += 1;
            }
        }
    }

    /// Bulk [`Olh::add_support`]: hoists the report-independent inner hash
    /// `mix64(v)` out of the per-report scan (it is recomputed `d` times
    /// per report on the serial path) and runs a 4-wide branch-free
    /// unrolled match loop. Exact u64 additions in the same per-report
    /// order — bit-identical to serial absorption.
    pub(crate) fn add_support_slice(&self, support: &mut [u64], reports: &[OlhReport]) {
        let value_mix: Vec<u64> = (0..support.len()).map(|v| mix64(v as u64)).collect();
        let g = self.g as u64;
        for report in reports {
            let seed = report.seed;
            let y = report.y;
            let mut counts = support.chunks_exact_mut(4);
            let mut mixes = value_mix.chunks_exact(4);
            for (s4, m4) in (&mut counts).zip(&mut mixes) {
                s4[0] += u64::from((mix64(seed ^ m4[0]) % g) as u32 == y);
                s4[1] += u64::from((mix64(seed ^ m4[1]) % g) as u32 == y);
                s4[2] += u64::from((mix64(seed ^ m4[2]) % g) as u32 == y);
                s4[3] += u64::from((mix64(seed ^ m4[3]) % g) as u32 == y);
            }
            for (s, m) in counts.into_remainder().iter_mut().zip(mixes.remainder()) {
                *s += u64::from((mix64(seed ^ m) % g) as u32 == y);
            }
        }
    }

    /// Debiases support counts into frequency estimates; shared by both
    /// aggregation paths so they are bit-identical.
    pub(crate) fn estimate_from_support(&self, support: &[u64], n: u64) -> Vec<f64> {
        if n == 0 {
            return vec![0.0; self.d];
        }
        let nf = n as f64;
        let inv_g = 1.0 / self.g as f64;
        support
            .iter()
            .map(|&c| (c as f64 / nf - inv_g) / (self.p - inv_g))
            .collect()
    }
}

impl FrequencyOracle for Olh {
    type Report = OlhReport;

    fn domain_size(&self) -> usize {
        self.d
    }

    fn epsilon(&self) -> f64 {
        self.eps
    }

    fn randomize<R: Rng + ?Sized>(&self, value: usize, rng: &mut R) -> Result<OlhReport, CfoError> {
        check_value(value, self.d)?;
        let seed: u64 = rng.gen();
        let h = olh_hash(seed, value, self.g);
        let y = if rng.gen::<f64>() < self.p {
            h
        } else {
            let mut other = rng.gen_range(0..self.g as u32 - 1);
            if other >= h {
                other += 1;
            }
            other
        };
        Ok(OlhReport { seed, y })
    }

    fn aggregate(&self, reports: &[OlhReport]) -> Vec<f64> {
        let mut support = vec![0u64; self.d];
        for r in reports {
            self.add_support(&mut support, r);
        }
        self.estimate_from_support(&support, reports.len() as u64)
    }

    fn estimate_variance(&self, n: usize) -> f64 {
        Self::theoretical_variance(self.eps, n.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_numeric::SplitMix64;

    #[test]
    fn construction_validates() {
        assert!(Olh::new(1, 1.0).is_err());
        assert!(Olh::new(16, -1.0).is_err());
        assert!(Olh::with_hash_range(16, 1.0, 1).is_err());
        let o = Olh::new(16, 1.0).unwrap();
        // g = round(e) + 1 = 4.
        assert_eq!(o.hash_range(), 4);
    }

    #[test]
    fn hash_is_deterministic_and_in_range() {
        for seed in 0..100u64 {
            for v in 0..50usize {
                let h = olh_hash(seed, v, 7);
                assert!(h < 7);
                assert_eq!(h, olh_hash(seed, v, 7));
            }
        }
    }

    #[test]
    fn hash_family_is_roughly_uniform() {
        let g = 4;
        let mut counts = vec![0u64; g];
        for seed in 0..40_000u64 {
            counts[olh_hash(seed, 13, g) as usize] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / 40_000.0;
            assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
        }
    }

    #[test]
    fn aggregate_is_unbiased_on_large_domain() {
        let d = 64;
        let o = Olh::new(d, 1.0).unwrap();
        let mut rng = SplitMix64::new(11);
        let n = 100_000;
        // 50% value 3, 30% value 40, 20% value 63.
        let values: Vec<usize> = (0..n)
            .map(|i| match i % 10 {
                0..=4 => 3,
                5..=7 => 40,
                _ => 63,
            })
            .collect();
        let est = o.run(&values, &mut rng).unwrap();
        assert!((est[3] - 0.5).abs() < 0.03, "est[3]={}", est[3]);
        assert!((est[40] - 0.3).abs() < 0.03, "est[40]={}", est[40]);
        assert!((est[63] - 0.2).abs() < 0.03, "est[63]={}", est[63]);
    }

    #[test]
    fn empirical_variance_matches_theory() {
        let d = 32;
        let eps = 1.0;
        let n = 2_000;
        let trials = 200;
        let o = Olh::new(d, eps).unwrap();
        let values = vec![1usize; n];
        let mut errs = Vec::with_capacity(trials);
        for t in 0..trials {
            let mut rng = SplitMix64::new(2000 + t as u64);
            let est = o.run(&values, &mut rng).unwrap();
            errs.push(est[0]);
        }
        let emp_var = ldp_numeric::stats::variance(&errs);
        let theory = Olh::theoretical_variance(eps, n);
        let ratio = emp_var / theory;
        assert!(
            (0.6..1.4).contains(&ratio),
            "empirical {emp_var} vs theory {theory}"
        );
    }

    #[test]
    fn variance_beats_grr_on_large_domains() {
        let eps = 1.0;
        let n = 1000;
        let olh_var = Olh::theoretical_variance(eps, n);
        let grr_var = crate::grr::Grr::theoretical_variance(256, eps, n);
        assert!(olh_var < grr_var);
    }

    #[test]
    fn randomize_rejects_out_of_domain() {
        let o = Olh::new(8, 1.0).unwrap();
        let mut rng = SplitMix64::new(1);
        assert!(o.randomize(8, &mut rng).is_err());
    }

    #[test]
    fn aggregate_empty_reports_gives_zeros() {
        let o = Olh::new(8, 1.0).unwrap();
        assert_eq!(o.aggregate(&[]), vec![0.0; 8]);
    }
}
