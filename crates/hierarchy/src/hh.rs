//! Hierarchical Histogram (HH) under LDP (paper §4.2).
//!
//! The user population is divided uniformly among the tree levels
//! 1..=h ("dividing the population", which the paper argues beats dividing
//! the privacy budget in the local setting). A user assigned to level `ℓ`
//! reports the level-`ℓ` ancestor of its value through the lower-variance
//! CFO for that level's domain. The aggregator estimates every level's
//! histogram and applies constrained inference to make the tree consistent;
//! range queries are then answered from the leaf level.

use crate::consistency::{constrained_inference, RootPolicy};
use crate::error::HierarchyError;
use crate::tree::{TreeShape, TreeValues};
use ldp_cfo::{AdaptiveOracle, FrequencyOracle};
use ldp_core::Mechanism;
use rand::Rng;

/// Noisy per-level estimates collected from the population, before
/// consistency.
#[derive(Debug, Clone)]
pub struct HhRaw {
    /// Tree with level 0 = root (always exactly 1: the total is public).
    pub tree: TreeValues,
    /// Per-level estimate variances (root gets a tiny positive placeholder).
    pub level_variances: Vec<f64>,
    shape: TreeShape,
}

impl HhRaw {
    /// Assembles a raw estimate from parts (level 0 of `tree` must hold the
    /// public total; one variance per level).
    pub fn new(
        shape: TreeShape,
        tree: TreeValues,
        level_variances: Vec<f64>,
    ) -> Result<Self, HierarchyError> {
        if tree.levels.len() != shape.height() + 1 || level_variances.len() != shape.height() + 1 {
            return Err(HierarchyError::InvalidParameter(format!(
                "tree/variance levels must both be {}",
                shape.height() + 1
            )));
        }
        Ok(HhRaw {
            tree,
            level_variances,
            shape,
        })
    }

    /// The tree geometry.
    #[must_use]
    pub fn shape(&self) -> &TreeShape {
        &self.shape
    }
}

/// The Hierarchical Histogram collector.
#[derive(Debug, Clone)]
pub struct HierarchicalHistogram {
    shape: TreeShape,
    eps: f64,
    /// Per-level adaptive oracles (index `level - 1` for levels 1..=h),
    /// built once at construction and shared by the batch and streaming
    /// collection paths.
    oracles: Vec<AdaptiveOracle>,
}

impl HierarchicalHistogram {
    /// Creates an HH over a domain of `d` buckets with branching factor
    /// `branching` (the paper uses 4) and privacy budget `eps`.
    pub fn new(branching: usize, d: usize, eps: f64) -> Result<Self, HierarchyError> {
        let shape = TreeShape::new(branching, d)?;
        ldp_core::Epsilon::new(eps)?;
        let oracles = (1..=shape.height())
            .map(|level| AdaptiveOracle::new(shape.level_size(level), eps))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(HierarchicalHistogram {
            shape,
            eps,
            oracles,
        })
    }

    /// The per-level oracle serving tree level `level` (1..=h).
    pub(crate) fn level_oracle(&self, level: usize) -> &AdaptiveOracle {
        &self.oracles[level - 1]
    }

    /// The tree geometry.
    #[must_use]
    pub fn shape(&self) -> &TreeShape {
        &self.shape
    }

    /// The privacy budget ε.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.eps
    }

    /// Client + server side: randomizes every user's bucket index and
    /// aggregates per-level frequency estimates.
    ///
    /// Each user is assigned a uniformly random level; this sampling is part
    /// of the mechanism (it introduces the sampling error the paper
    /// discusses) and is driven by `rng` like the randomizers themselves.
    pub fn collect<R: Rng + ?Sized>(
        &self,
        values: &[usize],
        rng: &mut R,
    ) -> Result<HhRaw, HierarchyError> {
        if values.is_empty() {
            return Err(HierarchyError::InvalidParameter(
                "need at least one user report".into(),
            ));
        }
        let h = self.shape.height();
        let d = self.shape.leaves();
        for &v in values {
            if v >= d {
                return Err(HierarchyError::InvalidParameter(format!(
                    "value {v} outside domain of {d} buckets"
                )));
            }
        }
        // Partition users over levels 1..=h uniformly at random.
        let mut per_level: Vec<Vec<usize>> = vec![Vec::new(); h + 1];
        for &v in values {
            let level = rng.gen_range(1..=h);
            per_level[level].push(self.shape.ancestor_at_level(v, level));
        }

        // Randomize each level's group in order (the same RNG stream as
        // `FrequencyOracle::run`), absorbing reports into the streaming
        // state; the estimation itself — per-level debiasing, empty-level
        // uniform fallback, variance bookkeeping — is one routine shared
        // with `ldp_core::Mechanism::finalize`, so the batch and streaming
        // paths cannot drift.
        let mut state = Mechanism::empty_state(self);
        for (level, group) in per_level.iter().enumerate().skip(1) {
            let oracle = self.level_oracle(level);
            for &v in group {
                let report = FrequencyOracle::randomize(oracle, v, rng)?;
                Mechanism::absorb(oracle, state.level_mut(level), &report)?;
            }
        }
        Ok(Mechanism::finalize(self, &state)?)
    }

    /// Applies constrained inference (root fixed to 1) to raw estimates,
    /// yielding the consistent tree used for range queries.
    pub fn make_consistent(&self, raw: &HhRaw) -> Result<TreeValues, HierarchyError> {
        constrained_inference(
            &self.shape,
            &raw.tree,
            &raw.level_variances,
            RootPolicy::Fixed(1.0),
        )
    }

    /// Full pipeline: collect then enforce consistency, returning leaf-level
    /// frequency estimates (possibly negative — HH is evaluated on range
    /// queries only, see paper Table 2).
    pub fn estimate_leaves<R: Rng + ?Sized>(
        &self,
        values: &[usize],
        rng: &mut R,
    ) -> Result<Vec<f64>, HierarchyError> {
        let raw = self.collect(values, rng)?;
        let consistent = self.make_consistent(&raw)?;
        Ok(consistent.leaves().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_numeric::SplitMix64;

    #[test]
    fn construction_validates() {
        assert!(HierarchicalHistogram::new(4, 256, 1.0).is_ok());
        assert!(HierarchicalHistogram::new(4, 100, 1.0).is_err());
        assert!(HierarchicalHistogram::new(4, 256, 0.0).is_err());
    }

    #[test]
    fn collect_rejects_bad_input() {
        let hh = HierarchicalHistogram::new(2, 8, 1.0).unwrap();
        let mut rng = SplitMix64::new(71);
        assert!(hh.collect(&[], &mut rng).is_err());
        assert!(hh.collect(&[8], &mut rng).is_err());
    }

    #[test]
    fn consistent_tree_sums_to_one() {
        let hh = HierarchicalHistogram::new(4, 64, 1.0).unwrap();
        let mut rng = SplitMix64::new(72);
        let values: Vec<usize> = (0..30_000).map(|i| i % 64).collect();
        let raw = hh.collect(&values, &mut rng).unwrap();
        let consistent = hh.make_consistent(&raw).unwrap();
        assert!(consistent.consistency_gap(hh.shape()) < 1e-9);
        let leaf_sum: f64 = consistent.leaves().iter().sum();
        assert!((leaf_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn high_epsilon_recovers_distribution() {
        let hh = HierarchicalHistogram::new(4, 16, 8.0).unwrap();
        let mut rng = SplitMix64::new(73);
        // 50% bucket 2, 50% bucket 11.
        let values: Vec<usize> = (0..60_000)
            .map(|i| if i % 2 == 0 { 2 } else { 11 })
            .collect();
        let leaves = hh.estimate_leaves(&values, &mut rng).unwrap();
        assert!((leaves[2] - 0.5).abs() < 0.05, "leaf2={}", leaves[2]);
        assert!((leaves[11] - 0.5).abs() < 0.05, "leaf11={}", leaves[11]);
        for (i, &l) in leaves.iter().enumerate() {
            if i != 2 && i != 11 {
                assert!(l.abs() < 0.05, "leaf{i}={l}");
            }
        }
    }

    #[test]
    fn level_variances_are_recorded_per_level() {
        let hh = HierarchicalHistogram::new(4, 256, 1.0).unwrap();
        let mut rng = SplitMix64::new(74);
        let values: Vec<usize> = (0..10_000).map(|i| i % 256).collect();
        let raw = hh.collect(&values, &mut rng).unwrap();
        assert_eq!(raw.level_variances.len(), 5);
        // Every estimated level has a real positive variance.
        for level in 1..=4 {
            assert!(raw.level_variances[level] > 0.0);
        }
    }
}
