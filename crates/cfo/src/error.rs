//! Error type for frequency-oracle construction and use.

use ldp_core::CoreError;
use std::fmt;

/// Errors produced by CFO protocols.
#[derive(Debug, Clone, PartialEq)]
pub enum CfoError {
    /// The privacy parameter ε must be positive and finite.
    InvalidEpsilon(f64),
    /// The categorical domain must have at least two values.
    DomainTooSmall(usize),
    /// A user value fell outside the declared domain.
    ValueOutOfDomain {
        /// The offending value.
        value: usize,
        /// The domain size it must be below.
        domain: usize,
    },
    /// A parameter other than ε or the domain was invalid.
    InvalidParameter(String),
}

impl fmt::Display for CfoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfoError::InvalidEpsilon(eps) => {
                write!(f, "epsilon must be positive and finite, got {eps}")
            }
            CfoError::DomainTooSmall(d) => {
                write!(f, "domain must have at least 2 values, got {d}")
            }
            CfoError::ValueOutOfDomain { value, domain } => {
                write!(f, "value {value} outside domain of size {domain}")
            }
            CfoError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for CfoError {}

/// Parameter validation is centralized in `ldp-core` ([`ldp_core::Epsilon`]
/// and [`ldp_core::Domain`]); this impl folds its errors back into the
/// crate's established variants.
impl From<CoreError> for CfoError {
    fn from(e: CoreError) -> Self {
        match e {
            CoreError::InvalidEpsilon(eps) => CfoError::InvalidEpsilon(eps),
            CoreError::DomainTooSmall(d) => CfoError::DomainTooSmall(d),
            other => CfoError::InvalidParameter(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_core::Epsilon;

    #[test]
    fn core_validation_maps_to_crate_variants() {
        assert_eq!(
            CfoError::from(Epsilon::new(0.0).unwrap_err()),
            CfoError::InvalidEpsilon(0.0)
        );
        assert!(matches!(
            CfoError::from(Epsilon::new(f64::NAN).unwrap_err()),
            CfoError::InvalidEpsilon(e) if e.is_nan()
        ));
        assert_eq!(
            CfoError::from(ldp_core::Domain::new(1).unwrap_err()),
            CfoError::DomainTooSmall(1)
        );
        assert!(matches!(
            CfoError::from(CoreError::Wire("x".into())),
            CfoError::InvalidParameter(_)
        ));
    }

    #[test]
    fn display_mentions_the_problem() {
        assert!(CfoError::InvalidEpsilon(-1.0).to_string().contains("-1"));
        assert!(CfoError::DomainTooSmall(1).to_string().contains('1'));
        let e = CfoError::ValueOutOfDomain {
            value: 9,
            domain: 4,
        };
        assert!(e.to_string().contains('9') && e.to_string().contains('4'));
    }
}
