//! Loading and saving user-value files.
//!
//! The paper evaluates on real datasets (NYC taxi, ACS income, SF
//! retirement) that cannot be redistributed; this module lets a user who
//! *does* have them plug the raw values straight into the harness. The
//! format is deliberately trivial — one decimal value per line, `#`
//! comments allowed — so any `awk`/pandas pipeline can produce it.

use ldp_numeric::NumericError;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Writes values (one per line) to `path`, with a provenance header.
pub fn save_values(path: &Path, values: &[f64]) -> std::io::Result<()> {
    let file = File::create(path)?;
    let mut out = BufWriter::new(file);
    writeln!(out, "# sw-ldp user values; one value in [0, 1] per line")?;
    writeln!(out, "# count = {}", values.len())?;
    for v in values {
        writeln!(out, "{v}")?;
    }
    out.flush()
}

/// Reads a value file written by [`save_values`] (or any one-value-per-line
/// text file). Values are validated to be finite; values outside `[0, 1]`
/// are *rejected* rather than clamped — scaling raw data into the unit
/// interval is a deliberate preprocessing decision the caller must make
/// (see the paper's §6.1 extraction rules).
pub fn load_values(path: &Path) -> Result<Vec<f64>, LoadError> {
    let file = File::open(path).map_err(LoadError::Io)?;
    let reader = BufReader::new(file);
    let mut values = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(LoadError::Io)?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let v: f64 = trimmed.parse().map_err(|_| LoadError::Parse {
            line: lineno + 1,
            content: trimmed.to_string(),
        })?;
        if !v.is_finite() || !(0.0..=1.0).contains(&v) {
            return Err(LoadError::OutOfRange {
                line: lineno + 1,
                value: v,
            });
        }
        values.push(v);
    }
    if values.is_empty() {
        return Err(LoadError::Empty);
    }
    Ok(values)
}

/// Errors from [`load_values`].
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line did not parse as a decimal number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// A value fell outside `[0, 1]`.
    OutOfRange {
        /// 1-based line number.
        line: usize,
        /// The offending value.
        value: f64,
    },
    /// The file contained no values.
    Empty,
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::Parse { line, content } => {
                write!(f, "line {line}: cannot parse {content:?} as a number")
            }
            LoadError::OutOfRange { line, value } => write!(
                f,
                "line {line}: value {value} outside [0, 1] — rescale your data first"
            ),
            LoadError::Empty => write!(f, "file contains no values"),
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LoadError> for NumericError {
    fn from(e: LoadError) -> Self {
        NumericError::InvalidParameter(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sw_ldp_io_test_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_preserves_values() {
        let path = temp_path("roundtrip");
        let values = vec![0.0, 0.25, 0.123456789, 1.0];
        save_values(&path, &values).unwrap();
        let loaded = load_values(&path).unwrap();
        assert_eq!(loaded, values);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let path = temp_path("comments");
        std::fs::write(&path, "# header\n\n0.5\n  # indented comment\n0.75\n").unwrap();
        let loaded = load_values(&path).unwrap();
        assert_eq!(loaded, vec![0.5, 0.75]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_lines_are_reported_with_position() {
        let path = temp_path("malformed");
        std::fs::write(&path, "0.5\nnot-a-number\n").unwrap();
        match load_values(&path) {
            Err(LoadError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_range_values_are_rejected_not_clamped() {
        let path = temp_path("range");
        std::fs::write(&path, "0.5\n1.5\n").unwrap();
        match load_values(&path) {
            Err(LoadError::OutOfRange { line, value }) => {
                assert_eq!(line, 2);
                assert!((value - 1.5).abs() < 1e-12);
            }
            other => panic!("expected range error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_files_are_rejected() {
        let path = temp_path("empty");
        std::fs::write(&path, "# only comments\n").unwrap();
        assert!(matches!(load_values(&path), Err(LoadError::Empty)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let path = temp_path("definitely_missing");
        assert!(matches!(load_values(&path), Err(LoadError::Io(_))));
    }
}
