//! Error type for mean/variance estimation mechanisms.

use ldp_core::CoreError;
use std::fmt;

/// Errors produced by the mean-estimation mechanisms.
#[derive(Debug, Clone, PartialEq)]
pub enum MeanError {
    /// The privacy parameter ε must be positive and finite.
    InvalidEpsilon(f64),
    /// A private value fell outside the mechanism's input domain.
    ValueOutOfDomain {
        /// The offending value.
        value: f64,
        /// Human-readable domain description.
        domain: &'static str,
    },
    /// Some other parameter was invalid.
    InvalidParameter(String),
}

impl fmt::Display for MeanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeanError::InvalidEpsilon(eps) => {
                write!(f, "epsilon must be positive and finite, got {eps}")
            }
            MeanError::ValueOutOfDomain { value, domain } => {
                write!(f, "value {value} outside input domain {domain}")
            }
            MeanError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for MeanError {}

/// Parameter validation is centralized in `ldp-core`
/// ([`ldp_core::Epsilon`]); this impl folds its errors back into the
/// crate's established variants.
impl From<CoreError> for MeanError {
    fn from(e: CoreError) -> Self {
        match e {
            CoreError::InvalidEpsilon(eps) => MeanError::InvalidEpsilon(eps),
            other => MeanError::InvalidParameter(other.to_string()),
        }
    }
}

pub(crate) fn check_signed(v: f64) -> Result<(), MeanError> {
    if !v.is_finite() || !(-1.0..=1.0).contains(&v) {
        return Err(MeanError::ValueOutOfDomain {
            value: v,
            domain: "[-1, 1]",
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validators() {
        assert_eq!(
            MeanError::from(ldp_core::Epsilon::new(-1.0).unwrap_err()),
            MeanError::InvalidEpsilon(-1.0)
        );
        assert!(matches!(
            MeanError::from(CoreError::Wire("x".into())),
            MeanError::InvalidParameter(_)
        ));
        assert!(check_signed(0.5).is_ok());
        assert!(check_signed(-1.0).is_ok());
        assert!(check_signed(1.1).is_err());
        assert!(check_signed(f64::NAN).is_err());
    }

    #[test]
    fn display() {
        let e = MeanError::ValueOutOfDomain {
            value: 2.0,
            domain: "[-1, 1]",
        };
        assert!(e.to_string().contains("[-1, 1]"));
    }
}
