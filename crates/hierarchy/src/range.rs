//! Range queries over hierarchical estimates.
//!
//! Hierarchy methods answer a range query from the canonical O(β·h) node
//! decomposition; after constrained inference this coincides with summing
//! leaf estimates, which is what the metric evaluation uses. The helpers
//! here work on raw leaf vectors (which, unlike [`ldp_numeric::Histogram`],
//! may contain negative entries) with within-bucket interpolation matching
//! the paper's continuous range queries `R(x, i, α)`.

use crate::tree::{TreeShape, TreeValues};

/// Interpolated CDF of a signed leaf vector at `t ∈ [0, 1]`.
#[must_use]
pub fn cdf_at_signed(leaves: &[f64], t: f64) -> f64 {
    if leaves.is_empty() || t <= 0.0 {
        return 0.0;
    }
    let d = leaves.len() as f64;
    if t >= 1.0 {
        return leaves.iter().sum();
    }
    let pos = t * d;
    let i = (pos as usize).min(leaves.len() - 1);
    let frac = pos - i as f64;
    let below: f64 = leaves[..i].iter().sum();
    below + leaves[i] * frac
}

/// Signed mass of the value range `[lo, hi] ⊆ [0, 1]` under a leaf vector
/// that may contain negative estimates.
#[must_use]
pub fn range_mass_signed(leaves: &[f64], lo: f64, hi: f64) -> f64 {
    if hi <= lo {
        return 0.0;
    }
    cdf_at_signed(leaves, hi) - cdf_at_signed(leaves, lo)
}

/// Answers the bucket-range query `[lo, hi)` from the canonical tree
/// decomposition.
#[must_use]
pub fn range_query_tree(shape: &TreeShape, tree: &TreeValues, lo: usize, hi: usize) -> f64 {
    shape
        .canonical_decomposition(lo, hi)
        .into_iter()
        .map(|(level, k)| tree.levels[level][k])
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consistency::project_consistent;

    #[test]
    fn signed_cdf_handles_negatives() {
        let leaves = [0.5, -0.1, 0.4, 0.2];
        assert_eq!(cdf_at_signed(&leaves, 0.0), 0.0);
        assert!((cdf_at_signed(&leaves, 0.5) - 0.4).abs() < 1e-12);
        assert!((cdf_at_signed(&leaves, 1.0) - 1.0).abs() < 1e-12);
        // Interpolation inside the negative bucket.
        assert!((cdf_at_signed(&leaves, 0.375) - (0.5 - 0.05)).abs() < 1e-12);
    }

    #[test]
    fn range_mass_is_cdf_difference() {
        let leaves = [0.25, 0.25, 0.25, 0.25];
        assert!((range_mass_signed(&leaves, 0.25, 0.75) - 0.5).abs() < 1e-12);
        assert_eq!(range_mass_signed(&leaves, 0.8, 0.2), 0.0);
    }

    #[test]
    fn tree_decomposition_equals_leaf_sum_when_consistent() {
        let shape = TreeShape::new(2, 16).unwrap();
        // Build a noisy tree, project it to consistency, then compare the
        // decomposed answer with the plain leaf sum for all ranges.
        let mut noisy = TreeValues::zeros(&shape);
        let mut v = 0.11;
        for level in &mut noisy.levels {
            for x in level.iter_mut() {
                v = (v * 3.7 + 0.19) % 1.0;
                *x = v - 0.2;
            }
        }
        let consistent = project_consistent(&shape, &noisy).unwrap();
        for lo in 0..16 {
            for hi in lo..=16 {
                let via_tree = range_query_tree(&shape, &consistent, lo, hi);
                let via_leaves: f64 = consistent.leaves()[lo..hi].iter().sum();
                assert!(
                    (via_tree - via_leaves).abs() < 1e-9,
                    "range [{lo},{hi}): {via_tree} vs {via_leaves}"
                );
            }
        }
    }

    #[test]
    fn tree_decomposition_differs_on_inconsistent_tree() {
        // Without consistency, the decomposed answer uses coarse nodes and
        // genuinely differs from the leaf sum — the reason hierarchical
        // methods help at all.
        let shape = TreeShape::new(2, 4).unwrap();
        let tree = TreeValues {
            levels: vec![vec![1.0], vec![0.9, 0.1], vec![0.2, 0.2, 0.05, 0.05]],
        };
        let via_tree = range_query_tree(&shape, &tree, 0, 2);
        let via_leaves: f64 = tree.leaves()[0..2].iter().sum();
        assert!((via_tree - 0.9).abs() < 1e-12);
        assert!((via_leaves - 0.4).abs() < 1e-12);
        assert!((via_tree - via_leaves).abs() > 0.4);
    }

    #[test]
    fn empty_leaves_edge_case() {
        assert_eq!(cdf_at_signed(&[], 0.5), 0.0);
    }
}
