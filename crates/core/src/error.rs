//! The error type shared by the unified mechanism API.

use std::fmt;

/// Errors produced by the unified mechanism API.
///
/// Mechanism crates convert `CoreError` into their native error enums via
/// `From` impls, so parameter validation lives here exactly once while each
/// crate keeps its established error surface.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The privacy parameter ε must be positive and finite.
    InvalidEpsilon(f64),
    /// A domain must have at least two values/buckets.
    DomainTooSmall(usize),
    /// A client-side private input fell outside the mechanism's domain.
    InvalidInput(String),
    /// A wire report could not have been produced by the mechanism.
    InvalidReport(String),
    /// Two aggregator shards were built for different configurations.
    ShardMismatch(String),
    /// Server-side aggregation or estimation failed.
    Aggregation(String),
    /// A wire-format line failed to decode.
    Wire(String),
    /// A snapshot file was malformed, truncated, or corrupted.
    Snapshot(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidEpsilon(eps) => {
                write!(f, "epsilon must be positive and finite, got {eps}")
            }
            CoreError::DomainTooSmall(d) => {
                write!(f, "domain must have at least 2 values, got {d}")
            }
            CoreError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            CoreError::InvalidReport(msg) => write!(f, "invalid report: {msg}"),
            CoreError::ShardMismatch(msg) => write!(f, "shard mismatch: {msg}"),
            CoreError::Aggregation(msg) => write!(f, "aggregation failed: {msg}"),
            CoreError::Wire(msg) => write!(f, "wire decode failed: {msg}"),
            CoreError::Snapshot(msg) => write!(f, "snapshot rejected: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_problem() {
        assert!(CoreError::InvalidEpsilon(-1.0).to_string().contains("-1"));
        assert!(CoreError::DomainTooSmall(1).to_string().contains('1'));
        assert!(CoreError::Wire("bad line".into())
            .to_string()
            .contains("bad line"));
        assert!(CoreError::ShardMismatch("8 vs 16".into())
            .to_string()
            .contains("8 vs 16"));
    }
}
