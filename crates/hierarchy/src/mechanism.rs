//! [`Mechanism`] implementations for the hierarchy estimators.
//!
//! Both hierarchical protocols assign each user a uniformly random tree
//! level as part of the client-side randomization (population division,
//! paper §4.2), so the wire report carries the level tag alongside the
//! per-level oracle report. The streaming state composes one per-level
//! oracle state — O(total tree nodes) regardless of the population — and
//! shards merge exactly because each component state does.
//!
//! `finalize` stops at the *raw* per-level estimates ([`HhRaw`] for HH,
//! signed leaves for HaarHRR); consistency enforcement (constrained
//! inference or ADMM) remains a separate post-processing choice, exactly
//! as in the paper.

use crate::haar::{haar_inverse, HaarCoefficients, HaarHrr};
use crate::hh::{HhRaw, HierarchicalHistogram};
use crate::tree::TreeValues;
use ldp_cfo::hadamard::HrrReport;
use ldp_cfo::select::AdaptiveReport;
use ldp_cfo::{AdaptiveState, FrequencyOracle, SpectrumState};
use ldp_core::params::fingerprint_fields;
use ldp_core::snapshot::{expect_tag, next_line, parse_snapshot_field, SnapshotState};
use ldp_core::wire::parse_field;
use ldp_core::{CoreError, Epsilon, Mechanism, WireReport};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt::Write;

const TAG_HH: u64 = 0x31;
const TAG_HAAR: u64 = 0x32;

/// One Hierarchical Histogram report: the user's sampled tree level and
/// its ancestor's perturbed index through that level's adaptive oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HhReport {
    /// Tree level (1..=height) this user was assigned to.
    pub level: u32,
    /// The per-level oracle report.
    pub report: AdaptiveReport,
}

/// Streaming state of the Hierarchical Histogram: one adaptive-oracle
/// state per tree level.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HhState {
    /// Index `level - 1` holds the state for tree level `level`.
    levels: Vec<AdaptiveState>,
}

impl HhState {
    /// Reports absorbed at tree level `level` (1..=height).
    #[must_use]
    pub fn level_total(&self, level: usize) -> u64 {
        self.levels[level - 1].total()
    }

    /// Mutable access to one level's oracle state (shared with the batch
    /// collection path in `hh.rs`).
    pub(crate) fn level_mut(&mut self, level: usize) -> &mut AdaptiveState {
        &mut self.levels[level - 1]
    }

    /// Total reports absorbed across all levels.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.levels.iter().map(AdaptiveState::total).sum()
    }
}

impl Mechanism for HierarchicalHistogram {
    type Input = usize;
    type Report = HhReport;
    type State = HhState;
    type Output = HhRaw;

    fn epsilon(&self) -> Epsilon {
        Epsilon::new(self.epsilon()).expect("validated at construction")
    }

    fn fingerprint(&self) -> u64 {
        fingerprint_fields(
            TAG_HH,
            &[
                self.shape().branching() as u64,
                self.shape().leaves() as u64,
                self.epsilon().to_bits(),
            ],
        )
    }

    fn randomize<R: Rng + ?Sized>(
        &self,
        input: &usize,
        rng: &mut R,
    ) -> Result<HhReport, CoreError> {
        let d = self.shape().leaves();
        if *input >= d {
            return Err(CoreError::InvalidInput(format!(
                "value {input} outside domain of {d} buckets"
            )));
        }
        // The level draw is part of the mechanism (population division);
        // it consumes the same RNG stream as the oracle randomizer.
        let h = self.shape().height();
        let level = rng.gen_range(1..=h);
        let ancestor = self.shape().ancestor_at_level(*input, level);
        let report = Mechanism::randomize(self.level_oracle(level), &ancestor, rng)?;
        Ok(HhReport {
            level: level as u32,
            report,
        })
    }

    fn empty_state(&self) -> HhState {
        HhState {
            levels: (1..=self.shape().height())
                .map(|level| self.level_oracle(level).empty_state())
                .collect(),
        }
    }

    fn absorb(&self, state: &mut HhState, report: &HhReport) -> Result<(), CoreError> {
        let level = report.level as usize;
        if level == 0 || level > self.shape().height() {
            return Err(CoreError::InvalidReport(format!(
                "HH report level {level} outside 1..={}",
                self.shape().height()
            )));
        }
        self.level_oracle(level)
            .absorb(&mut state.levels[level - 1], &report.report)
    }

    fn merge_state(&self, state: &mut HhState, other: &HhState) -> Result<(), CoreError> {
        if state.levels.len() != other.levels.len() {
            return Err(CoreError::ShardMismatch(format!(
                "HH states over {} vs {} levels",
                state.levels.len(),
                other.levels.len()
            )));
        }
        for (level, (a, b)) in state.levels.iter_mut().zip(&other.levels).enumerate() {
            self.level_oracle(level + 1).merge_state(a, b)?;
        }
        Ok(())
    }

    fn finalize(&self, state: &HhState) -> Result<HhRaw, CoreError> {
        if state.total() == 0 {
            return Err(CoreError::Aggregation(
                "need at least one report to estimate the tree".into(),
            ));
        }
        let h = self.shape().height();
        let mut tree = TreeValues::zeros(self.shape());
        tree.levels[0][0] = 1.0; // the total is public under LDP
        let mut level_variances = vec![1e-12; h + 1];
        for (level, variance) in level_variances.iter_mut().enumerate().skip(1) {
            let oracle = self.level_oracle(level);
            let n = state.level_total(level);
            tree.levels[level] = if n == 0 {
                // No user sampled this level: fall back to the
                // uninformative uniform estimate, as the batch path does.
                let domain = self.shape().level_size(level);
                vec![1.0 / domain as f64; domain]
            } else {
                oracle.finalize(&state.levels[level - 1])?
            };
            *variance = oracle.estimate_variance(n.max(1) as usize);
        }
        HhRaw::new(*self.shape(), tree, level_variances)
            .map_err(|e| CoreError::Aggregation(e.to_string()))
    }
}

/// One HaarHRR report: the user's sampled coefficient height and its
/// (coefficient, sign) item perturbed through HRR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HaarReport {
    /// Coefficient height (1..=log2 d) this user was assigned to.
    pub level: u32,
    /// The HRR report over the height's (coefficient, sign) item domain.
    pub report: HrrReport,
}

/// Streaming state of HaarHRR: one HRR spectrum state per coefficient
/// height.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HaarState {
    /// Index `m - 1` holds the state for coefficient height `m`.
    levels: Vec<SpectrumState>,
}

impl HaarState {
    /// Total reports absorbed across all heights.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.levels.iter().map(SpectrumState::total).sum()
    }

    /// Mutable access to one height's spectrum state (shared with the
    /// batch collection path in `haar.rs`).
    pub(crate) fn level_mut(&mut self, m: usize) -> &mut SpectrumState {
        &mut self.levels[m - 1]
    }
}

impl Mechanism for HaarHrr {
    type Input = usize;
    type Report = HaarReport;
    type State = HaarState;
    type Output = Vec<f64>;

    fn epsilon(&self) -> Epsilon {
        Epsilon::new(self.epsilon()).expect("validated at construction")
    }

    fn fingerprint(&self) -> u64 {
        fingerprint_fields(
            TAG_HAAR,
            &[self.shape().leaves() as u64, self.epsilon().to_bits()],
        )
    }

    fn randomize<R: Rng + ?Sized>(
        &self,
        input: &usize,
        rng: &mut R,
    ) -> Result<HaarReport, CoreError> {
        let d = self.shape().leaves();
        if *input >= d {
            return Err(CoreError::InvalidInput(format!(
                "value {input} outside domain of {d} buckets"
            )));
        }
        let h = self.shape().height();
        let m = rng.gen_range(1..=h);
        // Coefficient index and sign for this value at height m.
        let k = *input >> m;
        let right = (*input >> (m - 1)) & 1;
        let item = 2 * k + right;
        let report = Mechanism::randomize(self.height_oracle(m), &item, rng)?;
        Ok(HaarReport {
            level: m as u32,
            report,
        })
    }

    fn empty_state(&self) -> HaarState {
        HaarState {
            levels: (1..=self.shape().height())
                .map(|m| self.height_oracle(m).empty_state())
                .collect(),
        }
    }

    fn absorb(&self, state: &mut HaarState, report: &HaarReport) -> Result<(), CoreError> {
        let m = report.level as usize;
        if m == 0 || m > self.shape().height() {
            return Err(CoreError::InvalidReport(format!(
                "HaarHRR report height {m} outside 1..={}",
                self.shape().height()
            )));
        }
        self.height_oracle(m)
            .absorb(&mut state.levels[m - 1], &report.report)
    }

    // absorb_slice keeps the default report-at-a-time loop: each absorb is
    // a single spectrum scatter-add, and benchmarking showed that grouping
    // reports by coefficient height to ride the HRR block kernel costs
    // more in per-slice allocation than the kernel saves. Bulk ingest
    // still parallelizes through `Aggregator::push_slice_sharded`.

    fn merge_state(&self, state: &mut HaarState, other: &HaarState) -> Result<(), CoreError> {
        if state.levels.len() != other.levels.len() {
            return Err(CoreError::ShardMismatch(format!(
                "HaarHRR states over {} vs {} heights",
                state.levels.len(),
                other.levels.len()
            )));
        }
        for (m, (a, b)) in state.levels.iter_mut().zip(&other.levels).enumerate() {
            self.height_oracle(m + 1).merge_state(a, b)?;
        }
        Ok(())
    }

    fn finalize(&self, state: &HaarState) -> Result<Vec<f64>, CoreError> {
        if state.total() == 0 {
            return Err(CoreError::Aggregation(
                "need at least one report to estimate the spectrum".into(),
            ));
        }
        let d = self.shape().leaves();
        let h = self.shape().height();
        let mut details = Vec::with_capacity(h);
        for m in 1..=h {
            let coeff_count = d >> m;
            let scale = 2f64.powf(m as f64 / 2.0);
            // An empty height finalizes to all-zero frequencies, matching
            // the batch path's uninformative zero coefficients.
            let freqs = self.height_oracle(m).finalize(&state.levels[m - 1])?;
            let det: Vec<f64> = (0..coeff_count)
                .map(|k| (freqs[2 * k] - freqs[2 * k + 1]) / scale)
                .collect();
            details.push(det);
        }
        haar_inverse(&HaarCoefficients {
            total: 1.0,
            details,
        })
        .map_err(|e| CoreError::Aggregation(e.to_string()))
    }
}

/// A `hh-levels <k>` line followed by `k` per-level adaptive states (the
/// composed-state layout: index `level - 1` holds tree level `level`).
impl SnapshotState for HhState {
    fn encode_state(&self, out: &mut String) {
        let _ = writeln!(out, "hh-levels {}", self.levels.len());
        for level in &self.levels {
            level.encode_state(out);
        }
    }

    fn decode_state(lines: &mut dyn Iterator<Item = &str>) -> Result<Self, CoreError> {
        let line = next_line(lines, "HH state header")?;
        let mut it = line.split_whitespace();
        expect_tag(it.next(), "hh-levels")?;
        let k: usize = parse_snapshot_field(it.next(), "HH level count")?;
        if it.next().is_some() {
            return Err(CoreError::Snapshot(format!(
                "trailing fields on HH state header {line:?}"
            )));
        }
        // k is untrusted snapshot input: bound the pre-allocation (a real
        // tree has log-many levels); the vector grows as states decode.
        let mut levels = Vec::with_capacity(k.min(64));
        for _ in 0..k {
            levels.push(AdaptiveState::decode_state(lines)?);
        }
        Ok(HhState { levels })
    }
}

/// A `haar-levels <k>` line followed by `k` per-height spectrum states.
impl SnapshotState for HaarState {
    fn encode_state(&self, out: &mut String) {
        let _ = writeln!(out, "haar-levels {}", self.levels.len());
        for level in &self.levels {
            level.encode_state(out);
        }
    }

    fn decode_state(lines: &mut dyn Iterator<Item = &str>) -> Result<Self, CoreError> {
        let line = next_line(lines, "HaarHRR state header")?;
        let mut it = line.split_whitespace();
        expect_tag(it.next(), "haar-levels")?;
        let k: usize = parse_snapshot_field(it.next(), "HaarHRR height count")?;
        if it.next().is_some() {
            return Err(CoreError::Snapshot(format!(
                "trailing fields on HaarHRR state header {line:?}"
            )));
        }
        // k is untrusted snapshot input: bound the pre-allocation (a real
        // tree has log-many levels); the vector grows as states decode.
        let mut levels = Vec::with_capacity(k.min(64));
        for _ in 0..k {
            levels.push(SpectrumState::decode_state(lines)?);
        }
        Ok(HaarState { levels })
    }
}

impl WireReport for HhReport {
    fn encode(&self, out: &mut String) {
        let _ = write!(out, "{} ", self.level);
        self.report.encode(out);
    }

    fn decode(line: &str) -> Result<Self, CoreError> {
        let (level, rest) = line
            .split_once(' ')
            .ok_or_else(|| CoreError::Wire(format!("HH report needs a level: {line:?}")))?;
        Ok(HhReport {
            level: parse_field(level, "HH level")?,
            report: AdaptiveReport::decode(rest)?,
        })
    }
}

impl WireReport for HaarReport {
    fn encode(&self, out: &mut String) {
        let _ = write!(out, "{} ", self.level);
        self.report.encode(out);
    }

    fn decode(line: &str) -> Result<Self, CoreError> {
        let (level, rest) = line
            .split_once(' ')
            .ok_or_else(|| CoreError::Wire(format!("HaarHRR report needs a level: {line:?}")))?;
        Ok(HaarReport {
            level: parse_field(level, "HaarHRR level")?,
            report: HrrReport::decode(rest)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consistency::{constrained_inference, RootPolicy};
    use ldp_core::{Aggregator, Client};
    use ldp_numeric::SplitMix64;

    fn stream_leaves_hh(d: usize, eps: f64, values: &[usize], seed: u64) -> Vec<f64> {
        let hh = HierarchicalHistogram::new(4, d, eps).unwrap();
        let client = Client::new(&hh);
        let mut agg = Aggregator::new(&hh);
        let mut rng = SplitMix64::new(seed);
        for v in values {
            agg.push(&client.randomize(v, &mut rng).unwrap()).unwrap();
        }
        let raw = agg.finalize().unwrap();
        let consistent = constrained_inference(
            raw.shape(),
            &raw.tree,
            &raw.level_variances,
            RootPolicy::Fixed(1.0),
        )
        .unwrap();
        consistent.leaves().to_vec()
    }

    #[test]
    fn hh_streaming_recovers_distribution_at_high_epsilon() {
        let values: Vec<usize> = (0..40_000)
            .map(|i| if i % 2 == 0 { 2 } else { 11 })
            .collect();
        let leaves = stream_leaves_hh(16, 8.0, &values, 41);
        assert!((leaves[2] - 0.5).abs() < 0.05, "leaf2={}", leaves[2]);
        assert!((leaves[11] - 0.5).abs() < 0.05, "leaf11={}", leaves[11]);
    }

    #[test]
    fn hh_merge_equals_concatenation_bit_for_bit() {
        let hh = HierarchicalHistogram::new(4, 64, 1.0).unwrap();
        let client = Client::new(&hh);
        let mut rng = SplitMix64::new(42);
        let reports: Vec<HhReport> = (0..6_000)
            .map(|i| client.randomize(&(i % 64), &mut rng).unwrap())
            .collect();
        let one_shot = Mechanism::aggregate(&hh, &reports).unwrap();
        for split in [0, 1, 3000, 6000] {
            let mut a = Aggregator::new(&hh);
            a.push_slice(&reports[..split]).unwrap();
            let mut b = Aggregator::new(&hh);
            b.push_slice(&reports[split..]).unwrap();
            a.merge(&b).unwrap();
            let merged = a.finalize().unwrap();
            for (x, y) in merged
                .tree
                .flatten()
                .iter()
                .zip(one_shot.tree.flatten().iter())
            {
                assert_eq!(x.to_bits(), y.to_bits(), "split {split}");
            }
        }
    }

    #[test]
    fn haar_streaming_recovers_distribution_at_high_epsilon() {
        let est = HaarHrr::new(16, 8.0).unwrap();
        let client = Client::new(&est);
        let mut agg = Aggregator::new(&est);
        let mut rng = SplitMix64::new(43);
        for i in 0..60_000usize {
            let v = if i % 2 == 0 { 3usize } else { 12 };
            agg.push(&client.randomize(&v, &mut rng).unwrap()).unwrap();
        }
        let leaves = agg.finalize().unwrap();
        assert!((leaves[3] - 0.5).abs() < 0.07, "leaf3={}", leaves[3]);
        assert!((leaves[12] - 0.5).abs() < 0.07, "leaf12={}", leaves[12]);
    }

    #[test]
    fn reports_are_validated() {
        let hh = HierarchicalHistogram::new(2, 8, 1.0).unwrap();
        let client = Client::new(&hh);
        let mut rng = SplitMix64::new(44);
        assert!(client.randomize(&8, &mut rng).is_err());
        let good = client.randomize(&3, &mut rng).unwrap();
        let mut agg = Aggregator::new(&hh);
        assert!(agg.push(&HhReport { level: 0, ..good }).is_err());
        assert!(agg.push(&HhReport { level: 99, ..good }).is_err());
        assert!(agg.push(&good).is_ok());

        let haar = HaarHrr::new(8, 1.0).unwrap();
        let hclient = Client::new(&haar);
        assert!(hclient.randomize(&8, &mut rng).is_err());
        let good = hclient.randomize(&2, &mut rng).unwrap();
        let mut agg = Aggregator::new(&haar);
        assert!(agg.push(&HaarReport { level: 9, ..good }).is_err());
        assert!(agg.push(&good).is_ok());
    }

    #[test]
    fn empty_aggregators_refuse_to_finalize() {
        let hh = HierarchicalHistogram::new(4, 16, 1.0).unwrap();
        assert!(Aggregator::new(&hh).finalize().is_err());
        let haar = HaarHrr::new(16, 1.0).unwrap();
        assert!(Aggregator::new(&haar).finalize().is_err());
    }

    #[test]
    fn wire_reports_round_trip() {
        let hh = HierarchicalHistogram::new(4, 256, 1.0).unwrap();
        let haar = HaarHrr::new(64, 1.0).unwrap();
        let mut rng = SplitMix64::new(45);
        let client = Client::new(&hh);
        for v in 0..40usize {
            let r = client.randomize(&(v % 256), &mut rng).unwrap();
            let mut s = String::new();
            r.encode(&mut s);
            assert_eq!(HhReport::decode(&s).unwrap(), r);
        }
        let client = Client::new(&haar);
        for v in 0..40usize {
            let r = client.randomize(&(v % 64), &mut rng).unwrap();
            let mut s = String::new();
            r.encode(&mut s);
            assert_eq!(HaarReport::decode(&s).unwrap(), r);
        }
        assert!(HhReport::decode("3").is_err());
        assert!(HaarReport::decode("x 1 1").is_err());
    }

    #[test]
    fn snapshot_states_round_trip_bit_identically() {
        let hh = HierarchicalHistogram::new(4, 64, 1.0).unwrap();
        let client = Client::new(&hh);
        let mut rng = SplitMix64::new(46);
        let mut state = hh.empty_state();
        for i in 0..3_000usize {
            let r = client.randomize(&(i % 64), &mut rng).unwrap();
            hh.absorb(&mut state, &r).unwrap();
        }
        let mut text = String::new();
        state.encode_state(&mut text);
        let mut lines = text.lines();
        let restored = HhState::decode_state(&mut lines).unwrap();
        assert!(lines.next().is_none(), "decoder must consume its lines");
        assert_eq!(restored, state);
        let a = hh.finalize(&state).unwrap();
        let b = hh.finalize(&restored).unwrap();
        for (x, y) in a.tree.flatten().iter().zip(b.tree.flatten().iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }

        let haar = HaarHrr::new(64, 1.0).unwrap();
        let client = Client::new(&haar);
        let mut state = haar.empty_state();
        for i in 0..3_000usize {
            let r = client.randomize(&(i % 64), &mut rng).unwrap();
            haar.absorb(&mut state, &r).unwrap();
        }
        let mut text = String::new();
        state.encode_state(&mut text);
        let mut lines = text.lines();
        let restored = HaarState::decode_state(&mut lines).unwrap();
        assert!(lines.next().is_none());
        assert_eq!(restored, state);
        let a = haar.finalize(&state).unwrap();
        let b = haar.finalize(&restored).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }

        // A state with a missing level is rejected.
        let mut it = "hh-levels 2\nadaptive g\ncounts 0 4 0 0 0 0".lines();
        assert!(HhState::decode_state(&mut it).is_err());
        let mut it = "haar-levels 1".lines();
        assert!(HaarState::decode_state(&mut it).is_err());
    }

    #[test]
    fn fingerprints_distinguish_estimators() {
        let a = Mechanism::fingerprint(&HierarchicalHistogram::new(4, 256, 1.0).unwrap());
        let b = Mechanism::fingerprint(&HierarchicalHistogram::new(2, 256, 1.0).unwrap());
        let c = Mechanism::fingerprint(&HaarHrr::new(256, 1.0).unwrap());
        assert!(a != b && a != c);
    }
}
