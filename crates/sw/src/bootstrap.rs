//! Bootstrap confidence intervals for reconstructed distributions.
//!
//! EM/EMS gives a point estimate; a release-quality aggregator should also
//! say how much of the reconstruction is signal. This module implements the
//! **Poisson bootstrap** over the aggregated report histogram: each
//! replicate perturbs every output-bucket count `n_j → Poisson(n_j)`
//! (asymptotically equivalent to multinomial resampling, and embarrassingly
//! simple), re-runs the reconstruction, and collects percentile intervals
//! for every bucket and for derived statistics.
//!
//! Replicates are mutually independent EM runs, so they execute on the
//! shared [`ldp_pool`] worker pool: one job per replicate, each with its
//! own [`SplitMix64`] stream derived from a base seed drawn once from the
//! caller's RNG and the **replicate index**. Results are therefore
//! bit-identical regardless of pool size (`LDP_POOL_THREADS` included).

use crate::em::{reconstruct, EmConfig};
use crate::error::SwError;
use ldp_numeric::rng::mix64;
use ldp_numeric::{Histogram, LinearOperator, SplitMix64};
use rand::Rng;

/// Configuration of the bootstrap.
#[derive(Debug, Clone)]
pub struct BootstrapConfig {
    /// Number of bootstrap replicates (default 50).
    pub replicates: usize,
    /// Two-sided confidence level, e.g. 0.9 for a 90% interval.
    pub confidence: f64,
    /// Reconstruction configuration applied to every replicate.
    pub em: EmConfig,
}

impl Default for BootstrapConfig {
    fn default() -> Self {
        BootstrapConfig {
            replicates: 50,
            confidence: 0.9,
            em: EmConfig::ems(),
        }
    }
}

/// Point estimate plus per-bucket and per-statistic percentile intervals.
#[derive(Debug, Clone)]
pub struct BootstrapResult {
    /// Reconstruction from the original counts.
    pub point: Histogram,
    /// Per-bucket lower interval bounds.
    pub lower: Vec<f64>,
    /// Per-bucket upper interval bounds.
    pub upper: Vec<f64>,
    /// Interval for the distribution mean.
    pub mean_interval: (f64, f64),
    /// Interval for the median (0.5-quantile).
    pub median_interval: (f64, f64),
    /// Replicates actually used.
    pub replicates: usize,
}

/// Samples `Poisson(mean)` — Knuth's product method for small means, the
/// rounded-normal approximation for large ones (error negligible above 30).
fn sample_poisson<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> f64 {
    debug_assert!(mean >= 0.0);
    if mean == 0.0 {
        return 0.0;
    }
    if mean < 30.0 {
        let limit = (-mean).exp();
        let mut product: f64 = rng.gen();
        let mut count = 0.0;
        while product > limit {
            product *= rng.gen::<f64>();
            count += 1.0;
        }
        count
    } else {
        // Box-Muller normal approximation.
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (mean + z * mean.sqrt()).round().max(0.0)
    }
}

/// Percentile of a sorted sample (nearest-rank with clamping).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One pool job: a resampled reconstruction plus its derived statistics.
/// `None` marks a degenerate replicate (all resampled counts zero).
type Replicate = Option<(Histogram, f64, f64)>;

/// Runs the bootstrap. `m` and `counts` are exactly what
/// [`crate::em::reconstruct`] takes — pass
/// [`SwPipeline::operator`](crate::pipeline::SwPipeline::operator) to run
/// every replicate through the structured `O(d)` path.
///
/// Replicates run concurrently on the shared worker pool; `rng` is drawn
/// from exactly once (for the base seed of the per-replicate streams), so
/// the result depends only on `(m, counts, config)` and that one draw.
pub fn bootstrap<R: Rng + ?Sized, M: LinearOperator + Sync + ?Sized>(
    m: &M,
    counts: &[f64],
    config: &BootstrapConfig,
    rng: &mut R,
) -> Result<BootstrapResult, SwError> {
    if config.replicates < 2 {
        return Err(SwError::InvalidParameter(
            "bootstrap needs at least 2 replicates".into(),
        ));
    }
    if !(0.0 < config.confidence && config.confidence < 1.0) {
        return Err(SwError::InvalidParameter(format!(
            "confidence must be in (0, 1), got {}",
            config.confidence
        )));
    }
    let point = reconstruct(m, counts, &config.em)?.histogram;
    let d = point.len();

    let base_seed = rng.next_u64();
    let replicates: Vec<Result<Replicate, SwError>> = ldp_pool::global()
        .run(config.replicates, |i| {
            let mut rng = SplitMix64::new(mix64(base_seed ^ mix64(i as u64 + 1)));
            let mut resampled = vec![0.0; counts.len()];
            for (r, &c) in resampled.iter_mut().zip(counts.iter()) {
                *r = sample_poisson(c, &mut rng);
            }
            if resampled.iter().sum::<f64>() <= 0.0 {
                // Degenerate replicate (possible only for tiny populations).
                return Ok(None);
            }
            let h = reconstruct(m, &resampled, &config.em)?.histogram;
            let mean = h.mean();
            let median = h.quantile(0.5);
            Ok(Some((h, mean, median)))
        })
        .map_err(|_| SwError::Reconstruction("bootstrap replicate panicked".into()))?;

    let mut bucket_samples: Vec<Vec<f64>> = vec![Vec::with_capacity(config.replicates); d];
    let mut mean_samples = Vec::with_capacity(config.replicates);
    let mut median_samples = Vec::with_capacity(config.replicates);
    for replicate in replicates {
        let Some((h, mean, median)) = replicate? else {
            continue;
        };
        for (samples, &p) in bucket_samples.iter_mut().zip(h.probs()) {
            samples.push(p);
        }
        mean_samples.push(mean);
        median_samples.push(median);
    }
    let used = mean_samples.len();
    if used < 2 {
        return Err(SwError::Reconstruction(
            "all bootstrap replicates were degenerate".into(),
        ));
    }

    let alpha = (1.0 - config.confidence) / 2.0;
    let mut lower = Vec::with_capacity(d);
    let mut upper = Vec::with_capacity(d);
    for samples in &mut bucket_samples {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("probabilities are finite"));
        lower.push(percentile(samples, alpha));
        upper.push(percentile(samples, 1.0 - alpha));
    }
    let interval = |mut v: Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite statistics"));
        (percentile(&v, alpha), percentile(&v, 1.0 - alpha))
    };
    Ok(BootstrapResult {
        point,
        lower,
        upper,
        mean_interval: interval(mean_samples),
        median_interval: interval(median_samples),
        replicates: used,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Reconstruction, SwPipeline};
    use ldp_numeric::SplitMix64;

    fn counts_for(n: usize, seed: u64, d: usize) -> (SwPipeline, Vec<f64>, Histogram) {
        let pipeline = SwPipeline::new(1.0, d).unwrap();
        let mut rng = SplitMix64::new(seed);
        let values: Vec<f64> = (0..n)
            .map(|i| 0.3 + 0.4 * ((i % 97) as f64 / 97.0))
            .collect();
        let mut counts = vec![0.0; d];
        for &v in &values {
            let r = pipeline.randomize(v, &mut rng).unwrap();
            counts[pipeline.report_bucket(r)] += 1.0;
        }
        let truth = Histogram::from_samples(&values, d).unwrap();
        (pipeline, counts, truth)
    }

    #[test]
    fn poisson_sampler_matches_mean_and_variance() {
        let mut rng = SplitMix64::new(8001);
        for &mean in &[0.5, 5.0, 100.0] {
            let n = 20_000;
            let xs: Vec<f64> = (0..n).map(|_| sample_poisson(mean, &mut rng)).collect();
            let m = ldp_numeric::stats::mean(&xs);
            let v = ldp_numeric::stats::variance(&xs);
            assert!(
                (m - mean).abs() < mean.sqrt() * 0.1 + 0.05,
                "mean {m} vs {mean}"
            );
            assert!((v - mean).abs() < mean * 0.15 + 0.1, "var {v} vs {mean}");
        }
        assert_eq!(sample_poisson(0.0, &mut rng), 0.0);
    }

    #[test]
    fn intervals_bracket_the_point_estimate() {
        let (pipeline, counts, _) = counts_for(20_000, 8002, 32);
        let mut rng = SplitMix64::new(8003);
        let result = bootstrap(
            pipeline.transition(),
            &counts,
            &BootstrapConfig {
                replicates: 30,
                ..BootstrapConfig::default()
            },
            &mut rng,
        )
        .unwrap();
        assert_eq!(result.lower.len(), 32);
        let mut inside = 0;
        for i in 0..32 {
            assert!(result.lower[i] <= result.upper[i] + 1e-12);
            if result.point.probs()[i] >= result.lower[i] - 1e-9
                && result.point.probs()[i] <= result.upper[i] + 1e-9
            {
                inside += 1;
            }
        }
        // The point estimate should sit inside most of its own intervals.
        assert!(inside >= 28, "only {inside}/32 buckets bracket the point");
        let (lo, hi) = result.mean_interval;
        assert!(lo <= result.point.mean() && result.point.mean() <= hi);
    }

    #[test]
    fn more_users_give_tighter_intervals() {
        let mut rng = SplitMix64::new(8004);
        let mut width = |n: usize, seed: u64| -> f64 {
            let (pipeline, counts, _) = counts_for(n, seed, 16);
            let r = bootstrap(
                pipeline.transition(),
                &counts,
                &BootstrapConfig {
                    replicates: 30,
                    ..BootstrapConfig::default()
                },
                &mut rng,
            )
            .unwrap();
            r.upper
                .iter()
                .zip(&r.lower)
                .map(|(u, l)| u - l)
                .sum::<f64>()
        };
        let small = width(2_000, 8005);
        let large = width(80_000, 8006);
        assert!(
            large < small,
            "interval width should shrink with n: {large} vs {small}"
        );
    }

    #[test]
    fn median_interval_contains_truth_at_reasonable_scale() {
        let (pipeline, counts, truth) = counts_for(60_000, 8007, 32);
        let mut rng = SplitMix64::new(8008);
        let result = bootstrap(
            pipeline.transition(),
            &counts,
            &BootstrapConfig::default(),
            &mut rng,
        )
        .unwrap();
        let (lo, hi) = result.median_interval;
        let true_median = truth.quantile(0.5);
        // Allow slack: the bootstrap covers sampling noise, not mechanism
        // bias, so require proximity rather than strict coverage.
        assert!(
            true_median > lo - 0.05 && true_median < hi + 0.05,
            "median {true_median} vs [{lo}, {hi}]"
        );
    }

    #[test]
    fn validates_config() {
        let (pipeline, counts, _) = counts_for(1_000, 8009, 16);
        let mut rng = SplitMix64::new(8010);
        let bad = BootstrapConfig {
            replicates: 1,
            ..BootstrapConfig::default()
        };
        assert!(bootstrap(pipeline.transition(), &counts, &bad, &mut rng).is_err());
        let bad = BootstrapConfig {
            confidence: 1.5,
            ..BootstrapConfig::default()
        };
        assert!(bootstrap(pipeline.transition(), &counts, &bad, &mut rng).is_err());
    }

    #[test]
    fn point_estimate_matches_direct_reconstruction() {
        let (pipeline, counts, _) = counts_for(10_000, 8011, 16);
        let mut rng = SplitMix64::new(8012);
        // Run the bootstrap through the same structured operator
        // `pipeline.reconstruct` applies, so the point estimates are
        // bit-identical.
        let result = bootstrap(
            pipeline.operator(),
            &counts,
            &BootstrapConfig::default(),
            &mut rng,
        )
        .unwrap();
        let direct = pipeline
            .reconstruct(&counts, &Reconstruction::Ems)
            .unwrap()
            .histogram;
        assert_eq!(result.point.probs(), direct.probs());
    }
}
