//! [`Histogram`]: the common currency of the workspace.
//!
//! A `Histogram` is a normalized probability distribution over `d`
//! equal-width buckets of the unit interval `[0, 1]` — exactly the object
//! the paper's aggregator reconstructs and all utility metrics consume.
//! Values inside a bucket are treated as uniformly distributed when
//! evaluating the CDF, moments, quantiles and range masses (the paper's
//! "assuming uniform distribution within each bin").

use crate::error::NumericError;

/// A normalized distribution over `d` equal-width buckets of `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    probs: Vec<f64>,
}

impl Histogram {
    /// The uniform distribution over `d` buckets.
    pub fn uniform(d: usize) -> Result<Self, NumericError> {
        if d == 0 {
            return Err(NumericError::InvalidParameter(
                "histogram needs at least one bucket".into(),
            ));
        }
        Ok(Histogram {
            probs: vec![1.0 / d as f64; d],
        })
    }

    /// Builds a histogram from non-negative masses, normalizing them to sum
    /// to 1. Fails on negative/non-finite masses or a zero total.
    pub fn from_probs(mut probs: Vec<f64>) -> Result<Self, NumericError> {
        if probs.is_empty() {
            return Err(NumericError::InvalidParameter(
                "histogram needs at least one bucket".into(),
            ));
        }
        if probs.iter().any(|p| !p.is_finite() || *p < 0.0) {
            return Err(NumericError::InvalidParameter(
                "histogram masses must be finite and non-negative".into(),
            ));
        }
        let total: f64 = probs.iter().sum();
        if total <= 0.0 {
            return Err(NumericError::InvalidParameter(
                "histogram masses must have a positive sum".into(),
            ));
        }
        for p in &mut probs {
            *p /= total;
        }
        Ok(Histogram { probs })
    }

    /// Builds a histogram from event counts.
    pub fn from_counts(counts: &[u64]) -> Result<Self, NumericError> {
        Self::from_probs(counts.iter().map(|&c| c as f64).collect())
    }

    /// Buckets samples from `[0, 1]` into `d` equal-width buckets.
    /// Out-of-range samples are clamped to the boundary buckets, mirroring
    /// the paper's dataset preprocessing.
    pub fn from_samples(samples: &[f64], d: usize) -> Result<Self, NumericError> {
        if d == 0 {
            return Err(NumericError::InvalidParameter(
                "histogram needs at least one bucket".into(),
            ));
        }
        if samples.is_empty() {
            return Err(NumericError::InvalidParameter(
                "cannot build a histogram from zero samples".into(),
            ));
        }
        let mut counts = vec![0u64; d];
        for &s in samples {
            counts[bucket_of(s, d)] += 1;
        }
        Self::from_counts(&counts)
    }

    /// Number of buckets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// Always false: construction guarantees at least one bucket.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The normalized bucket masses.
    #[must_use]
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// The center value of bucket `i` in `[0, 1]`.
    #[must_use]
    pub fn bucket_center(&self, i: usize) -> f64 {
        (i as f64 + 0.5) / self.len() as f64
    }

    /// Cumulative masses: `cdf()[i] = P(X <= right edge of bucket i)`.
    #[must_use]
    pub fn cdf(&self) -> Vec<f64> {
        let mut acc = 0.0;
        self.probs
            .iter()
            .map(|p| {
                acc += p;
                acc
            })
            .collect()
    }

    /// CDF evaluated at an arbitrary point of `[0, 1]`, interpolating
    /// uniformly within the containing bucket.
    #[must_use]
    pub fn cdf_at(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        if t >= 1.0 {
            return 1.0;
        }
        let d = self.len() as f64;
        let pos = t * d;
        let i = (pos as usize).min(self.len() - 1);
        let frac = pos - i as f64;
        let below: f64 = self.probs[..i].iter().sum();
        below + self.probs[i] * frac
    }

    /// Probability mass of the value range `[lo, hi] ⊆ [0, 1]`.
    #[must_use]
    pub fn range_mass(&self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return 0.0;
        }
        self.cdf_at(hi) - self.cdf_at(lo)
    }

    /// Mean of the distribution (bucket centers as representative values).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.probs
            .iter()
            .enumerate()
            .map(|(i, p)| p * self.bucket_center(i))
            .sum()
    }

    /// Variance of the distribution (bucket centers as representative
    /// values).
    #[must_use]
    pub fn variance(&self) -> f64 {
        let m = self.mean();
        self.probs
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let c = self.bucket_center(i);
                p * (c - m) * (c - m)
            })
            .sum()
    }

    /// The β-quantile: the point `t ∈ [0, 1]` where the interpolated CDF
    /// first reaches `beta` (paper §3.2). `beta` outside `(0, 1)` clamps to
    /// the domain boundary.
    #[must_use]
    pub fn quantile(&self, beta: f64) -> f64 {
        if beta <= 0.0 {
            return 0.0;
        }
        if beta >= 1.0 {
            return 1.0;
        }
        let d = self.len() as f64;
        let mut acc = 0.0;
        for (i, &p) in self.probs.iter().enumerate() {
            if acc + p >= beta {
                let frac = if p > 0.0 { (beta - acc) / p } else { 0.0 };
                return (i as f64 + frac) / d;
            }
            acc += p;
        }
        1.0
    }

    /// Expands each bucket into `factor` equal sub-buckets with uniform
    /// within-bucket density — how CFO-with-binning estimates at a coarse
    /// granularity are compared against fine-granularity ground truth.
    pub fn expand_uniform(&self, factor: usize) -> Result<Histogram, NumericError> {
        if factor == 0 {
            return Err(NumericError::InvalidParameter(
                "expansion factor must be positive".into(),
            ));
        }
        let mut probs = Vec::with_capacity(self.len() * factor);
        for &p in &self.probs {
            for _ in 0..factor {
                probs.push(p / factor as f64);
            }
        }
        Ok(Histogram { probs })
    }

    /// Merges adjacent buckets, reducing granularity by `factor`
    /// (which must divide the current bucket count).
    pub fn coarsen(&self, factor: usize) -> Result<Histogram, NumericError> {
        if factor == 0 || !self.len().is_multiple_of(factor) {
            return Err(NumericError::InvalidParameter(format!(
                "coarsen factor {factor} must divide the bucket count {}",
                self.len()
            )));
        }
        let probs = self
            .probs
            .chunks_exact(factor)
            .map(|c| c.iter().sum())
            .collect();
        Ok(Histogram { probs })
    }
}

/// Index of the bucket containing sample `s` among `d` equal-width buckets
/// of `[0, 1]`, clamping out-of-range values.
#[must_use]
pub fn bucket_of(s: f64, d: usize) -> usize {
    debug_assert!(d > 0);
    if !s.is_finite() || s <= 0.0 {
        return 0;
    }
    ((s * d as f64) as usize).min(d - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_input() {
        assert!(Histogram::uniform(0).is_err());
        assert!(Histogram::from_probs(vec![]).is_err());
        assert!(Histogram::from_probs(vec![1.0, -0.5]).is_err());
        assert!(Histogram::from_probs(vec![0.0, 0.0]).is_err());
        assert!(Histogram::from_probs(vec![f64::NAN]).is_err());
        assert!(Histogram::from_samples(&[], 4).is_err());
        assert!(Histogram::from_samples(&[0.5], 0).is_err());
    }

    #[test]
    fn from_probs_normalizes() {
        let h = Histogram::from_probs(vec![2.0, 2.0, 4.0]).unwrap();
        assert_eq!(h.probs(), &[0.25, 0.25, 0.5]);
        assert!((h.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bucket_of_clamps_and_assigns() {
        assert_eq!(bucket_of(-0.1, 4), 0);
        assert_eq!(bucket_of(0.0, 4), 0);
        assert_eq!(bucket_of(0.24, 4), 0);
        assert_eq!(bucket_of(0.25, 4), 1);
        assert_eq!(bucket_of(0.999, 4), 3);
        assert_eq!(bucket_of(1.0, 4), 3);
        assert_eq!(bucket_of(7.0, 4), 3);
        assert_eq!(bucket_of(f64::NAN, 4), 0);
    }

    #[test]
    fn from_samples_counts_correctly() {
        let h = Histogram::from_samples(&[0.1, 0.1, 0.6, 0.9], 2).unwrap();
        assert_eq!(h.probs(), &[0.5, 0.5]);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let h = Histogram::from_probs(vec![0.1, 0.4, 0.3, 0.2]).unwrap();
        let cdf = h.cdf();
        for w in cdf.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!((cdf.last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_at_interpolates_within_buckets() {
        let h = Histogram::from_probs(vec![0.5, 0.5]).unwrap();
        assert_eq!(h.cdf_at(0.0), 0.0);
        assert!((h.cdf_at(0.25) - 0.25).abs() < 1e-12);
        assert!((h.cdf_at(0.5) - 0.5).abs() < 1e-12);
        assert!((h.cdf_at(0.75) - 0.75).abs() < 1e-12);
        assert_eq!(h.cdf_at(1.0), 1.0);
        assert_eq!(h.cdf_at(-1.0), 0.0);
        assert_eq!(h.cdf_at(2.0), 1.0);
    }

    #[test]
    fn range_mass_matches_cdf_difference() {
        let h = Histogram::from_probs(vec![0.1, 0.2, 0.3, 0.4]).unwrap();
        assert!((h.range_mass(0.0, 1.0) - 1.0).abs() < 1e-12);
        assert!((h.range_mass(0.25, 0.75) - 0.5).abs() < 1e-12);
        assert_eq!(h.range_mass(0.6, 0.4), 0.0);
    }

    #[test]
    fn mean_and_variance_of_point_mass() {
        let h = Histogram::from_probs(vec![0.0, 0.0, 1.0, 0.0]).unwrap();
        assert!((h.mean() - 0.625).abs() < 1e-12);
        assert!(h.variance().abs() < 1e-12);
    }

    #[test]
    fn mean_of_uniform_is_half() {
        let h = Histogram::uniform(256).unwrap();
        assert!((h.mean() - 0.5).abs() < 1e-12);
        // Uniform on [0,1] has variance 1/12; bucketized version is close.
        assert!((h.variance() - 1.0 / 12.0).abs() < 1e-4);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let h = Histogram::from_probs(vec![0.25, 0.25, 0.25, 0.25]).unwrap();
        for &beta in &[0.1, 0.25, 0.5, 0.733, 0.9] {
            let q = h.quantile(beta);
            assert!((h.cdf_at(q) - beta).abs() < 1e-9, "beta={beta}");
        }
        assert_eq!(h.quantile(0.0), 0.0);
        assert_eq!(h.quantile(1.0), 1.0);
        assert_eq!(h.quantile(-0.5), 0.0);
        assert_eq!(h.quantile(1.5), 1.0);
    }

    #[test]
    fn quantile_skips_zero_mass_buckets() {
        let h = Histogram::from_probs(vec![0.5, 0.0, 0.0, 0.5]).unwrap();
        let q = h.quantile(0.5);
        // Mass resumes in the final bucket; the 50% point is at its left edge
        // or the boundary of the first.
        assert!((0.25..=0.75).contains(&q), "q={q}");
        assert!((h.cdf_at(h.quantile(0.7)) - 0.7).abs() < 1e-9);
    }

    #[test]
    fn expand_then_coarsen_roundtrips() {
        let h = Histogram::from_probs(vec![0.1, 0.2, 0.3, 0.4]).unwrap();
        let e = h.expand_uniform(4).unwrap();
        assert_eq!(e.len(), 16);
        assert!((e.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        let back = e.coarsen(4).unwrap();
        for (a, b) in back.probs().iter().zip(h.probs()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn expand_preserves_cdf_at_old_boundaries() {
        let h = Histogram::from_probs(vec![0.3, 0.7]).unwrap();
        let e = h.expand_uniform(8).unwrap();
        for &t in &[0.0, 0.5, 1.0, 0.25, 0.75] {
            assert!((h.cdf_at(t) - e.cdf_at(t)).abs() < 1e-12, "t={t}");
        }
    }

    #[test]
    fn coarsen_rejects_non_divisors() {
        let h = Histogram::uniform(10).unwrap();
        assert!(h.coarsen(3).is_err());
        assert!(h.coarsen(0).is_err());
    }
}
