//! Batched, multi-threaded client-side randomization.
//!
//! A collector ingesting millions of reports should not perturb them one at
//! a time on one core — and it should not pay a thread spawn/join round
//! trip per batch either. The batch API shards the input into contiguous
//! chunks — each with an independent, deterministic [`SplitMix64`] stream
//! derived from a base seed and its **shard index** — and executes the
//! shards on the process-global [`ldp_pool`] worker pool, either
//! materializing the perturbed reports in input order
//! ([`SwPipeline::randomize_batch`]) or fusing perturbation with histogram
//! aggregation, merging one [`ShardAggregator`] per shard at the end
//! ([`SwPipeline::aggregate_batch`]). Because RNG streams attach to shard
//! indices rather than worker threads, the output for a given
//! `(seed, shards)` pair is bit-reproducible no matter how many pool
//! workers exist (`LDP_POOL_THREADS` included); changing `shards` changes
//! which stream perturbs which value, which is statistically irrelevant.

use crate::aggregator::ShardAggregator;
use crate::error::SwError;
use crate::pipeline::{Reconstruction, SwPipeline};
use ldp_numeric::rng::mix64;
use ldp_numeric::{Histogram, SplitMix64};
use parking_lot::Mutex;

/// Splits `len` items into at most `shards` contiguous chunks of
/// near-equal size (at least one item each).
fn chunk_len(len: usize, shards: usize) -> usize {
    len.div_ceil(shards).max(1)
}

/// Perturbed reports are bulk-ingested in blocks of this size, bounding
/// each aggregation shard's buffer regardless of shard length.
const INGEST_BLOCK: usize = 8 * 1024;

/// The per-shard RNG: decorrelated from the base seed and shard index.
fn shard_rng(seed: u64, shard: u64) -> SplitMix64 {
    SplitMix64::new(mix64(seed ^ mix64(shard.wrapping_add(1))))
}

fn check_shards(shards: usize) -> Result<(), SwError> {
    if shards == 0 {
        return Err(SwError::InvalidParameter(
            "worker count must be positive".into(),
        ));
    }
    Ok(())
}

/// Maps a cancelled pool batch (a panicking shard) onto the error the old
/// `std::thread::scope` implementation reported.
fn pool_panic(_: ldp_pool::PoolError) -> SwError {
    SwError::InvalidParameter("randomization worker panicked".into())
}

/// One shard's input chunk paired with its disjoint output slice, claimed
/// exactly once by the pool job owning that shard index.
type ShardSlot<'a> = Mutex<Option<(&'a [f64], &'a mut [f64])>>;

/// The default shard count for the batch API: the shared pool's size, so
/// one shard saturates each executor. This is the single place the batch
/// path consults the host parallelism (via
/// [`ldp_pool::configured_threads`], which answers without spawning the
/// pool) — it never calls `available_parallelism` on its own.
#[must_use]
pub fn default_shards() -> usize {
    ldp_pool::configured_threads()
}

impl SwPipeline {
    /// Client side, batched: perturbs every value in `values` across
    /// `shards` deterministic sub-streams, executed on the shared worker
    /// pool, returning the reports in input order.
    ///
    /// Deterministic in `(seed, shards)` — independent of pool size.
    /// Fails (without partial output) if any value lies outside `[0, 1]`.
    pub fn randomize_batch(
        &self,
        values: &[f64],
        shards: usize,
        seed: u64,
    ) -> Result<Vec<f64>, SwError> {
        check_shards(shards)?;
        if values.is_empty() {
            return Ok(Vec::new());
        }
        let chunk = chunk_len(values.len(), shards);
        let mut out = vec![0.0; values.len()];
        // Hand each shard its disjoint output slice through a take-once
        // slot: the pool's job closure is `Fn`, so exclusive access to the
        // chunk goes through interior mutability claimed exactly once.
        let slots: Vec<ShardSlot<'_>> = values
            .chunks(chunk)
            .zip(out.chunks_mut(chunk))
            .map(|pair| Mutex::new(Some(pair)))
            .collect();
        let results = ldp_pool::global()
            .run(slots.len(), |shard| {
                let (vals, slot) = slots[shard].lock().take().expect("shards claimed once");
                let mut rng = shard_rng(seed, shard as u64);
                for (v, s) in vals.iter().zip(slot.iter_mut()) {
                    *s = self.wave().randomize(*v, &mut rng)?;
                }
                Ok(())
            })
            .map_err(pool_panic)?;
        results.into_iter().collect::<Result<(), SwError>>()?;
        Ok(out)
    }

    /// [`Self::randomize_batch`] with the shard count taken from
    /// [`default_shards`] (the shared pool's size).
    pub fn randomize_batch_auto(&self, values: &[f64], seed: u64) -> Result<Vec<f64>, SwError> {
        self.randomize_batch(values, default_shards(), seed)
    }

    /// Server + client fused, batched: perturbs every value and histograms
    /// the reports, without materializing the full report vector. Each
    /// shard fills its own [`ShardAggregator`] (bulk-ingesting via
    /// [`ShardAggregator::push_slice`]); the shards are merged in order.
    ///
    /// The merged aggregator equals what [`Self::randomize_batch`] followed
    /// by sequential pushes would produce for the same `(seed, shards)`.
    pub fn aggregate_batch(
        &self,
        values: &[f64],
        shards: usize,
        seed: u64,
    ) -> Result<ShardAggregator, SwError> {
        check_shards(shards)?;
        let chunk = chunk_len(values.len(), shards);
        let chunks: Vec<&[f64]> = values.chunks(chunk).collect();
        let results = ldp_pool::global()
            .run(chunks.len(), |shard| -> Result<ShardAggregator, SwError> {
                let mut rng = shard_rng(seed, shard as u64);
                let mut agg = ShardAggregator::for_pipeline(self);
                // Perturb into a fixed-size buffer and bulk-ingest per
                // block: peak memory stays O(d̃ + block) per shard no
                // matter how many reports flow through.
                let vals = chunks[shard];
                let mut reports = Vec::with_capacity(INGEST_BLOCK.min(vals.len()));
                for block in vals.chunks(INGEST_BLOCK) {
                    reports.clear();
                    for &v in block {
                        reports.push(self.wave().randomize(v, &mut rng)?);
                    }
                    agg.push_slice(&reports)?;
                }
                Ok(agg)
            })
            .map_err(pool_panic)?;
        let mut merged = ShardAggregator::for_pipeline(self);
        for shard in results {
            merged.merge(&shard?)?;
        }
        Ok(merged)
    }

    /// [`Self::aggregate_batch`] with the shard count taken from
    /// [`default_shards`] (the shared pool's size).
    pub fn aggregate_batch_auto(
        &self,
        values: &[f64],
        seed: u64,
    ) -> Result<ShardAggregator, SwError> {
        self.aggregate_batch(values, default_shards(), seed)
    }

    /// Full batched pipeline: randomize + aggregate across the worker
    /// pool, then reconstruct through the structured operator.
    pub fn estimate_batch(
        &self,
        values: &[f64],
        method: &Reconstruction,
        shards: usize,
        seed: u64,
    ) -> Result<Histogram, SwError> {
        if values.is_empty() {
            return Err(SwError::Reconstruction(
                "need at least one user report".into(),
            ));
        }
        let agg = self.aggregate_batch(values, shards, seed)?;
        Ok(self.reconstruct(&agg.to_counts(), method)?.histogram)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipeline() -> SwPipeline {
        SwPipeline::new(1.0, 32).unwrap()
    }

    fn values(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i % 199) as f64 / 199.0).collect()
    }

    #[test]
    fn batch_is_deterministic_in_seed_and_shards() {
        let p = pipeline();
        let vals = values(3_000);
        let a = p.randomize_batch(&vals, 4, 99).unwrap();
        let b = p.randomize_batch(&vals, 4, 99).unwrap();
        assert_eq!(a, b);
        let c = p.randomize_batch(&vals, 4, 100).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn batch_reports_stay_in_output_domain() {
        let p = pipeline();
        let vals = values(2_000);
        let (lo, hi) = (p.wave().output_lo(), p.wave().output_hi());
        for shards in [1, 2, 3, 8] {
            let reports = p.randomize_batch(&vals, shards, 7).unwrap();
            assert_eq!(reports.len(), vals.len());
            assert!(reports.iter().all(|&r| r >= lo && r <= hi));
        }
    }

    #[test]
    fn aggregate_batch_matches_randomize_then_push() {
        let p = pipeline();
        let vals = values(5_000);
        for shards in [1, 3, 7] {
            let reports = p.randomize_batch(&vals, shards, 42).unwrap();
            let mut direct = ShardAggregator::for_pipeline(&p);
            direct.push_slice(&reports).unwrap();
            let fused = p.aggregate_batch(&vals, shards, 42).unwrap();
            assert_eq!(fused, direct);
        }
    }

    #[test]
    fn batch_validates_inputs() {
        let p = pipeline();
        assert!(p.randomize_batch(&[0.5], 0, 1).is_err());
        assert!(p.aggregate_batch(&[0.5], 0, 1).is_err());
        assert!(p.randomize_batch(&[1.5], 2, 1).is_err());
        assert!(p.aggregate_batch(&[f64::NAN], 2, 1).is_err());
        assert!(p.randomize_batch(&[], 4, 1).unwrap().is_empty());
        assert_eq!(p.aggregate_batch(&[], 4, 1).unwrap().total(), 0);
        assert!(p.estimate_batch(&[], &Reconstruction::Ems, 4, 1).is_err());
    }

    #[test]
    fn more_shards_than_values_is_fine() {
        let p = pipeline();
        let reports = p.randomize_batch(&[0.25, 0.75], 16, 5).unwrap();
        assert_eq!(reports.len(), 2);
    }

    #[test]
    fn auto_variants_agree_with_explicit_pool_sized_calls() {
        let p = pipeline();
        let vals = values(1_500);
        let shards = default_shards();
        assert!(shards >= 1);
        let auto = p.randomize_batch_auto(&vals, 3).unwrap();
        let explicit = p.randomize_batch(&vals, shards, 3).unwrap();
        assert_eq!(auto, explicit);
        let auto = p.aggregate_batch_auto(&vals, 3).unwrap();
        let explicit = p.aggregate_batch(&vals, shards, 3).unwrap();
        assert_eq!(auto, explicit);
    }

    #[test]
    fn estimate_batch_recovers_concentrated_mass() {
        let p = pipeline();
        let vals: Vec<f64> = (0..40_000)
            .map(|i| 0.4 + 0.2 * ((i % 331) as f64 / 331.0))
            .collect();
        let h = p
            .estimate_batch(&vals, &Reconstruction::Ems, 4, 11)
            .unwrap();
        let mass = h.range_mass(0.3, 0.7);
        assert!(mass > 0.8, "mass {mass}");
    }
}
