//! Smoke test: every binary under `examples/` must compile.
//!
//! `cargo test` does not build example targets by default, so a broken
//! example would otherwise only surface in CI's `cargo build --examples`
//! step. This test shells out to cargo (the same toolchain that is running
//! the tests, via `$CARGO`) and fails with the compiler output if any
//! example is broken.

use std::path::Path;
use std::process::Command;

#[test]
fn all_examples_compile() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    assert!(
        Path::new(manifest_dir).join("examples").is_dir(),
        "examples/ directory missing"
    );
    let output = Command::new(cargo)
        .args(["build", "--examples", "--quiet"])
        .current_dir(manifest_dir)
        .output()
        .expect("failed to spawn cargo");
    assert!(
        output.status.success(),
        "cargo build --examples failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
}
