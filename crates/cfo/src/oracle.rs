//! The [`FrequencyOracle`] abstraction shared by all CFO protocols.

use crate::error::CfoError;
use rand::Rng;

/// A categorical frequency oracle: a client-side randomizer plus the
/// matching server-side unbiased estimator.
///
/// All oracles operate over the domain `{0, …, domain_size()-1}` and
/// guarantee ε-LDP for [`FrequencyOracle::randomize`].
pub trait FrequencyOracle {
    /// What one user sends to the aggregator.
    type Report;

    /// Size `d` of the categorical input domain.
    fn domain_size(&self) -> usize;

    /// The privacy budget ε the randomizer satisfies.
    fn epsilon(&self) -> f64;

    /// Client side: randomizes one private value.
    fn randomize<R: Rng + ?Sized>(
        &self,
        value: usize,
        rng: &mut R,
    ) -> Result<Self::Report, CfoError>;

    /// Server side: turns all collected reports into unbiased frequency
    /// estimates (one per domain value, approximately summing to 1; entries
    /// may be negative before post-processing).
    fn aggregate(&self, reports: &[Self::Report]) -> Vec<f64>;

    /// Approximate variance of a single frequency estimate given `n`
    /// reports, used for oracle selection and constrained inference weights.
    fn estimate_variance(&self, n: usize) -> f64;

    /// Convenience: randomizes every value in `values` and aggregates.
    fn run<R: Rng + ?Sized>(&self, values: &[usize], rng: &mut R) -> Result<Vec<f64>, CfoError> {
        let mut reports = Vec::with_capacity(values.len());
        for &v in values {
            reports.push(self.randomize(v, rng)?);
        }
        Ok(self.aggregate(&reports))
    }
}

/// Checks a value against the oracle's domain; shared helper.
pub(crate) fn check_value(value: usize, domain: usize) -> Result<(), CfoError> {
    if value >= domain {
        return Err(CfoError::ValueOutOfDomain { value, domain });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value_bounds() {
        assert!(check_value(0, 4).is_ok());
        assert!(check_value(3, 4).is_ok());
        assert!(check_value(4, 4).is_err());
    }
}
