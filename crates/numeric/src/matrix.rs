//! A dense row-major matrix with the linear-algebra kernels the EM/EMS and
//! ADMM solvers need.
//!
//! Deliberately minimal: the workspace's matrices are transition matrices
//! (a few thousand rows/columns at most), so a contiguous `Vec<f64>` with
//! cache-friendly row-major matvec kernels is both the simplest and the
//! fastest option — no sparse formats, no external BLAS.

use crate::error::NumericError;
use std::fmt;

/// Dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix by evaluating `f(row, col)` for every entry.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a row-major data vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, NumericError> {
        if data.len() != rows * cols {
            return Err(NumericError::DimensionMismatch {
                expected: format!("{} elements ({rows}x{cols})", rows * cols),
                actual: format!("{} elements", data.len()),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable entry access.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Mutable entry access.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// A row as a slice.
    #[inline]
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// A mutable row slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The underlying row-major data.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// `y = A·x`, writing into a caller-provided buffer to avoid per-call
    /// allocation in the EM inner loop.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) -> Result<(), NumericError> {
        if x.len() != self.cols || y.len() != self.rows {
            return Err(NumericError::DimensionMismatch {
                expected: format!("x of length {}, y of length {}", self.cols, self.rows),
                actual: format!("x of length {}, y of length {}", x.len(), y.len()),
            });
        }
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x.iter()) {
                acc += a * b;
            }
            *yi = acc;
        }
        Ok(())
    }

    /// `y = A·x` returning a fresh vector.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, NumericError> {
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y)?;
        Ok(y)
    }

    /// `y = Aᵀ·x`, writing into a caller-provided buffer.
    pub fn matvec_transpose_into(&self, x: &[f64], y: &mut [f64]) -> Result<(), NumericError> {
        if x.len() != self.rows || y.len() != self.cols {
            return Err(NumericError::DimensionMismatch {
                expected: format!("x of length {}, y of length {}", self.rows, self.cols),
                actual: format!("x of length {}, y of length {}", x.len(), y.len()),
            });
        }
        y.fill(0.0);
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            for (yj, a) in y.iter_mut().zip(row.iter()) {
                *yj += a * xi;
            }
        }
        Ok(())
    }

    /// `y = Aᵀ·x` returning a fresh vector.
    pub fn matvec_transpose(&self, x: &[f64]) -> Result<Vec<f64>, NumericError> {
        let mut y = vec![0.0; self.cols];
        self.matvec_transpose_into(x, &mut y)?;
        Ok(y)
    }

    /// Sums of each column. For a transition matrix these should all be 1.
    #[must_use]
    pub fn column_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols];
        for i in 0..self.rows {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            for (s, a) in sums.iter_mut().zip(row.iter()) {
                *s += a;
            }
        }
        sums
    }

    /// Rescales each column so it sums to 1 (columns summing to 0 are left
    /// untouched). Used to make numerically-integrated transition matrices
    /// exactly column-stochastic.
    pub fn normalize_columns(&mut self) {
        let sums = self.column_sums();
        for row in self.data.chunks_exact_mut(self.cols) {
            for (v, &s) in row.iter_mut().zip(&sums) {
                if s > 0.0 {
                    *v /= s;
                }
            }
        }
    }

    /// True if all entries are finite and non-negative.
    #[must_use]
    pub fn is_nonnegative(&self) -> bool {
        self.data.iter().all(|&v| v.is_finite() && v >= 0.0)
    }

    /// The Gram matrix `AᵀA` (always square `cols × cols`).
    #[must_use]
    #[allow(clippy::needless_range_loop)] // symmetric triangular indexing
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut g = Matrix::zeros(n, n);
        for row in 0..self.rows {
            let r = &self.data[row * n..(row + 1) * n];
            for i in 0..n {
                let ri = r[i];
                if ri == 0.0 {
                    continue;
                }
                for j in i..n {
                    g.data[i * n + j] += ri * r[j];
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..n {
            for j in 0..i {
                g.data[i * n + j] = g.data[j * n + i];
            }
        }
        g
    }

    /// Solves the least-squares problem `min ‖A·x − b‖₂² + λ‖x‖₂²` through
    /// the ridge-regularized normal equations `(AᵀA + λI)x = Aᵀb`.
    ///
    /// With `λ > 0` this succeeds even when `A` itself is singular — which
    /// genuinely happens for square-wave transition matrices (a boxcar
    /// kernel has sinc-zeros in its spectrum).
    pub fn ridge_solve(&self, b: &[f64], lambda: f64) -> Result<Vec<f64>, NumericError> {
        if b.len() != self.rows {
            return Err(NumericError::DimensionMismatch {
                expected: format!("rhs of length {}", self.rows),
                actual: format!("rhs of length {}", b.len()),
            });
        }
        if !(lambda >= 0.0) || !lambda.is_finite() {
            return Err(NumericError::InvalidParameter(format!(
                "ridge parameter must be finite and non-negative, got {lambda}"
            )));
        }
        let mut gram = self.gram();
        for i in 0..gram.cols {
            let idx = i * gram.cols + i;
            gram.data[idx] += lambda;
        }
        let atb = self.matvec_transpose(b)?;
        gram.solve(&atb)
    }

    /// Solves the square system `A·x = b` by Gaussian elimination with
    /// partial pivoting. Fails on non-square `A`, mismatched `b`, or a
    /// numerically singular matrix.
    ///
    /// Used by the unbiased-inversion reconstruction baseline; transition
    /// matrices are a few hundred columns, where O(d³) elimination is
    /// cheap and more robust than iterative solvers on their moderately
    /// conditioned columns.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericError> {
        let n = self.rows;
        if self.rows != self.cols {
            return Err(NumericError::DimensionMismatch {
                expected: "square matrix".into(),
                actual: format!("{}x{}", self.rows, self.cols),
            });
        }
        if b.len() != n {
            return Err(NumericError::DimensionMismatch {
                expected: format!("rhs of length {n}"),
                actual: format!("rhs of length {}", b.len()),
            });
        }
        // Augmented working copy.
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        for col in 0..n {
            // Partial pivot.
            let mut pivot = col;
            let mut best = a[col * n + col].abs();
            for row in col + 1..n {
                let mag = a[row * n + col].abs();
                if mag > best {
                    best = mag;
                    pivot = row;
                }
            }
            if best < 1e-12 {
                return Err(NumericError::InvalidParameter(format!(
                    "matrix is numerically singular at column {col}"
                )));
            }
            if pivot != col {
                for k in 0..n {
                    a.swap(col * n + k, pivot * n + k);
                }
                x.swap(col, pivot);
            }
            let diag = a[col * n + col];
            for row in col + 1..n {
                let factor = a[row * n + col] / diag;
                if factor == 0.0 {
                    continue;
                }
                a[row * n + col] = 0.0;
                for k in col + 1..n {
                    a[row * n + k] -= factor * a[col * n + k];
                }
                x[row] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut acc = x[col];
            for k in col + 1..n {
                acc -= a[col * n + k] * x[k];
            }
            x[col] = acc / a[col * n + col];
        }
        Ok(x)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(6);
        for i in 0..show {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:9.4}", self.get(i, j))?;
            }
            writeln!(f, "{}]", if self.cols > 8 { " ..." } else { "" })?;
        }
        if self.rows > show {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

/// Elementwise vector helpers used by the ADMM and EM solvers.
pub mod vecops {
    /// `out = a + b` elementwise.
    pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(x, y)| x + y).collect()
    }

    /// `out = a - b` elementwise.
    pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(x, y)| x - y).collect()
    }

    /// `out = s * a` elementwise.
    pub fn scale(a: &[f64], s: f64) -> Vec<f64> {
        a.iter().map(|x| x * s).collect()
    }

    /// L1 norm.
    #[must_use]
    pub fn norm_l1(a: &[f64]) -> f64 {
        a.iter().map(|x| x.abs()).sum()
    }

    /// L2 norm.
    #[must_use]
    pub fn norm_l2(a: &[f64]) -> f64 {
        a.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Dot product.
    #[must_use]
    pub fn dot(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    /// Sum of entries.
    #[must_use]
    pub fn sum(a: &[f64]) -> f64 {
        a.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::vecops;
    use super::*;

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn matvec_known_answer() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let y = a.matvec(&[1.0, 0.5, -1.0]).unwrap();
        assert_eq!(y, vec![1.0 + 1.0 - 3.0, 4.0 + 2.5 - 6.0]);
    }

    #[test]
    fn matvec_transpose_known_answer() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let y = a.matvec_transpose(&[2.0, -1.0]).unwrap();
        assert_eq!(y, vec![2.0 - 4.0, 4.0 - 5.0, 6.0 - 6.0]);
    }

    #[test]
    fn matvec_dimension_errors() {
        let a = Matrix::zeros(2, 3);
        assert!(a.matvec(&[1.0, 2.0]).is_err());
        assert!(a.matvec_transpose(&[1.0, 2.0, 3.0]).is_err());
        let mut y = vec![0.0; 5];
        assert!(a.matvec_into(&[1.0, 2.0, 3.0], &mut y).is_err());
    }

    #[test]
    fn column_normalization_makes_stochastic() {
        let mut a = Matrix::from_fn(3, 2, |i, j| (i + j + 1) as f64);
        a.normalize_columns();
        for s in a.column_sums() {
            assert!((s - 1.0).abs() < 1e-12);
        }
        assert!(a.is_nonnegative());
    }

    #[test]
    fn normalize_skips_zero_columns() {
        let mut a = Matrix::zeros(2, 2);
        a.set(0, 0, 2.0);
        a.set(1, 0, 2.0);
        a.normalize_columns();
        assert_eq!(a.get(0, 1), 0.0);
        assert!((a.get(0, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn transpose_consistency_roundtrip() {
        // <A x, y> == <x, A^T y> for random-ish data.
        let a = Matrix::from_fn(4, 3, |i, j| ((i * 7 + j * 13) % 5) as f64 - 2.0);
        let x = [0.3, -1.0, 2.0];
        let y = [1.0, 0.5, -0.25, 2.0];
        let ax = a.matvec(&x).unwrap();
        let aty = a.matvec_transpose(&y).unwrap();
        let lhs: f64 = ax.iter().zip(y.iter()).map(|(p, q)| p * q).sum();
        let rhs: f64 = x.iter().zip(aty.iter()).map(|(p, q)| p * q).sum();
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn solve_known_system() {
        // [2 1; 1 3] x = [5; 10] -> x = [1, 3].
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 3.0]).unwrap();
        let x = a.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let x = a.solve(&[7.0, -2.0]).unwrap();
        assert!((x[0] + 2.0).abs() < 1e-12);
        assert!((x[1] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn solve_roundtrips_with_matvec() {
        let n = 12;
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                4.0
            } else {
                1.0 / (1.0 + (i as f64 - j as f64).abs())
            }
        });
        let truth: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let b = a.matvec(&truth).unwrap();
        let x = a.solve(&b).unwrap();
        for (got, want) in x.iter().zip(&truth) {
            assert!((got - want).abs() < 1e-9);
        }
    }

    #[test]
    fn gram_matches_direct_computation() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 0.5, -1.0, 2.0, 0.0]).unwrap();
        let g = a.gram();
        assert_eq!(g.rows(), 2);
        assert_eq!(g.cols(), 2);
        // AᵀA = [[1+0.25+4, 2-0.5+0], [2-0.5+0, 4+1+0]].
        assert!((g.get(0, 0) - 5.25).abs() < 1e-12);
        assert!((g.get(0, 1) - 1.5).abs() < 1e-12);
        assert!((g.get(1, 0) - 1.5).abs() < 1e-12);
        assert!((g.get(1, 1) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn ridge_solve_recovers_well_posed_systems() {
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 3.0]).unwrap();
        let x = a.ridge_solve(&[5.0, 10.0], 0.0).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn ridge_solve_handles_singular_matrices() {
        // Rank-1 matrix: plain solve fails, ridge succeeds and returns the
        // minimum-norm-ish solution.
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        assert!(a.solve(&[1.0, 2.0]).is_err());
        let x = a.ridge_solve(&[1.0, 2.0], 1e-8).unwrap();
        // A·x ≈ b.
        let ax = a.matvec(&x).unwrap();
        assert!((ax[0] - 1.0).abs() < 1e-4);
        assert!((ax[1] - 2.0).abs() < 1e-4);
    }

    #[test]
    fn ridge_solve_validates() {
        let a = Matrix::zeros(2, 2);
        assert!(a.ridge_solve(&[1.0], 0.1).is_err());
        assert!(a.ridge_solve(&[1.0, 1.0], f64::NAN).is_err());
        assert!(a.ridge_solve(&[1.0, 1.0], -1.0).is_err());
    }

    #[test]
    fn solve_rejects_bad_inputs() {
        let rect = Matrix::zeros(2, 3);
        assert!(rect.solve(&[1.0, 2.0]).is_err());
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]).unwrap(); // singular
        assert!(a.solve(&[1.0, 2.0]).is_err());
        let ok = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        assert!(ok.solve(&[1.0]).is_err());
    }

    #[test]
    fn vecops_basics() {
        let a = [1.0, -2.0, 3.0];
        let b = [0.5, 0.5, 0.5];
        assert_eq!(vecops::add(&a, &b), vec![1.5, -1.5, 3.5]);
        assert_eq!(vecops::sub(&a, &b), vec![0.5, -2.5, 2.5]);
        assert_eq!(vecops::scale(&a, 2.0), vec![2.0, -4.0, 6.0]);
        assert!((vecops::norm_l1(&a) - 6.0).abs() < 1e-12);
        assert!((vecops::norm_l2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert!((vecops::dot(&a, &b) - 1.0).abs() < 1e-12);
        assert!((vecops::sum(&a) - 2.0).abs() < 1e-12);
    }
}
