//! End-to-end Square Wave pipeline: the public API a deployment would use.
//!
//! Client side: [`SwPipeline::randomize`] perturbs one private value in
//! `[0, 1]`. Server side: [`SwPipeline::aggregate`] histograms the perturbed
//! reports ("randomize before bucketize", §5.4) and
//! [`SwPipeline::reconstruct`] runs EM/EMS through the exact transition
//! matrix to recover the input distribution.

use crate::bandwidth::optimal_b;
use crate::em::{reconstruct, EmConfig, EmResult};
use crate::error::SwError;
use crate::operator::BandedBaselineOperator;
use crate::transition::transition_matrix;
use crate::wave::{Wave, WaveShape};
use ldp_numeric::{Histogram, Matrix};
use rand::Rng;
use std::sync::OnceLock;

/// Which reconstruction the aggregator runs.
#[derive(Debug, Clone)]
pub enum Reconstruction {
    /// Plain EM with the paper's `τ = 10⁻³·eᵉ` stopping rule.
    Em,
    /// EM with smoothing (the paper's recommended estimator).
    Ems,
    /// Fully custom configuration.
    Custom(EmConfig),
}

/// A configured Square Wave (or general wave) estimation pipeline.
///
/// Reconstruction runs through the structured
/// [`BandedBaselineOperator`]; the dense `d̃ × d` matrix is only needed by
/// entrywise consumers (the inversion baseline, [`SwPipeline::transition`])
/// and is built **lazily on first access**, so the estimation hot path
/// never pays its `O(d̃·d)` construction or memory.
#[derive(Debug, Clone)]
pub struct SwPipeline {
    wave: Wave,
    d: usize,
    d_tilde: usize,
    /// Dense transition matrix, built on first [`Self::transition`] call.
    dense: OnceLock<Matrix>,
    operator: BandedBaselineOperator,
}

impl SwPipeline {
    /// The paper's default: square wave, mutual-information-optimal `b`,
    /// `d̃ = d` output buckets.
    pub fn new(eps: f64, d: usize) -> Result<Self, SwError> {
        let b = optimal_b(eps)?;
        let wave = Wave::square(b, eps)?;
        Self::with_wave(wave, d, d)
    }

    /// A pipeline over an explicit wave and bucket counts (used by the
    /// Figure 5/6/7 ablations).
    pub fn with_wave(wave: Wave, d: usize, d_tilde: usize) -> Result<Self, SwError> {
        if d < 2 || d_tilde < 2 {
            return Err(SwError::InvalidParameter(format!(
                "need at least 2 buckets on both sides, got d={d}, d_tilde={d_tilde}"
            )));
        }
        let operator = BandedBaselineOperator::from_wave(&wave, d, d_tilde)?;
        Ok(SwPipeline {
            wave,
            d,
            d_tilde,
            dense: OnceLock::new(),
            operator,
        })
    }

    /// The wave in use.
    #[must_use]
    pub fn wave(&self) -> &Wave {
        &self.wave
    }

    /// Input granularity `d`.
    #[must_use]
    pub fn input_buckets(&self) -> usize {
        self.d
    }

    /// Output granularity `d̃`.
    #[must_use]
    pub fn output_buckets(&self) -> usize {
        self.d_tilde
    }

    /// The exact `d̃ × d` transition matrix (dense; kept for consumers that
    /// need entrywise access, e.g. the unbiased-inversion baseline).
    ///
    /// Built lazily on the first call and cached; the estimation paths
    /// ([`Self::estimate`], [`Self::estimate_batch`], [`Self::reconstruct`])
    /// never trigger the construction. Check with
    /// [`Self::dense_transition_built`].
    #[must_use]
    pub fn transition(&self) -> &Matrix {
        self.dense.get_or_init(|| {
            transition_matrix(&self.wave, self.d, self.d_tilde)
                .expect("bucket counts were validated at pipeline construction")
        })
    }

    /// Whether the dense transition matrix has been materialized. The
    /// estimation hot path must keep this `false`; only
    /// [`Self::transition`] (and through it the inversion baseline) flips
    /// it.
    #[must_use]
    pub fn dense_transition_built(&self) -> bool {
        self.dense.get().is_some()
    }

    /// The structured `O(d)`-matvec form of the transition matrix. This is
    /// what [`Self::reconstruct`] applies; use it wherever a
    /// [`ldp_numeric::LinearOperator`] is accepted (e.g.
    /// [`crate::bootstrap::bootstrap`]) to stay on the fast path.
    #[must_use]
    pub fn operator(&self) -> &BandedBaselineOperator {
        &self.operator
    }

    /// Client side: perturbs one private value.
    pub fn randomize<R: Rng + ?Sized>(&self, v: f64, rng: &mut R) -> Result<f64, SwError> {
        self.wave.randomize(v, rng)
    }

    /// Output bucket index of a perturbed report.
    #[must_use]
    pub fn report_bucket(&self, v_tilde: f64) -> usize {
        let lo = self.wave.output_lo();
        let span = self.wave.output_hi() - lo;
        let pos = ((v_tilde - lo) / span * self.d_tilde as f64) as isize;
        pos.clamp(0, self.d_tilde as isize - 1) as usize
    }

    /// Server side: histograms perturbed reports into `d̃` buckets.
    #[must_use]
    pub fn aggregate(&self, reports: &[f64]) -> Vec<f64> {
        let mut counts = vec![0.0; self.d_tilde];
        for &r in reports {
            counts[self.report_bucket(r)] += 1.0;
        }
        counts
    }

    /// Server side: reconstructs the input distribution from aggregated
    /// counts.
    pub fn reconstruct(
        &self,
        counts: &[f64],
        method: &Reconstruction,
    ) -> Result<EmResult, SwError> {
        let config = match method {
            Reconstruction::Em => EmConfig::em(self.wave.epsilon()),
            Reconstruction::Ems => EmConfig::ems(),
            Reconstruction::Custom(c) => c.clone(),
        };
        reconstruct(&self.operator, counts, &config)
    }

    /// Full pipeline: randomize every value, aggregate, reconstruct.
    pub fn estimate<R: Rng + ?Sized>(
        &self,
        values: &[f64],
        method: &Reconstruction,
        rng: &mut R,
    ) -> Result<Histogram, SwError> {
        if values.is_empty() {
            return Err(SwError::Reconstruction(
                "need at least one user report".into(),
            ));
        }
        let mut counts = vec![0.0; self.d_tilde];
        for &v in values {
            let r = self.wave.randomize(v, rng)?;
            counts[self.report_bucket(r)] += 1.0;
        }
        Ok(self.reconstruct(&counts, method)?.histogram)
    }
}

/// Convenience constructor for the Figure 5 wave-shape sweep.
pub fn pipeline_with_shape(
    shape: WaveShape,
    b: f64,
    eps: f64,
    d: usize,
) -> Result<SwPipeline, SwError> {
    SwPipeline::with_wave(Wave::new(shape, b, eps)?, d, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_numeric::dist::{Beta, Sampler};
    use ldp_numeric::SplitMix64;

    #[test]
    fn construction_validates() {
        assert!(SwPipeline::new(0.0, 64).is_err());
        assert!(SwPipeline::new(1.0, 1).is_err());
        assert!(SwPipeline::new(1.0, 64).is_ok());
    }

    #[test]
    fn report_bucket_covers_output_domain() {
        let p = SwPipeline::new(1.0, 16).unwrap();
        let lo = p.wave().output_lo();
        let hi = p.wave().output_hi();
        assert_eq!(p.report_bucket(lo), 0);
        assert_eq!(p.report_bucket(hi), 15);
        assert_eq!(p.report_bucket(lo - 1.0), 0);
        assert_eq!(p.report_bucket(hi + 1.0), 15);
        // Monotone.
        let mut last = 0;
        for k in 0..=100 {
            let v = lo + (hi - lo) * k as f64 / 100.0;
            let b = p.report_bucket(v);
            assert!(b >= last);
            last = b;
        }
    }

    #[test]
    fn ems_recovers_beta_distribution_shape() {
        let d = 64;
        let pipeline = SwPipeline::new(1.0, d).unwrap();
        let mut rng = SplitMix64::new(131);
        let beta = Beta::new(5.0, 2.0).unwrap();
        let values = beta.sample_n(&mut rng, 100_000);
        let truth = Histogram::from_samples(&values, d).unwrap();
        let est = pipeline
            .estimate(&values, &Reconstruction::Ems, &mut rng)
            .unwrap();
        // Wasserstein distance between CDFs should be small.
        let mut w1 = 0.0;
        let (tc, ec) = (truth.cdf(), est.cdf());
        for (a, b) in tc.iter().zip(&ec) {
            w1 += (a - b).abs() / d as f64;
        }
        assert!(w1 < 0.02, "W1 = {w1}");
        // Mode of Beta(5,2) is 0.8; reconstruction should peak in the right
        // half.
        let peak = est
            .probs()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(peak > d / 2, "peak at bucket {peak}");
    }

    #[test]
    fn em_and_ems_both_run_through_pipeline() {
        let pipeline = SwPipeline::new(0.5, 32).unwrap();
        let mut rng = SplitMix64::new(132);
        let values: Vec<f64> = (0..20_000).map(|i| (i % 1000) as f64 / 1000.0).collect();
        for method in [Reconstruction::Em, Reconstruction::Ems] {
            let h = pipeline.estimate(&values, &method, &mut rng).unwrap();
            assert_eq!(h.len(), 32);
            assert!((h.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn custom_reconstruction_config_is_honored() {
        let pipeline = SwPipeline::new(1.0, 16).unwrap();
        let counts = vec![100.0; 16];
        let custom = Reconstruction::Custom(EmConfig {
            ll_threshold: 0.0,
            max_iterations: 3,
            min_iterations: 4,
            smoothing: None,
        });
        let r = pipeline.reconstruct(&counts, &custom).unwrap();
        assert_eq!(r.iterations, 3);
        assert!(!r.converged);
    }

    #[test]
    fn estimate_rejects_empty_and_bad_values() {
        let pipeline = SwPipeline::new(1.0, 16).unwrap();
        let mut rng = SplitMix64::new(133);
        assert!(pipeline
            .estimate(&[], &Reconstruction::Ems, &mut rng)
            .is_err());
        assert!(pipeline
            .estimate(&[2.0], &Reconstruction::Ems, &mut rng)
            .is_err());
    }

    #[test]
    fn different_output_granularity_is_supported() {
        let wave = Wave::square(0.25, 1.0).unwrap();
        let pipeline = SwPipeline::with_wave(wave, 16, 24).unwrap();
        assert_eq!(pipeline.input_buckets(), 16);
        assert_eq!(pipeline.output_buckets(), 24);
        let mut rng = SplitMix64::new(134);
        let values: Vec<f64> = (0..10_000).map(|i| (i % 100) as f64 / 100.0).collect();
        let h = pipeline
            .estimate(&values, &Reconstruction::Ems, &mut rng)
            .unwrap();
        assert_eq!(h.len(), 16);
    }

    #[test]
    fn estimation_paths_never_build_the_dense_matrix() {
        let pipeline = SwPipeline::new(1.0, 32).unwrap();
        assert!(!pipeline.dense_transition_built());
        let mut rng = SplitMix64::new(900);
        let values: Vec<f64> = (0..5_000).map(|i| (i % 100) as f64 / 100.0).collect();
        pipeline
            .estimate(&values, &Reconstruction::Ems, &mut rng)
            .unwrap();
        assert!(!pipeline.dense_transition_built());
        pipeline
            .estimate_batch(&values, &Reconstruction::Ems, 3, 5)
            .unwrap();
        assert!(!pipeline.dense_transition_built());
        pipeline
            .reconstruct(&vec![10.0; 32], &Reconstruction::Em)
            .unwrap();
        assert!(!pipeline.dense_transition_built());
    }

    #[test]
    fn lazy_transition_equals_eager_construction() {
        let pipeline = SwPipeline::new(1.5, 24).unwrap();
        let eager = transition_matrix(pipeline.wave(), 24, 24).unwrap();
        let lazy = pipeline.transition();
        assert!(pipeline.dense_transition_built());
        assert_eq!((lazy.rows(), lazy.cols()), (eager.rows(), eager.cols()));
        for j in 0..lazy.rows() {
            for i in 0..lazy.cols() {
                assert_eq!(lazy.get(j, i), eager.get(j, i), "entry ({j}, {i})");
            }
        }
        // Repeated access returns the cached instance, not a rebuild.
        assert!(std::ptr::eq(pipeline.transition(), lazy));
    }

    #[test]
    fn shape_helper_builds_all_shapes() {
        for shape in [
            WaveShape::Square,
            WaveShape::Trapezoid { ratio: 0.6 },
            WaveShape::Triangle,
        ] {
            assert!(pipeline_with_shape(shape, 0.2, 1.0, 16).is_ok());
        }
    }
}
