//! Stress tests for the concurrent serve path: many sessions, bounded
//! queues, interleaved snapshot writes — and the contract that makes it
//! all auditable: the concurrent window is **bit-identical** to a serial
//! single-connection ingest of the same log.

use ldp_collector::build_session;
use ldp_collector::server::{serve, write_frame, ServeOptions, SnapshotPolicy};
use ldp_collector::CollectorSession;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;

const SPEC: &str = "sw-ems:eps=1,d=32";

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ldp-stress-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Splits one generated report log into `connections` chunks of
/// `frame_len`-line frames (the same split every test uses, so the
/// serial reference ingests exactly the bytes the fleet sends).
fn fleet_frames(log: &str, connections: usize, frame_len: usize) -> Vec<Vec<String>> {
    let lines: Vec<&str> = log.lines().collect();
    let per_conn = lines.len() / connections;
    (0..connections)
        .map(|c| {
            lines[c * per_conn..(c + 1) * per_conn]
                .chunks(frame_len)
                .map(|chunk| chunk.join("\n"))
                .collect()
        })
        .collect()
}

/// Streams `frames` over one session, asserting a `+` ack per frame,
/// then sends the end-of-stream frame.
fn stream_session(addr: SocketAddr, frames: &[String]) {
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut ack = [0u8; 1];
    for frame in frames {
        write_frame(&mut stream, frame).unwrap();
        stream.read_exact(&mut ack).unwrap();
        assert_eq!(ack[0], b'+', "frame rejected under stress");
    }
    stream.write_all(&0u32.to_be_bytes()).unwrap();
    stream.read_exact(&mut ack).unwrap();
    assert_eq!(ack[0], b'+', "end-of-stream rejected");
}

/// Runs `serve` on its own thread for `connections` sessions and returns
/// (summary, final session) once the fleet hangs up.
fn serve_fleet(
    listener: TcpListener,
    policy: SnapshotPolicy,
    options: ServeOptions,
) -> std::thread::JoinHandle<(
    ldp_collector::server::ServeSummary,
    Box<dyn CollectorSession>,
)> {
    std::thread::spawn(move || {
        let mut session = build_session(SPEC).unwrap();
        let summary = serve(&listener, session.as_mut(), &policy, &options).unwrap();
        (summary, session)
    })
}

#[test]
fn eight_concurrent_sessions_match_serial_ingest_bit_for_bit() {
    let dir = scratch("concurrent");
    let snap = dir.join("window.snap");
    let generator = build_session(SPEC).unwrap();
    let log = generator.gen_reports(4_000, 42).unwrap();

    // Aggressive snapshot cadence: many publishes land *during* ingest,
    // exercising the latest-wins spool and the rotating writer while
    // frames are in flight.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let policy = SnapshotPolicy {
        path: Some(snap.clone()),
        every: 199,
        keep: 2,
    };
    let options = ServeOptions {
        max_connections: 8,
        connections: 8,
        queue_depth: 4,
        ..ServeOptions::default()
    };
    let server = serve_fleet(listener, policy, options);

    let frames = fleet_frames(&log, 8, 100);
    std::thread::scope(|scope| {
        for conn_frames in &frames {
            scope.spawn(move || stream_session(addr, conn_frames));
        }
    });
    let (summary, session) = server.join().unwrap();
    assert_eq!(summary.accepted, 8);
    assert_eq!(summary.completed, 8);
    assert_eq!(summary.failed, 0);
    assert_eq!(session.count(), 4_000);

    // The concurrent window equals one serial ingest of the whole log —
    // byte for byte, the property exact merges buy.
    let mut serial = build_session(SPEC).unwrap();
    serial.ingest_text(&log).unwrap();
    assert_eq!(
        session.finalize_text().unwrap(),
        serial.finalize_text().unwrap(),
        "concurrent ingest must be bit-identical to serial ingest"
    );

    // The final snapshot recovers the full window; rotation kept backups.
    let mut recovered = build_session(SPEC).unwrap();
    recovered
        .restore(&std::fs::read_to_string(&snap).unwrap())
        .unwrap();
    assert_eq!(recovered.count(), 4_000);
    assert_eq!(
        recovered.finalize_text().unwrap(),
        serial.finalize_text().unwrap()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_depth_one_queue_blocks_rather_than_drops() {
    // The harshest backpressure setting: every commit rendezvouses
    // through a single queue slot. Throughput suffers; correctness must
    // not — every acked report is in the final count.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let generator = build_session(SPEC).unwrap();
    let log = generator.gen_reports(1_200, 7).unwrap();
    let policy = SnapshotPolicy {
        path: None,
        every: 0,
        keep: 0,
    };
    let options = ServeOptions {
        max_connections: 6,
        connections: 6,
        queue_depth: 1,
        ..ServeOptions::default()
    };
    let server = serve_fleet(listener, policy, options);
    let frames = fleet_frames(&log, 6, 25);
    std::thread::scope(|scope| {
        for conn_frames in &frames {
            scope.spawn(move || stream_session(addr, conn_frames));
        }
    });
    let (summary, session) = server.join().unwrap();
    assert_eq!(session.count(), 1_200, "backpressure must never drop");
    assert_eq!(summary.completed, 6);
}

#[test]
fn a_byte_budgeted_depth_one_pipeline_blocks_never_drops() {
    // The harshest memory setting: one queue slot and a byte budget two
    // frames deep, shared by six writers. Handlers must block on the
    // budget (backpressure), never drop, and the measured high-water
    // mark must respect the configured ceiling.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let generator = build_session(SPEC).unwrap();
    let log = generator.gen_reports(1_200, 29).unwrap();
    let frames = fleet_frames(&log, 6, 25);
    let budget = 2 * frames.iter().flatten().map(|f| f.len()).max().unwrap();
    let policy = SnapshotPolicy {
        path: None,
        every: 0,
        keep: 0,
    };
    let options = ServeOptions {
        max_connections: 6,
        connections: 6,
        queue_depth: 1,
        memory_budget_bytes: budget,
        ..ServeOptions::default()
    };
    let server = serve_fleet(listener, policy, options);
    std::thread::scope(|scope| {
        for conn_frames in &frames {
            scope.spawn(move || stream_session(addr, conn_frames));
        }
    });
    let (summary, session) = server.join().unwrap();
    assert_eq!(session.count(), 1_200, "the byte budget must never drop");
    assert_eq!(summary.completed, 6);
    assert!(summary.peak_queue_bytes > 0, "charges were measured");
    assert!(
        summary.peak_queue_bytes <= budget as u64,
        "peak pipeline charge {} exceeded the {budget}-byte budget",
        summary.peak_queue_bytes
    );
}

#[test]
fn shutdown_finishes_in_flight_frames_and_persists() {
    let dir = scratch("shutdown");
    let snap = dir.join("window.snap");
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let generator = build_session(SPEC).unwrap();
    let log = generator.gen_reports(300, 3).unwrap();
    let policy = SnapshotPolicy {
        path: Some(snap.clone()),
        every: 0,
        keep: 0,
    };
    let options = ServeOptions::default(); // connections: 0 — runs until shutdown
    let shutdown = Arc::clone(&options.shutdown);
    let server = serve_fleet(listener, policy, options);

    // Send every frame and collect acks, but never send end-of-stream:
    // the session is mid-stream when shutdown arrives.
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut ack = [0u8; 1];
    for frame in fleet_frames(&log, 1, 100).remove(0) {
        write_frame(&mut stream, &frame).unwrap();
        stream.read_exact(&mut ack).unwrap();
        assert_eq!(ack[0], b'+');
    }
    shutdown.store(true, Ordering::SeqCst);
    let (summary, session) = server.join().unwrap();
    // Every acked frame was committed before its ack — shutdown cannot
    // un-happen them.
    assert_eq!(session.count(), 300);
    assert_eq!(summary.reports, 300);
    // And the final snapshot persists the full acked window.
    let mut recovered = build_session(SPEC).unwrap();
    recovered
        .restore(&std::fs::read_to_string(&snap).unwrap())
        .unwrap();
    assert_eq!(recovered.count(), 300);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn an_idle_peer_is_disconnected_and_counted_without_wedging_the_fleet() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let generator = build_session(SPEC).unwrap();
    let log = generator.gen_reports(400, 13).unwrap();
    let policy = SnapshotPolicy {
        path: None,
        every: 0,
        keep: 0,
    };
    let options = ServeOptions {
        max_connections: 2,
        connections: 2,
        idle_timeout: Some(std::time::Duration::from_millis(150)),
        ..ServeOptions::default()
    };
    let server = serve_fleet(listener, policy, options);

    let frames = fleet_frames(&log, 2, 50);
    std::thread::scope(|scope| {
        // Session A sends half its frames, then stalls at a frame
        // boundary far past the idle timeout, holding its socket open.
        let a_frames = &frames[0];
        scope.spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            let mut ack = [0u8; 1];
            for frame in &a_frames[..2] {
                write_frame(&mut stream, frame).unwrap();
                stream.read_exact(&mut ack).unwrap();
                assert_eq!(ack[0], b'+');
            }
            // The server hangs up on us; the read observes it.
            let mut sink = [0u8; 1];
            assert!(
                !matches!(stream.read(&mut sink), Ok(1)),
                "server should disconnect an idle peer, not ack it"
            );
        });
        // Session B streams normally; the stalled peer must not wedge it.
        let b_frames = &frames[1];
        scope.spawn(move || stream_session(addr, b_frames));
    });
    let (summary, session) = server.join().unwrap();
    assert_eq!(summary.idle_disconnects, 1, "the stalled peer is counted");
    assert_eq!(summary.failed, 0, "idleness is a disconnect, not a failure");
    assert_eq!(summary.completed, 1);
    // B's 200 reports plus the 100 A got acked before stalling: acked
    // frames stay committed even when the session is later disconnected.
    assert_eq!(session.count(), 300);
}

#[test]
fn one_bad_session_is_rejected_without_poisoning_the_fleet() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let generator = build_session(SPEC).unwrap();
    let log = generator.gen_reports(600, 11).unwrap();
    let policy = SnapshotPolicy {
        path: None,
        every: 0,
        keep: 0,
    };
    let options = ServeOptions {
        max_connections: 4,
        connections: 4,
        ..ServeOptions::default()
    };
    let server = serve_fleet(listener, policy, options);

    let frames = fleet_frames(&log, 3, 50);
    std::thread::scope(|scope| {
        for conn_frames in &frames {
            scope.spawn(move || stream_session(addr, conn_frames));
        }
        // The fourth session sends a frame of garbage and must get `-`.
        scope.spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            write_frame(&mut stream, "not a wire report at all").unwrap();
            let mut ack = [0u8; 1];
            stream.read_exact(&mut ack).unwrap();
            assert_eq!(ack[0], b'-', "garbage must be rejected");
        });
    });
    let (summary, session) = server.join().unwrap();
    assert_eq!(summary.completed, 3);
    assert_eq!(summary.failed, 1);
    assert!(summary.last_session_error.is_some());
    // The rejected frame contributed nothing; the healthy fleet's
    // reports all landed.
    assert_eq!(session.count(), 600);
    let mut serial = build_session(SPEC).unwrap();
    serial.ingest_text(&log).unwrap();
    assert_eq!(
        session.finalize_text().unwrap(),
        serial.finalize_text().unwrap()
    );
}
