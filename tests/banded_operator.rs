//! Property tests: the structured `BandedBaselineOperator` is exactly
//! equivalent (to 1e-12) to the dense `transition_matrix` it encodes —
//! matvec, transposed matvec, and the EM reconstruction built on them —
//! across all three wave shapes, the bucket-count grid
//! `d, d̃ ∈ {1, 2, 7, 64, 257}`, and ε ∈ {0.1, 1, 4}.

use proptest::prelude::*;
use sw_ldp::numeric::LinearOperator;
use sw_ldp::sw::em::reconstruct;
use sw_ldp::sw::{transition_matrix, BandedBaselineOperator, EmConfig, Wave, WaveShape};

const DIMS: [usize; 5] = [1, 2, 7, 64, 257];
const EPSILONS: [f64; 3] = [0.1, 1.0, 4.0];

fn shape_for(idx: usize) -> WaveShape {
    match idx {
        0 => WaveShape::Square,
        1 => WaveShape::Trapezoid { ratio: 0.4 },
        _ => WaveShape::Triangle,
    }
}

/// Normalizes a raw vector to unit sum so matvec outputs stay O(1) and an
/// absolute 1e-12 tolerance is meaningful at every granularity.
fn unit_sum(raw: &[f64], len: usize) -> Vec<f64> {
    let slice = &raw[..len];
    let s: f64 = slice.iter().sum();
    slice.iter().map(|x| x / s).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn banded_matches_dense_matvecs(
        shape_idx in 0usize..3,
        d_idx in 0usize..5,
        dt_idx in 0usize..5,
        eps_idx in 0usize..3,
        b in 0.05f64..0.6,
        x_raw in prop::collection::vec(0.01f64..1.0, 257),
        t_raw in prop::collection::vec(0.01f64..1.0, 257),
    ) {
        let (d, dt) = (DIMS[d_idx], DIMS[dt_idx]);
        let wave = Wave::new(shape_for(shape_idx), b, EPSILONS[eps_idx]).unwrap();
        let dense = transition_matrix(&wave, d, dt).unwrap();
        let op = BandedBaselineOperator::from_wave(&wave, d, dt).unwrap();
        prop_assert_eq!(LinearOperator::rows(&op), dt);
        prop_assert_eq!(LinearOperator::cols(&op), d);

        let x = unit_sum(&x_raw, d);
        let yd = dense.matvec(&x).unwrap();
        let yo = LinearOperator::matvec(&op, &x).unwrap();
        for (j, (a, b)) in yd.iter().zip(&yo).enumerate() {
            prop_assert!((a - b).abs() < 1e-12,
                "matvec row {} of {:?} d={} dt={}: {} vs {}", j, wave.shape(), d, dt, a, b);
        }

        let t = unit_sum(&t_raw, dt);
        let yd = dense.matvec_transpose(&t).unwrap();
        let yo = LinearOperator::matvec_transpose(&op, &t).unwrap();
        for (i, (a, b)) in yd.iter().zip(&yo).enumerate() {
            prop_assert!((a - b).abs() < 1e-12,
                "transpose col {} of {:?} d={} dt={}: {} vs {}", i, wave.shape(), d, dt, a, b);
        }
    }

    #[test]
    fn banded_em_reconstruction_matches_dense(
        shape_idx in 0usize..3,
        eps_idx in 0usize..3,
        d_idx in 1usize..5, // EM needs at least 2 buckets of signal
        peak_bucket in 0.0f64..1.0,
    ) {
        let d = DIMS[d_idx];
        let wave = Wave::new(shape_for(shape_idx), 0.25, EPSILONS[eps_idx]).unwrap();
        let dense = transition_matrix(&wave, d, d).unwrap();
        let op = BandedBaselineOperator::from_wave(&wave, d, d).unwrap();
        // Expected counts of a two-spike truth.
        let mut truth = vec![0.0; d];
        let hot = ((peak_bucket * d as f64) as usize).min(d - 1);
        truth[hot] = 0.7;
        truth[d - 1 - hot] += 0.3;
        let counts: Vec<f64> = dense
            .matvec(&truth)
            .unwrap()
            .iter()
            .map(|p| p * 1e5)
            .collect();
        let config = EmConfig {
            ll_threshold: 1e-6,
            max_iterations: 500,
            min_iterations: 2,
            smoothing: None,
        };
        let a = reconstruct(&dense, &counts, &config).unwrap();
        let b = reconstruct(&op, &counts, &config).unwrap();
        prop_assert_eq!(a.iterations, b.iterations);
        for (x, y) in a.histogram.probs().iter().zip(b.histogram.probs()) {
            prop_assert!((x - y).abs() < 1e-9, "{} vs {}", x, y);
        }
    }
}

/// Deterministic sweep of the full satellite grid for the square wave (the
/// shape the structured fast path targets), entrywise.
#[test]
fn square_grid_entrywise_equivalence() {
    for &d in &DIMS {
        for &dt in &DIMS {
            for &eps in &EPSILONS {
                let wave = Wave::square(0.25, eps).unwrap();
                let dense = transition_matrix(&wave, d, dt).unwrap();
                let op = BandedBaselineOperator::from_wave(&wave, d, dt).unwrap();
                let materialized = op.to_dense();
                for j in 0..dt {
                    for i in 0..d {
                        let (a, b) = (dense.get(j, i), materialized.get(j, i));
                        assert!(
                            (a - b).abs() < 1e-12,
                            "d={d} dt={dt} eps={eps} entry ({j},{i}): {a} vs {b}"
                        );
                    }
                }
            }
        }
    }
}
