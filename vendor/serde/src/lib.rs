//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! Provides the `Serialize` / `Deserialize` trait names and the matching
//! derive macros so types in this workspace can declare serializability.
//! No wire format is implemented — the workspace's own I/O (CSV report
//! writing in `ldp-experiments`) is hand-rolled. Swapping in the real
//! `serde` requires only replacing the path dependency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait matching `serde::Serialize`'s role in bounds.
pub trait Serialize {}

/// Marker trait matching `serde::Deserialize`'s role in bounds.
pub trait Deserialize<'de>: Sized {}
