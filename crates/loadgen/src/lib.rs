//! `ldp-loadgen` — a wire-format load generator for the collector's
//! concurrent serve path.
//!
//! The generator plays the *fleet* side of the protocol in
//! `docs/WIRE_FORMAT.md`: it builds valid wire reports for any registry
//! mechanism spec (through the same [`build_session`] the collector
//! uses), splits them into length-delimited frames, and drives N
//! concurrent TCP sessions against a listening collector — optionally
//! throttled to a target aggregate report rate. Every frame waits for
//! its `+`/`-` ack, so the per-frame round trip *is* the commit latency
//! of the decode → queue → absorb pipeline; the [`RunReport`] summarizes
//! throughput and the ack-latency tail (p50/p99/max).
//!
//! Two consumers: the `ldp-loadgen` binary for operator drills, and the
//! `sustained_ingest` bench in `ldp-bench`, which records the collector's
//! end-to-end ingest rate into `BENCH_em.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ldp_collector::build_session;
use ldp_collector::server::write_frame;
use ldp_collector::CollectorError;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// What to send: which mechanism's reports, how many sessions, how fast.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Registry mechanism spec (`sw-ems:eps=1,d=1024`, paper legends too).
    pub spec: String,
    /// Concurrent TCP sessions to drive.
    pub connections: usize,
    /// Frames each session sends before its end-of-stream.
    pub frames_per_connection: usize,
    /// Wire-report lines per frame.
    pub reports_per_frame: usize,
    /// Base seed; connection `c` generates with `seed + c`.
    pub seed: u64,
    /// Target aggregate rate in reports/second across all connections
    /// (`0.0` = unthrottled).
    pub rate: f64,
}

impl Default for Plan {
    fn default() -> Self {
        Plan {
            spec: "sw-ems:eps=1,d=1024".into(),
            connections: 8,
            frames_per_connection: 8,
            reports_per_frame: 256,
            seed: 1,
            rate: 0.0,
        }
    }
}

impl Plan {
    /// Total reports the plan sends across all connections.
    #[must_use]
    pub fn total_reports(&self) -> u64 {
        (self.connections * self.frames_per_connection * self.reports_per_frame) as u64
    }
}

/// What happened: counts, wall-clock, and the ack-latency tail.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Sessions driven (== the plan's `connections`).
    pub connections: usize,
    /// Reports sent and positively acked.
    pub reports: u64,
    /// Frames sent (excluding end-of-stream frames).
    pub frames: u64,
    /// Frames the collector rejected with `-`.
    pub rejected_frames: u64,
    /// Wall-clock for the whole run (connect to last end-of-stream ack).
    pub elapsed: Duration,
    /// Acked reports per second of wall-clock.
    pub reports_per_sec: f64,
    /// Median frame ack latency, microseconds.
    pub ack_p50_us: u64,
    /// 99th-percentile frame ack latency, microseconds.
    pub ack_p99_us: u64,
    /// Worst frame ack latency, microseconds.
    pub ack_max_us: u64,
}

/// Per-connection frame payloads for `plan` — valid wire-report lines
/// from the spec's own mechanism, each connection seeded distinctly so
/// the collector sees a heterogeneous fleet, not one repeated client.
pub fn generate_frames(plan: &Plan) -> Result<Vec<Vec<String>>, CollectorError> {
    if plan.connections == 0 || plan.frames_per_connection == 0 || plan.reports_per_frame == 0 {
        return Err(CollectorError::Spec(
            "connections, frames, and reports-per-frame must all be nonzero".into(),
        ));
    }
    let per_connection = (plan.frames_per_connection * plan.reports_per_frame) as u64;
    let mut out = Vec::with_capacity(plan.connections);
    for c in 0..plan.connections {
        let session = build_session(&plan.spec)?;
        let text = session.gen_reports(per_connection, plan.seed.wrapping_add(c as u64))?;
        let lines: Vec<&str> = text.lines().collect();
        out.push(
            lines
                .chunks(plan.reports_per_frame)
                .map(|chunk| chunk.join("\n"))
                .collect(),
        );
    }
    Ok(out)
}

/// One connection's tally, merged into the [`RunReport`] at the end.
struct ConnStats {
    frames: u64,
    rejected: u64,
    latencies_us: Vec<u64>,
}

/// Connects with retries over ~3 seconds — load runs routinely start
/// while the collector is still binding its listener.
fn connect_with_retry(addr: &str) -> Result<TcpStream, CollectorError> {
    let mut last: Option<std::io::Error> = None;
    for _ in 0..100 {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => last = Some(e),
        }
        std::thread::sleep(Duration::from_millis(30));
    }
    Err(CollectorError::Io(format!(
        "connect {addr}: {}",
        last.map_or_else(|| "no attempt".into(), |e| e.to_string())
    )))
}

/// Streams `frames` over one session: frame, ack, repeat, end-of-stream.
/// `frame_interval` paces sends against the connection's own start time
/// (zero = as fast as acks allow).
fn drive_connection(
    addr: &str,
    frames: &[String],
    frame_interval: Duration,
) -> Result<ConnStats, CollectorError> {
    let mut stream = connect_with_retry(addr)?;
    let _ = stream.set_nodelay(true);
    let io = |what: &str, e: std::io::Error| CollectorError::Io(format!("{what}: {e}"));
    let mut stats = ConnStats {
        frames: 0,
        rejected: 0,
        latencies_us: Vec::with_capacity(frames.len()),
    };
    let started = Instant::now();
    for (i, payload) in frames.iter().enumerate() {
        if !frame_interval.is_zero() {
            let due = frame_interval * i as u32;
            let now = started.elapsed();
            if now < due {
                std::thread::sleep(due - now);
            }
        }
        let sent = Instant::now();
        write_frame(&mut stream, payload).map_err(|e| io("write frame", e))?;
        let mut ack = [0u8; 1];
        stream.read_exact(&mut ack).map_err(|e| io("read ack", e))?;
        stats
            .latencies_us
            .push(sent.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        stats.frames += 1;
        match ack[0] {
            b'+' => {}
            b'-' => {
                // A rejected frame ends the session server-side; count it
                // and stop rather than erroring the whole run.
                stats.rejected += 1;
                return Ok(stats);
            }
            other => {
                return Err(CollectorError::Protocol(format!(
                    "unexpected ack byte {other:#04x}"
                )))
            }
        }
    }
    stream
        .write_all(&0u32.to_be_bytes())
        .map_err(|e| io("write end-of-stream", e))?;
    let mut ack = [0u8; 1];
    stream
        .read_exact(&mut ack)
        .map_err(|e| io("read final ack", e))?;
    if ack[0] != b'+' {
        return Err(CollectorError::Protocol(
            "end-of-stream frame was not acked".into(),
        ));
    }
    Ok(stats)
}

/// The `p`-th percentile (0.0–1.0, nearest-rank) of sorted microseconds.
fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((sorted_us.len() as f64) * p).ceil() as usize;
    sorted_us[rank.clamp(1, sorted_us.len()) - 1]
}

/// Runs `plan` against a collector listening at `addr` and reports the
/// aggregate throughput and ack-latency tail. Connection errors on any
/// session fail the run — a load test that silently drops sessions would
/// report a flattering rate.
pub fn run(addr: &str, plan: &Plan) -> Result<RunReport, CollectorError> {
    let frames = generate_frames(plan)?;
    // Aggregate rate splits evenly: each connection paces its own frames.
    let frame_interval = if plan.rate > 0.0 {
        Duration::from_secs_f64(
            plan.reports_per_frame as f64 / (plan.rate / plan.connections as f64),
        )
    } else {
        Duration::ZERO
    };
    run_frames(addr, &frames, plan.reports_per_frame, frame_interval)
}

/// Drives pre-generated `frames` (one `Vec<String>` per connection, as
/// [`generate_frames`] returns) against `addr`. Benchmarks use this to
/// keep report generation out of the measured window.
pub fn run_frames(
    addr: &str,
    frames: &[Vec<String>],
    reports_per_frame: usize,
    frame_interval: Duration,
) -> Result<RunReport, CollectorError> {
    let started = Instant::now();
    let results: Vec<Result<ConnStats, CollectorError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = frames
            .iter()
            .map(|conn_frames| scope.spawn(|| drive_connection(addr, conn_frames, frame_interval)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    Err(CollectorError::Io("a load connection panicked".into()))
                })
            })
            .collect()
    });
    let elapsed = started.elapsed();
    let mut frames_sent = 0u64;
    let mut rejected = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    for result in results {
        let stats = result?;
        frames_sent += stats.frames;
        rejected += stats.rejected;
        latencies.extend(stats.latencies_us);
    }
    latencies.sort_unstable();
    let reports = (frames_sent - rejected) * reports_per_frame as u64;
    Ok(RunReport {
        connections: frames.len(),
        reports,
        frames: frames_sent,
        rejected_frames: rejected,
        elapsed,
        reports_per_sec: reports as f64 / elapsed.as_secs_f64().max(1e-9),
        ack_p50_us: percentile(&latencies, 0.50),
        ack_p99_us: percentile(&latencies, 0.99),
        ack_max_us: latencies.last().copied().unwrap_or(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_collector::server::{serve, ServeOptions, SnapshotPolicy};
    use std::net::TcpListener;

    #[test]
    fn percentile_is_nearest_rank() {
        let us: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&us, 0.50), 50);
        assert_eq!(percentile(&us, 0.99), 99);
        assert_eq!(percentile(&us, 1.0), 100);
        assert_eq!(percentile(&[], 0.99), 0);
        assert_eq!(percentile(&[7], 0.5), 7);
    }

    #[test]
    fn generated_frames_match_the_plan_shape() {
        let plan = Plan {
            spec: "grr:eps=1,d=8".into(),
            connections: 3,
            frames_per_connection: 4,
            reports_per_frame: 10,
            ..Plan::default()
        };
        let frames = generate_frames(&plan).unwrap();
        assert_eq!(frames.len(), 3);
        for conn in &frames {
            assert_eq!(conn.len(), 4);
            for frame in conn {
                assert_eq!(frame.lines().count(), 10);
            }
        }
        // Distinct seeds: connections are not clones of one client.
        assert_ne!(frames[0][0], frames[1][0]);
    }

    #[test]
    fn a_run_against_a_live_collector_reports_every_report() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let plan = Plan {
            spec: "grr:eps=1,d=8".into(),
            connections: 4,
            frames_per_connection: 3,
            reports_per_frame: 50,
            ..Plan::default()
        };
        let total = plan.total_reports();
        let server = std::thread::spawn(move || {
            let mut session = build_session("grr:eps=1,d=8").unwrap();
            let policy = SnapshotPolicy {
                path: None,
                every: 0,
                keep: 0,
            };
            let options = ServeOptions {
                connections: 4,
                ..ServeOptions::default()
            };
            let summary = serve(&listener, session.as_mut(), &policy, &options).unwrap();
            (summary, session.count())
        });
        let report = run(&addr, &plan).unwrap();
        let (summary, count) = server.join().unwrap();
        assert_eq!(report.reports, total);
        assert_eq!(report.rejected_frames, 0);
        assert_eq!(count, total);
        assert_eq!(summary.completed, 4);
        assert!(report.reports_per_sec > 0.0);
        assert!(report.ack_p99_us >= report.ack_p50_us);
    }

    #[test]
    fn a_throttled_run_respects_the_target_rate() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let plan = Plan {
            spec: "grr:eps=1,d=8".into(),
            connections: 2,
            frames_per_connection: 3,
            reports_per_frame: 20,
            rate: 400.0,
            ..Plan::default()
        };
        // 120 reports at 400/s ≈ 0.3s minimum (pacing starts at frame 0,
        // so the floor is (frames-1) * interval per connection = 0.2s).
        let server = std::thread::spawn(move || {
            let mut session = build_session("grr:eps=1,d=8").unwrap();
            let policy = SnapshotPolicy {
                path: None,
                every: 0,
                keep: 0,
            };
            let options = ServeOptions {
                connections: 2,
                ..ServeOptions::default()
            };
            serve(&listener, session.as_mut(), &policy, &options).unwrap();
        });
        let report = run(&addr, &plan).unwrap();
        server.join().unwrap();
        assert!(
            report.elapsed >= Duration::from_millis(180),
            "throttle ignored: {:?}",
            report.elapsed
        );
        assert!(
            report.reports_per_sec <= 900.0,
            "{}",
            report.reports_per_sec
        );
    }
}
