//! The Piecewise Mechanism (PM; Wang et al., ICDE 2019) — paper §2.2.
//!
//! Input domain `[-1, 1]`, output domain `[-s, s]` with
//! `s = (e^{ε/2}+1)/(e^{ε/2}-1)`. For each `v` there is a "high" interval
//! `[ℓ(v), r(v)]` of width `2/(e^{ε/2}-1)` reported with density
//! `e^{ε/2}/2 · (e^{ε/2}-1)/(e^{ε/2}+1)`; the rest of the output domain has
//! density `e^ε` times smaller. The construction is unbiased, and has lower
//! variance than SR once ε is large (the Figure 4 crossover).

use crate::error::{check_signed, MeanError};
use ldp_core::Epsilon;
use rand::Rng;

/// The Piecewise Mechanism over the signed domain `[-1, 1]`.
#[derive(Debug, Clone, Copy)]
pub struct Pm {
    eps: f64,
    /// e^{ε/2}, cached.
    e_half: f64,
    /// Output half-range s.
    s: f64,
}

impl Pm {
    /// Creates a PM mechanism with budget `eps`.
    pub fn new(eps: f64) -> Result<Self, MeanError> {
        Epsilon::new(eps)?;
        let e_half = (eps / 2.0).exp();
        Ok(Pm {
            eps,
            e_half,
            s: (e_half + 1.0) / (e_half - 1.0),
        })
    }

    /// The privacy budget.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.eps
    }

    /// The output half-range `s`.
    #[must_use]
    pub fn output_bound(&self) -> f64 {
        self.s
    }

    /// Left edge of the high-probability interval for input `v`.
    #[must_use]
    pub fn high_lo(&self, v: f64) -> f64 {
        (self.e_half * v - 1.0) / (self.e_half - 1.0)
    }

    /// Right edge of the high-probability interval for input `v`.
    #[must_use]
    pub fn high_hi(&self, v: f64) -> f64 {
        (self.e_half * v + 1.0) / (self.e_half - 1.0)
    }

    /// Client side: randomizes `v ∈ [-1, 1]` into `ṽ ∈ [-s, s]`.
    pub fn randomize<R: Rng + ?Sized>(&self, v: f64, rng: &mut R) -> Result<f64, MeanError> {
        check_signed(v)?;
        let lo = self.high_lo(v);
        let hi = self.high_hi(v);
        let p_high = self.e_half / (self.e_half + 1.0);
        if rng.gen::<f64>() < p_high {
            Ok(lo + (hi - lo) * rng.gen::<f64>())
        } else {
            // Uniform over [-s, lo] ∪ [hi, s].
            let left = lo + self.s; // length of the left piece
            let right = self.s - hi;
            let total = left + right;
            let x = rng.gen::<f64>() * total;
            Ok(if x < left {
                -self.s + x
            } else {
                hi + (x - left)
            })
        }
    }

    /// Server side: PM reports are already unbiased, so the mean estimate is
    /// the plain average.
    #[must_use]
    pub fn estimate_mean(&self, reports: &[f64]) -> f64 {
        if reports.is_empty() {
            return 0.0;
        }
        reports.iter().sum::<f64>() / reports.len() as f64
    }

    /// Worst-case variance of a single report (at `v = ±1`); from Wang et
    /// al.: `v²·(…) + (e^{ε/2}+3)/(3(e^{ε/2}-1)²)` evaluated via the exact
    /// second moment below.
    #[must_use]
    pub fn report_variance(&self, v: f64) -> f64 {
        self.second_moment(v) - v * v
    }

    /// Exact `E[ṽ² | v]` from the piecewise-uniform density.
    #[must_use]
    pub fn second_moment(&self, v: f64) -> f64 {
        let lo = self.high_lo(v);
        let hi = self.high_hi(v);
        let d_high = self.e_half / 2.0 * (self.e_half - 1.0) / (self.e_half + 1.0);
        let d_low = (self.e_half - 1.0) / (2.0 * self.e_half * (self.e_half + 1.0));
        let cube = |a: f64, b: f64| (b * b * b - a * a * a) / 3.0;
        d_low * cube(-self.s, lo) + d_high * cube(lo, hi) + d_low * cube(hi, self.s)
    }

    /// Full protocol over values in `[-1, 1]`.
    pub fn run<R: Rng + ?Sized>(&self, values: &[f64], rng: &mut R) -> Result<f64, MeanError> {
        let mut sum = 0.0;
        for &v in values {
            sum += self.randomize(v, rng)?;
        }
        if values.is_empty() {
            return Ok(0.0);
        }
        Ok(sum / values.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_numeric::SplitMix64;

    #[test]
    fn construction_validates() {
        assert!(Pm::new(1.0).is_ok());
        assert!(Pm::new(0.0).is_err());
        assert!(Pm::new(f64::NAN).is_err());
    }

    #[test]
    fn geometry_matches_paper() {
        let eps = 2.0;
        let pm = Pm::new(eps).unwrap();
        let e_half = 1f64.exp();
        assert!((pm.output_bound() - (e_half + 1.0) / (e_half - 1.0)).abs() < 1e-12);
        // Width of the high interval is 2/(e^{ε/2}-1) for every v.
        for &v in &[-1.0, 0.0, 0.7] {
            let w = pm.high_hi(v) - pm.high_lo(v);
            assert!((w - 2.0 / (e_half - 1.0)).abs() < 1e-12);
        }
        // At v = -1 the high interval's right edge is -1 (paper §5.2 note).
        assert!((pm.high_hi(-1.0) - (-1.0)).abs() < 1e-9);
        // Center of the high region is e^{ε/2}/(e^{ε/2}-1)·v.
        let v = 0.3;
        let center = (pm.high_lo(v) + pm.high_hi(v)) / 2.0;
        assert!((center - e_half / (e_half - 1.0) * v).abs() < 1e-12);
    }

    #[test]
    fn outputs_stay_in_range() {
        let pm = Pm::new(1.0).unwrap();
        let mut rng = SplitMix64::new(151);
        for &v in &[-1.0, -0.3, 0.0, 0.9, 1.0] {
            for _ in 0..2000 {
                let r = pm.randomize(v, &mut rng).unwrap();
                assert!(r.abs() <= pm.output_bound() + 1e-12);
            }
        }
        assert!(pm.randomize(-1.01, &mut rng).is_err());
    }

    #[test]
    fn reports_are_unbiased() {
        let pm = Pm::new(1.5).unwrap();
        let mut rng = SplitMix64::new(152);
        for &v in &[-0.8, 0.0, 0.33, 1.0] {
            let n = 300_000;
            let mut sum = 0.0;
            for _ in 0..n {
                sum += pm.randomize(v, &mut rng).unwrap();
            }
            let mean = sum / n as f64;
            assert!((mean - v).abs() < 0.02, "v={v}: mean {mean}");
        }
    }

    #[test]
    fn high_region_receives_expected_mass() {
        let pm = Pm::new(1.0).unwrap();
        let mut rng = SplitMix64::new(153);
        let v = 0.2;
        let (lo, hi) = (pm.high_lo(v), pm.high_hi(v));
        let n = 100_000;
        let mut inside = 0u64;
        for _ in 0..n {
            let r = pm.randomize(v, &mut rng).unwrap();
            if r >= lo && r <= hi {
                inside += 1;
            }
        }
        let frac = inside as f64 / n as f64;
        let expect = (0.5f64).exp() / ((0.5f64).exp() + 1.0);
        assert!((frac - expect).abs() < 0.01, "{frac} vs {expect}");
    }

    #[test]
    fn empirical_variance_matches_formula() {
        let pm = Pm::new(1.0).unwrap();
        let v = -0.4;
        let mut rng = SplitMix64::new(154);
        let n = 300_000;
        let mut mean = 0.0;
        let mut sq = 0.0;
        for _ in 0..n {
            let x = pm.randomize(v, &mut rng).unwrap();
            mean += x;
            sq += x * x;
        }
        mean /= n as f64;
        let var = sq / n as f64 - mean * mean;
        let expect = pm.report_variance(v);
        assert!((var - expect).abs() / expect < 0.05, "{var} vs {expect}");
    }

    #[test]
    fn pm_beats_sr_at_large_epsilon_only() {
        // Paper: SR better for small ε, PM better for large ε.
        let v = 0.5;
        let small = 0.5;
        let large = 4.0;
        let sr_small = crate::sr::Sr::new(small).unwrap().report_variance(v);
        let pm_small = Pm::new(small).unwrap().report_variance(v);
        let sr_large = crate::sr::Sr::new(large).unwrap().report_variance(v);
        let pm_large = Pm::new(large).unwrap().report_variance(v);
        assert!(sr_small < pm_small, "{sr_small} vs {pm_small}");
        assert!(pm_large < sr_large, "{pm_large} vs {sr_large}");
    }

    #[test]
    fn empty_reports_give_zero() {
        let pm = Pm::new(1.0).unwrap();
        assert_eq!(pm.estimate_mean(&[]), 0.0);
    }
}
