//! [`Mechanism`] implementations for the mean-estimation protocols.
//!
//! SR, PM, and Hybrid all aggregate by averaging (debiased) reports, so
//! their streaming state is a running sum plus a count. The sum is held in
//! an [`ExactSum`] — an exact, order-independent accumulator — so merging
//! shard aggregators equals aggregating the concatenated report stream
//! *bit for bit*, which plain `f64 +=` cannot provide (float addition is
//! not associative). The state stays O(1) regardless of the population.

use crate::hybrid::{Hybrid, HybridReport};
use crate::pm::Pm;
use crate::sr::Sr;
use ldp_core::params::fingerprint_fields;
use ldp_core::snapshot::{
    expect_tag, next_line, parse_fields, parse_snapshot_field, SnapshotState,
};
use ldp_core::wire::parse_field;
use ldp_core::{CoreError, Epsilon, Mechanism, WireReport};
use ldp_numeric::ExactSum;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt::Write;

mod tag {
    pub const SR: u64 = 0x11;
    pub const PM: u64 = 0x12;
    pub const HYBRID: u64 = 0x13;
}

/// Streaming state of the mean mechanisms: an exact running sum of
/// (debiased) reports plus the report count.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MeanState {
    sum: ExactSum,
    n: u64,
}

impl MeanState {
    /// Number of reports absorbed.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.n
    }

    /// The current (exactly accumulated) report sum.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum.value()
    }

    fn absorb(&mut self, debiased: f64) {
        self.sum.add(debiased);
        self.n += 1;
    }

    /// Bulk absorb through [`ExactSum::add_slice`] — bit-identical to
    /// per-element [`MeanState::absorb`] in order, including the internal
    /// expansion representation (so snapshots of bulk-absorbed state match
    /// snapshots of streamed state).
    fn absorb_slice(&mut self, debiased: &[f64]) {
        self.sum.add_slice(debiased);
        self.n += debiased.len() as u64;
    }

    fn merge(&mut self, other: &MeanState) {
        self.sum.merge(&other.sum);
        self.n += other.n;
    }

    /// The mean estimate: `0` when empty (matching the legacy
    /// `estimate_mean` behavior on an empty report set).
    fn mean(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        self.sum.value() / self.n as f64
    }
}

/// One line: `mean <n> <k> <component…>` — the [`ExactSum`] expansion
/// components, rendered with exact-round-trip `f64` formatting. Restoring
/// re-adds each component, which reproduces the identical exact total
/// (the expansion's rendered value is representation-independent), so
/// resumed windows finalize and merge bit-identically.
impl SnapshotState for MeanState {
    fn encode_state(&self, out: &mut String) {
        let parts = self.sum.parts();
        let _ = write!(out, "mean {} {}", self.n, parts.len());
        for p in parts {
            let _ = write!(out, " {p}");
        }
        out.push('\n');
    }

    fn decode_state(lines: &mut dyn Iterator<Item = &str>) -> Result<Self, CoreError> {
        let line = next_line(lines, "mean state")?;
        let mut it = line.split_whitespace();
        expect_tag(it.next(), "mean")?;
        let n: u64 = parse_snapshot_field(it.next(), "mean state total")?;
        let k: usize = parse_snapshot_field(it.next(), "mean state component count")?;
        let parts: Vec<f64> = parse_fields(it, k, "mean state component")?;
        let sum = ExactSum::from_parts(&parts)
            .map_err(|e| CoreError::Snapshot(format!("mean state: {e}")))?;
        Ok(MeanState { sum, n })
    }
}

impl Mechanism for Sr {
    type Input = f64;
    type Report = f64;
    type State = MeanState;
    type Output = f64;

    fn epsilon(&self) -> Epsilon {
        Epsilon::new(Sr::epsilon(self)).expect("validated at construction")
    }

    fn fingerprint(&self) -> u64 {
        fingerprint_fields(tag::SR, &[Sr::epsilon(self).to_bits()])
    }

    fn randomize<R: Rng + ?Sized>(&self, input: &f64, rng: &mut R) -> Result<f64, CoreError> {
        Sr::randomize(self, *input, rng).map_err(|e| CoreError::InvalidInput(e.to_string()))
    }

    fn empty_state(&self) -> MeanState {
        MeanState::default()
    }

    fn absorb(&self, state: &mut MeanState, report: &f64) -> Result<(), CoreError> {
        if *report != 1.0 && *report != -1.0 {
            return Err(CoreError::InvalidReport(format!(
                "SR reports are ±1, got {report}"
            )));
        }
        state.absorb(self.debias(*report));
        Ok(())
    }

    fn absorb_slice(&self, state: &mut MeanState, reports: &[f64]) -> Result<(), CoreError> {
        if let Some(bad) = reports.iter().position(|r| *r != 1.0 && *r != -1.0) {
            return Err(CoreError::InvalidReport(format!(
                "SR reports are ±1, got {} (index {bad})",
                reports[bad]
            )));
        }
        // Debias into a fixed stack buffer, then bulk-add each block; the
        // per-element add order is unchanged, so the state is bit-identical
        // to serial absorption.
        let mut debiased = [0.0f64; DEBIAS_BLOCK];
        for block in reports.chunks(DEBIAS_BLOCK) {
            for (d, r) in debiased.iter_mut().zip(block) {
                *d = self.debias(*r);
            }
            state.absorb_slice(&debiased[..block.len()]);
        }
        Ok(())
    }

    fn merge_state(&self, state: &mut MeanState, other: &MeanState) -> Result<(), CoreError> {
        state.merge(other);
        Ok(())
    }

    fn finalize(&self, state: &MeanState) -> Result<f64, CoreError> {
        Ok(state.mean())
    }
}

/// Block size for the stack debias buffers of the bulk SR/Hybrid paths.
const DEBIAS_BLOCK: usize = 512;

impl Mechanism for Pm {
    type Input = f64;
    type Report = f64;
    type State = MeanState;
    type Output = f64;

    fn epsilon(&self) -> Epsilon {
        Epsilon::new(Pm::epsilon(self)).expect("validated at construction")
    }

    fn fingerprint(&self) -> u64 {
        fingerprint_fields(tag::PM, &[Pm::epsilon(self).to_bits()])
    }

    fn randomize<R: Rng + ?Sized>(&self, input: &f64, rng: &mut R) -> Result<f64, CoreError> {
        Pm::randomize(self, *input, rng).map_err(|e| CoreError::InvalidInput(e.to_string()))
    }

    fn empty_state(&self) -> MeanState {
        MeanState::default()
    }

    fn absorb(&self, state: &mut MeanState, report: &f64) -> Result<(), CoreError> {
        if !report.is_finite() || report.abs() > self.output_bound() + 1e-9 {
            return Err(CoreError::InvalidReport(format!(
                "PM report {report} outside the output domain [±{}]",
                self.output_bound()
            )));
        }
        // PM reports are already unbiased.
        state.absorb(*report);
        Ok(())
    }

    fn absorb_slice(&self, state: &mut MeanState, reports: &[f64]) -> Result<(), CoreError> {
        let bound = self.output_bound() + 1e-9;
        if let Some(bad) = reports
            .iter()
            .position(|r| !r.is_finite() || r.abs() > bound)
        {
            return Err(CoreError::InvalidReport(format!(
                "PM report {} (index {bad}) outside the output domain [±{}]",
                reports[bad],
                self.output_bound()
            )));
        }
        state.absorb_slice(reports);
        Ok(())
    }

    fn merge_state(&self, state: &mut MeanState, other: &MeanState) -> Result<(), CoreError> {
        state.merge(other);
        Ok(())
    }

    fn finalize(&self, state: &MeanState) -> Result<f64, CoreError> {
        Ok(state.mean())
    }
}

impl Mechanism for Hybrid {
    type Input = f64;
    type Report = HybridReport;
    type State = MeanState;
    type Output = f64;

    fn epsilon(&self) -> Epsilon {
        Epsilon::new(Hybrid::epsilon(self)).expect("validated at construction")
    }

    fn fingerprint(&self) -> u64 {
        fingerprint_fields(
            tag::HYBRID,
            &[Hybrid::epsilon(self).to_bits(), self.beta().to_bits()],
        )
    }

    fn randomize<R: Rng + ?Sized>(
        &self,
        input: &f64,
        rng: &mut R,
    ) -> Result<HybridReport, CoreError> {
        Hybrid::randomize(self, *input, rng).map_err(|e| CoreError::InvalidInput(e.to_string()))
    }

    fn empty_state(&self) -> MeanState {
        MeanState::default()
    }

    fn absorb(&self, state: &mut MeanState, report: &HybridReport) -> Result<(), CoreError> {
        match report {
            HybridReport::Pm(v) => {
                if !v.is_finite() || v.abs() > self.pm().output_bound() + 1e-9 {
                    return Err(CoreError::InvalidReport(format!(
                        "Hybrid PM-arm report {v} outside the output domain"
                    )));
                }
                if self.beta() == 0.0 {
                    return Err(CoreError::InvalidReport(
                        "PM-arm report but the PM arm is disabled at this ε".into(),
                    ));
                }
            }
            HybridReport::Sr(v) => {
                if *v != 1.0 && *v != -1.0 {
                    return Err(CoreError::InvalidReport(format!(
                        "Hybrid SR-arm reports are ±1, got {v}"
                    )));
                }
            }
        }
        state.absorb(self.debias(*report));
        Ok(())
    }

    fn absorb_slice(
        &self,
        state: &mut MeanState,
        reports: &[HybridReport],
    ) -> Result<(), CoreError> {
        let pm_bound = self.pm().output_bound() + 1e-9;
        let pm_enabled = self.beta() != 0.0;
        let bad = reports.iter().position(|r| match r {
            HybridReport::Pm(v) => !v.is_finite() || v.abs() > pm_bound || !pm_enabled,
            HybridReport::Sr(v) => *v != 1.0 && *v != -1.0,
        });
        if let Some(bad) = bad {
            // Re-run the serial validator for the exact error message.
            let mut scratch = self.empty_state();
            return Err(self
                .absorb(&mut scratch, &reports[bad])
                .expect_err("report failed bulk validation"));
        }
        let mut debiased = [0.0f64; DEBIAS_BLOCK];
        for block in reports.chunks(DEBIAS_BLOCK) {
            for (d, r) in debiased.iter_mut().zip(block) {
                *d = self.debias(*r);
            }
            state.absorb_slice(&debiased[..block.len()]);
        }
        Ok(())
    }

    fn merge_state(&self, state: &mut MeanState, other: &MeanState) -> Result<(), CoreError> {
        state.merge(other);
        Ok(())
    }

    fn finalize(&self, state: &MeanState) -> Result<f64, CoreError> {
        Ok(state.mean())
    }
}

impl WireReport for HybridReport {
    fn encode(&self, out: &mut String) {
        match self {
            HybridReport::Pm(v) => {
                let _ = write!(out, "p {v}");
            }
            HybridReport::Sr(v) => {
                let _ = write!(out, "s {v}");
            }
        }
    }

    fn decode(line: &str) -> Result<Self, CoreError> {
        let (kind, rest) = line
            .split_once(' ')
            .ok_or_else(|| CoreError::Wire(format!("hybrid report needs a tag: {line:?}")))?;
        match kind {
            "p" => Ok(HybridReport::Pm(parse_field(rest.trim(), "PM value")?)),
            "s" => Ok(HybridReport::Sr(parse_field(rest.trim(), "SR value")?)),
            other => Err(CoreError::Wire(format!("unknown hybrid tag {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_core::{Aggregator, Client};
    use ldp_numeric::SplitMix64;

    fn signed_values(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| ((i * 29) % 201) as f64 / 100.0 - 1.0)
            .collect()
    }

    /// Streaming through the unified API must agree with the legacy `run`
    /// protocols to within exact-summation rounding (the legacy path uses
    /// naive accumulation; the streaming state is exactly rounded).
    #[test]
    fn streaming_agrees_with_legacy_run() {
        let values = signed_values(4_000);

        macro_rules! check {
            ($mech:expr) => {{
                let mech = $mech;
                let legacy = {
                    let mut rng = SplitMix64::new(88);
                    mech.run(&values, &mut rng).unwrap()
                };
                let streamed = {
                    let mut rng = SplitMix64::new(88);
                    let client = Client::new(&mech);
                    let mut agg = Aggregator::new(&mech);
                    for v in &values {
                        agg.push(&client.randomize(v, &mut rng).unwrap()).unwrap();
                    }
                    agg.finalize().unwrap()
                };
                assert!(
                    (legacy - streamed).abs() <= 1e-12 * legacy.abs().max(1.0),
                    "legacy {legacy} vs streamed {streamed}"
                );
            }};
        }

        check!(Sr::new(1.0).unwrap());
        check!(Pm::new(1.0).unwrap());
        check!(Hybrid::new(2.0).unwrap());
    }

    #[test]
    fn merged_shards_match_one_shot_bit_for_bit() {
        // PM reports are continuous, the hard case for exact merging.
        let pm = Pm::new(0.7).unwrap();
        let mut rng = SplitMix64::new(3);
        let client = Client::new(&pm);
        let reports: Vec<f64> = signed_values(3_001)
            .iter()
            .map(|v| client.randomize(v, &mut rng).unwrap())
            .collect();
        let one_shot = Mechanism::aggregate(&pm, &reports).unwrap();
        for split in [0, 1, 1000, 3000, 3001] {
            let mut a = Aggregator::new(&pm);
            a.push_slice(&reports[..split]).unwrap();
            let mut b = Aggregator::new(&pm);
            b.push_slice(&reports[split..]).unwrap();
            a.merge(&b).unwrap();
            assert_eq!(
                a.finalize().unwrap().to_bits(),
                one_shot.to_bits(),
                "split at {split}"
            );
        }
    }

    #[test]
    fn absorb_rejects_malformed_reports() {
        let sr = Sr::new(1.0).unwrap();
        let mut st = sr.empty_state();
        assert!(sr.absorb(&mut st, &0.5).is_err());
        assert!(sr.absorb(&mut st, &f64::NAN).is_err());
        assert!(sr.absorb(&mut st, &1.0).is_ok());

        let pm = Pm::new(1.0).unwrap();
        let mut st = pm.empty_state();
        assert!(pm.absorb(&mut st, &(pm.output_bound() + 1.0)).is_err());
        assert!(pm.absorb(&mut st, &f64::INFINITY).is_err());
        assert!(pm.absorb(&mut st, &0.0).is_ok());

        let low = Hybrid::new(0.5).unwrap();
        let mut st = low.empty_state();
        // PM arm is disabled below ε*: a PM-tagged report is malformed.
        assert!(low.absorb(&mut st, &HybridReport::Pm(0.0)).is_err());
        assert!(low.absorb(&mut st, &HybridReport::Sr(3.0)).is_err());
        assert!(low.absorb(&mut st, &HybridReport::Sr(-1.0)).is_ok());
    }

    #[test]
    fn empty_state_finalizes_to_zero_like_legacy() {
        let sr = Sr::new(1.0).unwrap();
        assert_eq!(sr.finalize(&sr.empty_state()).unwrap(), 0.0);
        assert_eq!(sr.estimate_mean(&[]), 0.0);
    }

    #[test]
    fn hybrid_wire_round_trips() {
        let hybrid = Hybrid::new(2.0).unwrap();
        let mut rng = SplitMix64::new(5);
        for v in signed_values(100) {
            let r = Mechanism::randomize(&hybrid, &v, &mut rng).unwrap();
            let mut s = String::new();
            r.encode(&mut s);
            let back = HybridReport::decode(&s).unwrap();
            match (r, back) {
                (HybridReport::Pm(a), HybridReport::Pm(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                (HybridReport::Sr(a), HybridReport::Sr(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                _ => panic!("arm changed across the wire"),
            }
        }
        assert!(HybridReport::decode("q 1.0").is_err());
        assert!(HybridReport::decode("p").is_err());
    }

    #[test]
    fn snapshot_state_round_trips_to_identical_behavior() {
        let pm = Pm::new(0.9).unwrap();
        let client = Client::new(&pm);
        let mut rng = SplitMix64::new(17);
        let mut state = pm.empty_state();
        for v in signed_values(2_000) {
            let r = client.randomize(&v, &mut rng).unwrap();
            pm.absorb(&mut state, &r).unwrap();
        }
        let mut text = String::new();
        state.encode_state(&mut text);
        let mut lines = text.lines();
        let restored = MeanState::decode_state(&mut lines).unwrap();
        assert!(lines.next().is_none());
        // The expansion representation may compress on re-add; the
        // rendered total and all later behavior must be bit-identical.
        assert_eq!(restored.total(), state.total());
        assert_eq!(restored.sum().to_bits(), state.sum().to_bits());
        assert_eq!(
            pm.finalize(&restored).unwrap().to_bits(),
            pm.finalize(&state).unwrap().to_bits()
        );
        let mut a = state.clone();
        let mut b = restored;
        for v in signed_values(101) {
            let r = client.randomize(&v, &mut rng).unwrap();
            pm.absorb(&mut a, &r).unwrap();
            pm.absorb(&mut b, &r).unwrap();
        }
        assert_eq!(
            pm.finalize(&a).unwrap().to_bits(),
            pm.finalize(&b).unwrap().to_bits()
        );
        // Malformed states are rejected.
        let mut it = "mean 5 2 1.0".lines();
        assert!(MeanState::decode_state(&mut it).is_err(), "short fields");
        let mut it = "mean 5 1 inf".lines();
        assert!(MeanState::decode_state(&mut it).is_err(), "non-finite");
    }

    #[test]
    fn fingerprints_distinguish_mechanisms() {
        let a = Mechanism::fingerprint(&Sr::new(1.0).unwrap());
        let b = Mechanism::fingerprint(&Pm::new(1.0).unwrap());
        let c = Mechanism::fingerprint(&Sr::new(2.0).unwrap());
        assert!(a != b && a != c);
    }
}
