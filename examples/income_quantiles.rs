//! Spiky-distribution case study: estimating income quantiles under LDP.
//!
//! The paper's most interesting nuance (§6.2–6.3): on the *spiky* income
//! dataset — spiky because people report round salaries — HH-ADMM preserves
//! spikes and wins on KS distance and quantiles, while SW+EMS smooths them
//! away but still wins on Wasserstein distance. This example reproduces
//! that trade-off end to end.
//!
//! ```sh
//! cargo run --release --example income_quantiles
//! ```

use sw_ldp::prelude::*;

fn main() {
    let epsilon = 2.0;
    let d = 1024; // the paper's granularity for income

    // A synthetic stand-in for the ACS income data: lognormal body with
    // round-number point masses (see DESIGN.md for the substitution).
    let dataset = DatasetSpec {
        kind: DatasetKind::Income,
        n: 200_000,
        seed: 11,
    }
    .generate();
    let truth = dataset.paper_histogram().expect("non-empty dataset");
    println!(
        "income workload: {} users, {} buckets, eps = {epsilon}",
        dataset.n(),
        d
    );

    // --- SW + EMS ---------------------------------------------------------
    let mut rng = SplitMix64::new(3);
    let pipeline = SwPipeline::new(epsilon, d).expect("valid parameters");
    let sw_est = pipeline
        .estimate(&dataset.values, &Reconstruction::Ems, &mut rng)
        .expect("reconstruction succeeds");

    // --- HH-ADMM ----------------------------------------------------------
    let hh = HierarchicalHistogram::new(4, d, epsilon).expect("1024 = 4^5");
    let buckets = dataset.bucket_values(d);
    let raw = hh.collect(&buckets, &mut rng).expect("collection succeeds");
    let admm_est =
        hh_admm_histogram(hh.shape(), &raw, AdmmConfig::default()).expect("ADMM converges");

    // --- Compare ----------------------------------------------------------
    let levels: Vec<f64> = (1..=9).map(|k| k as f64 / 10.0).collect();
    println!(
        "\n{:<12} {:>12} {:>12} {:>12}",
        "method", "W1", "KS", "quantile MAE"
    );
    for (name, est) in [("SW-EMS", &sw_est), ("HH-ADMM", &admm_est)] {
        println!(
            "{:<12} {:>12.5} {:>12.5} {:>12.5}",
            name,
            wasserstein(&truth, est).unwrap(),
            ks_distance(&truth, est).unwrap(),
            quantile_mae(&truth, est, &levels).unwrap(),
        );
    }

    println!("\nper-decile income quantiles (value domain [0, 1] = [$0, $524288]):");
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "decile", "true", "SW-EMS", "HH-ADMM"
    );
    for &beta in &levels {
        println!(
            "{:>5}% {:>12.4} {:>12.4} {:>12.4}",
            (beta * 100.0) as u32,
            truth.quantile(beta),
            sw_est.quantile(beta),
            admm_est.quantile(beta),
        );
    }
    println!(
        "\nNote: on spiky data the paper finds HH-ADMM ahead on KS/quantiles \
         while SW-EMS keeps the lower Wasserstein distance; at small scale \
         the gap narrows but the distributions' characters differ visibly."
    );
}
