//! [`Mechanism`] implementation for the Square Wave pipeline.
//!
//! [`SwMechanism`] couples an [`SwPipeline`] with the reconstruction the
//! aggregator runs, which is all the unified API needs: the client side is
//! wave perturbation, the streaming state is the existing
//! [`ShardAggregator`] (a d̃-bucket report histogram — O(d̃) regardless of
//! the population), and `finalize` runs EM/EMS through the structured
//! operator. The batched collection paths (`randomize_batch` /
//! `aggregate_batch` on the shared `ldp-pool`) bridge into the same
//! [`Aggregator`] type, so pooled shards and hand-pushed streams merge
//! freely.

use crate::aggregator::ShardAggregator;
use crate::bootstrap::{bootstrap, BootstrapConfig, BootstrapResult};
use crate::em::EmConfig;
use crate::error::SwError;
use crate::pipeline::{Reconstruction, SwPipeline};
use crate::wave::WaveShape;
use ldp_core::params::fingerprint_fields;
use ldp_core::{Aggregator, CoreError, Domain, Epsilon, Mechanism};
use ldp_numeric::Histogram;
use rand::Rng;

const TAG_SW: u64 = 0x21;

/// The Square Wave mechanism under the unified `ldp-core` API: wave
/// perturbation on the client, streaming report histograms on the server,
/// EM/EMS reconstruction at finalize.
#[derive(Debug, Clone)]
pub struct SwMechanism {
    pipeline: SwPipeline,
    reconstruction: Reconstruction,
}

impl SwMechanism {
    /// The paper's recommended estimator: square wave, MI-optimal `b`,
    /// EMS reconstruction at granularity `d`.
    pub fn ems(eps: f64, d: usize) -> Result<Self, SwError> {
        Ok(SwMechanism {
            pipeline: SwPipeline::new(eps, d)?,
            reconstruction: Reconstruction::Ems,
        })
    }

    /// Square wave with plain EM reconstruction.
    pub fn em(eps: f64, d: usize) -> Result<Self, SwError> {
        Ok(SwMechanism {
            pipeline: SwPipeline::new(eps, d)?,
            reconstruction: Reconstruction::Em,
        })
    }

    /// Fully typed constructor over pre-validated parameters.
    pub fn new(eps: Epsilon, d: Domain, reconstruction: Reconstruction) -> Result<Self, SwError> {
        Ok(SwMechanism {
            pipeline: SwPipeline::new(eps.get(), d.get())?,
            reconstruction,
        })
    }

    /// Wraps an explicit pipeline (custom wave shape, `d̃ ≠ d`, …) — the
    /// low-level escape hatch.
    #[must_use]
    pub fn with_pipeline(pipeline: SwPipeline, reconstruction: Reconstruction) -> Self {
        SwMechanism {
            pipeline,
            reconstruction,
        }
    }

    /// The underlying pipeline.
    #[must_use]
    pub fn pipeline(&self) -> &SwPipeline {
        &self.pipeline
    }

    /// The reconstruction the aggregator runs at finalize.
    #[must_use]
    pub fn reconstruction(&self) -> &Reconstruction {
        &self.reconstruction
    }

    /// Batched client path: perturbs `values` across `shards` deterministic
    /// RNG streams on the shared worker pool and returns a ready-to-merge
    /// [`Aggregator`] (see [`SwPipeline::aggregate_batch`]).
    pub fn batch_aggregator(
        &self,
        values: &[f64],
        shards: usize,
        seed: u64,
    ) -> Result<Aggregator<&SwMechanism>, SwError> {
        let state = self.pipeline.aggregate_batch(values, shards, seed)?;
        let count = state.total();
        Ok(Aggregator::from_parts(self, state, count))
    }

    /// Poisson bootstrap over an aggregator's report histogram, running
    /// replicates on the shared worker pool through the structured
    /// operator.
    pub fn bootstrap<R: Rng + ?Sized>(
        &self,
        state: &ShardAggregator,
        config: &BootstrapConfig,
        rng: &mut R,
    ) -> Result<BootstrapResult, SwError> {
        bootstrap(self.pipeline.operator(), &state.to_counts(), config, rng)
    }

    fn reconstruction_fields(&self) -> [u64; 5] {
        match &self.reconstruction {
            Reconstruction::Em => [1, 0, 0, 0, 0],
            Reconstruction::Ems => [2, 0, 0, 0, 0],
            Reconstruction::Custom(EmConfig {
                ll_threshold,
                max_iterations,
                min_iterations,
                smoothing,
            }) => [
                3,
                ll_threshold.to_bits(),
                *max_iterations as u64,
                *min_iterations as u64,
                // Fold the full kernel weights in: two kernels of equal
                // radius but different weights finalize differently, so
                // their shards must not merge.
                smoothing.as_ref().map_or(0, |k| {
                    let bits: Vec<u64> = k.weights().iter().map(|w| w.to_bits()).collect();
                    fingerprint_fields(0x22, &bits) | 1
                }),
            ],
        }
    }
}

impl Mechanism for SwMechanism {
    type Input = f64;
    type Report = f64;
    type State = ShardAggregator;
    type Output = Histogram;

    fn epsilon(&self) -> Epsilon {
        Epsilon::new(self.pipeline.wave().epsilon()).expect("validated at construction")
    }

    fn fingerprint(&self) -> u64 {
        let wave = self.pipeline.wave();
        let shape = match wave.shape() {
            WaveShape::Square => 1,
            WaveShape::Triangle => 2,
            WaveShape::Trapezoid { ratio } => 0x100 | ratio.to_bits(),
        };
        let r = self.reconstruction_fields();
        fingerprint_fields(
            TAG_SW,
            &[
                wave.epsilon().to_bits(),
                wave.b().to_bits(),
                shape,
                self.pipeline.input_buckets() as u64,
                self.pipeline.output_buckets() as u64,
                r[0],
                r[1],
                r[2],
                r[3],
                r[4],
            ],
        )
    }

    fn randomize<R: Rng + ?Sized>(&self, input: &f64, rng: &mut R) -> Result<f64, CoreError> {
        self.pipeline
            .randomize(*input, rng)
            .map_err(|e| CoreError::InvalidInput(e.to_string()))
    }

    fn empty_state(&self) -> ShardAggregator {
        ShardAggregator::for_pipeline(&self.pipeline)
    }

    fn absorb(&self, state: &mut ShardAggregator, report: &f64) -> Result<(), CoreError> {
        state
            .push(*report)
            .map_err(|e| CoreError::InvalidReport(e.to_string()))
    }

    fn absorb_slice(&self, state: &mut ShardAggregator, reports: &[f64]) -> Result<(), CoreError> {
        // Vectorized all-or-nothing bulk ingest: one validation pass, then
        // a branch-free counting pass (the batched-collection hot path).
        state
            .push_slice(reports)
            .map_err(|e| CoreError::InvalidReport(e.to_string()))
    }

    fn merge_state(
        &self,
        state: &mut ShardAggregator,
        other: &ShardAggregator,
    ) -> Result<(), CoreError> {
        state
            .merge(other)
            .map_err(|e| CoreError::ShardMismatch(e.to_string()))
    }

    fn finalize(&self, state: &ShardAggregator) -> Result<Histogram, CoreError> {
        if state.total() == 0 {
            return Err(CoreError::Aggregation(
                "need at least one report to reconstruct a distribution".into(),
            ));
        }
        self.pipeline
            .reconstruct(&state.to_counts(), &self.reconstruction)
            .map(|r| r.histogram)
            .map_err(|e| CoreError::Aggregation(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_core::Client;
    use ldp_numeric::SplitMix64;

    fn values(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i % 173) as f64 / 173.0).collect()
    }

    /// The unified streaming path must reproduce the legacy
    /// `SwPipeline::estimate` bit for bit when fed the same RNG stream.
    #[test]
    fn streaming_matches_legacy_pipeline_estimate() {
        for reconstruction in [Reconstruction::Em, Reconstruction::Ems] {
            let pipeline = SwPipeline::new(1.0, 48).unwrap();
            let mech = SwMechanism::with_pipeline(pipeline.clone(), reconstruction.clone());
            let vals = values(8_000);
            let legacy = {
                let mut rng = SplitMix64::new(2020);
                pipeline.estimate(&vals, &reconstruction, &mut rng).unwrap()
            };
            let streamed = {
                let mut rng = SplitMix64::new(2020);
                let client = Client::new(&mech);
                let mut agg = Aggregator::new(&mech);
                for v in &vals {
                    agg.push(&client.randomize(v, &mut rng).unwrap()).unwrap();
                }
                agg.finalize().unwrap()
            };
            assert_eq!(legacy.probs(), streamed.probs());
        }
    }

    #[test]
    fn batch_aggregator_matches_batched_pipeline() {
        let mech = SwMechanism::ems(1.0, 32).unwrap();
        let vals = values(20_000);
        let agg = mech.batch_aggregator(&vals, 4, 99).unwrap();
        assert_eq!(agg.count(), vals.len() as u64);
        let unified = agg.finalize().unwrap();
        let legacy = mech
            .pipeline()
            .estimate_batch(&vals, &Reconstruction::Ems, 4, 99)
            .unwrap();
        assert_eq!(unified.probs(), legacy.probs());
    }

    #[test]
    fn pooled_shards_merge_with_hand_pushed_streams() {
        let mech = SwMechanism::ems(1.0, 32).unwrap();
        let vals = values(6_000);
        // First half collected through the pooled batch path...
        let mut pooled = mech.batch_aggregator(&vals[..3_000], 2, 7).unwrap();
        // ...second half pushed by hand on another "collector".
        let client = Client::new(&mech);
        let mut rng = SplitMix64::new(8);
        let mut manual = Aggregator::new(&mech);
        for v in &vals[3_000..] {
            manual
                .push(&client.randomize(v, &mut rng).unwrap())
                .unwrap();
        }
        pooled.merge(&manual).unwrap();
        assert_eq!(pooled.count(), 6_000);
        let h = pooled.finalize().unwrap();
        assert_eq!(h.len(), 32);
        assert!((h.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn estimation_path_never_builds_the_dense_matrix() {
        let mech = SwMechanism::ems(1.0, 32).unwrap();
        let mut rng = SplitMix64::new(5);
        let client = Client::new(&mech);
        let mut agg = Aggregator::new(&mech);
        for v in values(2_000) {
            agg.push(&client.randomize(&v, &mut rng).unwrap()).unwrap();
        }
        agg.finalize().unwrap();
        assert!(!mech.pipeline().dense_transition_built());
    }

    #[test]
    fn bootstrap_runs_over_aggregator_state() {
        let mech = SwMechanism::ems(1.0, 16).unwrap();
        let agg = mech.batch_aggregator(&values(10_000), 2, 3).unwrap();
        let mut rng = SplitMix64::new(9);
        let config = BootstrapConfig {
            replicates: 5,
            ..BootstrapConfig::default()
        };
        let result = mech.bootstrap(agg.state(), &config, &mut rng).unwrap();
        assert_eq!(result.point.len(), 16);
    }

    #[test]
    fn empty_aggregator_refuses_to_finalize() {
        let mech = SwMechanism::ems(1.0, 16).unwrap();
        let agg = Aggregator::new(&mech);
        assert!(matches!(agg.finalize(), Err(CoreError::Aggregation(_))));
    }

    #[test]
    fn malformed_reports_are_rejected() {
        let mech = SwMechanism::ems(1.0, 16).unwrap();
        let mut agg = Aggregator::new(&mech);
        assert!(agg.push(&f64::NAN).is_err());
        assert!(agg.push(&-100.0).is_err());
        assert_eq!(agg.count(), 0);
    }

    #[test]
    fn fingerprints_distinguish_reconstruction_and_granularity() {
        let a = SwMechanism::ems(1.0, 32).unwrap().fingerprint();
        let b = SwMechanism::em(1.0, 32).unwrap().fingerprint();
        let c = SwMechanism::ems(1.0, 64).unwrap().fingerprint();
        let d = SwMechanism::ems(2.0, 32).unwrap().fingerprint();
        assert!(a != b && a != c && a != d);
        assert_eq!(a, SwMechanism::ems(1.0, 32).unwrap().fingerprint());
        // Mismatched configurations refuse to merge.
        let m1 = SwMechanism::ems(1.0, 32).unwrap();
        let m2 = SwMechanism::em(1.0, 32).unwrap();
        let mut agg1 = Aggregator::new(&m1);
        let agg2 = Aggregator::new(&m2);
        assert!(agg1.merge(&agg2).is_err());
    }

    #[test]
    fn fingerprints_distinguish_equal_radius_kernels() {
        use crate::smoothing::SmoothingKernel;
        let config = |kernel| {
            Reconstruction::Custom(EmConfig {
                ll_threshold: 0.0,
                max_iterations: 5,
                min_iterations: 1,
                smoothing: Some(kernel),
            })
        };
        let pipeline = SwPipeline::new(1.0, 16).unwrap();
        let a = SwMechanism::with_pipeline(pipeline.clone(), config(SmoothingKernel::binomial3()));
        let b = SwMechanism::with_pipeline(
            pipeline,
            config(SmoothingKernel::custom(vec![1.0, 1.0, 1.0]).unwrap()),
        );
        // Same radius, different weights -> different finalize behavior ->
        // shards must not merge.
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut agg = Aggregator::new(&a);
        assert!(agg.merge(&Aggregator::new(&b)).is_err());
    }

    #[test]
    fn typed_constructor_accepts_validated_parameters() {
        let eps = Epsilon::new(1.0).unwrap();
        let d = Domain::new(64).unwrap();
        let mech = SwMechanism::new(eps, d, Reconstruction::Ems).unwrap();
        assert_eq!(Mechanism::epsilon(&mech).get(), 1.0);
        assert_eq!(mech.pipeline().input_buckets(), 64);
    }
}
