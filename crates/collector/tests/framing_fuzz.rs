//! Property suite for the incremental protocol machine.
//!
//! The reactor feeds [`ldp_collector::machine::Machine`] whatever byte
//! slices the kernel hands it, so the machine must produce the exact
//! ack stream of the blocking reader no matter how the input is
//! sliced. These tests drive the same exchanges three ways —
//! byte-at-a-time through the machine, randomly-split through the
//! machine, and over a real socket against the thread-per-connection
//! engine — and assert the ack bytes and the finalized window are
//! identical across all three.

use ldp_collector::machine::{
    Action, CommitDone, CommitRequest, Machine, MachineConfig, MachineEnd,
};
use ldp_collector::server::{serve, ServeOptions, SnapshotPolicy};
use ldp_collector::session::CollectorSession;
use ldp_collector::{build_session, protocol, CollectorError};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::time::Instant;

const SPEC: &str = "sw-ems:eps=1,d=16";

fn frame(payload: &str) -> Vec<u8> {
    let mut out = (payload.len() as u32).to_be_bytes().to_vec();
    out.extend_from_slice(payload.as_bytes());
    out
}

fn eos() -> Vec<u8> {
    0u32.to_be_bytes().to_vec()
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Split `total` bytes into random chunk sizes in `1..=16`.
fn random_splits(total: usize, seed: u64) -> Vec<usize> {
    let mut state = seed | 1;
    let mut sizes = Vec::new();
    let mut left = total;
    while left > 0 {
        let take = ((xorshift(&mut state) % 16) as usize + 1).min(left);
        sizes.push(take);
        left -= take;
    }
    sizes
}

/// Resolve every pending [`Action`] inline: collect `Send` bytes,
/// grant reservations immediately, and run commits against `session`
/// with the absorber's exact dedup rules.
fn resolve(
    session: &mut dyn CollectorSession,
    machine: &mut Machine,
    actions: &mut Vec<Action>,
    acks: &mut Vec<u8>,
    ends: &mut Vec<MachineEnd>,
) {
    while !actions.is_empty() {
        for action in std::mem::take(actions) {
            match action {
                Action::Send(bytes) => acks.extend_from_slice(&bytes),
                Action::Reserve { .. } => machine.budget_granted(),
                Action::Release { .. } => {}
                Action::RateShed | Action::Oversized => {}
                Action::End(end) => ends.push(end),
                Action::Commit(request) => {
                    let done = match request {
                        CommitRequest::Hello { session: id, .. } => CommitDone::Hello {
                            cursor: session.session_cursor(&id),
                        },
                        CommitRequest::Batch { batch, seq, .. } => CommitDone::Batch(match seq {
                            None => session.absorb_prepared(batch).map(|_| ()),
                            Some((id, n)) => {
                                let cursor = session.session_cursor(&id);
                                if n < cursor {
                                    Ok(()) // replay: ack `+`, absorb nothing
                                } else if n > cursor {
                                    Err(CollectorError::Protocol(format!(
                                        "session {id:?}: frame seq {n} skips ahead of cursor {cursor}"
                                    )))
                                } else {
                                    session.absorb_prepared(batch).map(|_| {
                                        session.set_session_cursor(&id, n + 1);
                                    })
                                }
                            }
                        }),
                        CommitRequest::Flush { .. } => CommitDone::Flush(Ok(session.count())),
                    };
                    machine.commit_done(done, actions);
                }
            }
        }
    }
}

/// Feed `input` through a fresh machine in the given chunk sizes and
/// return the ack bytes it emits. Commits resolve synchronously, so the
/// machine never parks between calls.
fn machine_acks(
    session: &mut dyn CollectorSession,
    config: MachineConfig,
    input: &[u8],
    sizes: &[usize],
) -> Vec<u8> {
    let decoder = session.batch_decoder();
    let mut machine = Machine::new(config, Instant::now());
    let mut actions = Vec::new();
    let mut acks = Vec::new();
    let mut ends = Vec::new();
    machine.start(&mut actions);
    resolve(session, &mut machine, &mut actions, &mut acks, &mut ends);

    let mut offset = 0usize;
    for &size in sizes {
        let end = (offset + size).min(input.len());
        while offset < end && !machine.is_ended() {
            let n = machine.on_bytes(
                &input[offset..end],
                Instant::now(),
                decoder.as_ref(),
                &mut actions,
            );
            resolve(session, &mut machine, &mut actions, &mut acks, &mut ends);
            assert!(
                n > 0 || machine.is_ended(),
                "machine stalled with commits resolved inline"
            );
            offset += n;
        }
        if machine.is_ended() {
            break;
        }
    }
    if !machine.is_ended() {
        machine.on_eof(&mut actions);
        resolve(session, &mut machine, &mut actions, &mut acks, &mut ends);
    }
    acks
}

/// Run the same per-connection inputs against the blocking
/// thread-per-connection engine over a real socket, sequentially, and
/// return each connection's raw ack bytes plus the finalized window.
fn blocking_acks(
    spec: &str,
    inputs: &[Vec<u8>],
    max_frame_bytes: u32,
) -> (Vec<Vec<u8>>, String, u64) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let connections = inputs.len() as u64;
    let server = std::thread::spawn({
        let spec = spec.to_string();
        move || {
            let mut session = build_session(&spec).unwrap();
            let options = ServeOptions {
                connections,
                threads_per_conn: true,
                max_frame_bytes,
                ..ServeOptions::default()
            };
            let policy = SnapshotPolicy {
                path: None,
                every: 0,
                keep: 0,
            };
            serve(&listener, session.as_mut(), &policy, &options).unwrap();
            let finalized = if session.count() > 0 {
                session.finalize_text().unwrap()
            } else {
                String::new() // finalize needs reports; empty window compares empty
            };
            (finalized, session.count())
        }
    });
    let mut all = Vec::new();
    for input in inputs {
        let mut stream = TcpStream::connect(addr).unwrap();
        // Rejected sessions may close before the whole input is written.
        let _ = stream.write_all(input);
        let _ = stream.shutdown(Shutdown::Write);
        let mut acks = Vec::new();
        let _ = stream.read_to_end(&mut acks);
        all.push(acks);
    }
    let (finalized, count) = server.join().unwrap();
    (all, finalized, count)
}

/// Assert that the machine (byte-at-a-time AND randomly split) matches
/// the blocking engine on every connection's ack bytes and on the
/// finalized window.
fn assert_equivalent(spec: &str, inputs: &[Vec<u8>], max_frame_bytes: u32, seed: u64) {
    let (expected_acks, expected_final, expected_count) =
        blocking_acks(spec, inputs, max_frame_bytes);

    for (label, sizes_for) in [("byte-at-a-time", None), ("random splits", Some(seed))] {
        let mut session = build_session(spec).unwrap();
        for (i, input) in inputs.iter().enumerate() {
            let sizes = match sizes_for {
                None => vec![1; input.len().max(1)],
                Some(seed) => random_splits(input.len(), seed ^ (i as u64 + 1)),
            };
            let config = MachineConfig {
                max_frame_bytes,
                ..MachineConfig::default()
            };
            let acks = machine_acks(session.as_mut(), config, input, &sizes);
            assert_eq!(
                acks, expected_acks[i],
                "{label}: conn {i} ack stream diverged from the blocking reader"
            );
        }
        assert_eq!(session.count(), expected_count, "{label}: count diverged");
        let finalized = if session.count() > 0 {
            session.finalize_text().unwrap()
        } else {
            String::new()
        };
        assert_eq!(
            finalized, expected_final,
            "{label}: finalized window diverged from the blocking reader"
        );
    }
}

/// Build one connection's bytes: optional hello, then frames, then EOS.
fn connection_bytes(hello: Option<&str>, frames: &[String], with_eos: bool) -> Vec<u8> {
    let mut out = Vec::new();
    if let Some(h) = hello {
        out.extend_from_slice(&frame(h));
    }
    for f in frames {
        out.extend_from_slice(&frame(f));
    }
    if with_eos {
        out.extend_from_slice(&eos());
    }
    out
}

fn gen_frames(spec: &str, per_frame: u64, count: usize, seed: u64) -> Vec<String> {
    let session = build_session(spec).unwrap();
    (0..count)
        .map(|i| session.gen_reports(per_frame, seed + i as u64).unwrap())
        .collect()
}

#[test]
fn bare_session_acks_are_split_invariant() {
    let frames = gen_frames(SPEC, 20, 3, 100);
    let input = connection_bytes(None, &frames, true);
    assert_equivalent(SPEC, &[input], 64 * 1024, 0xB0A7);
}

#[test]
fn sequenced_session_with_replay_and_resume_is_split_invariant() {
    let frames = gen_frames(SPEC, 12, 4, 200);
    // First visit: frames 0 and 1, no EOS (the peer "crashes").
    let mut first = frame(&protocol::encode_hello("fuzz", 0));
    for (n, f) in frames[..2].iter().enumerate() {
        first.extend_from_slice(&frame(&protocol::encode_seq_frame(n as u64, f)));
    }
    // Second visit replays from 0 — the server acks `+` for the two
    // duplicates without absorbing, then takes 2 and 3 and the EOS.
    let mut second = frame(&protocol::encode_hello("fuzz", 0));
    for (n, f) in frames.iter().enumerate() {
        second.extend_from_slice(&frame(&protocol::encode_seq_frame(n as u64, f)));
    }
    second.extend_from_slice(&eos());
    assert_equivalent(SPEC, &[first, second], 64 * 1024, 0x5EED);
}

#[test]
fn a_gap_in_the_sequence_is_refused_identically() {
    let frames = gen_frames(SPEC, 8, 1, 300);
    let mut input = frame(&protocol::encode_hello("gap", 0));
    input.extend_from_slice(&frame(&protocol::encode_seq_frame(5, &frames[0])));
    input.extend_from_slice(&eos());
    assert_equivalent(SPEC, &[input], 64 * 1024, 0x6A9);
}

#[test]
fn an_undecodable_frame_is_refused_identically() {
    let good = gen_frames(SPEC, 8, 1, 400);
    let input = connection_bytes(
        None,
        &[good[0].clone(), "this is not a wire report\n".to_string()],
        true,
    );
    assert_equivalent(SPEC, &[input], 64 * 1024, 0xBAD);
}

#[test]
fn an_oversized_frame_is_refused_identically() {
    let frames = gen_frames(SPEC, 40, 1, 500);
    assert!(frames[0].len() > 256, "need a frame above the test cap");
    let input = connection_bytes(None, &frames, true);
    assert_equivalent(SPEC, &[input], 256, 0xFA7);
}

#[test]
fn a_window_line_routes_or_refuses_identically() {
    let frames = gen_frames(SPEC, 8, 1, 800);
    // `window default` is accepted everywhere; an unknown window is
    // refused with `-` on both engines.
    let mut accepted = frame(&protocol::encode_hello_routed("wd", 0, Some("default")));
    accepted.extend_from_slice(&frame(&protocol::encode_seq_frame(0, &frames[0])));
    accepted.extend_from_slice(&eos());
    let mut refused = frame(&protocol::encode_hello_routed("wx", 0, Some("nope")));
    refused.extend_from_slice(&frame(&protocol::encode_seq_frame(0, &frames[0])));
    refused.extend_from_slice(&eos());
    assert_equivalent(SPEC, &[accepted, refused], 64 * 1024, 0x717D0);
}

#[test]
fn a_rate_shed_emits_the_busy_frame_at_any_split() {
    // Machine-only: the busy shape is easier to pin than to socket-race.
    // Burst equals rate, so the second frame in the same instant sheds.
    let frames = gen_frames(SPEC, 4, 2, 600);
    let input = connection_bytes(None, &frames, true);
    let config = MachineConfig {
        rate: Some(4.0),
        ..MachineConfig::default()
    };
    let mut session = build_session(SPEC).unwrap();
    let acks = machine_acks(
        session.as_mut(),
        config,
        &input,
        &random_splits(input.len(), 0x5AFE),
    );
    // `+` for the first frame, then `!` + 4-byte retry hint for the
    // shed one, then `+` for the end-of-stream flush.
    assert_eq!(acks[0], b'+');
    assert_eq!(acks[1], protocol::BUSY_BYTE);
    assert_eq!(acks.len(), 1 + 5 + 1);
    assert_eq!(*acks.last().unwrap(), b'+');
    assert_eq!(session.count(), 4, "only the first frame absorbed");
}

#[test]
fn random_fleets_stay_bit_identical_across_twenty_seeds() {
    for seed in 0..20u64 {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let frame_count = (xorshift(&mut state) % 4 + 1) as usize;
        let per_frame = xorshift(&mut state) % 24 + 1;
        let frames = gen_frames(SPEC, per_frame, frame_count, seed * 31 + 7);
        let sequenced = xorshift(&mut state).is_multiple_of(2);
        let with_eos = !xorshift(&mut state).is_multiple_of(4);
        let input = if sequenced {
            let id = format!("fz{seed}");
            let mut bytes = frame(&protocol::encode_hello(&id, 0));
            for (n, f) in frames.iter().enumerate() {
                bytes.extend_from_slice(&frame(&protocol::encode_seq_frame(n as u64, f)));
            }
            if with_eos {
                bytes.extend_from_slice(&eos());
            }
            bytes
        } else {
            connection_bytes(None, &frames, with_eos)
        };
        assert_equivalent(SPEC, &[input], 64 * 1024, seed ^ 0xDEAD_BEEF);
    }
}

#[test]
fn machine_end_states_match_their_inputs() {
    // Clean EOS → Completed; missing EOS → PeerClosed; gap → Failed.
    let frames = gen_frames(SPEC, 6, 1, 700);
    type EndCase = (Vec<u8>, fn(&MachineEnd) -> bool, &'static str);
    let cases: Vec<EndCase> = vec![
        (
            connection_bytes(None, &frames, true),
            |end| matches!(end, MachineEnd::Completed),
            "Completed",
        ),
        (
            connection_bytes(None, &frames, false),
            |end| matches!(end, MachineEnd::PeerClosed),
            "PeerClosed",
        ),
        (
            {
                let mut b = frame(&protocol::encode_hello("ends", 0));
                b.extend_from_slice(&frame(&protocol::encode_seq_frame(9, &frames[0])));
                b
            },
            |end| matches!(end, MachineEnd::Failed(_)),
            "Failed",
        ),
    ];
    for (input, want, label) in cases {
        let mut session = build_session(SPEC).unwrap();
        let decoder = session.batch_decoder();
        let mut machine = Machine::new(MachineConfig::default(), Instant::now());
        let mut actions = Vec::new();
        let mut acks = Vec::new();
        let mut ends = Vec::new();
        machine.start(&mut actions);
        resolve(
            session.as_mut(),
            &mut machine,
            &mut actions,
            &mut acks,
            &mut ends,
        );
        let mut offset = 0;
        while offset < input.len() && !machine.is_ended() {
            let n = machine.on_bytes(
                &input[offset..],
                Instant::now(),
                decoder.as_ref(),
                &mut actions,
            );
            resolve(
                session.as_mut(),
                &mut machine,
                &mut actions,
                &mut acks,
                &mut ends,
            );
            assert!(n > 0 || machine.is_ended(), "{label}: machine stalled");
            offset += n;
        }
        if !machine.is_ended() {
            machine.on_eof(&mut actions);
            resolve(
                session.as_mut(),
                &mut machine,
                &mut actions,
                &mut acks,
                &mut ends,
            );
        }
        assert!(machine.is_ended(), "{label}: machine must have ended");
        assert_eq!(ends.len(), 1, "{label}: exactly one end state");
        assert!(want(&ends[0]), "wrong end state, wanted {label}");
    }
}
