//! Mean and variance estimation mechanisms under LDP (paper §2.2, §6.3).
//!
//! These are the specialized baselines the paper compares SW+EMS against on
//! the mean/variance metrics:
//!
//! - [`sr::Sr`] — Stochastic Rounding (Duchi et al.): every user reports an
//!   extreme value ±1 with value-dependent probabilities;
//! - [`pm::Pm`] — the Piecewise Mechanism (Wang et al.): reports land in a
//!   value-centred high-probability interval of a continuous output domain;
//! - [`variance::MeanVariance`] — the paper's two-phase extension that
//!   spends half the population on the mean and half on the squared
//!   deviations;
//! - [`hybrid::Hybrid`] — Wang et al.'s PM/SR mixture (extension beyond the
//!   paper's separate evaluation of the two).

#![forbid(unsafe_code)]
// `!(x > 0.0)` is used deliberately throughout: unlike `x <= 0.0` it is
// also true for NaN, which is exactly what the validators need to reject.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod error;
pub mod hybrid;
pub mod mechanism;
pub mod pm;
pub mod sr;
pub mod variance;

pub use error::MeanError;
pub use hybrid::{Hybrid, HybridReport};
pub use mechanism::MeanState;
pub use pm::Pm;
pub use sr::{from_signed, to_signed, Sr};
pub use variance::{MeanMechanism, MeanVariance, MeanVarianceEstimate};
