//! [`Mechanism`] implementations for every frequency oracle.
//!
//! This adapts the crate-local [`FrequencyOracle`] protocols onto the
//! workspace-wide `ldp-core` surface: each oracle gains a bounded streaming
//! state (per-value counts, OLH support counts, or an integer Hadamard
//! spectrum) so collectors ingest reports one at a time in O(d) memory and
//! merge shards exactly. One-shot aggregation and streaming ingestion share
//! the same debiasing helpers, which makes their estimates bit-identical by
//! construction.

use crate::binning::BinningEstimator;
use crate::error::CfoError;
use crate::grr::Grr;
use crate::hadamard::{Hrr, HrrReport};
use crate::olh::{Olh, OlhReport};
use crate::oracle::FrequencyOracle;
use crate::oue::{Oue, OueReport};
use crate::postprocess::norm_sub;
use crate::select::{AdaptiveOracle, AdaptiveReport};
use ldp_core::params::fingerprint_fields;
use ldp_core::snapshot::{
    expect_tag, next_line, parse_fields, parse_snapshot_field, SnapshotState,
};
use ldp_core::wire::parse_field;
use ldp_core::{CoreError, Epsilon, Mechanism, WireReport};
use ldp_numeric::histogram::bucket_of;
use ldp_numeric::Histogram;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt::Write;

/// Fingerprint tags, one per mechanism family (kept distinct so two
/// different protocols over the same `(d, ε)` never merge).
mod tag {
    pub const GRR: u64 = 0x01;
    pub const OLH: u64 = 0x02;
    pub const OUE: u64 = 0x03;
    pub const HRR: u64 = 0x04;
    pub const BINNING: u64 = 0x05;
}

fn input_err(e: CfoError) -> CoreError {
    CoreError::InvalidInput(e.to_string())
}

/// Per-value report counts: the streaming state of GRR and OUE.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CountState {
    counts: Vec<u64>,
    n: u64,
}

impl CountState {
    fn new(d: usize) -> Self {
        CountState {
            counts: vec![0; d],
            n: 0,
        }
    }

    /// Raw per-value counts.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of reports absorbed.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.n
    }

    fn merge(&mut self, other: &CountState) -> Result<(), CoreError> {
        if self.counts.len() != other.counts.len() {
            return Err(CoreError::ShardMismatch(format!(
                "count states over {} vs {} values",
                self.counts.len(),
                other.counts.len()
            )));
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.n += other.n;
        Ok(())
    }
}

/// Per-value support counts: the streaming state of OLH.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SupportState {
    support: Vec<u64>,
    n: u64,
}

impl SupportState {
    /// Raw per-value support counts.
    #[must_use]
    pub fn support(&self) -> &[u64] {
        &self.support
    }

    /// Number of reports absorbed.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.n
    }
}

/// Integer Walsh–Hadamard spectrum sums: the streaming state of HRR.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpectrumState {
    spectrum: Vec<i64>,
    n: u64,
}

impl SpectrumState {
    /// Raw per-row ±1 sums.
    #[must_use]
    pub fn spectrum(&self) -> &[i64] {
        &self.spectrum
    }

    /// Number of reports absorbed.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.n
    }
}

impl Mechanism for Grr {
    type Input = usize;
    type Report = usize;
    type State = CountState;
    type Output = Vec<f64>;

    fn epsilon(&self) -> Epsilon {
        Epsilon::new(FrequencyOracle::epsilon(self)).expect("validated at construction")
    }

    fn fingerprint(&self) -> u64 {
        fingerprint_fields(
            tag::GRR,
            &[
                self.domain_size() as u64,
                FrequencyOracle::epsilon(self).to_bits(),
            ],
        )
    }

    fn randomize<R: Rng + ?Sized>(&self, input: &usize, rng: &mut R) -> Result<usize, CoreError> {
        FrequencyOracle::randomize(self, *input, rng).map_err(input_err)
    }

    fn empty_state(&self) -> CountState {
        CountState::new(self.domain_size())
    }

    fn absorb(&self, state: &mut CountState, report: &usize) -> Result<(), CoreError> {
        if *report >= self.domain_size() {
            return Err(CoreError::InvalidReport(format!(
                "GRR report {report} outside domain of {}",
                self.domain_size()
            )));
        }
        state.counts[*report] += 1;
        state.n += 1;
        Ok(())
    }

    // absorb_slice keeps the default report-at-a-time loop: a GRR absorb
    // is one domain check and one counter increment (~1 ns), and
    // benchmarking showed fused/unrolled slice variants measurably slower
    // than the plain loop. Bulk ingest still parallelizes through
    // `Aggregator::push_slice_sharded`.

    fn merge_state(&self, state: &mut CountState, other: &CountState) -> Result<(), CoreError> {
        state.merge(other)
    }

    fn finalize(&self, state: &CountState) -> Result<Vec<f64>, CoreError> {
        Ok(self.estimate_from_counts(&state.counts, state.n))
    }
}

impl Mechanism for Olh {
    type Input = usize;
    type Report = OlhReport;
    type State = SupportState;
    type Output = Vec<f64>;

    fn epsilon(&self) -> Epsilon {
        Epsilon::new(FrequencyOracle::epsilon(self)).expect("validated at construction")
    }

    fn fingerprint(&self) -> u64 {
        fingerprint_fields(
            tag::OLH,
            &[
                self.domain_size() as u64,
                FrequencyOracle::epsilon(self).to_bits(),
                self.hash_range() as u64,
            ],
        )
    }

    fn randomize<R: Rng + ?Sized>(
        &self,
        input: &usize,
        rng: &mut R,
    ) -> Result<OlhReport, CoreError> {
        FrequencyOracle::randomize(self, *input, rng).map_err(input_err)
    }

    fn empty_state(&self) -> SupportState {
        SupportState {
            support: vec![0; self.domain_size()],
            n: 0,
        }
    }

    fn absorb(&self, state: &mut SupportState, report: &OlhReport) -> Result<(), CoreError> {
        if report.y as usize >= self.hash_range() {
            return Err(CoreError::InvalidReport(format!(
                "OLH report value {} outside hash range {}",
                report.y,
                self.hash_range()
            )));
        }
        self.add_support(&mut state.support, report);
        state.n += 1;
        Ok(())
    }

    fn absorb_slice(
        &self,
        state: &mut SupportState,
        reports: &[OlhReport],
    ) -> Result<(), CoreError> {
        let g = self.hash_range();
        if let Some(bad) = reports.iter().position(|r| r.y as usize >= g) {
            return Err(CoreError::InvalidReport(format!(
                "OLH report value {} (index {bad}) outside hash range {g}",
                reports[bad].y
            )));
        }
        self.add_support_slice(&mut state.support, reports);
        state.n += reports.len() as u64;
        Ok(())
    }

    fn merge_state(&self, state: &mut SupportState, other: &SupportState) -> Result<(), CoreError> {
        if state.support.len() != other.support.len() {
            return Err(CoreError::ShardMismatch(format!(
                "support states over {} vs {} values",
                state.support.len(),
                other.support.len()
            )));
        }
        for (a, b) in state.support.iter_mut().zip(&other.support) {
            *a += b;
        }
        state.n += other.n;
        Ok(())
    }

    fn finalize(&self, state: &SupportState) -> Result<Vec<f64>, CoreError> {
        Ok(self.estimate_from_support(&state.support, state.n))
    }
}

impl Mechanism for Oue {
    type Input = usize;
    type Report = OueReport;
    type State = CountState;
    type Output = Vec<f64>;

    fn epsilon(&self) -> Epsilon {
        Epsilon::new(FrequencyOracle::epsilon(self)).expect("validated at construction")
    }

    fn fingerprint(&self) -> u64 {
        fingerprint_fields(
            tag::OUE,
            &[
                self.domain_size() as u64,
                FrequencyOracle::epsilon(self).to_bits(),
            ],
        )
    }

    fn randomize<R: Rng + ?Sized>(
        &self,
        input: &usize,
        rng: &mut R,
    ) -> Result<OueReport, CoreError> {
        FrequencyOracle::randomize(self, *input, rng).map_err(input_err)
    }

    fn empty_state(&self) -> CountState {
        CountState::new(self.domain_size())
    }

    fn absorb(&self, state: &mut CountState, report: &OueReport) -> Result<(), CoreError> {
        if report.len() != self.domain_size() {
            return Err(CoreError::InvalidReport(format!(
                "OUE report over {} bits, mechanism domain is {}",
                report.len(),
                self.domain_size()
            )));
        }
        self.add_counts(&mut state.counts, report);
        state.n += 1;
        Ok(())
    }

    fn absorb_slice(&self, state: &mut CountState, reports: &[OueReport]) -> Result<(), CoreError> {
        let d = self.domain_size();
        if let Some(bad) = reports.iter().position(|r| r.len() != d) {
            return Err(CoreError::InvalidReport(format!(
                "OUE report over {} bits (index {bad}), mechanism domain is {d}",
                reports[bad].len()
            )));
        }
        // Carry-save bit-count kernel: 7 reports per block through a CSA
        // tree instead of a sparse walk per report. Exact u64 additions,
        // so bit-identical to per-report `add_counts` in any order.
        ldp_numeric::kernels::bitcount_rows(
            &mut state.counts,
            reports.iter().map(OueReport::words),
        );
        state.n += reports.len() as u64;
        Ok(())
    }

    fn merge_state(&self, state: &mut CountState, other: &CountState) -> Result<(), CoreError> {
        state.merge(other)
    }

    fn finalize(&self, state: &CountState) -> Result<Vec<f64>, CoreError> {
        Ok(self.estimate_from_counts(&state.counts, state.n))
    }
}

impl Mechanism for Hrr {
    type Input = usize;
    type Report = HrrReport;
    type State = SpectrumState;
    type Output = Vec<f64>;

    fn epsilon(&self) -> Epsilon {
        Epsilon::new(FrequencyOracle::epsilon(self)).expect("validated at construction")
    }

    fn fingerprint(&self) -> u64 {
        fingerprint_fields(
            tag::HRR,
            &[
                self.domain_size() as u64,
                FrequencyOracle::epsilon(self).to_bits(),
            ],
        )
    }

    fn randomize<R: Rng + ?Sized>(
        &self,
        input: &usize,
        rng: &mut R,
    ) -> Result<HrrReport, CoreError> {
        FrequencyOracle::randomize(self, *input, rng).map_err(input_err)
    }

    fn empty_state(&self) -> SpectrumState {
        SpectrumState {
            spectrum: vec![0; self.padded_size()],
            n: 0,
        }
    }

    fn absorb(&self, state: &mut SpectrumState, report: &HrrReport) -> Result<(), CoreError> {
        if report.row as usize >= self.padded_size() || report.bit.abs() != 1 {
            return Err(CoreError::InvalidReport(format!(
                "HRR report (row {}, bit {}) invalid for padded domain {}",
                report.row,
                report.bit,
                self.padded_size()
            )));
        }
        state.spectrum[report.row as usize] += i64::from(report.bit);
        state.n += 1;
        Ok(())
    }

    // absorb_slice keeps the default report-at-a-time loop: an HRR absorb
    // is one validity check and one spectrum scatter-add, and the scatter
    // rows may alias so a 4-wide unroll gains no instruction-level
    // parallelism — benchmarking showed it slower than the plain loop.
    // Bulk ingest still parallelizes through
    // `Aggregator::push_slice_sharded`.

    fn merge_state(
        &self,
        state: &mut SpectrumState,
        other: &SpectrumState,
    ) -> Result<(), CoreError> {
        if state.spectrum.len() != other.spectrum.len() {
            return Err(CoreError::ShardMismatch(format!(
                "spectrum states over {} vs {} rows",
                state.spectrum.len(),
                other.spectrum.len()
            )));
        }
        for (a, b) in state.spectrum.iter_mut().zip(&other.spectrum) {
            *a += b;
        }
        state.n += other.n;
        Ok(())
    }

    fn finalize(&self, state: &SpectrumState) -> Result<Vec<f64>, CoreError> {
        Ok(self.estimate_from_spectrum(&state.spectrum, state.n))
    }
}

/// The streaming state of the GRR/OLH adaptive oracle, tagged like its
/// reports.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdaptiveState {
    /// GRR was selected: per-value counts.
    Grr(CountState),
    /// OLH was selected: per-value support counts.
    Olh(SupportState),
}

impl AdaptiveState {
    /// Number of reports absorbed.
    #[must_use]
    pub fn total(&self) -> u64 {
        match self {
            AdaptiveState::Grr(s) => s.total(),
            AdaptiveState::Olh(s) => s.total(),
        }
    }
}

/// One line: `counts <n> <d> <count…>`.
impl SnapshotState for CountState {
    fn encode_state(&self, out: &mut String) {
        let _ = write!(out, "counts {} {}", self.n, self.counts.len());
        for c in &self.counts {
            let _ = write!(out, " {c}");
        }
        out.push('\n');
    }

    fn decode_state(lines: &mut dyn Iterator<Item = &str>) -> Result<Self, CoreError> {
        let line = next_line(lines, "count state")?;
        let mut it = line.split_whitespace();
        expect_tag(it.next(), "counts")?;
        let n: u64 = parse_snapshot_field(it.next(), "count state total")?;
        let d: usize = parse_snapshot_field(it.next(), "count state domain")?;
        let counts: Vec<u64> = parse_fields(it, d, "count state entry")?;
        // No mass-vs-total invariant holds here: GRR adds one count per
        // report but OUE adds one per set bit, so only field arity is
        // structural. Integrity is the snapshot container's checksum.
        Ok(CountState { counts, n })
    }
}

/// One line: `support <n> <d> <count…>`.
impl SnapshotState for SupportState {
    fn encode_state(&self, out: &mut String) {
        let _ = write!(out, "support {} {}", self.n, self.support.len());
        for c in &self.support {
            let _ = write!(out, " {c}");
        }
        out.push('\n');
    }

    fn decode_state(lines: &mut dyn Iterator<Item = &str>) -> Result<Self, CoreError> {
        let line = next_line(lines, "support state")?;
        let mut it = line.split_whitespace();
        expect_tag(it.next(), "support")?;
        let n: u64 = parse_snapshot_field(it.next(), "support state total")?;
        let d: usize = parse_snapshot_field(it.next(), "support state domain")?;
        let support: Vec<u64> = parse_fields(it, d, "support state entry")?;
        Ok(SupportState { support, n })
    }
}

/// One line: `spectrum <n> <rows> <sum…>`.
impl SnapshotState for SpectrumState {
    fn encode_state(&self, out: &mut String) {
        let _ = write!(out, "spectrum {} {}", self.n, self.spectrum.len());
        for s in &self.spectrum {
            let _ = write!(out, " {s}");
        }
        out.push('\n');
    }

    fn decode_state(lines: &mut dyn Iterator<Item = &str>) -> Result<Self, CoreError> {
        let line = next_line(lines, "spectrum state")?;
        let mut it = line.split_whitespace();
        expect_tag(it.next(), "spectrum")?;
        let n: u64 = parse_snapshot_field(it.next(), "spectrum state total")?;
        let rows: usize = parse_snapshot_field(it.next(), "spectrum state rows")?;
        let spectrum: Vec<i64> = parse_fields(it, rows, "spectrum state entry")?;
        // Each report contributes ±1 to exactly one row.
        if spectrum.iter().map(|s| s.unsigned_abs()).sum::<u64>() > n {
            return Err(CoreError::Snapshot(format!(
                "spectrum state magnitude exceeds its total {n}"
            )));
        }
        Ok(SpectrumState { spectrum, n })
    }
}

/// Two lines: `adaptive g|o` naming the selected protocol, then the inner
/// count/support state line.
impl SnapshotState for AdaptiveState {
    fn encode_state(&self, out: &mut String) {
        match self {
            AdaptiveState::Grr(s) => {
                out.push_str("adaptive g\n");
                s.encode_state(out);
            }
            AdaptiveState::Olh(s) => {
                out.push_str("adaptive o\n");
                s.encode_state(out);
            }
        }
    }

    fn decode_state(lines: &mut dyn Iterator<Item = &str>) -> Result<Self, CoreError> {
        let line = next_line(lines, "adaptive state tag")?;
        let mut it = line.split_whitespace();
        expect_tag(it.next(), "adaptive")?;
        let kind = it
            .next()
            .ok_or_else(|| CoreError::Snapshot("adaptive state tag missing protocol".into()))?;
        if it.next().is_some() {
            return Err(CoreError::Snapshot(format!(
                "trailing fields on adaptive tag line {line:?}"
            )));
        }
        match kind {
            "g" => Ok(AdaptiveState::Grr(CountState::decode_state(lines)?)),
            "o" => Ok(AdaptiveState::Olh(SupportState::decode_state(lines)?)),
            other => Err(CoreError::Snapshot(format!(
                "unknown adaptive protocol tag {other:?}"
            ))),
        }
    }
}

impl Mechanism for AdaptiveOracle {
    type Input = usize;
    type Report = AdaptiveReport;
    type State = AdaptiveState;
    type Output = Vec<f64>;

    fn epsilon(&self) -> Epsilon {
        match self {
            AdaptiveOracle::Grr(o) => Mechanism::epsilon(o),
            AdaptiveOracle::Olh(o) => Mechanism::epsilon(o),
        }
    }

    fn fingerprint(&self) -> u64 {
        match self {
            AdaptiveOracle::Grr(o) => Mechanism::fingerprint(o),
            AdaptiveOracle::Olh(o) => Mechanism::fingerprint(o),
        }
    }

    fn randomize<R: Rng + ?Sized>(
        &self,
        input: &usize,
        rng: &mut R,
    ) -> Result<AdaptiveReport, CoreError> {
        Ok(match self {
            AdaptiveOracle::Grr(o) => AdaptiveReport::Grr(Mechanism::randomize(o, input, rng)?),
            AdaptiveOracle::Olh(o) => AdaptiveReport::Olh(Mechanism::randomize(o, input, rng)?),
        })
    }

    fn empty_state(&self) -> AdaptiveState {
        match self {
            AdaptiveOracle::Grr(o) => AdaptiveState::Grr(o.empty_state()),
            AdaptiveOracle::Olh(o) => AdaptiveState::Olh(o.empty_state()),
        }
    }

    fn absorb(&self, state: &mut AdaptiveState, report: &AdaptiveReport) -> Result<(), CoreError> {
        match (self, state, report) {
            (AdaptiveOracle::Grr(o), AdaptiveState::Grr(s), AdaptiveReport::Grr(r)) => {
                o.absorb(s, r)
            }
            (AdaptiveOracle::Olh(o), AdaptiveState::Olh(s), AdaptiveReport::Olh(r)) => {
                o.absorb(s, r)
            }
            _ => Err(CoreError::InvalidReport(
                "adaptive report protocol does not match the selected oracle".into(),
            )),
        }
    }

    fn merge_state(
        &self,
        state: &mut AdaptiveState,
        other: &AdaptiveState,
    ) -> Result<(), CoreError> {
        match (self, state, other) {
            (AdaptiveOracle::Grr(o), AdaptiveState::Grr(s), AdaptiveState::Grr(t)) => {
                o.merge_state(s, t)
            }
            (AdaptiveOracle::Olh(o), AdaptiveState::Olh(s), AdaptiveState::Olh(t)) => {
                o.merge_state(s, t)
            }
            _ => Err(CoreError::ShardMismatch(
                "adaptive states were collected under different protocols".into(),
            )),
        }
    }

    fn finalize(&self, state: &AdaptiveState) -> Result<Vec<f64>, CoreError> {
        match (self, state) {
            (AdaptiveOracle::Grr(o), AdaptiveState::Grr(s)) => o.finalize(s),
            (AdaptiveOracle::Olh(o), AdaptiveState::Olh(s)) => o.finalize(s),
            _ => Err(CoreError::ShardMismatch(
                "adaptive state was collected under a different protocol".into(),
            )),
        }
    }
}

impl Mechanism for BinningEstimator {
    type Input = f64;
    type Report = AdaptiveReport;
    type State = AdaptiveState;
    type Output = Histogram;

    fn epsilon(&self) -> Epsilon {
        Mechanism::epsilon(self.oracle())
    }

    fn fingerprint(&self) -> u64 {
        fingerprint_fields(
            tag::BINNING,
            &[
                self.bins() as u64,
                self.target_d() as u64,
                Mechanism::fingerprint(self.oracle()),
            ],
        )
    }

    fn randomize<R: Rng + ?Sized>(
        &self,
        input: &f64,
        rng: &mut R,
    ) -> Result<AdaptiveReport, CoreError> {
        if !input.is_finite() {
            return Err(CoreError::InvalidInput(format!(
                "private value {input} is not finite"
            )));
        }
        let bucket = bucket_of(input.clamp(0.0, 1.0), self.bins());
        Mechanism::randomize(self.oracle(), &bucket, rng)
    }

    fn empty_state(&self) -> AdaptiveState {
        self.oracle().empty_state()
    }

    fn absorb(&self, state: &mut AdaptiveState, report: &AdaptiveReport) -> Result<(), CoreError> {
        self.oracle().absorb(state, report)
    }

    fn merge_state(
        &self,
        state: &mut AdaptiveState,
        other: &AdaptiveState,
    ) -> Result<(), CoreError> {
        self.oracle().merge_state(state, other)
    }

    fn finalize(&self, state: &AdaptiveState) -> Result<Histogram, CoreError> {
        if state.total() == 0 {
            return Err(CoreError::Aggregation(
                "need at least one report to estimate a distribution".into(),
            ));
        }
        let raw = self.oracle().finalize(state)?;
        let repaired = norm_sub(&raw, 1.0);
        let coarse =
            Histogram::from_probs(repaired).map_err(|e| CoreError::Aggregation(e.to_string()))?;
        coarse
            .expand_uniform(self.target_d() / self.bins())
            .map_err(|e| CoreError::Aggregation(e.to_string()))
    }
}

impl WireReport for OlhReport {
    fn encode(&self, out: &mut String) {
        let _ = write!(out, "{} {}", self.seed, self.y);
    }

    fn decode(line: &str) -> Result<Self, CoreError> {
        let mut it = line.split_whitespace();
        let seed = parse_field(it.next().unwrap_or(""), "OLH seed")?;
        let y = parse_field(it.next().unwrap_or(""), "OLH value")?;
        if it.next().is_some() {
            return Err(CoreError::Wire(format!("trailing fields in {line:?}")));
        }
        Ok(OlhReport { seed, y })
    }
}

impl WireReport for HrrReport {
    fn encode(&self, out: &mut String) {
        let _ = write!(out, "{} {}", self.row, self.bit);
    }

    fn decode(line: &str) -> Result<Self, CoreError> {
        let mut it = line.split_whitespace();
        let row = parse_field(it.next().unwrap_or(""), "HRR row")?;
        let bit: i8 = parse_field(it.next().unwrap_or(""), "HRR bit")?;
        if it.next().is_some() {
            return Err(CoreError::Wire(format!("trailing fields in {line:?}")));
        }
        if bit.abs() != 1 {
            return Err(CoreError::Wire(format!("HRR bit must be ±1, got {bit}")));
        }
        Ok(HrrReport { row, bit })
    }
}

impl WireReport for OueReport {
    fn encode(&self, out: &mut String) {
        let _ = write!(out, "{}", self.len());
        for w in self.words() {
            let _ = write!(out, " {w:x}");
        }
    }

    fn decode(line: &str) -> Result<Self, CoreError> {
        let mut it = line.split_whitespace();
        let len: usize = parse_field(it.next().unwrap_or(""), "OUE length")?;
        // Sized by the words actually present on the line, never by the
        // (untrusted) length field — `from_words` then validates the two
        // against each other. A tampered length must produce a wire error,
        // not a pathological allocation.
        let mut bits = Vec::new();
        for field in it {
            let w = u64::from_str_radix(field, 16)
                .map_err(|_| CoreError::Wire(format!("cannot parse OUE word from {field:?}")))?;
            bits.push(w);
        }
        OueReport::from_words(bits, len).map_err(|e| CoreError::Wire(e.to_string()))
    }
}

impl WireReport for AdaptiveReport {
    fn encode(&self, out: &mut String) {
        match self {
            AdaptiveReport::Grr(v) => {
                let _ = write!(out, "g {v}");
            }
            AdaptiveReport::Olh(r) => {
                out.push_str("o ");
                r.encode(out);
            }
        }
    }

    fn decode(line: &str) -> Result<Self, CoreError> {
        let (kind, rest) = line
            .split_once(' ')
            .ok_or_else(|| CoreError::Wire(format!("adaptive report needs a tag: {line:?}")))?;
        match kind {
            "g" => Ok(AdaptiveReport::Grr(parse_field(rest.trim(), "GRR value")?)),
            "o" => Ok(AdaptiveReport::Olh(OlhReport::decode(rest)?)),
            other => Err(CoreError::Wire(format!("unknown adaptive tag {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_core::{encode_lines, Aggregator, Client};
    use ldp_numeric::SplitMix64;

    /// Streaming ingestion must reproduce the legacy
    /// `FrequencyOracle::run` estimate bit for bit when fed the same RNG
    /// stream.
    #[test]
    fn streaming_matches_legacy_oracle_run() {
        let values: Vec<usize> = (0..4_000).map(|i| (i * 7) % 12).collect();
        let d = 12;
        let eps = 1.0;

        macro_rules! check {
            ($oracle:expr) => {{
                let oracle = $oracle;
                let legacy = {
                    let mut rng = SplitMix64::new(404);
                    oracle.run(&values, &mut rng).unwrap()
                };
                let streamed = {
                    let mut rng = SplitMix64::new(404);
                    let client = Client::new(&oracle);
                    let mut agg = Aggregator::new(&oracle);
                    for v in &values {
                        agg.push(&client.randomize(v, &mut rng).unwrap()).unwrap();
                    }
                    agg.finalize().unwrap()
                };
                assert_eq!(legacy.len(), streamed.len());
                for (a, b) in legacy.iter().zip(&streamed) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }};
        }

        check!(Grr::new(d, eps).unwrap());
        check!(Olh::new(d, eps).unwrap());
        check!(Oue::new(d, eps).unwrap());
        check!(Hrr::new(d, eps).unwrap());
        check!(AdaptiveOracle::new(d, eps).unwrap());
    }

    #[test]
    fn binning_streaming_matches_legacy_estimate() {
        let est = BinningEstimator::new(16, 64, 1.0).unwrap();
        let values: Vec<f64> = (0..5_000).map(|i| (i % 97) as f64 / 97.0).collect();
        let legacy = {
            let mut rng = SplitMix64::new(77);
            est.estimate(&values, &mut rng).unwrap()
        };
        let streamed = {
            let mut rng = SplitMix64::new(77);
            let client = Client::new(&est);
            let mut agg = Aggregator::new(&est);
            for v in &values {
                agg.push(&client.randomize(v, &mut rng).unwrap()).unwrap();
            }
            agg.finalize().unwrap()
        };
        assert_eq!(legacy.probs(), streamed.probs());
    }

    #[test]
    fn absorb_rejects_malformed_reports() {
        let grr = Grr::new(4, 1.0).unwrap();
        let mut st = grr.empty_state();
        assert!(grr.absorb(&mut st, &4).is_err());
        assert!(grr.absorb(&mut st, &3).is_ok());
        assert_eq!(st.total(), 1);

        let olh = Olh::new(8, 1.0).unwrap();
        let mut st = olh.empty_state();
        let bad = OlhReport {
            seed: 1,
            y: olh.hash_range() as u32,
        };
        assert!(olh.absorb(&mut st, &bad).is_err());

        let hrr = Hrr::new(8, 1.0).unwrap();
        let mut st = hrr.empty_state();
        assert!(hrr.absorb(&mut st, &HrrReport { row: 0, bit: 2 }).is_err());
        assert!(hrr.absorb(&mut st, &HrrReport { row: 99, bit: 1 }).is_err());

        let oue = Oue::new(8, 1.0).unwrap();
        let other = Oue::new(16, 1.0).unwrap();
        let mut rng = SplitMix64::new(1);
        let wrong_len = Mechanism::randomize(&other, &0, &mut rng).unwrap();
        let mut st = oue.empty_state();
        assert!(oue.absorb(&mut st, &wrong_len).is_err());
    }

    #[test]
    fn adaptive_rejects_cross_protocol_reports_and_states() {
        let grr_oracle = AdaptiveOracle::new(4, 1.0).unwrap();
        assert!(matches!(grr_oracle, AdaptiveOracle::Grr(_)));
        let mut st = grr_oracle.empty_state();
        let olh_report = AdaptiveReport::Olh(OlhReport { seed: 0, y: 0 });
        assert!(grr_oracle.absorb(&mut st, &olh_report).is_err());

        let olh_oracle = AdaptiveOracle::new(1024, 1.0).unwrap();
        let foreign = olh_oracle.empty_state();
        assert!(grr_oracle.merge_state(&mut st, &foreign).is_err());
    }

    #[test]
    fn fingerprints_distinguish_oracles_and_configs() {
        let a = Mechanism::fingerprint(&Grr::new(8, 1.0).unwrap());
        let b = Mechanism::fingerprint(&Grr::new(8, 2.0).unwrap());
        let c = Mechanism::fingerprint(&Grr::new(16, 1.0).unwrap());
        let d = Mechanism::fingerprint(&Oue::new(8, 1.0).unwrap());
        assert!(a != b && a != c && a != d);
        // Same config -> same fingerprint.
        assert_eq!(a, Mechanism::fingerprint(&Grr::new(8, 1.0).unwrap()));
    }

    #[test]
    fn wire_reports_round_trip() {
        let mut rng = SplitMix64::new(909);
        let olh = Olh::new(32, 1.0).unwrap();
        let oue = Oue::new(130, 1.0).unwrap();
        let hrr = Hrr::new(20, 1.0).unwrap();
        let adaptive = AdaptiveOracle::new(1024, 1.0).unwrap();
        for v in 0..20usize {
            let r = Mechanism::randomize(&olh, &(v % 32), &mut rng).unwrap();
            let mut s = String::new();
            r.encode(&mut s);
            assert_eq!(OlhReport::decode(&s).unwrap(), r);

            let r = Mechanism::randomize(&oue, &(v % 130), &mut rng).unwrap();
            let mut s = String::new();
            r.encode(&mut s);
            assert_eq!(OueReport::decode(&s).unwrap(), r);

            let r = Mechanism::randomize(&hrr, &(v % 20), &mut rng).unwrap();
            let mut s = String::new();
            r.encode(&mut s);
            assert_eq!(HrrReport::decode(&s).unwrap(), r);

            let r = Mechanism::randomize(&adaptive, &(v % 1024), &mut rng).unwrap();
            let mut s = String::new();
            r.encode(&mut s);
            assert_eq!(AdaptiveReport::decode(&s).unwrap(), r);
        }
    }

    #[test]
    fn wire_rejects_malformed_lines() {
        assert!(OlhReport::decode("1").is_err());
        assert!(OlhReport::decode("1 2 3").is_err());
        assert!(HrrReport::decode("3 0").is_err());
        assert!(OueReport::decode("64 zz").is_err());
        assert!(OueReport::decode("64").is_err());
        // A tampered length field must yield a wire error, never a
        // length-sized allocation.
        assert!(OueReport::decode("99999999999999999 0").is_err());
        assert!(AdaptiveReport::decode("x 3").is_err());
        assert!(AdaptiveReport::decode("g").is_err());
    }

    #[test]
    fn snapshot_states_round_trip_for_every_oracle() {
        let values: Vec<usize> = (0..500).map(|i| (i * 13) % 8).collect();
        let mut rng = SplitMix64::new(606);

        macro_rules! check {
            ($oracle:expr) => {{
                let oracle = $oracle;
                let mut state = oracle.empty_state();
                for v in &values {
                    let r = Mechanism::randomize(&oracle, v, &mut rng).unwrap();
                    oracle.absorb(&mut state, &r).unwrap();
                }
                let mut text = String::new();
                state.encode_state(&mut text);
                let mut lines = text.lines();
                let restored = SnapshotState::decode_state(&mut lines).unwrap();
                assert!(lines.next().is_none(), "decoder must consume its lines");
                assert_eq!(state, restored);
                let a = oracle.finalize(&state).unwrap();
                let b = oracle.finalize(&restored).unwrap();
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }};
        }

        check!(Grr::new(8, 1.0).unwrap());
        check!(Oue::new(8, 1.0).unwrap());
        check!(Olh::new(8, 1.0).unwrap());
        check!(Hrr::new(8, 1.0).unwrap());
        check!(AdaptiveOracle::new(8, 1.0).unwrap());
        check!(AdaptiveOracle::new(4096, 1.0).unwrap()); // OLH arm
    }

    #[test]
    fn snapshot_states_reject_malformed_lines() {
        let mut it = "counts 5 3 1 2".lines();
        assert!(CountState::decode_state(&mut it).is_err(), "short fields");
        let mut it = "counts 5 2 1 2 3".lines();
        assert!(CountState::decode_state(&mut it).is_err(), "long fields");
        let mut it = "support x 2 1 2".lines();
        assert!(SupportState::decode_state(&mut it).is_err(), "bad total");
        // A spectrum claiming more ±1 mass than reports absorbed.
        let mut it = "spectrum 2 4 3 0 0 0".lines();
        assert!(SpectrumState::decode_state(&mut it).is_err());
        let mut it = "adaptive q\ncounts 0 2 0 0".lines();
        assert!(AdaptiveState::decode_state(&mut it).is_err(), "bad tag");
        let mut it = "adaptive g".lines();
        assert!(
            AdaptiveState::decode_state(&mut it).is_err(),
            "missing inner state"
        );
    }

    #[test]
    fn encode_lines_round_trips_mixed_stream() {
        let grr = Grr::new(6, 1.0).unwrap();
        let mut rng = SplitMix64::new(31);
        let client = Client::new(&grr);
        let reports: Vec<usize> = (0..50)
            .map(|i| client.randomize(&(i % 6), &mut rng).unwrap())
            .collect();
        let text = encode_lines(&reports);
        let back: Vec<usize> = ldp_core::decode_lines(&text).unwrap();
        assert_eq!(back, reports);
        // Identical estimate from the replayed stream.
        let a = Mechanism::aggregate(&grr, &reports).unwrap();
        let b = Mechanism::aggregate(&grr, &back).unwrap();
        assert_eq!(a, b);
    }
}
