//! End-to-end tests of the `ldp-collector` binary: every subcommand runs
//! as a real process, exactly as `docs/OPERATIONS.md` documents it.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ldp-collector"))
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ldp-collector-cli-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_ok(cmd: &mut Command) -> Output {
    let out = cmd.output().expect("spawn ldp-collector");
    assert!(
        out.status.success(),
        "command failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).unwrap()
}

const SPEC: &str = "sw-ems:eps=1,d=32";

fn gen_reports(dir: &Path, n: u64) -> PathBuf {
    let reports = dir.join("reports.txt");
    run_ok(bin().args([
        "gen",
        "--mechanism",
        SPEC,
        "--n",
        &n.to_string(),
        "--seed",
        "42",
        "--out",
        reports.to_str().unwrap(),
    ]));
    reports
}

/// One-shot estimate of the full report file: the recovery baseline.
fn one_shot(dir: &Path, reports: &Path) -> String {
    let snap = dir.join("oneshot.snap");
    let out = run_ok(bin().args([
        "ingest",
        "--mechanism",
        SPEC,
        "--input",
        reports.to_str().unwrap(),
        "--snapshot",
        snap.to_str().unwrap(),
        "--finalize",
    ]));
    stdout(&out)
}

#[test]
fn kill_and_resume_is_bit_identical_to_one_shot() {
    let dir = scratch("resume");
    let reports = gen_reports(&dir, 6_000);
    let expected = one_shot(&dir, &reports);
    assert_eq!(expected.lines().count(), 32);

    // "Crash" after 2,500 reports: the process exits with only the
    // snapshot surviving.
    let snap = dir.join("window.snap");
    run_ok(bin().args([
        "ingest",
        "--mechanism",
        SPEC,
        "--input",
        reports.to_str().unwrap(),
        "--snapshot",
        snap.to_str().unwrap(),
        "--snapshot-every",
        "1000",
        "--max-reports",
        "2500",
    ]));
    let header = stdout(&run_ok(bin().args(["inspect", snap.to_str().unwrap()])));
    assert!(header.contains("reports     2500"), "{header}");
    assert!(header.contains("mechanism   sw-ems:eps=1,d=32"), "{header}");

    // A fresh process resumes from the snapshot and replays the log.
    let out = run_ok(bin().args([
        "ingest",
        "--mechanism",
        SPEC,
        "--input",
        reports.to_str().unwrap(),
        "--snapshot",
        snap.to_str().unwrap(),
        "--resume",
        "--finalize",
    ]));
    assert_eq!(
        stdout(&out),
        expected,
        "recovered estimate must be bit-identical"
    );
}

#[test]
fn three_shard_merge_equals_concatenated_ingest() {
    let dir = scratch("merge");
    let reports = gen_reports(&dir, 6_000);
    let expected = one_shot(&dir, &reports);

    // Split the stream across three parallel collectors.
    let text = std::fs::read_to_string(&reports).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    let mut snaps = Vec::new();
    for (i, chunk) in lines.chunks(2_000).enumerate() {
        let part = dir.join(format!("part{i}.txt"));
        std::fs::write(&part, chunk.join("\n")).unwrap();
        let snap = dir.join(format!("shard{i}.snap"));
        run_ok(bin().args([
            "ingest",
            "--mechanism",
            SPEC,
            "--input",
            part.to_str().unwrap(),
            "--snapshot",
            snap.to_str().unwrap(),
        ]));
        snaps.push(snap);
    }
    assert_eq!(snaps.len(), 3);

    let merged = dir.join("merged.snap");
    let mut args = vec![
        "merge".to_string(),
        "--mechanism".into(),
        SPEC.into(),
        "--out".into(),
        merged.to_str().unwrap().into(),
        "--finalize".into(),
    ];
    args.extend(snaps.iter().map(|s| s.to_str().unwrap().to_string()));
    let out = run_ok(bin().args(&args));
    assert_eq!(stdout(&out), expected, "3-shard merge must equal one-shot");

    // `finalize` over the merged snapshot agrees too.
    let out = run_ok(bin().args([
        "finalize",
        "--mechanism",
        SPEC,
        "--snapshot",
        merged.to_str().unwrap(),
    ]));
    assert_eq!(stdout(&out), expected);
}

#[test]
fn corrupted_and_cross_config_snapshots_are_refused() {
    let dir = scratch("reject");
    let reports = gen_reports(&dir, 500);
    let snap = dir.join("window.snap");
    run_ok(bin().args([
        "ingest",
        "--mechanism",
        SPEC,
        "--input",
        reports.to_str().unwrap(),
        "--snapshot",
        snap.to_str().unwrap(),
    ]));

    // Bit rot: flip a digit inside the state body.
    let good = std::fs::read_to_string(&snap).unwrap();
    let body_line = good.lines().nth(5).unwrap().to_string();
    let idx = body_line
        .find(|c: char| c.is_ascii_digit() && c != '7')
        .unwrap();
    let mut tampered_line = body_line.clone();
    tampered_line.replace_range(idx..idx + 1, "7");
    assert_ne!(body_line, tampered_line, "test must actually tamper");
    std::fs::write(&snap, good.replacen(&body_line, &tampered_line, 1)).unwrap();
    let out = bin()
        .args([
            "finalize",
            "--mechanism",
            SPEC,
            "--snapshot",
            snap.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("checksum"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Cross-configuration: a valid snapshot under a different ε.
    std::fs::write(&snap, &good).unwrap();
    let out = bin()
        .args([
            "finalize",
            "--mechanism",
            "sw-ems:eps=2,d=32",
            "--snapshot",
            snap.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());

    // Truncation mid-write (no atomic rename): drop the checksum line.
    let torn: String =
        good.lines()
            .take(good.lines().count() - 1)
            .fold(String::new(), |mut acc, l| {
                acc.push_str(l);
                acc.push('\n');
                acc
            });
    std::fs::write(&snap, torn).unwrap();
    let out = bin()
        .args([
            "finalize",
            "--mechanism",
            SPEC,
            "--snapshot",
            snap.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn serve_ingests_framed_batches_over_tcp() {
    let dir = scratch("serve");
    let reports = gen_reports(&dir, 900);
    let expected = one_shot(&dir, &reports);
    let snap = dir.join("window.snap");

    // Pick a free port first, then hand it to the server process.
    let port = {
        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        probe.local_addr().unwrap().port()
    };
    let addr = format!("127.0.0.1:{port}");
    let server = bin()
        .args([
            "serve",
            "--mechanism",
            SPEC,
            "--listen",
            &addr,
            "--snapshot",
            snap.to_str().unwrap(),
            "--snapshot-every",
            "300",
            "--connections",
            "1",
            "--finalize",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap();

    // Forward the reports in three frames, then the end-of-stream frame.
    let text = std::fs::read_to_string(&reports).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    let mut stream = connect_with_retry(&addr);
    for chunk in lines.chunks(300) {
        let payload = chunk.join("\n");
        stream
            .write_all(&(payload.len() as u32).to_be_bytes())
            .unwrap();
        stream.write_all(payload.as_bytes()).unwrap();
        let mut ack = [0u8; 1];
        stream.read_exact(&mut ack).unwrap();
        assert_eq!(ack[0], b'+');
    }
    stream.write_all(&0u32.to_be_bytes()).unwrap();
    let mut ack = [0u8; 1];
    stream.read_exact(&mut ack).unwrap();
    assert_eq!(ack[0], b'+');

    let out = server.wait_with_output().unwrap();
    assert!(out.status.success());
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        expected,
        "socket-collected window must equal file ingestion"
    );
    // The snapshot survives for recovery/merge.
    let header = stdout(&run_ok(bin().args(["inspect", snap.to_str().unwrap()])));
    assert!(header.contains("reports     900"), "{header}");
}

fn connect_with_retry(addr: &str) -> TcpStream {
    for _ in 0..100 {
        if let Ok(s) = TcpStream::connect(addr) {
            return s;
        }
        std::thread::sleep(std::time::Duration::from_millis(30));
    }
    panic!("server at {addr} never came up");
}

#[test]
fn resume_rejects_a_shorter_replay_log() {
    let dir = scratch("shortlog");
    let reports = gen_reports(&dir, 1_000);
    let snap = dir.join("window.snap");
    run_ok(bin().args([
        "ingest",
        "--mechanism",
        SPEC,
        "--input",
        reports.to_str().unwrap(),
        "--snapshot",
        snap.to_str().unwrap(),
    ]));
    // Replay log shorter than the snapshot's absorbed count.
    let text = std::fs::read_to_string(&reports).unwrap();
    let short: String = text.lines().take(400).collect::<Vec<_>>().join("\n");
    std::fs::write(&reports, short).unwrap();
    let out = bin()
        .args([
            "ingest",
            "--mechanism",
            SPEC,
            "--input",
            reports.to_str().unwrap(),
            "--snapshot",
            snap.to_str().unwrap(),
            "--resume",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("cannot resume"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn specs_lists_every_registered_mechanism() {
    let out = stdout(&run_ok(bin().args(["specs"])));
    for name in [
        "sw-ems",
        "sw-em",
        "grr",
        "olh",
        "oue",
        "hrr",
        "adaptive",
        "cfo-binning",
        "pm",
        "sr",
        "hybrid",
        "hh",
        "hh-admm",
        "haar-hrr",
    ] {
        assert!(
            out.lines()
                .any(|l| l.split_whitespace().next() == Some(name)),
            "missing {name} in:\n{out}"
        );
    }
    assert_eq!(out.lines().count(), 14, "{out}");
}

#[test]
fn a_typo_in_the_mechanism_name_gets_a_suggestion() {
    let out = bin()
        .args(["gen", "--mechanism", "sw-emz:eps=1,d=32", "--n", "1"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("did you mean"), "stderr: {stderr}");
    assert!(stderr.contains("sw-em"), "stderr: {stderr}");
}

#[test]
fn serve_shuts_down_when_the_shutdown_file_appears() {
    let dir = scratch("shutdown-file");
    let reports = gen_reports(&dir, 300);
    let snap = dir.join("window.snap");
    let stop = dir.join("stop.now");
    let port = {
        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        probe.local_addr().unwrap().port()
    };
    let addr = format!("127.0.0.1:{port}");
    let mut server = bin()
        .args([
            "serve",
            "--mechanism",
            SPEC,
            "--listen",
            &addr,
            "--snapshot",
            snap.to_str().unwrap(),
            "--shutdown-file",
            stop.to_str().unwrap(),
        ])
        .spawn()
        .unwrap();

    // Stream the whole log in one frame, but never send end-of-stream —
    // shutdown has to end the window for us.
    let text = std::fs::read_to_string(&reports).unwrap();
    let payload = text.trim_end();
    let mut stream = connect_with_retry(&addr);
    stream
        .write_all(&(payload.len() as u32).to_be_bytes())
        .unwrap();
    stream.write_all(payload.as_bytes()).unwrap();
    let mut ack = [0u8; 1];
    stream.read_exact(&mut ack).unwrap();
    assert_eq!(ack[0], b'+');

    std::fs::write(&stop, "").unwrap();
    let status = server.wait().unwrap();
    assert!(status.success());
    // The acked frame survived shutdown in the final snapshot.
    let header = stdout(&run_ok(bin().args(["inspect", snap.to_str().unwrap()])));
    assert!(header.contains("reports     300"), "{header}");
}
